package greencell_test

import (
	"testing"

	"greencell"
)

// TestFacadeQuickstart exercises the public API end to end at reduced
// scale: the same calls the README's quick start makes.
func TestFacadeQuickstart(t *testing.T) {
	sc := greencell.PaperScenario()
	sc.Topology.NumUsers = 8
	sc.NumSessions = 2
	sc.Slots = 20
	sc.TrackDelay = true
	sc.AuditDrift = true

	res, err := greencell.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgEnergyCost < 0 || res.DeliveredPkts <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.AuditViolations != 0 {
		t.Errorf("Lemma 1 audit violations: %d", res.AuditViolations)
	}
	if res.ExactDelayMeanSlots < 0 || res.ExactDelayMaxSlots < res.ExactDelayMeanSlots {
		t.Errorf("delay stats inconsistent: mean %v max %v",
			res.ExactDelayMeanSlots, res.ExactDelayMaxSlots)
	}
}

func TestFacadeBounds(t *testing.T) {
	sc := greencell.PaperScenario()
	sc.Topology.NumUsers = 8
	sc.NumSessions = 2
	sc.Slots = 15
	sc.KeepTraces = false
	b, err := greencell.BoundsAt(sc, 3e5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower > b.Upper {
		t.Errorf("bound sandwich inverted: [%v, %v]", b.Lower, b.Upper)
	}
}

func TestFacadeArchitectureConstants(t *testing.T) {
	archs := []greencell.Architecture{
		greencell.Proposed,
		greencell.MultiHopNoRenewable,
		greencell.OneHopRenewable,
		greencell.OneHopNoRenewable,
	}
	seen := map[greencell.Architecture]bool{}
	for _, a := range archs {
		if seen[a] {
			t.Fatalf("duplicate architecture constant %v", a)
		}
		seen[a] = true
	}
}
