// Package greencell reproduces "Optimal Energy Cost for Strongly Stable
// Multi-hop Green Cellular Networks" (Liao, Li, Salinas, Li, Pan — ICDCS
// 2014): a Lyapunov drift-plus-penalty controller that minimizes a cellular
// provider's long-term expected energy cost over a multi-hop network with
// dynamic spectrum, renewable energy sources, and battery storage, while
// keeping every data and energy queue strongly stable.
//
// This package is the stable facade over the implementation in internal/:
// it exposes the scenario configuration, the simulation runner, and the
// experiment drivers behind every panel of the paper's Figure 2.
//
// Quick start:
//
//	sc := greencell.PaperScenario()
//	sc.Slots = 100
//	res, err := greencell.Run(sc)
//	// res.AvgEnergyCost is the time-averaged f(P(t)); res.*Trace hold the
//	// per-slot series of Fig. 2(b)-(e).
//
// The Theorem 4/5 bound sandwich of Fig. 2(a):
//
//	bounds, err := greencell.SweepV(sc, []float64{1e5, 5e5, 1e6})
//
// The four-architecture comparison of Fig. 2(f):
//
//	costs, err := greencell.CompareArchitectures(sc, []float64{1e5, 3e5, 5e5})
package greencell

import (
	"greencell/internal/sim"
)

// Core types, re-exported from the simulation engine.
type (
	// Scenario fully describes one simulation run.
	Scenario = sim.Scenario
	// Result aggregates a run's metrics and per-slot traces.
	Result = sim.Result
	// Bounds is the Theorem 4/5 sandwich for one V.
	Bounds = sim.Bounds
	// Architecture selects one of the four Fig. 2(f) network designs.
	Architecture = sim.Architecture
	// ArchitectureCost is one point of the Fig. 2(f) comparison.
	ArchitectureCost = sim.ArchitectureCost
)

// The four architectures compared in the paper's Fig. 2(f).
const (
	Proposed            = sim.Proposed
	MultiHopNoRenewable = sim.MultiHopNoRenewable
	OneHopRenewable     = sim.OneHopRenewable
	OneHopNoRenewable   = sim.OneHopNoRenewable
)

// PaperScenario returns the scenario of the paper's Section VI (see
// DESIGN.md for the documented unit recalibrations).
func PaperScenario() Scenario { return sim.Paper() }

// UrbanScenario returns a denser 4-BS deployment with hotspot users,
// shadowing, and Markov band availability — the realism extensions
// composed.
func UrbanScenario() Scenario { return sim.Urban() }

// RuralScenario returns a sparse single-BS deployment with diurnal
// renewables.
func RuralScenario() Scenario { return sim.Rural() }

// Run executes a scenario and aggregates its metrics.
func Run(sc Scenario) (*Result, error) { return sim.Run(sc) }

// BoundsAt runs the proposed and the relaxed (lower-bound) controllers
// with common random numbers at the given V.
func BoundsAt(sc Scenario, v float64) (Bounds, error) { return sim.BoundsAt(sc, v) }

// SweepV computes the bound pair for each V — the series of Fig. 2(a).
func SweepV(sc Scenario, vs []float64) ([]Bounds, error) { return sim.SweepV(sc, vs) }

// CompareArchitectures runs every architecture at every V — Fig. 2(f).
func CompareArchitectures(sc Scenario, vs []float64) ([]ArchitectureCost, error) {
	return sim.CompareArchitectures(sc, vs)
}
