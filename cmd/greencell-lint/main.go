// Command greencell-lint runs the project's static analyzers
// (internal/analysis, documented in docs/ANALYSIS.md) over the module.
//
// Usage:
//
//	greencell-lint [-json] [-sarif] [-no-tests] [-analyzers a,b] [-parallel n] [-timings] [-audit-suppressions] [patterns ...]
//
// Patterns are package directories, "/..."-suffixed for recursion; the
// default "./..." walks the whole module. Packages type-check in parallel
// (-parallel bounds the fan-out; 1 forces a serial load). -analyzers picks
// a comma-separated subset of the suite by name; the default runs all of
// it. -timings adds load and per-analyzer wall time on stderr. Findings
// print as file:line:col: analyzer: message (as a JSON array with -json,
// or as a SARIF 2.1.0 log with -sarif for code-review upload endpoints)
// and any finding makes the exit status 1. Suppress an intentional
// violation with an inline "//lint:allow <analyzer> -- reason" comment.
// -audit-suppressions inverts the run: instead of findings it reports
// //lint:allow annotations whose analyzer no longer fires on the lines they
// cover (exit 1 if any are stale), so suppressions are pruned when the code
// they excused goes away.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"greencell/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "greencell-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("greencell-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	noTests := fs.Bool("no-tests", false, "skip _test.go files")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: the full suite)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "packages to type-check concurrently (1 = serial)")
	timings := fs.Bool("timings", false, "report load and per-analyzer wall time on stderr")
	audit := fs.Bool("audit-suppressions", false, "report stale //lint:allow annotations instead of findings")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: greencell-lint [-json] [-sarif] [-no-tests] [-analyzers a,b] [-parallel n] [-timings] [-audit-suppressions] [patterns ...]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name(), a.Doc())
		}
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, nil
		}
		return 2, nil
	}
	if *jsonOut && *sarifOut {
		return 0, fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		return 0, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	loader.IncludeTests = !*noTests
	loader.Parallel = *parallel
	loadStart := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	loadTime := time.Since(loadStart)

	if *audit {
		// Auditing against a subset would mark every other analyzer's
		// annotations stale, so the audit always runs the full suite.
		stale := analysis.AuditSuppressions(pkgs, analysis.All())
		for i := range stale {
			if rel, err := filepath.Rel(loader.ModuleRoot(), stale[i].File); err == nil {
				stale[i].File = rel
			}
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if stale == nil {
				stale = []analysis.Suppression{}
			}
			if err := enc.Encode(stale); err != nil {
				return 0, err
			}
		} else {
			for _, s := range stale {
				fmt.Println(s)
			}
			fmt.Printf("greencell-lint: %d package(s), %d stale suppression(s)\n", len(pkgs), len(stale))
		}
		if len(stale) > 0 {
			return 1, nil
		}
		return 0, nil
	}

	// Run the analyzers one at a time so each gets its own wall-clock
	// reading, then merge back into the canonical report order.
	var findings []analysis.Finding
	type timed struct {
		name string
		d    time.Duration
		n    int
	}
	perAnalyzer := make([]timed, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		got := analysis.Run(pkgs, []analysis.Analyzer{a})
		perAnalyzer = append(perAnalyzer, timed{a.Name(), time.Since(start), len(got)})
		findings = append(findings, got...)
	}
	analysis.SortFindings(findings)

	// Report module-relative paths so output is stable across checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(loader.ModuleRoot(), findings[i].File); err == nil {
			findings[i].File = rel
		}
	}

	if *timings {
		fmt.Fprintf(os.Stderr, "greencell-lint: loaded %d package(s) in %v (parallel=%d)\n",
			len(pkgs), loadTime.Round(time.Millisecond), *parallel)
		for _, t := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "greencell-lint: %-12s %8v  %d finding(s)\n",
				t.name, t.d.Round(time.Microsecond), t.n)
		}
	}

	switch {
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.SARIFReport(findings, analyzers)); err != nil {
			return 0, err
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return 0, err
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("greencell-lint: %d package(s), %d analyzer(s), %d finding(s)\n",
			len(pkgs), len(analyzers), len(findings))
	}
	if len(findings) > 0 {
		return 1, nil
	}
	return 0, nil
}

// selectAnalyzers resolves a comma-separated -analyzers value against the
// suite; an empty value selects the whole suite.
func selectAnalyzers(csv string) ([]analysis.Analyzer, error) {
	all := analysis.All()
	if strings.TrimSpace(csv) == "" {
		return all, nil
	}
	byName := make(map[string]analysis.Analyzer, len(all))
	var known []string
	for _, a := range all {
		byName[a.Name()] = a
		known = append(known, a.Name())
	}
	var out []analysis.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzers %q selects nothing", csv)
	}
	return out, nil
}
