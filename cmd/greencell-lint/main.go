// Command greencell-lint runs the project's static analyzers
// (internal/analysis, documented in docs/ANALYSIS.md) over the module.
//
// Usage:
//
//	greencell-lint [-json] [-no-tests] [patterns ...]
//
// Patterns are package directories, "/..."-suffixed for recursion; the
// default "./..." walks the whole module. Findings print as
// file:line:col: analyzer: message (or as a JSON array with -json) and any
// finding makes the exit status 1. Suppress an intentional violation with
// an inline "//lint:allow <analyzer> -- reason" comment.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"greencell/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "greencell-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	jsonOut := false
	includeTests := true
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-no-tests", "--no-tests":
			includeTests = false
		case "-h", "-help", "--help":
			fmt.Println("usage: greencell-lint [-json] [-no-tests] [patterns ...]")
			for _, an := range analysis.All() {
				fmt.Printf("  %-12s %s\n", an.Name(), an.Doc())
			}
			return 0, nil
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	loader.IncludeTests = includeTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	findings := analysis.Run(pkgs, analysis.All())

	// Report module-relative paths so output is stable across checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(loader.ModuleRoot(), findings[i].File); err == nil {
			findings[i].File = rel
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return 0, err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("greencell-lint: %d package(s), %d finding(s)\n", len(pkgs), len(findings))
	}
	if len(findings) > 0 {
		return 1, nil
	}
	return 0, nil
}
