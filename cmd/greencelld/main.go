// Command greencelld is the experiment daemon: an HTTP/JSON service that
// accepts simulation jobs (serializable scenario specs plus seeds), runs
// them on a bounded worker pool over the crash-proof replication machinery,
// streams per-slot metrics live, and journals job lifecycles so interrupted
// work recovers on restart. See docs/SERVER.md for the API.
//
// Usage:
//
//	greencelld [-addr host:port] [-journal path] [-workers n]
//
// SIGINT/SIGTERM starts a graceful drain: new submissions get 503, running
// jobs get -drain-grace to finish, and whatever is interrupted stays
// journaled for the next instance to re-run (deterministically, so nothing
// is lost).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"greencell/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "greencelld:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("greencelld", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		journal    = fs.String("journal", "greencelld.journal.jsonl", "job journal path (empty disables crash recovery)")
		workers    = fs.Int("workers", 1, "jobs run concurrently (each job also parallelizes across seeds)")
		queueDepth = fs.Int("queue-depth", 256, "max queued jobs before submissions get 503")
		grace      = fs.Duration("drain-grace", 30*time.Second, "how long a drain lets running jobs finish before interrupting them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Listen before journal replay so the address is claimed and probes get
	// an honest answer during recovery: the bootstrap handler serves
	// liveness (200 /healthz) and not-ready (503 /readyz) until server.New
	// finishes replaying, then the real API is swapped in atomically.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return errors.Join(fmt.Errorf("writing -addr-file: %w", err), ln.Close())
		}
	}
	fmt.Fprintf(os.Stderr, "greencelld: listening on %s (journal %q)\n", bound, *journal)

	var handler atomic.Value // http.Handler
	handler.Store(bootstrapHandler())
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go serveHTTP(hs, ln, errCh)

	srv, err := server.New(server.Config{
		JournalPath: *journal,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
	})
	if err != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		return errors.Join(err, hs.Shutdown(sctx))
	}
	handler.Store(srv.Handler())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener died on its own; take the jobs down with it.
		if cerr := srv.Close(); cerr != nil {
			return fmt.Errorf("serve: %v; close: %w", err, cerr)
		}
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "greencelld: %v: draining (grace %s)\n", sig, *grace)
		dctx, dcancel := context.WithTimeout(context.Background(), *grace)
		defer dcancel()
		derr := srv.Drain(dctx)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if serr := hs.Shutdown(sctx); serr != nil && derr == nil {
			derr = serr
		}
		fmt.Fprintln(os.Stderr, "greencelld: drained")
		return derr
	}
}

// bootstrapHandler serves the pre-replay window: alive but not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		writeBody(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeBody(w, `{"status":"starting"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeBody(w, `{"error":"starting: journal replay in progress"}`)
	})
	return mux
}

// writeBody writes a one-line JSON body to a probe response. A failed write
// means the prober went away; there is nobody left to tell.
func writeBody(w io.Writer, line string) {
	//lint:allow droppederr -- a failed probe-response write means the client is gone
	io.WriteString(w, line+"\n")
}

// serveHTTP runs the HTTP server and reports its exit; a separate function
// so the accept loop's goroutine shares nothing mutable with main.
func serveHTTP(hs *http.Server, ln net.Listener, errCh chan<- error) {
	err := hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	errCh <- err
}
