// Command report produces a single self-contained HTML reproduction
// report: headline metrics, the certificate checks, and every Figure 2
// panel rendered inline as SVG with its data table alongside.
//
// Usage:
//
//	report [-out report.html] [-slots N] [-seed N] [-quick]
package main

import (
	"errors"
	"flag"
	"fmt"
	"html/template"
	"os"
	"strings"
	"time"

	"greencell"
	"greencell/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

type check struct {
	Name string
	OK   bool
	Info string
}

type figure struct {
	Title string
	SVG   template.HTML
	Note  string
}

type reportData struct {
	Generated  string
	Slots      int
	Seed       int64
	Checks     []check
	Figures    []figure
	CostRows   [][]string
	BoundsRows [][]string
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		out   = fs.String("out", "report.html", "output file")
		slots = fs.Int("slots", 100, "slots per run")
		seed  = fs.Int64("seed", 1, "scenario seed")
		quick = fs.Bool("quick", false, "fewer sweep points")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := greencell.PaperScenario()
	sc.Slots = *slots
	sc.Seed = *seed

	data := reportData{
		//lint:allow wallclock -- report banner timestamp; the HTML report is not a reproducible artifact
		Generated: time.Now().Format(time.RFC1123),
		Slots:     *slots,
		Seed:      *seed,
	}

	// Instrumented base run.
	base := sc
	base.AuditDrift = true
	base.TrackDelay = true
	res, err := greencell.Run(base)
	if err != nil {
		return err
	}
	data.Checks = append(data.Checks,
		check{"lemma1-drift", res.AuditViolations == 0,
			fmt.Sprintf("%d violating slots of %d", res.AuditViolations, *slots)},
		check{"no-deficit", res.DeficitWh < 1e-6,
			fmt.Sprintf("unserved energy %.3g Wh", res.DeficitWh)},
		check{"strong-stability", res.StableDataBacklog(100),
			fmt.Sprintf("final backlogs BS %.0f / users %.0f pkts",
				res.FinalDataBacklogBS, res.FinalDataBacklogUsers)},
	)

	// Fig 2(a).
	vs := []float64{1e5, 2e5, 4e5, 6e5, 8e5, 1e6}
	if *quick {
		vs = []float64{1e5, 5e5, 1e6}
	}
	bounds, err := greencell.SweepV(sc, vs)
	if err != nil {
		return err
	}
	upper := plot.Series{Name: "upper bound"}
	lower := plot.Series{Name: "lower bound"}
	for _, b := range bounds {
		upper.X = append(upper.X, b.V)
		upper.Y = append(upper.Y, b.Upper)
		lower.X = append(lower.X, b.V)
		lower.Y = append(lower.Y, b.Lower)
		data.BoundsRows = append(data.BoundsRows, []string{
			fmt.Sprintf("%.0e", b.V),
			fmt.Sprintf("%.5g", b.Lower),
			fmt.Sprintf("%.5g", b.Upper),
			fmt.Sprintf("%.3g", b.Upper-b.Lower),
		})
	}
	gapFirst := bounds[0].Upper - bounds[0].Lower
	gapLast := bounds[len(bounds)-1].Upper - bounds[len(bounds)-1].Lower
	data.Checks = append(data.Checks, check{"bound-tighten", gapLast < gapFirst,
		fmt.Sprintf("gap %.3g → %.3g", gapFirst, gapLast)})
	figA := &plot.Chart{
		Title:  "Fig 2(a): Theorem 4/5 bounds vs V",
		XLabel: "V", YLabel: "time-averaged penalty objective",
		Series: []plot.Series{upper, lower},
	}
	svgA, err := renderLine(figA)
	if err != nil {
		return err
	}
	data.Figures = append(data.Figures, figure{
		Title: "Bound sandwich (Fig 2a)", SVG: svgA,
		Note: "The lower bound ψ*_P3̄ − B/V climbs into the upper bound ψ_P3 as V grows (Lemma 2).",
	})

	// Fig 2(b)-(e) from the base run's traces.
	xs := make([]float64, *slots)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	panels := []struct {
		title, ylabel, note string
		y                   []float64
	}{
		{"Fig 2(b): BS data backlog", "packets", "Bounded growth: strong stability.", res.DataBacklogBSTrace},
		{"Fig 2(c): user data backlog", "packets", "Relay queues settle under backpressure.", res.DataBacklogUsersTrace},
		{"Fig 2(d): BS energy buffers", "Wh", "Batteries charge toward capacity.", res.BatteryWhBSTrace},
		{"Fig 2(e): user energy buffers", "Wh", "Grid-connected slots charge at the cap.", res.BatteryWhUsersTrace},
	}
	for _, p := range panels {
		c := &plot.Chart{
			Title: p.title, XLabel: "time (minutes)", YLabel: p.ylabel,
			Series: []plot.Series{{Name: fmt.Sprintf("V=%.0e", sc.V), X: xs, Y: p.y}},
		}
		svg, err := renderLine(c)
		if err != nil {
			return err
		}
		data.Figures = append(data.Figures, figure{Title: p.title, SVG: svg, Note: p.note})
	}

	// Fig 2(f).
	archVs := []float64{1e5}
	costs, err := greencell.CompareArchitectures(sc, archVs)
	if err != nil {
		return err
	}
	byArch := map[greencell.Architecture]float64{}
	for _, c := range costs {
		byArch[c.Architecture] = c.AvgCost.Value()
	}
	order := []greencell.Architecture{
		greencell.Proposed, greencell.OneHopRenewable,
		greencell.MultiHopNoRenewable, greencell.OneHopNoRenewable,
	}
	chartF := &plot.Chart{
		Title:  "Fig 2(f): cost by architecture (V=1e5)",
		YLabel: "time-averaged f(P)",
	}
	for _, a := range order {
		chartF.Series = append(chartF.Series, plot.Series{Name: a.String(), Y: []float64{byArch[a]}})
		data.CostRows = append(data.CostRows, []string{
			a.String(),
			fmt.Sprintf("%.5g", byArch[a]),
			fmt.Sprintf("%.2fx", byArch[a]/byArch[greencell.Proposed]),
		})
	}
	var fb strings.Builder
	if err := chartF.BarSVG(&fb, []string{"V=1e5"}); err != nil {
		return err
	}
	data.Figures = append(data.Figures, figure{
		Title: "Architecture comparison (Fig 2f)", SVG: template.HTML(fb.String()),
		Note: "Proposed < one-hop w/ renewable < multi-hop w/o renewable < one-hop w/o renewable.",
	})
	data.Checks = append(data.Checks, check{"architectures",
		byArch[greencell.Proposed] < byArch[greencell.OneHopNoRenewable],
		fmt.Sprintf("proposed %.4g vs grid-only one-hop %.4g",
			byArch[greencell.Proposed], byArch[greencell.OneHopNoRenewable])})

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := page.Execute(f, data); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

func renderLine(c *plot.Chart) (template.HTML, error) {
	var b strings.Builder
	if err := c.LineSVG(&b); err != nil {
		return "", err
	}
	return template.HTML(b.String()), nil
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>greencell reproduction report</title>
<style>
 body { font-family: Helvetica, Arial, sans-serif; color: #0b0b0b; background: #fcfcfb;
        max-width: 760px; margin: 2em auto; padding: 0 1em; }
 h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
 table { border-collapse: collapse; margin: 1em 0; font-size: 0.9em; }
 td, th { border: 1px solid #e7e6e2; padding: 4px 10px; text-align: left; }
 th { background: #f3f2ef; }
 .pass { color: #008300; font-weight: 600; } .fail { color: #e34948; font-weight: 600; }
 .note { color: #52514e; font-size: 0.85em; margin: 0.3em 0 1.5em; }
 figure { margin: 1.5em 0; }
</style></head><body>
<h1>greencell — reproduction report</h1>
<p class="note">Optimal Energy Cost for Strongly Stable Multi-hop Green Cellular
Networks (ICDCS 2014) · generated {{.Generated}} · {{.Slots}} slots · seed {{.Seed}}</p>

<h2>Certificate checks</h2>
<table><tr><th>check</th><th>status</th><th>detail</th></tr>
{{range .Checks}}<tr><td>{{.Name}}</td>
<td class="{{if .OK}}pass{{else}}fail{{end}}">{{if .OK}}PASS{{else}}FAIL{{end}}</td>
<td>{{.Info}}</td></tr>{{end}}
</table>

<h2>Theorem 4/5 bounds</h2>
<table><tr><th>V</th><th>lower</th><th>upper</th><th>gap</th></tr>
{{range .BoundsRows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>

<h2>Architectures (V=1e5)</h2>
<table><tr><th>architecture</th><th>avg cost</th><th>vs proposed</th></tr>
{{range .CostRows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>

{{range .Figures}}
<figure>{{.SVG}}<figcaption class="note">{{.Note}}</figcaption></figure>
{{end}}
</body></html>
`))
