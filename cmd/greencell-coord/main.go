// Command greencell-coord is the cluster coordinator: it shards simulation
// jobs seed-by-seed across a fleet of greencelld workers under leases,
// re-dispatches lost work, caches every completed cell by content address,
// and serves the same HTTP/JSON API as a single daemon — so greencellsim
// -submit and sweep -coord scale from one machine to a cluster by changing
// a URL. See docs/CLUSTER.md for the architecture and failure matrix.
//
// Usage:
//
//	greencell-coord -fleet http://h1:8080,http://h2:8080 [-addr host:port]
//	                [-journal path] [-cache-dir path] [-lease-timeout d]
//
// SIGINT/SIGTERM starts a graceful drain: new submissions get 503, running
// jobs get -drain-grace to finish, and interrupted jobs stay journaled —
// the next coordinator resumes them, serving already-finished seeds from
// the cache and re-dispatching only the remainder.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"greencell/internal/cluster"
	"greencell/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "greencell-coord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("greencell-coord", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8090", "listen address (use :0 for an ephemeral port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		fleet     = fs.String("fleet", "", "comma-separated greencelld worker base URLs")
		journal   = fs.String("journal", "greencell-coord.journal.jsonl", "coordinator journal path (empty disables crash recovery)")
		cacheDir  = fs.String("cache-dir", "", "content-addressed result cache directory (empty keeps results in memory)")
		cacheMax  = fs.Int64("cache-max-bytes", 0, "total result-cache blob bytes before LRU eviction (0 = uncapped)")
		queue     = fs.Int("queue-depth", 256, "max concurrently tracked non-terminal jobs before submissions get 503")
		lease     = fs.Duration("lease-timeout", 2*time.Minute, "per-cell lease deadline; expired leases re-dispatch")
		poll      = fs.Duration("poll-interval", 100*time.Millisecond, "dispatcher tick: lease polls and dispatch scans")
		hbEvery   = fs.Duration("heartbeat-interval", time.Second, "worker /readyz probe interval")
		hbTimeout = fs.Duration("heartbeat-timeout", time.Second, "worker /readyz probe timeout")
		brkN      = fs.Int("breaker-threshold", 3, "consecutive worker failures before eviction")
		brkCool   = fs.Duration("breaker-cooldown", 5*time.Second, "how long an evicted worker sits out before a half-open probe")
		attempts  = fs.Int("max-attempts", 4, "lease attempts per cell before it fails permanently")
		inflight  = fs.Int("per-worker-inflight", 2, "max leases simultaneously placed on one worker")
		rpcTries  = fs.Int("rpc-attempts", 4, "attempts per worker RPC (transient failures back off and retry)")
		rpcTO     = fs.Duration("rpc-timeout", 10*time.Second, "per-attempt timeout on each worker RPC")
		jitterSd  = fs.Int64("jitter-seed", 1, "seed for retry-backoff jitter (deterministic; decorrelates a fleet of clients)")
		grace     = fs.Duration("drain-grace", 30*time.Second, "how long a drain lets running jobs finish before interrupting them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var workers []string
	for _, u := range strings.Split(*fleet, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workers = append(workers, u)
		}
	}
	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "greencell-coord: warning: empty -fleet; jobs will only complete from cache")
	}

	// Listen before journal replay (same pattern as greencelld): probes get
	// an honest not-ready answer while recovery runs, then the real API is
	// swapped in atomically.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return errors.Join(fmt.Errorf("writing -addr-file: %w", err), ln.Close())
		}
	}
	fmt.Fprintf(os.Stderr, "greencell-coord: listening on %s (fleet %d workers, journal %q)\n", bound, len(workers), *journal)

	var handler atomic.Value // http.Handler
	handler.Store(bootstrapHandler())
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go serveHTTP(hs, ln, errCh)

	coord, err := cluster.New(cluster.Config{
		Workers:           workers,
		JournalPath:       *journal,
		CacheDir:          *cacheDir,
		CacheMaxBytes:     *cacheMax,
		QueueDepth:        *queue,
		LeaseTimeout:      *lease,
		PollInterval:      *poll,
		HeartbeatInterval: *hbEvery,
		HeartbeatTimeout:  *hbTimeout,
		BreakerThreshold:  *brkN,
		BreakerCooldown:   *brkCool,
		MaxAttempts:       *attempts,
		PerWorkerInflight: *inflight,
		RPC: &cluster.RetryPolicy{
			MaxAttempts:    *rpcTries,
			AttemptTimeout: *rpcTO,
			Rand:           rng.New(*jitterSd).Split("coord-rpc-jitter"),
		},
	})
	if err != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		return errors.Join(err, hs.Shutdown(sctx))
	}
	handler.Store(coord.Handler())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		if cerr := coord.Close(); cerr != nil {
			return fmt.Errorf("serve: %v; close: %w", err, cerr)
		}
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "greencell-coord: %v: draining (grace %s)\n", sig, *grace)
		dctx, dcancel := context.WithTimeout(context.Background(), *grace)
		defer dcancel()
		derr := coord.Drain(dctx)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if serr := hs.Shutdown(sctx); serr != nil && derr == nil {
			derr = serr
		}
		fmt.Fprintln(os.Stderr, "greencell-coord: drained")
		return derr
	}
}

// bootstrapHandler serves the pre-replay window: alive but not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		writeBody(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeBody(w, `{"status":"starting"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeBody(w, `{"error":"starting: journal replay in progress"}`)
	})
	return mux
}

// writeBody writes a one-line JSON body to a probe response. A failed write
// means the prober went away; there is nobody left to tell.
func writeBody(w io.Writer, line string) {
	//lint:allow droppederr -- a failed probe-response write means the client is gone
	io.WriteString(w, line+"\n")
}

// serveHTTP runs the HTTP server and reports its exit; a separate function
// so the accept loop's goroutine shares nothing mutable with main.
func serveHTTP(hs *http.Server, ln net.Listener, errCh chan<- error) {
	err := hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	errCh <- err
}
