package main

// The -submit client mode: instead of simulating locally, greencellsim
// encodes its explicitly-set scenario flags as a sim.ScenarioSpec, POSTs it
// to a running greencelld (or greencell-coord — the APIs are identical),
// polls the job to completion, and (with -metrics) downloads the streamed
// metrics. Determinism makes the two paths equivalent: a submitted job's
// stream is byte-identical to the local run's (the serve-smoke gate checks
// exactly this).
//
// Every API call runs under the shared cluster retry helper: transient
// failures — connection errors, 5xx, 429 — back off exponentially with
// jitter and honor Retry-After, so a daemon mid-restart or a briefly full
// queue costs a pause, not a failed run. -submit-timeout puts a context
// deadline over the whole exchange.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"greencell/internal/cluster"
	"greencell/internal/rng"
	"greencell/internal/server"
	"greencell/internal/sim"
)

// pollInterval paces job status polling; jobs run for seconds to minutes,
// so 100ms keeps the client responsive without hammering the daemon.
const pollInterval = 100 * time.Millisecond

// submitClient bundles the target URL with the shared retry policy.
type submitClient struct {
	base  string
	retry *cluster.RetryPolicy
}

func newSubmitClient(base string) *submitClient {
	return &submitClient{
		base: strings.TrimSuffix(base, "/"),
		// Jitter seeded per-process so a fleet of clients retrying the same
		// daemon decorrelates; the schedule, not the results, depends on it.
		retry: &cluster.RetryPolicy{
			AttemptTimeout: 30 * time.Second,
			Rand:           rng.New(int64(os.Getpid())).Split("submit-jitter"),
		},
	}
}

// submitJob drives one job end to end against the daemon at base.
func submitJob(base string, spec sim.ScenarioSpec, replications int, jsonOut bool, metricsOut string, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cl := newSubmitClient(base)

	body, err := json.Marshal(server.JobRequest{Spec: spec, Replications: replications})
	if err != nil {
		return err
	}
	var st server.JobStatus
	if err := cl.doJSON(ctx, http.MethodPost, cl.base+"/v1/jobs", body, http.StatusAccepted, &st); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "greencellsim: submitted %s (%d seed(s))\n", st.ID, len(st.Seeds))

	for !st.State.Terminal() {
		if err := sleepCtx(ctx, pollInterval); err != nil {
			return fmt.Errorf("poll %s: %w", st.ID, err)
		}
		if err := cl.doJSON(ctx, http.MethodGet, cl.base+"/v1/jobs/"+st.ID, nil, http.StatusOK, &st); err != nil {
			return fmt.Errorf("poll %s: %w", st.ID, err)
		}
	}

	if metricsOut != "" {
		if err := cl.fetchMetrics(ctx, st.ID, metricsOut); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			return err
		}
	} else {
		printJobText(st)
	}
	if st.State != server.JobDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// doJSON performs one API call under the retry policy, insisting on
// wantCode and decoding into out. Non-wantCode responses become
// cluster.HTTPError so only genuinely transient ones (5xx, 429) retry.
func (c *submitClient) doJSON(ctx context.Context, method, url string, body []byte, wantCode int, out any) error {
	return c.retry.Do(ctx, func(ctx context.Context) error {
		return cluster.DoJSON(ctx, http.DefaultClient, method, url, body, wantCode, out)
	}, func(err error) {
		fmt.Fprintf(os.Stderr, "greencellsim: transient %s failure, retrying: %v\n", method, err)
	})
}

// fetchMetrics downloads the job's full metrics stream into path. The GET
// itself is not wrapped in retries once bytes flow (a half-written file
// must not be mistaken for a stream); only connection establishment
// retries, via a HEAD-less immediate re-GET on transient failure.
func (c *submitClient) fetchMetrics(ctx context.Context, id, path string) error {
	var data []byte
	err := c.retry.Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/metrics", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return &cluster.HTTPError{Status: resp.StatusCode, Msg: fmt.Sprintf("GET metrics: %s", strings.TrimSpace(string(b)))}
		}
		data = b
		return nil
	}, func(err error) {
		fmt.Fprintf(os.Stderr, "greencellsim: transient metrics fetch failure, retrying: %v\n", err)
	})
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// printJobText renders the finished job the way a local run prints.
func printJobText(st server.JobStatus) {
	fmt.Printf("job:                 %s (%s)\n", st.ID, st.State)
	if st.Error != "" {
		fmt.Printf("error:               %s\n", st.Error)
	}
	if st.Result == nil {
		return
	}
	if s := st.Result.Summary; s != nil {
		fmt.Printf("seeds:               %d ok, %d failed\n", len(st.Result.Seeds), len(st.Result.FailedSeeds))
		fmt.Printf("avg energy cost:     %.4g ± %.4g  (mean ± std over seeds)\n", s.AvgEnergyCost.Mean, s.AvgEnergyCost.Std)
		fmt.Printf("avg penalty obj:     %.4g ± %.4g\n", s.AvgPenaltyObjective.Mean, s.AvgPenaltyObjective.Std)
		fmt.Printf("avg grid draw:       %.4g Wh/slot\n", s.AvgGridWh.Mean)
		fmt.Printf("admitted packets:    %.0f\n", s.AdmittedPkts.Mean)
		fmt.Printf("delivered packets:   %.0f\n", s.DeliveredPkts.Mean)
		fmt.Printf("final backlog:       %.1f pkts\n", s.FinalDataBacklog.Mean)
		fmt.Printf("final battery:       %.1f Wh\n", s.FinalBatteryWh.Mean)
	}
	for _, seed := range st.Result.FailedSeeds {
		fmt.Printf("failed seed:         %d\n", seed)
	}
}
