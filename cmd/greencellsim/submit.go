package main

// The -submit client mode: instead of simulating locally, greencellsim
// encodes its explicitly-set scenario flags as a sim.ScenarioSpec, POSTs it
// to a running greencelld, polls the job to completion, and (with -metrics)
// downloads the streamed metrics. Determinism makes the two paths
// equivalent: a submitted job's stream is byte-identical to the local run's
// (the serve-smoke gate checks exactly this).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"greencell/internal/server"
	"greencell/internal/sim"
)

// pollInterval paces job status polling; jobs run for seconds to minutes,
// so 100ms keeps the client responsive without hammering the daemon.
const pollInterval = 100 * time.Millisecond

// submitJob drives one job end to end against the daemon at base.
func submitJob(base string, spec sim.ScenarioSpec, replications int, jsonOut bool, metricsOut string) error {
	base = strings.TrimSuffix(base, "/")
	body, err := json.Marshal(server.JobRequest{Spec: spec, Replications: replications})
	if err != nil {
		return err
	}
	var st server.JobStatus
	if err := doJSON(http.MethodPost, base+"/v1/jobs", body, http.StatusAccepted, &st); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "greencellsim: submitted %s (%d seed(s))\n", st.ID, len(st.Seeds))

	for !st.State.Terminal() {
		time.Sleep(pollInterval)
		if err := doJSON(http.MethodGet, base+"/v1/jobs/"+st.ID, nil, http.StatusOK, &st); err != nil {
			return fmt.Errorf("poll %s: %w", st.ID, err)
		}
	}

	if metricsOut != "" {
		if err := fetchMetrics(base, st.ID, metricsOut); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			return err
		}
	} else {
		printJobText(st)
	}
	if st.State != server.JobDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// doJSON performs one API call, insisting on wantCode and decoding into out.
func doJSON(method, url string, body []byte, wantCode int, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantCode {
		return fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, out)
}

// fetchMetrics downloads the job's full metrics stream into path.
func fetchMetrics(base, id, path string) (err error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET metrics: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	_, err = io.Copy(f, resp.Body)
	return err
}

// printJobText renders the finished job the way a local run prints.
func printJobText(st server.JobStatus) {
	fmt.Printf("job:                 %s (%s)\n", st.ID, st.State)
	if st.Error != "" {
		fmt.Printf("error:               %s\n", st.Error)
	}
	if st.Result == nil {
		return
	}
	if s := st.Result.Summary; s != nil {
		fmt.Printf("seeds:               %d ok, %d failed\n", len(st.Result.Seeds), len(st.Result.FailedSeeds))
		fmt.Printf("avg energy cost:     %.4g ± %.4g  (mean ± std over seeds)\n", s.AvgEnergyCost.Mean, s.AvgEnergyCost.Std)
		fmt.Printf("avg penalty obj:     %.4g ± %.4g\n", s.AvgPenaltyObjective.Mean, s.AvgPenaltyObjective.Std)
		fmt.Printf("avg grid draw:       %.4g Wh/slot\n", s.AvgGridWh.Mean)
		fmt.Printf("admitted packets:    %.0f\n", s.AdmittedPkts.Mean)
		fmt.Printf("delivered packets:   %.0f\n", s.DeliveredPkts.Mean)
		fmt.Printf("final backlog:       %.1f pkts\n", s.FinalDataBacklog.Mean)
		fmt.Printf("final battery:       %.1f Wh\n", s.FinalBatteryWh.Mean)
	}
	for _, seed := range st.Result.FailedSeeds {
		fmt.Printf("failed seed:         %d\n", seed)
	}
}
