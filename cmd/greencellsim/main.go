// Command greencellsim runs one simulation of the green multi-hop cellular
// network and prints its headline metrics.
//
// Usage:
//
//	greencellsim [flags]
//
// Flags select the drift weight V, the horizon, the architecture, and the
// S1 scheduler. The defaults reproduce the paper's Section VI setup.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"greencell/internal/core"
	"greencell/internal/export"
	"greencell/internal/faultinject"
	"greencell/internal/metrics"
	"greencell/internal/queueing"
	"greencell/internal/sched"
	"greencell/internal/sim"
	"greencell/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "greencellsim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("greencellsim", flag.ContinueOnError)
	var (
		v          = fs.Float64("v", 1e5, "drift-plus-penalty weight V")
		lambda     = fs.Float64("lambda", 0.0006, "admission reward λ")
		slots      = fs.Int("slots", 100, "number of time slots T")
		seed       = fs.Int64("seed", 1, "scenario seed")
		users      = fs.Int("users", 20, "number of mobile users")
		sessions   = fs.Int("sessions", 4, "number of downlink sessions")
		neighbors  = fs.Int("neighbors", 6, "candidate out-links per node (0 = unlimited)")
		arch       = fs.String("arch", "proposed", "architecture: proposed | multihop-nr | onehop-r | onehop-nr")
		preset     = fs.String("preset", "paper", "scenario preset: paper | urban | rural")
		uplink     = fs.Int("uplink", 0, "additional uplink (user→BS anycast) sessions")
		scheduler  = fs.String("scheduler", "sf", "S1 solver: sf | greedy | exact | relaxed")
		bounds     = fs.Bool("bounds", false, "also run the relaxed controller and print the Theorem 4/5 bounds")
		jsonOut    = fs.Bool("json", false, "emit the result as JSON instead of text")
		dotOut     = fs.Bool("dot", false, "emit the topology as Graphviz DOT and exit")
		traceOut   = fs.String("trace", "", "write per-slot JSON-Lines trace records to this file")
		metricsOut = fs.String("metrics", "", "write the per-slot metrics stream (JSON Lines, docs/METRICS.md) to this file")
		metricsCSV = fs.String("metrics-csv", "", "also write the metrics stream as CSV to this file (requires -metrics)")
		metricsGap = fs.Bool("metrics-gap", false, "record the S1 heuristic-vs-LP-relaxation optimality gap each slot (roughly doubles S1 work)")
		faults     = fs.Float64("faults", 0, "fault-injection probability per site per slot (deterministic by seed; docs/ROBUSTNESS.md)")
		warmStart  = fs.Bool("warmstart", false, "carry LP warm-start state across slots (docs/PERFORMANCE.md)")
		budgetIter = fs.Int("budget-iters", 0, "max simplex iterations per LP solve (0 = unlimited)")
		deadline   = fs.Duration("deadline", 0, "per-slot wall-clock solve deadline (0 = none; overruns degrade, not fail)")
		check      = fs.Bool("check", false, "validate every slot against the paper's per-slot invariants (eqs. (9)-(14), (22), (25), (30))")
		submitURL  = fs.String("submit", "", "submit as a job to a running greencelld at this base URL (e.g. http://127.0.0.1:8080) instead of simulating locally")
		replicate  = fs.Int("replications", 0, "with -submit: replicate over this many consecutive seeds starting at -seed")
		submitTO   = fs.Duration("submit-timeout", 0, "with -submit: overall deadline for the submit/poll/fetch exchange (0 = none)")
		dist       = fs.Bool("dist", false, "run the distributed message-passing controller over a simulated network (docs/DISTRIBUTED.md)")
		netLoss    = fs.Float64("net-loss", 0, "with -dist: control-message loss probability in [0,1]")
		netLat     = fs.Float64("net-latency", 0, "with -dist: control-message delay probability in [0,1]")
		netLatMax  = fs.Int("net-latency-max", 0, "with -dist: max extra delay ticks of a delayed message (<1 reads as 1)")
		netDup     = fs.Float64("net-dup", 0, "with -dist: control-message duplication probability in [0,1]")
		netReorder = fs.Int("net-reorder", 0, "with -dist: within-tick delivery reorder window")
		netPart    = fs.String("net-partition", "", "with -dist: comma-separated node IDs held offline for the whole run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *submitURL != "" {
		// Only explicitly-set flags enter the spec, so daemon-side preset
		// defaults apply to everything the caller did not say — a plain
		// `-preset paper -submit URL` job matches `sim.Paper()` exactly
		// (local flag defaults like -neighbors=6 are NOT implied).
		spec := sim.ScenarioSpec{}
		var flagErr error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "v":
				spec.V = *v
			case "lambda":
				spec.Lambda = *lambda
			case "slots":
				spec.Slots = *slots
			case "seed":
				spec.Seed = *seed
			case "users":
				spec.Users = *users
			case "sessions":
				spec.Sessions = *sessions
			case "uplink":
				spec.UplinkSessions = *uplink
			case "neighbors":
				n := *neighbors
				spec.Neighbors = &n
			case "arch":
				spec.Architecture = *arch
			case "preset":
				spec.Preset = *preset
			case "scheduler":
				spec.Scheduler = *scheduler
			case "faults":
				spec.FaultProb = *faults
			case "budget-iters":
				spec.BudgetIters = *budgetIter
			case "deadline":
				spec.SlotDeadlineMS = deadline.Milliseconds()
			case "check":
				spec.CheckInvariants = *check
			case "warmstart":
				spec.WarmStartLP = *warmStart
			case "dist":
				spec.Dist = *dist
			case "net-loss":
				spec.NetLoss = *netLoss
			case "net-latency":
				spec.NetLatency = *netLat
			case "net-latency-max":
				spec.NetLatencyMax = *netLatMax
			case "net-dup":
				spec.NetDup = *netDup
			case "net-reorder":
				spec.NetReorder = *netReorder
			case "net-partition":
				ids, perr := parseNodeList(*netPart)
				if perr != nil {
					flagErr = errors.Join(flagErr, perr)
					return
				}
				spec.NetPartition = ids
			case "submit", "replications", "json", "metrics", "submit-timeout":
				// Client-side flags, handled below.
			default:
				flagErr = errors.Join(flagErr, fmt.Errorf("-%s is not supported with -submit", f.Name))
			}
		})
		if flagErr != nil {
			return flagErr
		}
		return submitJob(*submitURL, spec, *replicate, *jsonOut, *metricsOut, *submitTO)
	}

	var sc sim.Scenario
	switch *preset {
	case "paper":
		sc = sim.Paper()
	case "urban":
		sc = sim.Urban()
	case "rural":
		sc = sim.Rural()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	sc.UplinkSessions = *uplink
	sc.V = *v
	sc.Lambda = *lambda
	sc.Slots = *slots
	sc.Seed = *seed
	sc.NumSessions = *sessions
	sc.Topology.NumUsers = *users
	sc.Topology.MaxNeighbors = *neighbors
	sc.CheckInvariants = sc.CheckInvariants || *check
	sc.WarmStartLP = sc.WarmStartLP || *warmStart
	sc.Budget = core.SolveBudget{MaxLPIterations: *budgetIter, SlotDeadline: *deadline}
	if *faults > 0 {
		cfg := faultinject.Uniform(*faults)
		sc.Faults = &cfg
	} else if *faults < 0 {
		return fmt.Errorf("-faults must be in [0,1], got %g", *faults)
	}
	sc.Dist = *dist
	sc.NetLoss = *netLoss
	sc.NetLatency = *netLat
	sc.NetLatencyMax = *netLatMax
	sc.NetDup = *netDup
	sc.NetReorder = *netReorder
	if *netPart != "" {
		ids, perr := parseNodeList(*netPart)
		if perr != nil {
			return perr
		}
		sc.NetPartition = ids
	}
	if !*dist && (sc.NetLoss != 0 || sc.NetLatency != 0 || sc.NetLatencyMax != 0 ||
		sc.NetDup != 0 || sc.NetReorder != 0 || sc.NetPartition != nil) {
		return fmt.Errorf("-net-* flags require -dist")
	}

	switch *arch {
	case "proposed":
		sc.Architecture = sim.Proposed
	case "multihop-nr":
		sc.Architecture = sim.MultiHopNoRenewable
	case "onehop-r":
		sc.Architecture = sim.OneHopRenewable
	case "onehop-nr":
		sc.Architecture = sim.OneHopNoRenewable
	default:
		return fmt.Errorf("unknown architecture %q", *arch)
	}
	switch *scheduler {
	case "sf":
		sc.Scheduler = sched.SequentialFix{}
	case "greedy":
		sc.Scheduler = sched.Greedy{}
	case "exact":
		sc.Scheduler = sched.Exact{}
	case "relaxed":
		sc.Scheduler = sched.Relaxed{}
	default:
		return fmt.Errorf("unknown scheduler %q", *scheduler)
	}

	if *dotOut {
		_, net, _, err := sim.Build(sc)
		if err != nil {
			return err
		}
		return export.TopologyDOT(os.Stdout, net)
	}

	var traceErr error
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			return ferr
		}
		tw := trace.NewWriter(f)
		// Close flushes the buffered trace; its error carries the final
		// write and must reach the caller.
		defer func() { err = errors.Join(err, tw.Close(), f.Close()) }()
		sc.SlotHook = func(sr *core.SlotResult) {
			// A write failure must not kill the run mid-slot; keep the
			// first one and report it after the horizon completes.
			if werr := tw.Write(trace.FromSlot(sr)); werr != nil && traceErr == nil {
				traceErr = werr
			}
		}
	}

	var rec *sim.Recorder
	var detach func()
	if *metricsOut != "" {
		f, ferr := os.Create(*metricsOut)
		if ferr != nil {
			return ferr
		}
		defer func() { err = errors.Join(err, f.Close()) }()
		var mw metrics.RecordWriter = metrics.NewJSONLWriter(f)
		if *metricsCSV != "" {
			cf, cerr := os.Create(*metricsCSV)
			if cerr != nil {
				return cerr
			}
			defer func() { err = errors.Join(err, cf.Close()) }()
			mw = metrics.MultiWriter{mw, metrics.NewCSVWriter(cf)}
		}
		rec = sim.NewRecorder(mw, sim.HeaderFor(sc, *preset))
		origSched, origHook := sc.Scheduler, sc.SlotHook
		rec.Attach(&sc, *metricsGap)
		detach = func() { sc.Scheduler, sc.SlotHook = origSched, origHook }
	} else if *metricsCSV != "" || *metricsGap {
		return fmt.Errorf("-metrics-csv and -metrics-gap require -metrics")
	}

	res, err := sim.Run(sc)
	if err != nil {
		return err
	}
	if traceErr != nil {
		return fmt.Errorf("trace: %w", traceErr)
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		// The later -bounds runs must not feed the closed stream.
		detach()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Architecture string
			V, Lambda    float64
			Slots        int
			Seed         int64
			*sim.Result
		}{sc.Architecture.String(), sc.V, sc.Lambda, sc.Slots, sc.Seed, res})
	}

	fmt.Printf("architecture:        %v\n", sc.Architecture)
	fmt.Printf("V:                   %g   lambda: %g   slots: %d   seed: %d\n", sc.V, sc.Lambda, sc.Slots, sc.Seed)
	fmt.Printf("avg energy cost:     %.4g  (f(P) per slot)\n", res.AvgEnergyCost)
	fmt.Printf("avg penalty obj:     %.4g  (f(P) − λ·Σk per slot)\n", res.AvgPenaltyObjective)
	fmt.Printf("avg grid draw:       %.4g Wh/slot\n", res.AvgGridWh)
	fmt.Printf("admitted packets:    %.0f\n", res.AdmittedPkts)
	fmt.Printf("delivered packets:   %.0f\n", res.DeliveredPkts)
	fmt.Printf("energy deficit:      %.4g Wh\n", res.DeficitWh)
	fmt.Printf("final backlog (BS):  %.1f pkts   (users): %.1f pkts\n",
		res.FinalDataBacklogBS, res.FinalDataBacklogUsers)
	fmt.Printf("final battery (BS):  %.1f Wh     (users): %.1f Wh\n",
		res.FinalBatteryWhBS, res.FinalBatteryWhUsers)
	if res.DegradedSlots > 0 {
		fmt.Printf("degraded slots:      %d/%d (max streak %d): %s\n",
			res.DegradedSlots, sc.Slots, res.MaxDegradedStreak, causeBreakdown(res.DegradedByCause))
	}
	if res.Net != nil {
		n := res.Net
		fmt.Printf("network:             %d msgs (%d dropped, %d delayed, %d duped, %d late), %d data transfers\n",
			n.MsgsSent, n.MsgsDropped, n.MsgsDelayed, n.MsgsDuped, n.MsgsLate, n.DataMsgs)
		fmt.Printf("coordination:        %d stale views over %d slots, %d missed commands, %d node clamps\n",
			n.StaleViews, n.StaleSlots, n.MissedCmds, n.NodeClamps)
		fmt.Printf("ground truth:        %.0f pkts delivered, %.4g Wh deficit (coordinator saw %.0f pkts, %.4g Wh)\n",
			n.TrueDeliveredPkts, n.TrueDeficitWh.Wh(), res.DeliveredPkts, res.DeficitWh)
	}
	if res.DataBacklogBSTrace != nil {
		tail := len(res.DataBacklogBSTrace) / 2
		fmt.Printf("backlog tail slope:  BS %.3f pkts/slot, users %.3f pkts/slot\n",
			queueing.Slope(res.DataBacklogBSTrace[tail:]),
			queueing.Slope(res.DataBacklogUsersTrace[tail:]))
	}

	if *bounds {
		b, err := sim.BoundsAt(sc, sc.V)
		if err != nil {
			return err
		}
		fmt.Printf("theorem 4/5 bounds:  lower %.6g <= psi*_P1 <= upper %.6g (B=%.4g, B/V=%.4g)\n",
			b.Lower, b.Upper, res.B, res.B/sc.V)
	}
	return nil
}

// parseNodeList parses the -net-partition value: comma-separated
// non-negative node IDs.
func parseNodeList(s string) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("-net-partition: %q is not a non-negative node ID", part)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// causeBreakdown renders a cause→count map in deterministic (sorted)
// order, e.g. "s1_iterlimit=3 s4_infeasible=1".
func causeBreakdown(byCause map[string]int) string {
	causes := make([]string, 0, len(byCause))
	for c := range byCause {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	parts := make([]string, len(causes))
	for i, c := range causes {
		parts[i] = fmt.Sprintf("%s=%d", c, byCause[c])
	}
	return strings.Join(parts, " ")
}
