// Command figures regenerates every panel of the paper's Figure 2 at paper
// scale and writes the series as TSV files (one per panel) plus a summary
// to stdout.
//
// Usage:
//
//	figures [-out DIR] [-slots N] [-seed N] [-quick]
//
// Outputs:
//
//	fig2a.tsv  V, upper bound, lower bound        (bound sandwich vs V)
//	fig2b.tsv  t, backlog per V                   (BS data queues)
//	fig2c.tsv  t, backlog per V                   (user data queues)
//	fig2d.tsv  t, buffer per V                    (BS batteries, Wh)
//	fig2e.tsv  t, buffer per V                    (user batteries, Wh)
//	fig2f.tsv  architecture, V, time-avg cost     (4-way comparison)
//
// Each panel is also rendered as an SVG chart (fig2a.svg, ...) unless
// -svg=false.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"greencell"
	"greencell/internal/export"
	"greencell/internal/plot"
	"greencell/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		outDir = fs.String("out", "out", "output directory for the TSV files")
		slots  = fs.Int("slots", 100, "slots per run (paper: 100 one-minute slots)")
		seed   = fs.Int64("seed", 1, "scenario seed")
		quick  = fs.Bool("quick", false, "shrink the sweeps for a fast smoke run")
		reps   = fs.Int("replications", 1, "independent seeds per point; >1 adds mean and 95% CI columns to fig2a")
		svg    = fs.Bool("svg", true, "also render each panel as an SVG chart")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	sc := greencell.PaperScenario()
	sc.Slots = *slots
	sc.Seed = *seed

	vsBounds := []float64{1e5, 2e5, 3e5, 4e5, 5e5, 6e5, 7e5, 8e5, 9e5, 1e6}
	vsTraces := []float64{1e5, 2e5, 3e5, 4e5, 5e5}
	vsArch := []float64{1e5, 3e5, 5e5}
	if *quick {
		vsBounds = []float64{1e5, 5e5, 1e6}
		vsTraces = []float64{1e5, 5e5}
		vsArch = []float64{1e5}
	}

	if *reps > 1 {
		if err := fig2aReplicated(sc, vsBounds, *outDir, *reps); err != nil {
			return fmt.Errorf("fig2a: %w", err)
		}
	} else if err := fig2a(sc, vsBounds, *outDir, *svg); err != nil {
		return fmt.Errorf("fig2a: %w", err)
	}
	if err := fig2bcde(sc, vsTraces, *outDir, *svg); err != nil {
		return fmt.Errorf("fig2b-e: %w", err)
	}
	if err := fig2f(sc, vsArch, *outDir, *svg); err != nil {
		return fmt.Errorf("fig2f: %w", err)
	}
	if err := figTradeoff(sc, vsTraces, *outDir, *svg); err != nil {
		return fmt.Errorf("figx: %w", err)
	}
	return nil
}

// figTradeoff is an extension panel with no paper counterpart: the exact
// (FIFO-tracked) mean packet delay versus V, the delay side of the
// Lyapunov [O(1/V), O(V)] tradeoff.
func figTradeoff(sc greencell.Scenario, vs []float64, dir string, svg bool) error {
	rows := make([][]float64, 0, len(vs))
	sr := plot.Series{Name: "mean delay"}
	for _, v := range vs {
		s := sc
		s.V = v
		s.KeepTraces = false
		s.TrackDelay = true
		res, err := greencell.Run(s)
		if err != nil {
			return fmt.Errorf("V=%g: %w", v, err)
		}
		rows = append(rows, []float64{v, res.ExactDelayMeanSlots, res.ExactDelayP95Slots})
		sr.X = append(sr.X, v)
		sr.Y = append(sr.Y, res.ExactDelayMeanSlots)
		fmt.Printf("figx   V=%.0e  delay mean=%.1f p95=%.0f slots\n",
			v, res.ExactDelayMeanSlots, res.ExactDelayP95Slots)
	}
	if err := writeTSV(dir, "figx-delay.tsv", []string{"V", "delay_mean", "delay_p95"}, rows); err != nil {
		return err
	}
	if !svg {
		return nil
	}
	c := &plot.Chart{
		Title:  "Extension: exact packet delay vs V (O(V) tradeoff side)",
		XLabel: "V",
		YLabel: "delivery delay (slots)",
		Series: []plot.Series{sr},
	}
	return writeSVG(dir, "figx-delay.svg", func(f *os.File) error { return c.LineSVG(f) })
}

// writeSVG renders a chart to dir/name via render (LineSVG or a closure).
func writeSVG(dir, name string, render func(w *os.File) error) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func writeTSV(dir, name string, header []string, rows [][]float64) error {
	path := filepath.Join(dir, name)
	if err := export.WriteTSVFile(path, header, rows); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

// fig2a: upper and lower bounds on the optimal cost vs V.
func fig2a(sc greencell.Scenario, vs []float64, dir string, svg bool) error {
	bounds, err := greencell.SweepV(sc, vs)
	if err != nil {
		return err
	}
	rows := make([][]float64, 0, len(bounds))
	upper := plot.Series{Name: "upper bound"}
	lower := plot.Series{Name: "lower bound"}
	for _, b := range bounds {
		rows = append(rows, []float64{b.V, b.Upper, b.Lower})
		upper.X = append(upper.X, b.V)
		upper.Y = append(upper.Y, b.Upper)
		lower.X = append(lower.X, b.V)
		lower.Y = append(lower.Y, b.Lower)
		fmt.Printf("fig2a  V=%.0e  lower=%.6g  upper=%.6g  gap=%.3g\n",
			b.V, b.Lower, b.Upper, b.Upper-b.Lower)
	}
	if err := writeTSV(dir, "fig2a.tsv", []string{"V", "upper", "lower"}, rows); err != nil {
		return err
	}
	if !svg {
		return nil
	}
	c := &plot.Chart{
		Title:  "Fig 2(a): Theorem 4/5 bounds on the optimal energy cost",
		XLabel: "V",
		YLabel: "time-averaged penalty objective",
		Series: []plot.Series{upper, lower},
	}
	return writeSVG(dir, "fig2a.svg", func(f *os.File) error { return c.LineSVG(f) })
}

// fig2aReplicated: the bound sandwich averaged over independent seeds,
// with 95% confidence intervals — the rigorous version of the paper's
// "expected" cost.
func fig2aReplicated(sc greencell.Scenario, vs []float64, dir string, reps int) error {
	seeds := sim.Seeds(sc.Seed, reps)
	rows := make([][]float64, 0, len(vs))
	for _, v := range vs {
		rb, err := sim.BoundsReplicated(sc, v, seeds)
		if err != nil {
			return err
		}
		upLo, upHi := rb.Upper.CI95()
		loLo, loHi := rb.Lower.CI95()
		rows = append(rows, []float64{v, rb.Upper.Mean, upLo, upHi, rb.Lower.Mean, loLo, loHi})
		fmt.Printf("fig2a  V=%.0e  lower=%s  upper=%s\n", v, rb.Lower, rb.Upper)
	}
	return writeTSV(dir, "fig2a.tsv",
		[]string{"V", "upper_mean", "upper_ci_lo", "upper_ci_hi", "lower_mean", "lower_ci_lo", "lower_ci_hi"}, rows)
}

// fig2bcde: the four time-series panels, one run per V.
func fig2bcde(sc greencell.Scenario, vs []float64, dir string, svg bool) error {
	type traces struct {
		qbs, qu, bbs, bu []float64
	}
	perV := make([]traces, len(vs))
	for i, v := range vs {
		s := sc
		s.V = v
		s.KeepTraces = true
		res, err := greencell.Run(s)
		if err != nil {
			return fmt.Errorf("V=%g: %w", v, err)
		}
		perV[i] = traces{
			qbs: res.DataBacklogBSTrace,
			qu:  res.DataBacklogUsersTrace,
			bbs: res.BatteryWhBSTrace,
			bu:  res.BatteryWhUsersTrace,
		}
		fmt.Printf("fig2b-e V=%.0e  final: Qbs=%.0f Qu=%.0f  Bbs=%.1fWh Bu=%.1fWh\n",
			v, res.FinalDataBacklogBS, res.FinalDataBacklogUsers,
			res.FinalBatteryWhBS, res.FinalBatteryWhUsers)
	}

	header := []string{"t"}
	for _, v := range vs {
		header = append(header, fmt.Sprintf("V=%.0e", v))
	}
	emit := func(name, title, ylabel string, pick func(traces) []float64) error {
		rows := make([][]float64, sc.Slots)
		for t := 0; t < sc.Slots; t++ {
			row := []float64{float64(t + 1)}
			for i := range vs {
				row = append(row, pick(perV[i])[t])
			}
			rows[t] = row
		}
		if err := writeTSV(dir, name+".tsv", header, rows); err != nil {
			return err
		}
		if !svg {
			return nil
		}
		c := &plot.Chart{Title: title, XLabel: "time (minutes)", YLabel: ylabel}
		xs := make([]float64, sc.Slots)
		for t := range xs {
			xs[t] = float64(t + 1)
		}
		for i, v := range vs {
			c.Series = append(c.Series, plot.Series{
				Name: fmt.Sprintf("V=%.0e", v),
				X:    xs,
				Y:    pick(perV[i]),
			})
		}
		return writeSVG(dir, name+".svg", func(f *os.File) error { return c.LineSVG(f) })
	}
	if err := emit("fig2b", "Fig 2(b): total BS data queue backlog", "packets",
		func(tr traces) []float64 { return tr.qbs }); err != nil {
		return err
	}
	if err := emit("fig2c", "Fig 2(c): total user data queue backlog", "packets",
		func(tr traces) []float64 { return tr.qu }); err != nil {
		return err
	}
	if err := emit("fig2d", "Fig 2(d): total BS energy buffer", "Wh",
		func(tr traces) []float64 { return tr.bbs }); err != nil {
		return err
	}
	return emit("fig2e", "Fig 2(e): total user energy buffer", "Wh",
		func(tr traces) []float64 { return tr.bu })
}

// fig2f: the four-architecture cost comparison.
func fig2f(sc greencell.Scenario, vs []float64, dir string, svg bool) error {
	costs, err := greencell.CompareArchitectures(sc, vs)
	if err != nil {
		return err
	}
	rows := make([][]float64, 0, len(costs))
	byArch := map[greencell.Architecture]map[float64]float64{}
	for _, c := range costs {
		rows = append(rows, []float64{float64(c.Architecture), c.V, c.AvgCost.Value()})
		if byArch[c.Architecture] == nil {
			byArch[c.Architecture] = map[float64]float64{}
		}
		byArch[c.Architecture][c.V] = c.AvgCost.Value()
		fmt.Printf("fig2f  %-28v V=%.0e  avg cost=%.6g\n", c.Architecture, c.V, c.AvgCost)
	}
	if err := writeTSV(dir, "fig2f.tsv", []string{"architecture", "V", "avg_cost"}, rows); err != nil {
		return err
	}
	if !svg {
		return nil
	}
	chart := &plot.Chart{
		Title:  "Fig 2(f): time-averaged energy cost by architecture",
		YLabel: "time-averaged f(P)",
	}
	order := []greencell.Architecture{
		greencell.Proposed, greencell.OneHopRenewable,
		greencell.MultiHopNoRenewable, greencell.OneHopNoRenewable,
	}
	labels := make([]string, len(vs))
	for i, v := range vs {
		labels[i] = fmt.Sprintf("V=%.0e", v)
	}
	for _, a := range order {
		sr := plot.Series{Name: a.String()}
		for _, v := range vs {
			sr.Y = append(sr.Y, byArch[a][v])
		}
		chart.Series = append(chart.Series, sr)
	}
	return writeSVG(dir, "fig2f.svg", func(f *os.File) error { return chart.BarSVG(f, labels) })
}
