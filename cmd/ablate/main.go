// Command ablate runs the ablation studies behind the design choices
// documented in DESIGN.md:
//
//	scheduler  — the paper's sequential-fix heuristic against the greedy
//	             heuristic, exact branch-and-bound, and the LP relaxation:
//	             solution quality and wall time on per-slot instances.
//	gate       — the energy gate on/off: unserved-energy deficits.
//	tradeoff   — the Lyapunov [O(1/V) cost, O(V) delay] tradeoff curve.
//	storage    — battery conversion losses: cost as efficiency drops.
//	diurnal    — i.i.d. uniform vs diurnal (day-cycle) renewables.
//	energyaware — the extension scheduler that discounts link weights by
//	             required transmit power: cost and throughput vs κ.
//	capacity   — offered-load scaling: how many sessions the network
//	             sustains before delivery falls behind admission.
//	shadowing  — log-normal shadowing severity vs cost and delivery.
//	hotspot    — uniform vs clustered user placement.
//	horizon    — steady state: metrics as the horizon grows past the
//	             paper's 100 slots.
//	dp         — the Dynamic-Programming baseline the paper dismisses:
//	             true MDP optimum vs the Lyapunov policy on a quantized
//	             single-BS model, and the state-space blowup.
//	radios     — multi-radio base stations (extension of constraint (22)).
//	uplink     — mixed uplink/downlink traffic (anycast uplink extension).
//	dist       — the distributed message-passing controller vs the
//	             monolith across control-plane loss rates: how far cost,
//	             delivery, and staleness degrade as the coordinator's
//	             view drifts (docs/DISTRIBUTED.md).
//
// Usage:
//
//	ablate [-study all|scheduler|gate|tradeoff|storage|diurnal|energyaware] [-slots N]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"greencell"
	"greencell/internal/energy"
	"greencell/internal/geom"
	"greencell/internal/mdp"
	"greencell/internal/rng"
	"greencell/internal/sched"
	"greencell/internal/topology"
	"greencell/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	var (
		study = fs.String("study", "all", "which study to run")
		slots = fs.Int("slots", 100, "slots per simulation run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	studies := map[string]func(int) error{
		"scheduler":   schedulerStudy,
		"gate":        gateStudy,
		"tradeoff":    tradeoffStudy,
		"storage":     storageStudy,
		"diurnal":     diurnalStudy,
		"energyaware": energyAwareStudy,
		"capacity":    capacityStudy,
		"shadowing":   shadowingStudy,
		"hotspot":     hotspotStudy,
		"horizon":     horizonStudy,
		"dp":          dpStudy,
		"radios":      radiosStudy,
		"uplink":      uplinkStudy,
		"dist":        distStudy,
	}
	if *study != "all" {
		f, ok := studies[*study]
		if !ok {
			return fmt.Errorf("unknown study %q", *study)
		}
		return f(*slots)
	}
	for _, name := range []string{"scheduler", "gate", "tradeoff", "storage", "diurnal", "energyaware", "capacity", "shadowing", "hotspot", "horizon", "dp", "radios", "uplink", "dist"} {
		if err := studies[name](*slots); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

// schedulerStudy compares the S1 solvers on random per-slot instances small
// enough for exact branch-and-bound.
func schedulerStudy(int) error {
	fmt.Println("== scheduler ablation: S1 solution quality and time vs exact optimum")
	src := rng.New(2024)
	cfg := topology.Paper()
	cfg.NumUsers = 6
	cfg.MaxNeighbors = 3

	solvers := []struct {
		name string
		s    sched.Scheduler
	}{
		{"sequential-fix", sched.SequentialFix{}},
		{"greedy", sched.Greedy{}},
		{"exact-bnb", sched.Exact{}},
	}
	quality := map[string]float64{}
	elapsed := map[string]time.Duration{}
	const trials = 20
	var optSum float64
	for trial := 0; trial < trials; trial++ {
		net, err := topology.Build(cfg, src.Split(fmt.Sprintf("net%d", trial)))
		if err != nil {
			return err
		}
		weights := make([]float64, len(net.Links))
		for l := range weights {
			if src.Bernoulli(0.5) {
				weights[l] = src.Uniform(1, 100)
			}
		}
		req := &sched.Request{
			Net:     net,
			Widths:  units.HzSlice(net.Spectrum.SampleWidths(src.Split(fmt.Sprintf("w%d", trial)))),
			Weights: weights,
		}
		var opt float64
		for _, sv := range solvers {
			//lint:allow wallclock -- solver wall-time study; timings are printed, never part of a seeded artifact
			start := time.Now()
			asg, err := sv.s.Schedule(req)
			if err != nil {
				return fmt.Errorf("%s: %w", sv.name, err)
			}
			elapsed[sv.name] += time.Since(start)
			obj := asg.Objective(weights)
			quality[sv.name] += obj
			if sv.name == "exact-bnb" {
				opt = obj
			}
		}
		optSum += opt
	}
	fmt.Printf("%-16s %12s %14s\n", "solver", "quality", "time/instance")
	for _, sv := range solvers {
		ratio := 1.0
		if optSum > 0 {
			ratio = quality[sv.name] / optSum
		}
		fmt.Printf("%-16s %11.1f%% %14v\n", sv.name, 100*ratio, elapsed[sv.name]/trials)
	}
	return nil
}

// gateStudy measures how the energy gate keeps S4 deficits out.
func gateStudy(slots int) error {
	fmt.Println("== energy gate ablation: unserved energy with/without scheduling gate")
	for _, gate := range []bool{true, false} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.EnergyGate = gate
		sc.KeepTraces = false
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("gate=%-5v  deficit=%8.4g Wh  cost=%.6g  delivered=%.0f\n",
			gate, res.DeficitWh, res.AvgEnergyCost, res.DeliveredPkts)
	}
	return nil
}

// tradeoffStudy traces the classic Lyapunov cost-delay tradeoff: cost falls
// like O(1/V) while queues (and hence delay) grow like O(V). Both the
// Little's-law estimate and the exact FIFO-tracked delay are reported; the
// estimate runs high because it also counts packets still in flight.
func tradeoffStudy(slots int) error {
	fmt.Println("== cost-delay tradeoff: penalty objective and delays vs V")
	fmt.Printf("%10s %14s %12s %12s %12s\n",
		"V", "penalty obj", "delay(est)", "delay(exact)", "max delay")
	for _, v := range []float64{5e4, 1e5, 2e5, 5e5, 1e6} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.V = v
		sc.KeepTraces = false
		sc.TrackDelay = true
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("%10.0e %14.6g %12.2f %12.2f %12.0f\n",
			v, res.AvgPenaltyObjective, res.AvgDelayEstSlots,
			res.ExactDelayMeanSlots, res.ExactDelayMaxSlots)
	}
	return nil
}

// storageStudy sweeps battery conversion efficiency (an extension beyond
// the paper's lossless storage).
func storageStudy(slots int) error {
	fmt.Println("== storage ablation: cost vs battery conversion efficiency")
	for _, eff := range []float64{1.0, 0.9, 0.8, 0.7} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		sc.Topology.BSSpec.Battery.ChargeEfficiency = eff
		sc.Topology.BSSpec.Battery.DischargeEfficiency = eff
		sc.Topology.UserSpec.Battery.ChargeEfficiency = eff
		sc.Topology.UserSpec.Battery.DischargeEfficiency = eff
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("efficiency=%.1f  cost=%.6g  final battery (BS+users)=%.1f Wh\n",
			eff, res.AvgEnergyCost, res.FinalBatteryWhBS+res.FinalBatteryWhUsers)
	}
	return nil
}

// energyAwareStudy sweeps the extension scheduler's power-discount κ.
func energyAwareStudy(slots int) error {
	fmt.Println("== energy-aware scheduling (extension): cost/throughput vs κ")
	for _, kappa := range []float64{0, 1, 5, 20} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		sc.Scheduler = sched.EnergyAware{Kappa: kappa}
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("kappa=%-4.0f cost=%.6g  tx energy=%.4f Wh/slot  delivered=%.0f\n",
			kappa, res.AvgEnergyCost, res.AvgTxEnergyWh, res.DeliveredPkts)
	}
	return nil
}

// capacityStudy probes the capacity region: as the session count grows the
// delivered fraction of admitted traffic eventually collapses — the
// admission throttle (λV) then caps source queues while interior queues
// absorb the overload.
func capacityStudy(slots int) error {
	fmt.Println("== capacity probe: delivered/admitted vs session count")
	fmt.Printf("%10s %12s %12s %12s %12s\n", "sessions", "admitted", "delivered", "ratio", "backlog")
	for _, sessions := range []int{1, 2, 4, 8, 12, 16} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.NumSessions = sessions
		sc.KeepTraces = false
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		ratio := 0.0
		if res.AdmittedPkts > 0 {
			ratio = res.DeliveredPkts / res.AdmittedPkts
		}
		fmt.Printf("%10d %12.0f %12.0f %12.2f %12.0f\n",
			sessions, res.AdmittedPkts, res.DeliveredPkts, ratio,
			res.FinalDataBacklogBS+res.FinalDataBacklogUsers)
	}
	return nil
}

// horizonStudy extends the horizon past the paper's 100 slots: the
// delivered fraction approaches the admitted load and backlogs flatten —
// Theorem 3's strong stability seen at equilibrium rather than mid-
// transient.
func horizonStudy(int) error {
	fmt.Println("== horizon study: transient vs steady state")
	fmt.Printf("%8s %12s %12s %10s %14s\n", "slots", "admitted", "delivered", "ratio", "delay (exact)")
	for _, T := range []int{100, 300, 600} {
		sc := greencell.PaperScenario()
		sc.Slots = T
		sc.KeepTraces = false
		sc.TrackDelay = true
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		ratio := 0.0
		if res.AdmittedPkts > 0 {
			ratio = res.DeliveredPkts / res.AdmittedPkts
		}
		fmt.Printf("%8d %12.0f %12.0f %10.2f %14.1f\n",
			T, res.AdmittedPkts, res.DeliveredPkts, ratio, res.ExactDelayMeanSlots)
	}
	return nil
}

// radiosStudy equips base stations with extra transceivers — the
// multi-radio generalization of the paper's single-radio constraint (22).
func radiosStudy(slots int) error {
	fmt.Println("== multi-radio ablation (extension): BS transceiver count")
	for _, radios := range []int{1, 2, 3} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		sc.Topology.BSSpec.Radios = radios
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("radios=%d  cost=%.6g  delivered=%.0f  scheduled tx=%.4f Wh/slot\n",
			radios, res.AvgEnergyCost, res.DeliveredPkts, res.AvgTxEnergyWh)
	}
	return nil
}

// uplinkStudy mixes uplink (user → any BS, anycast) sessions into the
// downlink workload — the direction the paper leaves out.
func uplinkStudy(slots int) error {
	fmt.Println("== uplink ablation (extension): mixed up/downlink traffic")
	for _, up := range []int{0, 2, 4} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		sc.UplinkSessions = up
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("uplink=%d  cost=%.6g  admitted=%.0f  delivered=%.0f\n",
			up, res.AvgEnergyCost, res.AdmittedPkts, res.DeliveredPkts)
	}
	return nil
}

// distStudy runs the distributed controller against the monolith across
// control-plane loss rates. At loss 0 the two rows are identical by the
// fidelity gate; rising loss makes the coordinator decide on stale node
// views, and the gap between its believed delivery and the nodes' ground
// truth is the price of distribution.
func distStudy(slots int) error {
	fmt.Println("== distributed controller (docs/DISTRIBUTED.md): fidelity and graceful degradation vs loss")
	fmt.Printf("%-12s %10s %10s %12s %12s %10s %10s\n",
		"controller", "loss", "cost", "believed", "delivered", "stale", "degraded")
	mono := greencell.PaperScenario()
	mono.Slots = slots
	mono.KeepTraces = false
	res, err := greencell.Run(mono)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %10.6g %12.0f %12.0f %10s %10d\n",
		"monolith", "-", res.AvgEnergyCost, res.DeliveredPkts, res.DeliveredPkts, "-", res.DegradedSlots)
	for _, loss := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		sc.Dist = true
		sc.NetLoss = loss
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10.2f %10.6g %12.0f %12.0f %10d %10d\n",
			"distributed", loss, res.AvgEnergyCost, res.DeliveredPkts,
			res.Net.TrueDeliveredPkts, res.Net.StaleSlots, res.DegradedSlots)
	}
	return nil
}

// dpStudy pits the paper's drift-plus-penalty rule against the true MDP
// optimum on the quantized single-BS model (internal/mdp), and reports the
// state-space growth that makes DP unusable at network scale.
func dpStudy(int) error {
	fmt.Println("== dynamic-programming baseline: Lyapunov vs true optimum (single-BS model)")
	m := mdp.Reference()
	//lint:allow wallclock -- DP solve wall-time study; timings are printed, never part of a seeded artifact
	start := time.Now()
	sol, err := mdp.SolveAverageCost(m, 1e-7, 0)
	if err != nil {
		return err
	}
	solveTime := time.Since(start)
	const T = 60000
	dpCost, _, err := mdp.Simulate(m, sol, T, rng.New(5))
	if err != nil {
		return err
	}
	fmt.Printf("DP optimum: avg cost %.4f (%d states, %d sweeps, %v; needs the full renewable distribution)\n",
		dpCost, m.NumStates(), sol.Iterations, solveTime.Round(time.Millisecond))
	for _, v := range []float64{0.5, 2, 10} {
		ly, _, err := mdp.Simulate(m, mdp.Lyapunov{V: v}, T, rng.New(5))
		if err != nil {
			return err
		}
		fmt.Printf("Lyapunov V=%-4g avg cost %.4f (gap %.1f%%; needs no statistics)\n",
			v, ly, 100*(ly-dpCost)/math.Abs(dpCost))
	}
	big := *m
	big.QMax *= 4
	big.BattMax *= 4
	fmt.Printf("curse of dimensionality: 4x finer quantization -> %d states (%.0fx)\n",
		big.NumStates(), float64(big.NumStates())/float64(m.NumStates()))
	fmt.Println("the paper's 22-node network state (queues x batteries x bands) is astronomically larger.")
	return nil
}

// shadowingStudy sweeps log-normal shadowing severity (extension): heavy
// shadowing breaks some links and strengthens others, stressing both the
// candidate-link screen and power control.
func shadowingStudy(slots int) error {
	fmt.Println("== shadowing ablation (extension): cost/delivery vs sigma")
	for _, sigma := range []float64{0, 4, 8} {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		sc.Topology.ShadowingSigmaDB = sigma
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("sigma=%2.0fdB  cost=%.6g  delivered=%.0f  deficit=%.3g Wh\n",
			sigma, res.AvgEnergyCost, res.DeliveredPkts, res.DeficitWh)
	}
	return nil
}

// hotspotStudy compares uniform placement with clustered (hotspot) users.
func hotspotStudy(slots int) error {
	fmt.Println("== placement ablation (extension): uniform vs hotspot users")
	run := func(name string, mutate func(sc *greencell.Scenario)) error {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		mutate(&sc)
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s cost=%.6g  delivered=%.0f  tx=%.4f Wh/slot\n",
			name, res.AvgEnergyCost, res.DeliveredPkts, res.AvgTxEnergyWh)
		return nil
	}
	if err := run("uniform", func(*greencell.Scenario) {}); err != nil {
		return err
	}
	return run("hotspot", func(sc *greencell.Scenario) {
		// Two crowds, each near one base station.
		sc.Topology.Hotspots = []geom.Point{{X: 600, Y: 600}, {X: 1400, Y: 600}}
		sc.Topology.HotspotSigma = 150
	})
}

// diurnalStudy swaps the i.i.d. uniform renewables for day-cycle processes.
func diurnalStudy(slots int) error {
	fmt.Println("== renewable model ablation: i.i.d. uniform vs diurnal cycle")
	run := func(name string, mutate func(sc *greencell.Scenario)) error {
		sc := greencell.PaperScenario()
		sc.Slots = slots
		sc.KeepTraces = false
		mutate(&sc)
		res, err := greencell.Run(sc)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s cost=%.6g  grid=%.3f Wh/slot  deficit=%.3g Wh\n",
			name, res.AvgEnergyCost, res.AvgGridWh, res.DeficitWh)
		return nil
	}
	if err := run("uniform (paper)", func(*greencell.Scenario) {}); err != nil {
		return err
	}
	return run("diurnal (extension)", func(sc *greencell.Scenario) {
		// Same mean output (peak · (2/π) / 2 halves ≈ paper's mean) but
		// concentrated in the "day" half of the horizon.
		sc.Topology.BSSpec.Renewable = &energy.Diurnal{PeakWh: 3, PeriodSlots: slots, NoiseFrac: 0.2}
		sc.Topology.UserSpec.Renewable = &energy.Diurnal{PeakWh: 0.2, PeriodSlots: slots, NoiseFrac: 0.2}
	})
}
