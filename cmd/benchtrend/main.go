// Command benchtrend runs the repository's Fig. 2 benchmarks, the
// warm-start slot benchmark, and the lint-suite benchmark, and maintains
// the PR-over-PR performance trajectory file (BENCH_<n>.json). Each trajectory point is a labeled
// snapshot of every benchmark's ns/op, B/op, allocs/op, and custom
// metrics (gap-V1e5, lp-iters/slot, ...); points are ordered oldest to
// newest, so diffing adjacent points shows what a PR did to performance.
//
// Modes:
//
//	benchtrend                      measure and print (file untouched)
//	benchtrend -label after-pr6     measure and record a trajectory point
//	benchtrend -check               CI gate: 1-iteration smoke run, then
//	                                validate the committed file and fail
//	                                on a >20% ns/op regression between
//	                                the last two trajectory points
//
// Points are labeled, not timestamped: the file must stay byte-stable
// under re-runs that change nothing, and wall-clock values are banned
// from reproducible artifacts (docs/ANALYSIS.md, wallclock analyzer).
// See docs/PERFORMANCE.md for the file format and workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// schemaID names the trajectory file format; bump on incompatible change.
const schemaID = "greencell/bench-trajectory@1"

// regressionTol is the benchcmp gate: -check fails when a benchmark's
// ns/op grew by more than this fraction between the last two points.
const regressionTol = 0.20

// Result is one benchmark's measurements at one trajectory point.
// Metrics holds testing.B.ReportMetric units verbatim (lp-iters/slot,
// gap-V1e5, ...).
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Point is one labeled snapshot in the trajectory, keyed by benchmark
// name (Benchmark prefix and -GOMAXPROCS suffix stripped).
type Point struct {
	Label   string            `json:"label"`
	Note    string            `json:"note,omitempty"`
	Results map[string]Result `json:"results"`
}

// Trajectory is the whole file: schema tag plus points oldest-first.
type Trajectory struct {
	Schema string  `json:"schema"`
	Points []Point `json:"trajectory"`
}

func main() {
	out := flag.String("out", "BENCH_9.json", "trajectory file to validate or update")
	bench := flag.String("bench", "Fig2|WarmStartSlots|LintRepo", "benchmark name regex passed to go test -bench")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value (forced to 1x by -check)")
	label := flag.String("label", "", "record the measurements as a trajectory point with this label (replaces an existing point with the same label)")
	note := flag.String("note", "", "free-form note stored alongside -label's point")
	check := flag.Bool("check", false, "CI mode: smoke-run the benchmarks once, validate -out, and diff its last two points")
	flag.Parse()

	if *check {
		*benchtime = "1x"
	}
	results, err := measure(*bench, *benchtime)
	if err != nil {
		fatal(err)
	}
	printResults(results)
	switch {
	case *check:
		if err := checkFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("benchtrend: %s ok\n", *out)
	case *label != "":
		if err := record(*out, *label, *note, results); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrend:", err)
	os.Exit(1)
}

// measure shells out to go test -bench and parses its text output. The
// benchmarks live in the repository root package, so benchtrend must run
// from there (make bench-json does).
func measure(bench, benchtime string) (map[string]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, "-benchmem", "."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return parseBench(string(out))
}

// parseBench extracts benchmark result lines: a name, an iteration
// count, then (value, unit) pairs in whatever order testing emitted them.
func parseBench(out string) (map[string]Result, error) {
	results := make(map[string]Result)
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // -GOMAXPROCS suffix
			}
		}
		r := Result{Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark line %q: bad value %q", line, f[i])
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results[name] = r
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in go test output")
	}
	return results, nil
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func printResults(results map[string]Result) {
	for _, name := range sortedNames(results) {
		r := results[name]
		fmt.Printf("%-26s %14.0f ns/op", name, r.NsPerOp)
		if r.AllocsPerOp > 0 {
			fmt.Printf(" %9d allocs/op", r.AllocsPerOp)
		}
		for _, k := range sortedNames(r.Metrics) {
			fmt.Printf("  %g %s", r.Metrics[k], k)
		}
		fmt.Println()
	}
}

func load(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

// write marshals canonically: two-space indent, struct field order as
// declared, map keys sorted (encoding/json), trailing newline. Re-running
// with identical measurements produces identical bytes.
func write(path string, t *Trajectory) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchtrend: wrote %s (%d trajectory points)\n", path, len(t.Points))
	return nil
}

// record appends (or replaces, matching by label) a trajectory point.
func record(path, label, note string, results map[string]Result) error {
	t, err := load(path)
	if os.IsNotExist(err) {
		t = &Trajectory{Schema: schemaID}
	} else if err != nil {
		return err
	}
	pt := Point{Label: label, Note: note, Results: results}
	replaced := false
	for i := range t.Points {
		if t.Points[i].Label == label {
			t.Points[i] = pt
			replaced = true
		}
	}
	if !replaced {
		t.Points = append(t.Points, pt)
	}
	return write(path, t)
}

// checkFile validates the committed trajectory and, once two or more
// points exist, diffs the newest against its predecessor. Committed
// points are compared with each other — never with this run's 1-iteration
// smoke numbers, which exist only to prove the harness still parses.
func checkFile(path string) error {
	t, err := load(path)
	if err != nil {
		return err
	}
	if t.Schema != schemaID {
		return fmt.Errorf("%s: schema %q, want %q", path, t.Schema, schemaID)
	}
	if len(t.Points) == 0 {
		return fmt.Errorf("%s: no trajectory points", path)
	}
	for _, pt := range t.Points {
		if pt.Label == "" {
			return fmt.Errorf("%s: point with empty label", path)
		}
		if len(pt.Results) == 0 {
			return fmt.Errorf("%s: point %q has no results", path, pt.Label)
		}
		for _, name := range sortedNames(pt.Results) {
			if !(pt.Results[name].NsPerOp > 0) {
				return fmt.Errorf("%s: point %q: %s has non-positive ns/op", path, pt.Label, name)
			}
		}
	}
	if len(t.Points) >= 2 {
		return diffPoints(t.Points[len(t.Points)-2], t.Points[len(t.Points)-1])
	}
	return nil
}

// diffPoints prints a benchcmp-style table for benchmarks present in
// both points and fails on any ns/op regression beyond regressionTol.
func diffPoints(prev, cur Point) error {
	fmt.Printf("trajectory diff: %q -> %q\n", prev.Label, cur.Label)
	fmt.Printf("%-26s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressed []string
	for _, name := range sortedNames(cur.Results) {
		old, ok := prev.Results[name]
		if !ok {
			continue // new benchmark: nothing to compare against
		}
		now := cur.Results[name]
		fmt.Printf("%-26s %14.0f %14.0f %+7.2f%%\n",
			name, old.NsPerOp, now.NsPerOp, (now.NsPerOp-old.NsPerOp)/old.NsPerOp*100)
		if now.NsPerOp > old.NsPerOp*(1+regressionTol) {
			regressed = append(regressed, name)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regressed >%d%% since point %q: %s",
			int(regressionTol*100), prev.Label, strings.Join(regressed, ", "))
	}
	return nil
}
