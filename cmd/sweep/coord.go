package main

// The -coord client path: instead of running a point's replications
// locally, sweep encodes the point as a sim.ScenarioSpec, submits its
// outstanding seeds as one job to a greencell-coord (the daemon API is
// identical, so a single greencelld works too), polls to completion, and
// folds the returned per-seed metrics into the same summaries and -resume
// checkpoints the local path produces. Determinism makes the two paths
// interchangeable cell by cell, and the coordinator's content-addressed
// cache makes re-running an interrupted sweep nearly free: every finished
// (spec, seed) cell is served from cache with zero dispatches.
//
// All API calls run under the shared cluster retry helper (transient
// failures back off with jitter and honor Retry-After).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"greencell/internal/cluster"
	"greencell/internal/rng"
	"greencell/internal/server"
	"greencell/internal/sim"
)

// coordPollInterval paces job polling; cluster jobs run for seconds to
// minutes per point.
const coordPollInterval = 200 * time.Millisecond

type coordClient struct {
	base  string
	retry *cluster.RetryPolicy
}

func newCoordClient(base string) *coordClient {
	return &coordClient{
		base: strings.TrimSuffix(base, "/"),
		retry: &cluster.RetryPolicy{
			AttemptTimeout: 30 * time.Second,
			// Per-process jitter seed: decorrelates a fleet of sweep clients
			// without touching result determinism (results depend only on
			// the spec and seeds).
			Rand: rng.New(int64(os.Getpid())).Split("sweep-jitter"),
		},
	}
}

func (c *coordClient) doJSON(ctx context.Context, method, url string, body []byte, wantCode int, out any) error {
	return c.retry.Do(ctx, func(ctx context.Context) error {
		return cluster.DoJSON(ctx, http.DefaultClient, method, url, body, wantCode, out)
	}, func(err error) {
		fmt.Fprintf(os.Stderr, "sweep: transient %s failure, retrying: %v\n", method, err)
	})
}

// runPoint submits one point's outstanding seeds and waits for the result.
// A terminal job yields (metrics, failed seeds, per-seed errors, nil); a
// client-side failure (submit rejected, coordinator unreachable after
// retries) aborts the sweep via the final error.
func (c *coordClient) runPoint(ctx context.Context, spec sim.ScenarioSpec, todo []int64) ([]sim.SeedMetrics, []int64, []error, error) {
	if len(todo) == 0 {
		return nil, nil, nil, nil
	}
	body, err := json.Marshal(server.JobRequest{Spec: spec, Seeds: todo})
	if err != nil {
		return nil, nil, nil, err
	}
	var st server.JobStatus
	if err := c.doJSON(ctx, http.MethodPost, c.base+"/v1/jobs", body, http.StatusAccepted, &st); err != nil {
		return nil, nil, nil, fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "sweep: submitted %s (%d seed(s))\n", st.ID, len(todo))

	for !st.State.Terminal() {
		if err := sleepCtx(ctx, coordPollInterval); err != nil {
			// Cancelled mid-point: release the cluster job best-effort. Its
			// finished cells stay cached, so the resumed sweep is cheap.
			dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			//lint:allow droppederr -- best-effort cancel on Ctrl-C; the job deadline and cache absorb a miss
			_ = cluster.DoJSON(dctx, http.DefaultClient, http.MethodDelete, c.base+"/v1/jobs/"+st.ID, nil, http.StatusOK, nil)
			cancel()
			return nil, nil, []error{fmt.Errorf("job %s: %w", st.ID, err)}, nil
		}
		if err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/jobs/"+st.ID, nil, http.StatusOK, &st); err != nil {
			return nil, nil, nil, fmt.Errorf("poll %s: %w", st.ID, err)
		}
	}

	var errs []error
	if st.State != server.JobDone && st.Error != "" {
		errs = append(errs, fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error))
	}
	if st.Result == nil {
		return nil, todo, errs, nil
	}
	for i, seed := range st.Result.FailedSeeds {
		msg := "failed"
		if i < len(st.Result.Errors) {
			msg = st.Result.Errors[i]
		}
		errs = append(errs, fmt.Errorf("seed %d: %s", seed, msg))
	}
	return st.Result.Seeds, st.Result.FailedSeeds, errs, nil
}

// applySpec installs the swept value into a wire spec — the -coord
// counterpart of applier(), so every parameter the local path sweeps can
// also be swept remotely.
func applySpec(spec *sim.ScenarioSpec, param string, v float64) error {
	switch param {
	case "users":
		spec.Users = int(v)
	case "sessions":
		spec.Sessions = int(v)
	case "neighbors":
		n := int(v)
		spec.Neighbors = &n
	case "v":
		spec.V = v
	case "lambda":
		spec.Lambda = v
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	return nil
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
