// Command sweep runs the paper scenario across a range of one parameter
// and tabulates the headline metrics, with optional multi-seed replication
// and 95% confidence intervals.
//
// Usage:
//
//	sweep -param users -values 10,20,30 [-slots N] [-replications R] [-out file.tsv]
//
// Parameters: users | sessions | neighbors | v | lambda.
//
// Replications run on a bounded worker pool and survive per-seed
// failures: a crashed or failed seed is reported on stderr and excluded
// from that point's summaries instead of aborting the sweep. With
// -resume FILE, every completed (param, value, seed) cell is checkpointed
// to FILE as a JSON line and skipped on the next invocation, so an
// interrupted sweep (Ctrl-C cancels cooperatively) can pick up where it
// left off. See docs/ROBUSTNESS.md.
//
// With -coord URL, each point runs on a greencell-coord cluster (or a
// single greencelld) instead of locally: the point becomes one job sharded
// seed-by-seed across the fleet, and the coordinator's content-addressed
// cache makes resumed or repeated sweeps nearly free. See docs/CLUSTER.md.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"greencell"
	"greencell/internal/export"
	"greencell/internal/metrics"
	"greencell/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param      = fs.String("param", "v", "parameter to sweep: users | sessions | neighbors | v | lambda")
		values     = fs.String("values", "1e5,5e5,1e6", "comma-separated values")
		slots      = fs.Int("slots", 100, "slots per run")
		reps       = fs.Int("replications", 1, "independent seeds per point")
		seed       = fs.Int64("seed", 1, "base seed")
		out        = fs.String("out", "", "optional TSV output path")
		metricsPfx = fs.String("metrics", "", "per-point metrics stream prefix: writes <prefix>_<param>_<value>.jsonl (docs/METRICS.md) from one instrumented run per point")
		resume     = fs.String("resume", "", "JSONL checkpoint file: completed (param, value, seed) cells are appended here and skipped when re-run (docs/ROBUSTNESS.md)")
		coordURL   = fs.String("coord", "", "run each point on a greencell-coord (or greencelld) at this base URL instead of simulating locally (docs/CLUSTER.md)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL != "" && *metricsPfx != "" {
		return errors.New("-metrics is not supported with -coord; fetch the cluster job's /v1/jobs/<id>/metrics stream instead")
	}

	var vals []float64
	for _, tok := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", tok, err)
		}
		vals = append(vals, v)
	}

	apply, err := applier(*param)
	if err != nil {
		return err
	}

	// Ctrl-C cancels cooperatively: in-flight replications return at their
	// next slot boundary, finished cells are kept (and checkpointed), and
	// the partial table is still printed and written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	done := map[string]sim.SeedMetrics{}
	var ckpt *checkpointWriter
	if *resume != "" {
		if done, err = loadCheckpoints(*resume); err != nil {
			return err
		}
		if ckpt, err = openCheckpoints(*resume); err != nil {
			return err
		}
		defer func() { err = errors.Join(err, ckpt.Close()) }()
	}

	header := []string{*param, "cost_mean", "cost_ci", "delivered_mean", "backlog_mean", "grid_mean", "degraded_mean"}
	fmt.Printf("%12s %14s %12s %12s %12s %12s %12s\n",
		*param, "cost", "±95%", "delivered", "backlog", "grid Wh", "degraded")
	var rows [][]float64
	var seedErrs []error
	for _, v := range vals {
		sc := greencell.PaperScenario()
		sc.Slots = *slots
		sc.Seed = *seed
		sc.KeepTraces = false
		if err := apply(&sc, v); err != nil {
			return err
		}

		// Split the point's seeds into checkpointed cells and fresh work.
		var ms []sim.SeedMetrics
		var todo []int64
		for _, s := range sim.Seeds(*seed, *reps) {
			if m, ok := done[cellKey(*param, v, s)]; ok {
				ms = append(ms, m)
			} else {
				todo = append(todo, s)
			}
		}
		var failed []int64
		if *coordURL != "" {
			spec := sim.ScenarioSpec{Slots: *slots, Seed: *seed}
			if err := applySpec(&spec, *param, v); err != nil {
				return err
			}
			got, fseeds, errs, err := newCoordClient(*coordURL).runPoint(ctx, spec, todo)
			if err != nil {
				return fmt.Errorf("%s=%g: %w", *param, v, err)
			}
			failed = fseeds
			for _, e := range errs {
				seedErrs = append(seedErrs, fmt.Errorf("%s=%g: %w", *param, v, e))
			}
			for _, m := range got {
				ms = append(ms, m)
				if ckpt != nil {
					if err := ckpt.Write(cell{Param: *param, Value: v, Metrics: m}); err != nil {
						return fmt.Errorf("checkpoint: %w", err)
					}
				}
			}
		} else {
			for _, o := range sim.RunSeeds(ctx, sc, todo) {
				if o.Err != nil {
					failed = append(failed, o.Seed)
					seedErrs = append(seedErrs, fmt.Errorf("%s=%g: %w", *param, v, o.Err))
					continue
				}
				m := sim.MetricsOf(o.Seed, o.Result)
				ms = append(ms, m)
				if ckpt != nil {
					if err := ckpt.Write(cell{Param: *param, Value: v, Metrics: m}); err != nil {
						return fmt.Errorf("checkpoint: %w", err)
					}
				}
			}
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "sweep: %s=%g: %d/%d seeds failed: %v\n",
				*param, v, len(failed), *reps, failed)
		}
		if len(ms) == 0 {
			// Every seed of the point failed (or the sweep was cancelled
			// before any finished); there is nothing to summarize.
			if ctx.Err() != nil {
				break
			}
			continue
		}
		// Resumed cells precede fresh ones; re-sort by seed so the summary
		// folds values in the same order as an uninterrupted sweep.
		sort.Slice(ms, func(i, j int) bool { return ms[i].Seed < ms[j].Seed })
		rr := sim.SummarizeSeedMetrics(ms)

		if *metricsPfx != "" && ctx.Err() == nil {
			// One extra instrumented, single-seed run per point: the
			// Recorder is single-run and must stay out of the concurrent
			// replications above.
			path := fmt.Sprintf("%s_%s_%g.jsonl", *metricsPfx, *param, v)
			if err := writeMetrics(ctx, sc, path); err != nil {
				return fmt.Errorf("%s=%g: metrics: %w", *param, v, err)
			}
		}
		ci := 1.96 * rr.AvgEnergyCost.StdErr()
		fmt.Printf("%12g %14.6g %12.3g %12.1f %12.1f %12.4f %12.2f\n",
			v, rr.AvgEnergyCost.Mean, ci, rr.DeliveredPkts.Mean,
			rr.FinalDataBacklog.Mean, rr.AvgGridWh.Mean, rr.DegradedSlots.Mean)
		rows = append(rows, []float64{
			v, rr.AvgEnergyCost.Mean, ci, rr.DeliveredPkts.Mean,
			rr.FinalDataBacklog.Mean, rr.AvgGridWh.Mean, rr.DegradedSlots.Mean,
		})
		if ctx.Err() != nil {
			break // cancelled mid-point: keep the partial table, stop sweeping
		}
	}
	if *out != "" && len(rows) > 0 {
		if err := export.WriteTSVFile(*out, header, rows); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return errors.Join(seedErrs...)
}

// cell is one checkpoint record: the scalar metrics of one completed
// (param, value, seed) replication. The file is JSON Lines, append-only,
// and idempotent to re-runs — duplicate cells overwrite by key on load.
type cell struct {
	Param   string          `json:"param"`
	Value   float64         `json:"value"`
	Metrics sim.SeedMetrics `json:"metrics"`
}

// cellKey identifies a sweep cell. %g round-trips exactly for values that
// were parsed from the same -values string, which is the resume contract.
func cellKey(param string, value float64, seed int64) string {
	return fmt.Sprintf("%s=%g#%d", param, value, seed)
}

// loadCheckpoints reads a -resume file into a key→metrics map. A missing
// file is an empty checkpoint. A torn final line — the signature of a
// crash mid-append — is skipped with a warning rather than failing the
// resume; a torn line anywhere else is corruption and is an error.
func loadCheckpoints(path string) (map[string]sim.SeedMetrics, error) {
	done := map[string]sim.SeedMetrics{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	scan := bufio.NewScanner(f)
	torn := ""
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" {
			continue
		}
		if torn != "" {
			return nil, fmt.Errorf("checkpoint %s: corrupt record at line %s", path, torn)
		}
		var c cell
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			torn = strconv.Itoa(lineNo) // tolerated only if it is the last line
			continue
		}
		done[cellKey(c.Param, c.Value, c.Metrics.Seed)] = c.Metrics
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if torn != "" {
		fmt.Fprintf(os.Stderr, "sweep: checkpoint %s: dropping torn final line %s (interrupted write); its cell will re-run\n", path, torn)
	}
	return done, nil
}

// checkpointWriter appends cells to the -resume file, one JSON line per
// completed cell, flushed eagerly so a crash loses at most the record
// being written.
type checkpointWriter struct{ f *os.File }

func openCheckpoints(path string) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

func (w *checkpointWriter) Write(c cell) error {
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	_, err = w.f.Write(append(b, '\n'))
	return err
}

func (w *checkpointWriter) Close() error { return w.f.Close() }

// writeMetrics re-runs one instrumented copy of the scenario and streams
// its per-slot metrics records to path.
func writeMetrics(ctx context.Context, sc greencell.Scenario, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The close error carries the final flush on a full disk.
	defer func() { err = errors.Join(err, f.Close()) }()
	rec := sim.NewRecorder(metrics.NewJSONLWriter(f), sim.HeaderFor(sc, "paper"))
	rec.Attach(&sc, false)
	if _, err := sim.RunCtx(ctx, sc); err != nil {
		return err
	}
	return rec.Close()
}

// applier returns a function installing the swept value into a scenario.
func applier(param string) (func(*greencell.Scenario, float64) error, error) {
	switch param {
	case "users":
		return func(sc *greencell.Scenario, v float64) error {
			sc.Topology.NumUsers = int(v)
			return nil
		}, nil
	case "sessions":
		return func(sc *greencell.Scenario, v float64) error {
			sc.NumSessions = int(v)
			return nil
		}, nil
	case "neighbors":
		return func(sc *greencell.Scenario, v float64) error {
			sc.Topology.MaxNeighbors = int(v)
			return nil
		}, nil
	case "v":
		return func(sc *greencell.Scenario, v float64) error {
			sc.V = v
			return nil
		}, nil
	case "lambda":
		return func(sc *greencell.Scenario, v float64) error {
			sc.Lambda = v
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown parameter %q", param)
	}
}
