// Command sweep runs the paper scenario across a range of one parameter
// and tabulates the headline metrics, with optional multi-seed replication
// and 95% confidence intervals.
//
// Usage:
//
//	sweep -param users -values 10,20,30 [-slots N] [-replications R] [-out file.tsv]
//
// Parameters: users | sessions | neighbors | v | lambda.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"greencell"
	"greencell/internal/export"
	"greencell/internal/metrics"
	"greencell/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param      = fs.String("param", "v", "parameter to sweep: users | sessions | neighbors | v | lambda")
		values     = fs.String("values", "1e5,5e5,1e6", "comma-separated values")
		slots      = fs.Int("slots", 100, "slots per run")
		reps       = fs.Int("replications", 1, "independent seeds per point")
		seed       = fs.Int64("seed", 1, "base seed")
		out        = fs.String("out", "", "optional TSV output path")
		metricsPfx = fs.String("metrics", "", "per-point metrics stream prefix: writes <prefix>_<param>_<value>.jsonl (docs/METRICS.md) from one instrumented run per point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var vals []float64
	for _, tok := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", tok, err)
		}
		vals = append(vals, v)
	}

	apply, err := applier(*param)
	if err != nil {
		return err
	}

	header := []string{*param, "cost_mean", "cost_ci", "delivered_mean", "backlog_mean", "grid_mean"}
	fmt.Printf("%12s %14s %12s %12s %12s %12s\n",
		*param, "cost", "±95%", "delivered", "backlog", "grid Wh")
	var rows [][]float64
	for _, v := range vals {
		sc := greencell.PaperScenario()
		sc.Slots = *slots
		sc.Seed = *seed
		sc.KeepTraces = false
		if err := apply(&sc, v); err != nil {
			return err
		}
		rr, err := sim.RunReplicated(sc, sim.Seeds(*seed, *reps))
		if err != nil {
			return fmt.Errorf("%s=%g: %w", *param, v, err)
		}
		if *metricsPfx != "" {
			// One extra instrumented, single-seed run per point: the
			// Recorder is single-run and must stay out of the concurrent
			// replications above.
			path := fmt.Sprintf("%s_%s_%g.jsonl", *metricsPfx, *param, v)
			if err := writeMetrics(sc, path); err != nil {
				return fmt.Errorf("%s=%g: metrics: %w", *param, v, err)
			}
		}
		ci := 1.96 * rr.AvgEnergyCost.StdErr()
		fmt.Printf("%12g %14.6g %12.3g %12.1f %12.1f %12.4f\n",
			v, rr.AvgEnergyCost.Mean, ci, rr.DeliveredPkts.Mean,
			rr.FinalDataBacklog.Mean, rr.AvgGridWh.Mean)
		rows = append(rows, []float64{
			v, rr.AvgEnergyCost.Mean, ci, rr.DeliveredPkts.Mean,
			rr.FinalDataBacklog.Mean, rr.AvgGridWh.Mean,
		})
	}
	if *out != "" {
		if err := export.WriteTSVFile(*out, header, rows); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}

// writeMetrics re-runs one instrumented copy of the scenario and streams
// its per-slot metrics records to path.
func writeMetrics(sc greencell.Scenario, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The close error carries the final flush on a full disk.
	defer func() { err = errors.Join(err, f.Close()) }()
	rec := sim.NewRecorder(metrics.NewJSONLWriter(f), sim.HeaderFor(sc, "paper"))
	rec.Attach(&sc, false)
	if _, err := sim.Run(sc); err != nil {
		return err
	}
	return rec.Close()
}

// applier returns a function installing the swept value into a scenario.
func applier(param string) (func(*greencell.Scenario, float64) error, error) {
	switch param {
	case "users":
		return func(sc *greencell.Scenario, v float64) error {
			sc.Topology.NumUsers = int(v)
			return nil
		}, nil
	case "sessions":
		return func(sc *greencell.Scenario, v float64) error {
			sc.NumSessions = int(v)
			return nil
		}, nil
	case "neighbors":
		return func(sc *greencell.Scenario, v float64) error {
			sc.Topology.MaxNeighbors = int(v)
			return nil
		}, nil
	case "v":
		return func(sc *greencell.Scenario, v float64) error {
			sc.V = v
			return nil
		}, nil
	case "lambda":
		return func(sc *greencell.Scenario, v float64) error {
			sc.Lambda = v
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown parameter %q", param)
	}
}
