// Command validate runs the repository's reproduction certificate: a suite
// of end-to-end checks asserting that the implemented system exhibits every
// property the paper proves or reports. It prints one PASS/FAIL line per
// check and exits non-zero if any fails.
//
// Checks:
//
//  1. lemma1-drift     — the realized Lyapunov drift satisfies the Lemma 1
//     inequality at every slot, with SquareTerms ≤ B.
//  2. strong-stability — data backlog trajectories flatten (Theorem 3).
//  3. no-deficit       — energy demand is always served (constraints
//     (9)–(14) feasible under the gate).
//  4. conservation     — every admitted packet is delivered or queued.
//  5. bound-sandwich   — lower bound ≤ upper bound at every tested V
//     (Theorems 4–5).
//  6. bound-tighten    — the bound gap shrinks as V grows (Lemma 2).
//  7. architectures    — Fig. 2(f)'s cost ordering holds.
//
// Usage:
//
//	validate [-slots N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"greencell"
	"greencell/internal/queueing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

type check struct {
	name string
	ok   bool
	info string
}

func run(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	var (
		slots = fs.Int("slots", 100, "slots per simulation run")
		seed  = fs.Int64("seed", 1, "scenario seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var checks []check

	// Base run with all instrumentation on.
	sc := greencell.PaperScenario()
	sc.Slots = *slots
	sc.Seed = *seed
	sc.AuditDrift = true
	sc.TrackDelay = true
	res, err := greencell.Run(sc)
	if err != nil {
		return err
	}

	checks = append(checks, check{
		name: "lemma1-drift",
		ok:   res.AuditViolations == 0,
		info: fmt.Sprintf("%d violating slots of %d", res.AuditViolations, sc.Slots),
	})

	half := len(res.DataBacklogBSTrace) / 2
	slopeBS := queueing.Slope(res.DataBacklogBSTrace[half:])
	slopeU := queueing.Slope(res.DataBacklogUsersTrace[half:])
	demand := 100.0 // 4 sessions x 25 pkts/slot
	checks = append(checks, check{
		name: "strong-stability",
		ok:   slopeBS < demand/2 && slopeU < demand/2,
		info: fmt.Sprintf("tail slopes BS %.2f, users %.2f pkts/slot (demand %.0f)", slopeBS, slopeU, demand),
	})

	checks = append(checks, check{
		name: "no-deficit",
		ok:   res.DeficitWh < 1e-6,
		info: fmt.Sprintf("total unserved energy %.3g Wh", res.DeficitWh),
	})

	queued := res.FinalDataBacklogBS + res.FinalDataBacklogUsers
	balance := res.AdmittedPkts - res.DeliveredPkts - queued
	checks = append(checks, check{
		name: "conservation",
		ok:   balance < 1e-3 && balance > -1e-3,
		info: fmt.Sprintf("admitted−delivered−queued = %.3g pkts", balance),
	})

	// Bound checks at two Vs.
	scB := greencell.PaperScenario()
	scB.Slots = *slots
	scB.Seed = *seed
	scB.KeepTraces = false
	bounds, err := greencell.SweepV(scB, []float64{1e5, 1e6})
	if err != nil {
		return err
	}
	sandwich := true
	for _, b := range bounds {
		if b.Lower > b.Upper {
			sandwich = false
		}
	}
	checks = append(checks, check{
		name: "bound-sandwich",
		ok:   sandwich,
		info: fmt.Sprintf("V=1e5: [%.4g, %.4g]  V=1e6: [%.4g, %.4g]",
			bounds[0].Lower, bounds[0].Upper, bounds[1].Lower, bounds[1].Upper),
	})
	gap0 := bounds[0].Upper - bounds[0].Lower
	gap1 := bounds[1].Upper - bounds[1].Lower
	checks = append(checks, check{
		name: "bound-tighten",
		ok:   gap1 < gap0,
		info: fmt.Sprintf("gap %.4g → %.4g (%.1fx)", gap0, gap1, gap0/gap1),
	})

	// Architecture ordering.
	costs, err := greencell.CompareArchitectures(scB, []float64{1e5})
	if err != nil {
		return err
	}
	byArch := map[greencell.Architecture]float64{}
	for _, c := range costs {
		byArch[c.Architecture] = c.AvgCost.Value()
	}
	ordered := byArch[greencell.Proposed] < byArch[greencell.MultiHopNoRenewable] &&
		byArch[greencell.OneHopRenewable] < byArch[greencell.OneHopNoRenewable] &&
		byArch[greencell.Proposed] < byArch[greencell.OneHopNoRenewable]
	checks = append(checks, check{
		name: "architectures",
		ok:   ordered,
		info: fmt.Sprintf("proposed %.4g | onehop-r %.4g | multihop-nr %.4g | onehop-nr %.4g",
			byArch[greencell.Proposed], byArch[greencell.OneHopRenewable],
			byArch[greencell.MultiHopNoRenewable], byArch[greencell.OneHopNoRenewable]),
	})

	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.ok {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-4s %-18s %s\n", status, c.name, c.info)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d checks failed", failed, len(checks))
	}
	fmt.Printf("all %d checks passed\n", len(checks))
	return nil
}
