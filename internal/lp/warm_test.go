package lp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

// mutateForWarm perturbs rhs and bounds (the edits a warm-started re-solve
// is built for) and, with small probability, costs (which knocks out dual
// feasibility and exercises the classification/fallback paths).
func mutateForWarm(src *rng.Source, p *Problem) {
	for i := 0; i < p.NumConstraints(); i++ {
		if src.Bernoulli(0.6) {
			p.SetConstraintRHS(i, p.ConstraintRHS(i)+src.Uniform(-0.5, 0.5))
		}
	}
	for j := 0; j < p.NumVars(); j++ {
		if src.Bernoulli(0.3) {
			lo, hi := p.VarBounds(VarID(j))
			lo += src.Uniform(-0.3, 0.3)
			if !math.IsInf(hi, 1) {
				hi += src.Uniform(-0.3, 0.3)
			}
			if lo > hi {
				lo, hi = hi, lo
			}
			p.SetVarBounds(VarID(j), lo, hi)
		}
		if src.Bernoulli(0.1) {
			p.SetVarCost(VarID(j), src.Uniform(-3, 3))
		}
	}
}

// requireWarmMatchesCold solves p warm and its clone cold and requires
// agreement on status and (at optimality) objective, plus feasibility of
// the warm solution.
func requireWarmMatchesCold(t *testing.T, ws *WarmSolver, label string) {
	t.Helper()
	cold, err := ws.Problem().Clone().Solve()
	if err != nil {
		t.Fatalf("%s: cold solve: %v", label, err)
	}
	warm, err := ws.Solve()
	if err != nil {
		t.Fatalf("%s: warm solve: %v", label, err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("%s: status warm=%v cold=%v", label, warm.Status, cold.Status)
	}
	if warm.Status != Optimal {
		return
	}
	tol := 1e-6 * (1 + math.Abs(cold.Objective))
	if math.Abs(warm.Objective-cold.Objective) > tol {
		t.Fatalf("%s: objective warm=%v cold=%v", label, warm.Objective, cold.Objective)
	}
	checkFeasible(t, ws.Problem(), warm)
}

// TestWarmColdAgreeOnRandomMutations is the warm-start property test: a
// WarmSolver fed an arbitrary sequence of rhs/bound/cost edits must agree
// with a from-scratch solve after every edit, across every classification
// path (primal reuse, dual simplex, cold fallback).
func TestWarmColdAgreeOnRandomMutations(t *testing.T) {
	src := rng.New(9461)
	for trial := 0; trial < 60; trial++ {
		n := 1 + src.Intn(7)
		m := 1 + src.Intn(7)
		sense := Minimize
		if src.Bernoulli(0.5) {
			sense = Maximize
		}
		p, _, _ := feasibleRandomLP(src, n, m, sense)
		ws := NewWarmSolver(p)
		for round := 0; round < 8; round++ {
			requireWarmMatchesCold(t, ws, "trial")
			mutateForWarm(src, p)
		}
	}
}

// TestWarmInfeasibleTransitions drives one problem through feasible →
// infeasible → feasible purely via rhs edits and requires the warm solver
// to track the status each time.
func TestWarmInfeasibleTransitions(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 1, 1)
	y := p.AddVar("y", 0, 1, 2)
	p.AddConstraint("need", GE, 1.5, Term{x, 1}, Term{y, 1})
	ws := NewWarmSolver(p)

	sol, err := ws.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-2.0) > 1e-9 { // x=1, y=0.5
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}

	p.SetConstraintRHS(0, 5) // beyond x+y's reach
	sol, err = ws.Solve()
	requireStatus(t, sol, err, Infeasible)

	p.SetConstraintRHS(0, 0.5)
	sol, err = ws.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-0.5) > 1e-9 { // x=0.5
		t.Fatalf("objective = %v, want 0.5", sol.Objective)
	}
}

// TestWarmIterationBudget checks that the caller's iteration budget keeps
// its one-shot semantics through the warm path: a budget too small to
// finish reports IterationLimit, a sufficient budget finishes, and a
// warm-started re-solve consumes (far) fewer iterations than its budget.
func TestWarmIterationBudget(t *testing.T) {
	src := rng.New(777)
	p, _, _ := feasibleRandomLP(src, 6, 6, Minimize)
	p.SetIterationLimit(1)
	ws := NewWarmSolver(p)
	sol, err := ws.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		// Tiny budget may still suffice for trivial instances; regenerate
		// deterministically until one actually needs pivots.
		t.Skip("instance solved within one iteration; budget path not exercised")
	}
	if sol.Status != IterationLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
	if sol.Iterations > 1 {
		t.Fatalf("iterations = %d exceeds budget 1", sol.Iterations)
	}

	p.SetIterationLimit(0)
	sol, err = ws.Solve()
	requireStatus(t, sol, err, Optimal)

	// A pure RHS nudge must now re-solve warm within a tight budget.
	for i := 0; i < p.NumConstraints(); i++ {
		p.SetConstraintRHS(i, p.ConstraintRHS(i)*1.0001)
	}
	p.SetIterationLimit(50)
	sol, err = ws.Solve()
	requireStatus(t, sol, err, Optimal)
	if sol.Iterations > 50 {
		t.Fatalf("iterations = %d exceeds budget 50", sol.Iterations)
	}
	warmStarts, _ := ws.Stats()
	if warmStarts == 0 {
		t.Fatal("re-solve after rhs nudge did not warm-start")
	}
}

// TestWarmCountsInvalidationOnJointEdit breaks primal feasibility (rhs) and
// dual feasibility (costs) in one edit and expects the cold-fallback path
// with an invalidation tick — and a correct answer.
func TestWarmCountsInvalidationOnJointEdit(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", 0, 10, 3)
	p.AddConstraint("mix", GE, 4, Term{x, 1}, Term{y, 1})
	ws := NewWarmSolver(p)
	if _, err := ws.Solve(); err != nil {
		t.Fatal(err)
	}

	// Push the rhs past the basic variable's bound and flip the cost order
	// so the old basis is neither primal nor dual feasible.
	p.SetConstraintRHS(0, 15)
	p.SetVarCost(x, 5)
	p.SetVarCost(y, -1)
	requireWarmMatchesCold(t, ws, "joint edit")
	if _, inv := ws.Stats(); inv == 0 {
		t.Fatal("joint rhs+cost edit did not count a basis invalidation")
	}
}

// TestWarmBasisExportImport hands a basis across solver instances over
// structurally identical problems — the cross-slot seam — and requires the
// import to both work and count as a warm start.
func TestWarmBasisExportImport(t *testing.T) {
	build := func(rhs float64) *Problem {
		p := NewProblem(Maximize)
		x := p.AddVar("x", 0, math.Inf(1), 3)
		y := p.AddVar("y", 0, math.Inf(1), 2)
		p.AddConstraint("c1", LE, rhs, Term{x, 1}, Term{y, 1})
		p.AddConstraint("c2", LE, 6, Term{x, 1}, Term{y, 3})
		return p
	}
	ws1 := NewWarmSolver(build(4))
	if _, err := ws1.Solve(); err != nil {
		t.Fatal(err)
	}
	b := ws1.ExportBasis()
	if b == nil {
		t.Fatal("no exportable basis after optimal solve")
	}

	ws2 := NewWarmSolver(build(4.5))
	ws2.ImportBasis(b)
	requireWarmMatchesCold(t, ws2, "imported")
	if warmStarts, _ := ws2.Stats(); warmStarts != 1 {
		t.Fatalf("warm starts after import = %d, want 1", warmStarts)
	}

	// A snapshot from a structurally different problem must be rejected.
	other := NewProblem(Maximize)
	other.AddVar("z", 0, 1, 1)
	wsOther := NewWarmSolver(other)
	wsOther.ImportBasis(b)
	if _, inv := wsOther.Stats(); inv != 1 {
		t.Fatal("structure-mismatched import was not counted as invalidation")
	}
	if _, err := wsOther.Solve(); err != nil {
		t.Fatal(err)
	}
}

// TestWarm100SlotsNeverDiverges is the fixed-seed drift test: one problem
// structure re-solved across 100 simulated slots with per-slot rhs/bound
// perturbations, the basis carried the whole way (including a periodic
// export → new solver → import handoff), compared against a cold solve
// every slot.
func TestWarm100SlotsNeverDiverges(t *testing.T) {
	src := rng.New(20140624) // ICDCS'14 publication date
	p, _, _ := feasibleRandomLP(src, 8, 10, Minimize)
	ws := NewWarmSolver(p)
	for slot := 0; slot < 100; slot++ {
		if slot > 0 && slot%10 == 0 {
			// Cross the solver-instance boundary like Controller.Step does
			// across slots: snapshot, rebuild, re-import.
			b := ws.ExportBasis()
			ws = NewWarmSolver(p)
			ws.ImportBasis(b)
		}
		requireWarmMatchesCold(t, ws, "slot")
		for i := 0; i < p.NumConstraints(); i++ {
			p.SetConstraintRHS(i, p.ConstraintRHS(i)+src.Uniform(-0.2, 0.2))
		}
		for j := 0; j < p.NumVars(); j++ {
			if src.Bernoulli(0.2) {
				lo, hi := p.VarBounds(VarID(j))
				w := hi - lo
				lo += src.Uniform(-0.1, 0.1)
				p.SetVarBounds(VarID(j), lo, lo+w)
			}
		}
	}
	warmStarts, _ := ws.Stats()
	if warmStarts == 0 {
		t.Fatal("no warm starts across 100 slots")
	}
}

// TestStructureSignatureInvariance pins what the signature must and must
// not see: value edits keep it, structural edits change it.
func TestStructureSignatureInvariance(t *testing.T) {
	mk := func() *Problem {
		p := NewProblem(Minimize)
		x := p.AddVar("x", 0, 5, 1)
		y := p.AddVar("y", 0, 5, 2)
		p.AddConstraint("r1", LE, 3, Term{x, 1}, Term{y, 2})
		p.AddConstraint("r2", GE, 1, Term{x, 1})
		return p
	}
	a, b := mk(), mk()
	b.SetConstraintRHS(0, 99)
	b.SetVarBounds(0, -1, 2)
	b.SetVarCost(1, -7)
	if a.StructureSignature() != b.StructureSignature() {
		t.Fatal("rhs/bound/cost edits changed the structure signature")
	}
	c := mk()
	c.AddConstraint("r3", LE, 1, Term{VarID(0), 1})
	if a.StructureSignature() == c.StructureSignature() {
		t.Fatal("added constraint kept the structure signature")
	}
}

// TestPresolveCacheBitIdentical requires cached and uncached solves to be
// literally indistinguishable — same status, bit-equal objective and
// values, same iteration count — across repeated value edits (cache hits)
// and a fixed-pattern change (cache miss and refill).
func TestPresolveCacheBitIdentical(t *testing.T) {
	src := rng.New(4242)
	for trial := 0; trial < 40; trial++ {
		n := 2 + src.Intn(6)
		m := 1 + src.Intn(6)
		p, _, ids := feasibleRandomLP(src, n, m, Minimize)
		// Fix a couple of variables so presolve has real work to cache.
		for j := 0; j < n; j++ {
			if src.Bernoulli(0.4) {
				v := src.Uniform(-1, 1)
				p.SetVarBounds(ids[j], v, v)
			}
		}
		var cache PresolveCache
		for round := 0; round < 6; round++ {
			want, err := p.Clone().Solve()
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.SolveCached(&cache)
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status || got.Iterations != want.Iterations {
				t.Fatalf("trial %d round %d: cached (status=%v iters=%d) vs fresh (status=%v iters=%d)",
					trial, round, got.Status, got.Iterations, want.Status, want.Iterations)
			}
			if want.Status == Optimal {
				if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
					t.Fatalf("trial %d round %d: objective differs in bits: %v vs %v",
						trial, round, got.Objective, want.Objective)
				}
				gx, wx := got.Values(), want.Values()
				for j := range wx {
					if math.Float64bits(gx[j]) != math.Float64bits(wx[j]) {
						t.Fatalf("trial %d round %d var %d: %v vs %v", trial, round, j, gx[j], wx[j])
					}
				}
			}
			// Value edits only: next round is a cache hit.
			for i := 0; i < p.NumConstraints(); i++ {
				p.SetConstraintRHS(i, p.ConstraintRHS(i)+src.Uniform(-0.3, 0.3))
			}
			if round == 3 {
				// Change the fixed pattern: forces a miss and refill.
				lo, _ := p.VarBounds(ids[0])
				p.SetVarBounds(ids[0], lo, lo+1)
			}
		}
	}
}
