package lp

import "math"

// PresolveCache memoizes presolve's structural analysis — the fixed
// variable and dropped row mappings plus the reduced problem skeleton —
// keyed by a signature of the problem's structure. Re-solving a problem of
// the same shape (dimensions, relations, term pattern and coefficients,
// fixed-variable pattern) refreshes only the value-dependent pieces
// (bounds, costs, right-hand sides) instead of rebuilding the reduction,
// which is where the energy-management layer spends its time: its
// golden-section search solves one problem shape dozens of times per slot
// with only the budget row's RHS moving.
//
// A refreshed reduction is bit-identical to a fresh presolve (the refresh
// replays the same arithmetic in the same order), so cached solves return
// identical results and iteration counts — the property that lets the
// cold, golden-pinned simulation path use the cache safely.
//
// The zero value is ready to use. A PresolveCache is not safe for
// concurrent use.
type PresolveCache struct {
	sig   uint64
	ps    *presolved
	valid bool
}

// presolveSignature hashes everything presolve's structural decisions
// depend on: sense, dimensions, each variable's fixed/free state, and each
// constraint's relation and exact terms. Bounds (beyond fixedness), costs,
// and right-hand sides are excluded — they are refreshed on a cache hit.
// Variable and constraint names are also excluded; they only label error
// messages.
func (p *Problem) presolveSignature() uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(p.sense))
	h = fnvMix(h, uint64(len(p.vars)))
	for _, v := range p.vars {
		bit := uint64(0)
		if v.hi-v.lo <= presolveEps {
			bit = 1
		}
		h = fnvMix(h, bit)
	}
	h = fnvMix(h, uint64(len(p.cons)))
	for _, c := range p.cons {
		h = fnvMix(h, uint64(c.rel))
		h = fnvMix(h, uint64(len(c.terms)))
		for _, t := range c.terms {
			h = fnvMix(h, uint64(t.Var))
			h = fnvMix(h, math.Float64bits(t.Coef))
		}
	}
	return h
}

// refresh re-derives the value-dependent parts of the reduction from p —
// reduced bounds/costs/rhs, substituted values, empty-row consistency —
// leaving the structure (mappings and term lists) untouched. The
// arithmetic replays presolve's exact operation order, so a refreshed
// reduction is bit-identical to a fresh presolve of p. It reports false
// when a fully substituted row has become inconsistent (the problem is
// infeasible at the current bounds and right-hand sides).
func (ps *presolved) refresh(p *Problem) bool {
	if ps.identity {
		return true
	}
	red := ps.reduced
	red.maxIters = p.maxIters
	for j, v := range p.vars {
		if rj := ps.varMap[j]; rj >= 0 {
			red.vars[rj].lo = v.lo
			red.vars[rj].hi = v.hi
			red.vars[rj].cost = v.cost
		} else {
			ps.fixedVal[j] = (v.lo + v.hi) / 2
		}
	}
	for i, c := range p.cons {
		rhs := c.rhs
		for _, t := range c.terms {
			if ps.varMap[t.Var] < 0 {
				rhs -= t.Coef * ps.fixedVal[t.Var]
			}
		}
		if ri := ps.rowMap[i]; ri >= 0 {
			red.cons[ri].rhs = rhs
		} else {
			const tol = 1e-7
			ok := true
			switch c.rel {
			case LE:
				ok = 0 <= rhs+tol
			case GE:
				ok = 0 >= rhs-tol
			case EQ:
				ok = math.Abs(rhs) <= tol
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// SolveCached optimizes like Solve but reuses c's memoized presolve
// analysis when the problem's structure matches the cached signature,
// refreshing bounds, costs, and right-hand sides in place. Results and
// iteration counts are identical to Solve — the cache only removes the
// per-call reduction rebuild. A nil cache degrades to Solve.
func (p *Problem) SolveCached(c *PresolveCache) (*Solution, error) {
	if c == nil {
		return p.Solve()
	}
	if sol, err := p.validateForSolve(); sol != nil || err != nil {
		return sol, err
	}
	sig := p.presolveSignature()
	if c.valid && c.sig == sig {
		if !c.ps.refresh(p) {
			return &Solution{Status: Infeasible}, nil
		}
		return p.solvePresolved(TableauEngine, c.ps)
	}
	ps := presolve(p)
	if !ps.infeasible {
		// Infeasible reductions stop early with partial mappings; cache
		// only complete analyses.
		c.sig, c.ps, c.valid = sig, ps, true
	}
	return p.solvePresolved(TableauEngine, ps)
}
