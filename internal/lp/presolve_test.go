package lp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func TestPresolveFixedVariable(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2, 2, 3) // fixed at 2
	y := p.AddVar("y", 0, math.Inf(1), 1)
	p.AddConstraint("c", GE, 10, Term{x, 1}, Term{y, 1}) // y >= 8
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if sol.Value(x) != 2 {
		t.Errorf("fixed variable value %v", sol.Value(x))
	}
	if math.Abs(sol.Value(y)-8) > 1e-9 {
		t.Errorf("y = %v, want 8", sol.Value(y))
	}
	if math.Abs(sol.Objective-(6+8)) > 1e-9 {
		t.Errorf("objective = %v, want 14", sol.Objective)
	}
	// Dual of the (still present) row: 1 unit more demand costs 1 (via y).
	if got := sol.Dual(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("dual = %v, want 1", got)
	}
}

func TestPresolveDropsConsistentRow(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 3, 3, 1)
	y := p.AddVar("y", 0, 10, 1)
	p.AddConstraint("onlyfixed", LE, 5, Term{x, 1}) // 3 <= 5: drop
	p.AddConstraint("real", GE, 4, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(y)-4) > 1e-9 {
		t.Errorf("y = %v", sol.Value(y))
	}
	if sol.Dual(0) != 0 {
		t.Errorf("dropped row dual = %v, want 0", sol.Dual(0))
	}
	if got := sol.Dual(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("kept row dual = %v, want 1", got)
	}
}

func TestPresolveDetectsInconsistentRow(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 3, 3, 1)
	p.AddConstraint("impossible", GE, 7, Term{x, 1}) // 3 >= 7
	sol, err := p.Solve()
	requireStatus(t, sol, err, Infeasible)
}

func TestPresolveAllFixed(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1, 1, 2)
	y := p.AddVar("y", 4, 4, 3)
	p.AddConstraint("c", EQ, 5, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-14) > 1e-9 {
		t.Errorf("objective = %v, want 14", sol.Objective)
	}
}

// TestPresolveEquivalence pins random variables of random LPs and checks
// the solved objective matches a manually-substituted formulation.
func TestPresolveEquivalence(t *testing.T) {
	src := rng.New(606)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(5)
		m := 1 + src.Intn(5)
		sense := Minimize
		if src.Bernoulli(0.5) {
			sense = Maximize
		}
		p, x0, ids := feasibleRandomLP(src, n, m, sense)
		// Pin a random subset of variables at their feasible point value —
		// feasibility at x0 is preserved.
		for j, id := range ids {
			if src.Bernoulli(0.4) {
				p.SetVarBounds(id, x0[j], x0[j])
			}
		}
		a, err := p.SolveWith(TableauEngine)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.SolveWith(RevisedEngine)
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != Optimal || b.Status != Optimal {
			t.Fatalf("trial %d: statuses %v/%v (x0 remains feasible)", trial, a.Status, b.Status)
		}
		if math.Abs(a.Objective-b.Objective) > 1e-6*(1+math.Abs(a.Objective)) {
			t.Fatalf("trial %d: engines disagree through presolve: %v vs %v",
				trial, a.Objective, b.Objective)
		}
		checkFeasible(t, p, a)
		// Pinned variables keep their values exactly.
		for _, id := range ids {
			lo, hi := p.VarBounds(id)
			if hi-lo <= presolveEps && math.Abs(a.Value(id)-lo) > 1e-12 {
				t.Fatalf("trial %d: pinned var drifted: %v != %v", trial, a.Value(id), lo)
			}
		}
	}
}
