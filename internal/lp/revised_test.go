package lp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

// TestEnginesAgreeOnKnownProblems re-runs the hand-checked problems from
// the tableau suite on the revised engine.
func TestEnginesAgreeOnKnownProblems(t *testing.T) {
	build := map[string]func() (*Problem, float64, Status){
		"two-var max": func() (*Problem, float64, Status) {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 0, math.Inf(1), 3)
			y := p.AddVar("y", 0, math.Inf(1), 2)
			p.AddConstraint("c1", LE, 4, Term{x, 1}, Term{y, 1})
			p.AddConstraint("c2", LE, 6, Term{x, 1}, Term{y, 3})
			return p, 12, Optimal
		},
		"equality": func() (*Problem, float64, Status) {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 3, 1)
			y := p.AddVar("y", 0, math.Inf(1), 2)
			p.AddConstraint("bal", EQ, 5, Term{x, 1}, Term{y, 1})
			return p, 7, Optimal
		},
		"bounded": func() (*Problem, float64, Status) {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 0, 1.5, 1)
			y := p.AddVar("y", 0, 2, 1)
			p.AddConstraint("cap", LE, 3, Term{x, 1}, Term{y, 1})
			return p, 3, Optimal
		},
		"negative-lo": func() (*Problem, float64, Status) {
			p := NewProblem(Minimize)
			x := p.AddVar("x", -5, math.Inf(1), 1)
			y := p.AddVar("y", 0, 2, 0)
			p.AddConstraint("bal", EQ, 0, Term{x, 1}, Term{y, 1})
			return p, -2, Optimal
		},
		"infeasible": func() (*Problem, float64, Status) {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 1, 1)
			p.AddConstraint("low", GE, 5, Term{x, 1})
			return p, 0, Infeasible
		},
		"unbounded": func() (*Problem, float64, Status) {
			p := NewProblem(Maximize)
			p.AddVar("x", 0, math.Inf(1), 1)
			return p, 0, Unbounded
		},
		"beale": func() (*Problem, float64, Status) {
			p := NewProblem(Minimize)
			x1 := p.AddVar("x1", 0, math.Inf(1), -0.75)
			x2 := p.AddVar("x2", 0, math.Inf(1), 150)
			x3 := p.AddVar("x3", 0, math.Inf(1), -0.02)
			x4 := p.AddVar("x4", 0, math.Inf(1), 6)
			p.AddConstraint("r1", LE, 0, Term{x1, 0.25}, Term{x2, -60}, Term{x3, -0.04}, Term{x4, 9})
			p.AddConstraint("r2", LE, 0, Term{x1, 0.5}, Term{x2, -90}, Term{x3, -0.02}, Term{x4, 3})
			p.AddConstraint("r3", LE, 1, Term{x3, 1})
			return p, -0.05, Optimal
		},
		"badly-scaled": func() (*Problem, float64, Status) {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, math.Inf(1), 1)
			p.AddConstraint("huge", GE, 3e9, Term{x, 1e9})
			return p, 3, Optimal
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			p, wantObj, wantStatus := mk()
			sol, err := p.SolveWith(RevisedEngine)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != wantStatus {
				t.Fatalf("status = %v, want %v", sol.Status, wantStatus)
			}
			if wantStatus == Optimal && math.Abs(sol.Objective-wantObj) > 1e-6 {
				t.Fatalf("objective = %v, want %v", sol.Objective, wantObj)
			}
		})
	}
}

// TestEnginesAgreeOnRandomLPs is the cross-validation harness: both engines
// must report the same status and (when optimal) the same objective and
// duals on a large batch of random problems.
func TestEnginesAgreeOnRandomLPs(t *testing.T) {
	src := rng.New(2718)
	for trial := 0; trial < 400; trial++ {
		n := 1 + src.Intn(7)
		m := src.Intn(8)
		sense := Minimize
		if src.Bernoulli(0.5) {
			sense = Maximize
		}
		p, _, _ := feasibleRandomLP(src, n, m, sense)
		a, err := p.SolveWith(TableauEngine)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.SolveWith(RevisedEngine)
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: status tableau=%v revised=%v", trial, a.Status, b.Status)
		}
		if a.Status != Optimal {
			continue
		}
		tol := 1e-6 * (1 + math.Abs(a.Objective))
		if math.Abs(a.Objective-b.Objective) > tol {
			t.Fatalf("trial %d: objective tableau=%v revised=%v", trial, a.Objective, b.Objective)
		}
		// The revised solution must be feasible under the same checker.
		checkFeasible(t, p, b)
	}
}

// TestEnginesAgreeOnInfeasibleAndDegenerate stresses the disagreement-prone
// cases: tight equalities, redundant rows, pinned variables.
func TestEnginesAgreeOnInfeasibleAndDegenerate(t *testing.T) {
	src := rng.New(31415)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(4)
		p := NewProblem(Minimize)
		ids := make([]VarID, n)
		for j := 0; j < n; j++ {
			lo := src.Uniform(-1, 1)
			hi := lo
			if src.Bernoulli(0.7) {
				hi = lo + src.Uniform(0, 2)
			}
			ids[j] = p.AddVar("x", lo, hi, src.Uniform(-2, 2))
		}
		rows := 1 + src.Intn(4)
		for i := 0; i < rows; i++ {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{ids[j], src.Uniform(-1, 1)}
			}
			rel := []Rel{LE, GE, EQ}[src.Intn(3)]
			p.AddConstraint("r", rel, src.Uniform(-1, 1), terms...)
		}
		a, err := p.SolveWith(TableauEngine)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.SolveWith(RevisedEngine)
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: status tableau=%v revised=%v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal {
			tol := 1e-6 * (1 + math.Abs(a.Objective))
			if math.Abs(a.Objective-b.Objective) > tol {
				t.Fatalf("trial %d: objective tableau=%v revised=%v", trial, a.Objective, b.Objective)
			}
		}
	}
}

// TestRevisedDuals re-runs the dual recovery checks on the revised engine.
func TestRevisedDuals(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, math.Inf(1), 3)
	y := p.AddVar("y", 0, math.Inf(1), 2)
	p.AddConstraint("c1", LE, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("c2", LE, 6, Term{x, 1}, Term{y, 3})
	sol, err := p.SolveWith(RevisedEngine)
	requireStatus(t, sol, err, Optimal)
	if got := sol.Dual(0); math.Abs(got-3) > 1e-9 {
		t.Errorf("dual of binding row = %v, want 3", got)
	}
	if got := sol.Dual(1); math.Abs(got) > 1e-9 {
		t.Errorf("dual of slack row = %v, want 0", got)
	}

	q := NewProblem(Minimize)
	z := q.AddVar("z", 0, math.Inf(1), 2)
	q.AddConstraint("req", GE, 5, Term{z, 1})
	sol, err = q.SolveWith(RevisedEngine)
	requireStatus(t, sol, err, Optimal)
	if got := sol.Dual(0); math.Abs(got-2) > 1e-9 {
		t.Errorf("GE dual = %v, want 2", got)
	}
}
