package lp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

const testEps = 1e-6

func requireStatus(t *testing.T, sol *Solution, err error, want Status) {
	t.Helper()
	if err != nil {
		t.Fatalf("Solve returned error: %v", err)
	}
	if sol.Status != want {
		t.Fatalf("status = %v, want %v", sol.Status, want)
	}
}

func TestTwoVariableBasic(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6, x,y >= 0  -> x=4, y=0, obj=12.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, math.Inf(1), 3)
	y := p.AddVar("y", 0, math.Inf(1), 2)
	p.AddConstraint("c1", LE, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("c2", LE, 6, Term{x, 1}, Term{y, 3})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-12) > testEps {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.Value(x)-4) > testEps || math.Abs(sol.Value(y)) > testEps {
		t.Errorf("solution = (%v,%v), want (4,0)", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0 -> x=10 y=0? check:
	// cost of x is cheaper (2<3) so all on x: x=10, obj=20.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2, math.Inf(1), 2)
	y := p.AddVar("y", 0, math.Inf(1), 3)
	p.AddConstraint("demand", GE, 10, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-20) > testEps {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x <= 3 -> x=3, y=2, obj=7.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 0, math.Inf(1), 2)
	p.AddConstraint("bal", EQ, 5, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-7) > testEps {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
	if math.Abs(sol.Value(x)-3) > testEps || math.Abs(sol.Value(y)-2) > testEps {
		t.Errorf("solution = (%v,%v), want (3,2)", sol.Value(x), sol.Value(y))
	}
}

func TestUpperBoundedVariables(t *testing.T) {
	// max x + y, x <= 1.5 (bound), y <= 2 (bound), x + y <= 3 -> obj 3 with
	// x=1.5 (binding), y=1.5.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1.5, 1)
	y := p.AddVar("y", 0, 2, 1)
	p.AddConstraint("cap", LE, 3, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-3) > testEps {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestNegativeLowerBound(t *testing.T) {
	// min x s.t. x >= -5 (bound), x + y = 0, y <= 2 -> x=-2, y=2.
	p := NewProblem(Minimize)
	x := p.AddVar("x", -5, math.Inf(1), 1)
	y := p.AddVar("y", 0, 2, 0)
	p.AddConstraint("bal", EQ, 0, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(x)+2) > testEps {
		t.Errorf("x = %v, want -2", sol.Value(x))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddConstraint("low", GE, 5, Term{x, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Infeasible)
}

func TestInfeasibleEqualPair(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, math.Inf(1), 1)
	y := p.AddVar("y", 0, math.Inf(1), 1)
	p.AddConstraint("a", EQ, 1, Term{x, 1}, Term{y, 1})
	p.AddConstraint("b", EQ, 3, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Infeasible)
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	p.AddVar("x", 0, math.Inf(1), 1) // unconstrained upward
	y := p.AddVar("y", 0, math.Inf(1), 0)
	p.AddConstraint("c", LE, 3, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Unbounded)
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1, 4, -2) // negative cost: runs to upper bound
	y := p.AddVar("y", 1, 4, 3)  // positive cost: stays at lower bound
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if sol.Value(x) != 4 || sol.Value(y) != 1 {
		t.Errorf("solution = (%v,%v), want (4,1)", sol.Value(x), sol.Value(y))
	}
	if math.Abs(sol.Objective-(-8+3)) > testEps {
		t.Errorf("objective = %v, want -5", sol.Objective)
	}
}

func TestNoConstraintsUnbounded(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 0, math.Inf(1), -1)
	sol, err := p.Solve()
	requireStatus(t, sol, err, Unbounded)
}

func TestEmptyConstraintConsistent(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 0, 1, 1)
	p.AddConstraint("trivial", LE, 0) // 0 <= 0
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
}

func TestEmptyConstraintInconsistent(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 0, 1, 1)
	p.AddConstraint("impossible", GE, 1) // 0 >= 1
	sol, err := p.Solve()
	requireStatus(t, sol, err, Infeasible)
}

func TestPinnedVariable(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2, 2, 5) // pinned to 2
	y := p.AddVar("y", 0, math.Inf(1), 1)
	p.AddConstraint("c", GE, 6, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(x)-2) > testEps || math.Abs(sol.Value(y)-4) > testEps {
		t.Errorf("solution = (%v,%v), want (2,4)", sol.Value(x), sol.Value(y))
	}
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, math.Inf(1), 1)
	p.AddConstraint("c", LE, 6, Term{x, 1}, Term{x, 2}) // 3x <= 6
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(x)-2) > testEps {
		t.Errorf("x = %v, want 2", sol.Value(x))
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows force a redundant-row artificial to stay basic.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, math.Inf(1), 1)
	y := p.AddVar("y", 0, math.Inf(1), 1)
	p.AddConstraint("a", EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("b", EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("c", EQ, 8, Term{x, 2}, Term{y, 2})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-4) > testEps {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

// TestBealeCycling exercises the classic Beale example that cycles under
// naive Dantzig pivoting without an anti-cycling rule.
func TestBealeCycling(t *testing.T) {
	p := NewProblem(Minimize)
	x1 := p.AddVar("x1", 0, math.Inf(1), -0.75)
	x2 := p.AddVar("x2", 0, math.Inf(1), 150)
	x3 := p.AddVar("x3", 0, math.Inf(1), -0.02)
	x4 := p.AddVar("x4", 0, math.Inf(1), 6)
	p.AddConstraint("r1", LE, 0, Term{x1, 0.25}, Term{x2, -60}, Term{x3, -0.04}, Term{x4, 9})
	p.AddConstraint("r2", LE, 0, Term{x1, 0.5}, Term{x2, -90}, Term{x3, -0.02}, Term{x4, 3})
	p.AddConstraint("r3", LE, 1, Term{x3, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestKleeMinty3(t *testing.T) {
	// 3-dimensional Klee-Minty cube: max 100x1 + 10x2 + x3.
	p := NewProblem(Maximize)
	x1 := p.AddVar("x1", 0, math.Inf(1), 100)
	x2 := p.AddVar("x2", 0, math.Inf(1), 10)
	x3 := p.AddVar("x3", 0, math.Inf(1), 1)
	p.AddConstraint("c1", LE, 1, Term{x1, 1})
	p.AddConstraint("c2", LE, 100, Term{x1, 20}, Term{x2, 1})
	p.AddConstraint("c3", LE, 10000, Term{x1, 200}, Term{x2, 20}, Term{x3, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Objective-10000) > 1e-4 {
		t.Errorf("objective = %v, want 10000", sol.Objective)
	}
}

func TestMaximizeSenseSignHandling(t *testing.T) {
	// The same feasible set, both senses.
	build := func(sense Sense) (*Problem, VarID) {
		p := NewProblem(sense)
		x := p.AddVar("x", 1, 5, 1)
		p.AddConstraint("c", LE, 4, Term{x, 1})
		return p, x
	}
	pmin, xmin := build(Minimize)
	sol, err := pmin.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(xmin)-1) > testEps {
		t.Errorf("minimize: x = %v, want 1", sol.Value(xmin))
	}
	pmax, xmax := build(Maximize)
	sol, err = pmax.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(xmax)-4) > testEps {
		t.Errorf("maximize: x = %v, want 4", sol.Value(xmax))
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 10, 1)
	p.AddConstraint("c", GE, 2, Term{x, 1})
	q := p.Clone()
	q.SetVarBounds(x, 5, 10)

	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(x)-2) > testEps {
		t.Errorf("original x = %v, want 2", sol.Value(x))
	}
	sol, err = q.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(x)-5) > testEps {
		t.Errorf("clone x = %v, want 5", sol.Value(x))
	}
}

func TestBadVariableReference(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 0, 1, 1)
	p.AddConstraint("c", LE, 1, Term{VarID(7), 1})
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for unknown variable reference")
	}
}

func TestNaNCoefficientRejected(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddConstraint("c", LE, 1, Term{x, math.NaN()})
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for NaN coefficient")
	}
}

// --- randomized cross-checks ------------------------------------------------

// feasibleRandomLP builds a random LP that is feasible by construction
// (constraints are sampled to hold at a random interior point x0) and
// returns the problem, x0, and the variable ids.
func feasibleRandomLP(src *rng.Source, n, m int, sense Sense) (*Problem, []float64, []VarID) {
	p := NewProblem(sense)
	ids := make([]VarID, n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := src.Uniform(-2, 1)
		hi := lo + src.Uniform(0.5, 4)
		cost := src.Uniform(-3, 3)
		ids[j] = p.AddVar("v", lo, hi, cost)
		x0[j] = src.Uniform(lo, hi)
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, n)
		lhs := 0.0
		for j := 0; j < n; j++ {
			if src.Float64() < 0.3 {
				continue // sparse-ish rows
			}
			coef := src.Uniform(-2, 2)
			terms = append(terms, Term{ids[j], coef})
			lhs += coef * x0[j]
		}
		slack := src.Uniform(0, 2)
		if src.Bernoulli(0.5) {
			p.AddConstraint("r", LE, lhs+slack, terms...)
		} else {
			p.AddConstraint("r", GE, lhs-slack, terms...)
		}
	}
	return p, x0, ids
}

func evalObjective(p *Problem, ids []VarID, x []float64) float64 {
	obj := 0.0
	for j, id := range ids {
		obj += p.vars[id].cost * x[j]
	}
	return obj
}

// checkFeasible verifies x satisfies all bounds and constraints of p.
func checkFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	const tol = 1e-6
	for j := range p.vars {
		v := sol.Value(VarID(j))
		if v < p.vars[j].lo-tol || v > p.vars[j].hi+tol {
			t.Fatalf("var %d value %v outside [%v,%v]", j, v, p.vars[j].lo, p.vars[j].hi)
		}
	}
	for _, c := range p.cons {
		lhs := 0.0
		for _, term := range c.terms {
			lhs += term.Coef * sol.Value(term.Var)
		}
		switch c.rel {
		case LE:
			if lhs > c.rhs+tol {
				t.Fatalf("constraint %q violated: %v <= %v", c.name, lhs, c.rhs)
			}
		case GE:
			if lhs < c.rhs-tol {
				t.Fatalf("constraint %q violated: %v >= %v", c.name, lhs, c.rhs)
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tol {
				t.Fatalf("constraint %q violated: %v = %v", c.name, lhs, c.rhs)
			}
		}
	}
}

func TestRandomFeasibleLPs(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(6)
		m := src.Intn(8)
		sense := Minimize
		if src.Bernoulli(0.5) {
			sense = Maximize
		}
		p, x0, ids := feasibleRandomLP(src, n, m, sense)
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: error %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for feasible bounded LP", trial, sol.Status)
		}
		checkFeasible(t, p, sol)
		ref := evalObjective(p, ids, x0)
		if sense == Minimize && sol.Objective > ref+1e-6 {
			t.Fatalf("trial %d: optimal %v worse than feasible point %v", trial, sol.Objective, ref)
		}
		if sense == Maximize && sol.Objective < ref-1e-6 {
			t.Fatalf("trial %d: optimal %v worse than feasible point %v", trial, sol.Objective, ref)
		}
	}
}

// TestStrongDuality solves random primal/dual pairs
//
//	primal: min c'x  s.t. Ax >= b, x >= 0      (c >= 0, A > 0)
//	dual:   max b'y  s.t. A'y <= c, y >= 0
//
// Both are feasible by construction, so the optima must coincide.
func TestStrongDuality(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 120; trial++ {
		n := 1 + src.Intn(5)
		m := 1 + src.Intn(5)
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for j := range c {
			c[j] = src.Uniform(0, 3)
		}
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = src.Uniform(0.1, 2.1) // strictly positive
			}
			b[i] = src.Uniform(-1, 3)
		}

		primal := NewProblem(Minimize)
		xs := make([]VarID, n)
		for j := 0; j < n; j++ {
			xs[j] = primal.AddVar("x", 0, math.Inf(1), c[j])
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{xs[j], A[i][j]}
			}
			primal.AddConstraint("row", GE, b[i], terms...)
		}

		dual := NewProblem(Maximize)
		ys := make([]VarID, m)
		for i := 0; i < m; i++ {
			ys[i] = dual.AddVar("y", 0, math.Inf(1), b[i])
		}
		for j := 0; j < n; j++ {
			terms := make([]Term, m)
			for i := 0; i < m; i++ {
				terms[i] = Term{ys[i], A[i][j]}
			}
			dual.AddConstraint("col", LE, c[j], terms...)
		}

		psol, err := primal.Solve()
		requireStatus(t, psol, err, Optimal)
		dsol, err := dual.Solve()
		requireStatus(t, dsol, err, Optimal)
		if math.Abs(psol.Objective-dsol.Objective) > 1e-5*(1+math.Abs(psol.Objective)) {
			t.Fatalf("trial %d: duality gap: primal %v dual %v", trial, psol.Objective, dsol.Objective)
		}
	}
}

// TestAgainstVertexEnumeration compares the simplex optimum with exhaustive
// vertex enumeration on small random box-constrained problems.
func TestAgainstVertexEnumeration(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 120; trial++ {
		n := 2 + src.Intn(2) // 2..3 variables
		m := 1 + src.Intn(4)
		p := NewProblem(Minimize)
		ids := make([]VarID, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		cost := make([]float64, n)
		for j := 0; j < n; j++ {
			lo[j] = 0
			hi[j] = src.Uniform(1, 3)
			cost[j] = src.Uniform(-2, 2)
			ids[j] = p.AddVar("x", lo[j], hi[j], cost[j])
		}
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				rows[i][j] = src.Uniform(-1, 2)
				terms[j] = Term{ids[j], rows[i][j]}
			}
			// RHS chosen so the origin is feasible: rhs >= 0.
			rhs[i] = src.Uniform(0, 3)
			p.AddConstraint("row", LE, rhs[i], terms...)
		}
		sol, err := p.Solve()
		requireStatus(t, sol, err, Optimal)
		checkFeasible(t, p, sol)

		best := enumerateBest(n, lo, hi, cost, rows, rhs)
		if sol.Objective > best+1e-5 {
			t.Fatalf("trial %d: simplex %v worse than enumerated vertex %v", trial, sol.Objective, best)
		}
		if sol.Objective < best-1e-5 {
			t.Fatalf("trial %d: simplex %v below any vertex %v (infeasible point?)", trial, sol.Objective, best)
		}
	}
}

// enumerateBest exhaustively enumerates candidate vertices of
// {lo <= x <= hi, rows.x <= rhs} by intersecting every subset of n tight
// hyperplanes chosen among constraint rows and box faces, and returns the
// minimum cost over feasible intersections.
func enumerateBest(n int, lo, hi, cost []float64, rows [][]float64, rhs []float64) float64 {
	// Build the full list of hyperplanes a.x = b.
	type plane struct {
		a []float64
		b float64
	}
	var planes []plane
	for i := range rows {
		planes = append(planes, plane{rows[i], rhs[i]})
	}
	for j := 0; j < n; j++ {
		alo := make([]float64, n)
		alo[j] = 1
		planes = append(planes, plane{alo, lo[j]})
		ahi := make([]float64, n)
		ahi[j] = 1
		planes = append(planes, plane{ahi, hi[j]})
	}

	feasible := func(x []float64) bool {
		const tol = 1e-7
		for j := 0; j < n; j++ {
			if x[j] < lo[j]-tol || x[j] > hi[j]+tol {
				return false
			}
		}
		for i := range rows {
			s := 0.0
			for j := 0; j < n; j++ {
				s += rows[i][j] * x[j]
			}
			if s > rhs[i]+tol {
				return false
			}
		}
		return true
	}

	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			A := make([][]float64, n)
			b := make([]float64, n)
			for r, pi := range idx {
				A[r] = append([]float64(nil), planes[pi].a...)
				b[r] = planes[pi].b
			}
			x, ok := gaussSolve(A, b)
			if !ok || !feasible(x) {
				return
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += cost[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// gaussSolve solves Ax = b with partial pivoting; ok=false if singular.
func gaussSolve(A [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-9 {
			return nil, false
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				A[r][k] -= f * A[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= A[r][k] * x[k]
		}
		x[r] = s / A[r][r]
	}
	return x, true
}

// TestBadlyScaledRows exercises the row equilibration: constraints whose
// coefficients sit ~12 orders of magnitude below the objective weights must
// still bind (this is the structure of the scheduler's SINR rows).
func TestBadlyScaledRows(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1, 1e7)
	y := p.AddVar("y", 0, 1, 9e6)
	// Tiny-coefficient row: 1e-12 x + 1e-12 y <= 1.5e-12, i.e. x + y <= 1.5.
	p.AddConstraint("tiny", LE, 1.5e-12, Term{x, 1e-12}, Term{y, 1e-12})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if sol.Value(x)+sol.Value(y) > 1.5+1e-6 {
		t.Fatalf("tiny-coefficient constraint ignored: x+y = %v", sol.Value(x)+sol.Value(y))
	}
	if math.Abs(sol.Objective-(1e7+0.5*9e6)) > 1 {
		t.Errorf("objective = %v, want %v", sol.Objective, 1e7+0.5*9e6)
	}
}

// TestHugeCoefficientRows: the mirror case with very large row norms.
func TestHugeCoefficientRows(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, math.Inf(1), 1)
	p.AddConstraint("huge", GE, 3e9, Term{x, 1e9}) // x >= 3
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if math.Abs(sol.Value(x)-3) > 1e-6 {
		t.Errorf("x = %v, want 3", sol.Value(x))
	}
}
