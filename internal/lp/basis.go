package lp

import "math"

// Basis is an opaque snapshot of a simplex solve's final basis: the
// bound placement of every structural and slack column plus which column
// is basic in each row. A Basis is exported from one WarmSolver
// (WarmSolver.ExportBasis) and imported into another whose Problem shares
// the same structure (WarmSolver.ImportBasis); the import path rebuilds
// and refactorizes the basis matrix under the new problem's coefficients,
// so a snapshot is always a starting guess, never trusted state.
//
// Snapshots are row-scale invariant — they record placements, not values —
// which is what makes them portable across problems whose coefficients
// (and therefore equilibration) differ.
type Basis struct {
	sig      uint64
	status   []colStatus
	rowBasic []int32
}

// FNV-1a-style 64-bit mixing, one multiply per word instead of one per
// byte: signatures are hashed over every constraint term of LPs rebuilt
// each slot, and the byte-wise loop was measurable in slot profiles. The
// values are ephemeral (never persisted), and a collision only means a
// basis import starts from a nonsense guess — the dimension checks and
// refactorization validate it, and the solver falls back cold.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime64
	h ^= h >> 29
	return h
}

// StructureSignature hashes the problem's immutable structure — objective
// sense, dimensions, constraint relations, and the term sparsity pattern —
// into a 64-bit FNV-1a value. Two problems with equal signatures have
// interchangeable basis layouts, so a Basis exported from one can seed the
// other. Bounds, costs, right-hand sides, and coefficient values are
// deliberately excluded: those are exactly what warm-started re-solves
// change between slots, and a basis remains a usable starting guess across
// them (the import path refactorizes under the new coefficients and the
// solver falls back cold if the guess has gone singular or stale).
func (p *Problem) StructureSignature() uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(p.sense))
	h = fnvMix(h, uint64(len(p.vars)))
	h = fnvMix(h, uint64(len(p.cons)))
	for _, c := range p.cons {
		h = fnvMix(h, uint64(c.rel))
		h = fnvMix(h, uint64(len(c.terms)))
		for _, t := range c.terms {
			h = fnvMix(h, uint64(t.Var))
		}
	}
	return h
}

// Matches reports whether the snapshot was taken from a problem whose
// structure signature equals p's — the precondition for ImportBasis to
// accept it. Callers with one-solve-per-structure workloads (no fixing
// rounds) use it to decide between a warm-started revised solve and the
// cheaper presolved cold path before committing to either.
func (b *Basis) Matches(p *Problem) bool {
	return b != nil && b.sig == p.StructureSignature()
}

// exportBasis snapshots the engine's basis in the canonical column layout
// (structural variables 0..n−1, then slacks in row order). It returns nil
// while an artificial variable is still basic: such a basis has no meaning
// for an engine built without artificial columns.
func (e *revisedEngine) exportBasis(sig uint64) *Basis {
	for _, b := range e.basis {
		if b >= e.artStart {
			return nil
		}
	}
	st := make([]colStatus, e.artStart)
	copy(st, e.status[:e.artStart])
	rb := make([]int32, e.m)
	for i, b := range e.basis {
		rb[i] = int32(b)
	}
	return &Basis{sig: sig, status: st, rowBasic: rb}
}

// newRevisedFromBasis builds an engine for p with the snapshot's basis
// installed in place of the cold slack/artificial starting basis. No
// artificials and no row flips are introduced: the snapshot's basis matrix
// is factorized directly (one O(m³) Gauss-Jordan — the price of crossing a
// problem-instance boundary, paid once per import). It returns nil when
// the snapshot does not fit p's column layout or its basis matrix is
// singular under p's coefficients; callers fall back to a cold solve.
func newRevisedFromBasis(p *Problem, b *Basis) *revisedEngine {
	e, rhs, _ := newEngineShell(p)
	e.ncol = len(e.status)
	e.artStart = e.ncol
	if len(b.status) != e.ncol || len(b.rowBasic) != e.m {
		return nil
	}
	nbasic := 0
	for _, st := range b.status {
		if st == basic {
			nbasic++
		}
	}
	if nbasic != e.m {
		return nil
	}
	e.basis = make([]int, e.m)
	seen := make([]bool, e.ncol)
	for i, bj := range b.rowBasic {
		j := int(bj)
		if j < 0 || j >= e.ncol || b.status[j] != basic || seen[j] {
			return nil
		}
		seen[j] = true
		e.basis[i] = j
	}
	for j := 0; j < e.ncol; j++ {
		st := b.status[j]
		if st == atUpper && math.IsInf(e.hi[j], 1) {
			st = atLower
		}
		switch st {
		case basic:
			e.status[j] = basic
		case atUpper:
			e.status[j] = atUpper
			e.xval[j] = e.hi[j]
		default:
			e.status[j] = atLower
			e.xval[j] = e.lo[j]
		}
	}
	e.bvec = make([]float64, e.m)
	copy(e.bvec, rhs)
	e.xB = make([]float64, e.m)
	e.binv = make([][]float64, e.m)
	for i := range e.binv {
		e.binv[i] = make([]float64, e.m)
		e.binv[i][i] = 1
	}
	e.y = make([]float64, e.m)
	e.dir = make([]float64, e.m)
	e.cvec = make([]float64, e.ncol)
	if !e.refactorize() {
		return nil
	}
	copy(e.cvec, e.cost)
	e.syncJournal(p) // built from p's current state: pending edits covered
	return e
}
