package lp

import "math"

// presolveEps is the width under which a variable counts as fixed.
const presolveEps = 1e-12

// presolved carries a reduced problem plus the mappings to undo it.
type presolved struct {
	reduced *Problem
	// varMap[j] is the reduced index of original variable j, or -1 when
	// the variable was fixed and substituted out.
	varMap []int
	// fixedVal[j] is the value of a substituted variable.
	fixedVal []float64
	// rowMap[i] is the reduced index of original row i, or -1 when the row
	// became empty and was dropped (its dual is 0).
	rowMap []int
	// infeasible is set when a dropped row's residual was inconsistent.
	infeasible bool
	// identity is set when nothing was reduced (solve the original).
	identity bool
}

// presolve substitutes fixed variables (lo == hi) out of the problem and
// drops rows that become empty, checking their consistency. These are the
// only transformations applied: they shrink the sequential-fix scheduler's
// LPs (which pin more variables each round) while leaving every remaining
// row's dual multiplier unchanged, so dual recovery needs no adjustment.
func presolve(p *Problem) *presolved {
	ps := &presolved{
		varMap:   make([]int, len(p.vars)),
		fixedVal: make([]float64, len(p.vars)),
		rowMap:   make([]int, len(p.cons)),
	}
	nFixed := 0
	for j, v := range p.vars {
		if v.hi-v.lo <= presolveEps {
			ps.varMap[j] = -1
			ps.fixedVal[j] = (v.lo + v.hi) / 2
			nFixed++
		}
	}
	if nFixed == 0 {
		ps.identity = true
		return ps
	}

	red := NewProblem(p.sense)
	red.maxIters = p.maxIters // the solve budget applies to the reduced solve
	for j, v := range p.vars {
		if ps.varMap[j] == -1 {
			continue
		}
		ps.varMap[j] = int(red.AddVar(v.name, v.lo, v.hi, v.cost))
	}
	for i, c := range p.cons {
		//lint:allow hotalloc -- not scratch: AddConstraint retains the slice in the reduced problem
		terms := make([]Term, 0, len(c.terms))
		rhs := c.rhs
		for _, t := range c.terms {
			if rj := ps.varMap[t.Var]; rj >= 0 {
				terms = append(terms, Term{Var: VarID(rj), Coef: t.Coef})
			} else {
				rhs -= t.Coef * ps.fixedVal[t.Var]
			}
		}
		if len(terms) == 0 {
			// Row fully substituted: verify it holds.
			const tol = 1e-7
			ok := true
			switch c.rel {
			case LE:
				ok = 0 <= rhs+tol
			case GE:
				ok = 0 >= rhs-tol
			case EQ:
				ok = math.Abs(rhs) <= tol
			}
			if !ok {
				ps.infeasible = true
				return ps
			}
			ps.rowMap[i] = -1
			continue
		}
		ps.rowMap[i] = red.NumConstraints()
		red.AddConstraint(c.name, c.rel, rhs, terms...)
	}
	ps.reduced = red
	return ps
}

// expand maps a reduced solution back onto the original problem.
func (ps *presolved) expand(p *Problem, sol *Solution) *Solution {
	out := &Solution{Status: sol.Status, Iterations: sol.Iterations}
	if sol.Status != Optimal {
		return out
	}
	out.x = make([]float64, len(p.vars))
	for j := range p.vars {
		if rj := ps.varMap[j]; rj >= 0 {
			out.x[j] = sol.x[rj]
		} else {
			out.x[j] = ps.fixedVal[j]
		}
	}
	obj := 0.0
	for j, v := range p.vars {
		obj += v.cost * out.x[j]
	}
	out.Objective = obj
	out.y = make([]float64, len(p.cons))
	for i := range p.cons {
		if ri := ps.rowMap[i]; ri >= 0 && ri < len(sol.y) {
			out.y[i] = sol.y[ri]
		}
	}
	return out
}
