package lp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

// buildDense builds a random feasible dense LP with n variables and m rows.
func buildDense(src *rng.Source, n, m int) *Problem {
	p := NewProblem(Maximize)
	ids := make([]VarID, n)
	for j := 0; j < n; j++ {
		ids[j] = p.AddVar("x", 0, 1, src.Uniform(0, 10))
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{Var: ids[j], Coef: src.Uniform(0, 2)}
		}
		p.AddConstraint("row", LE, src.Uniform(1, float64(n)/2), terms...)
	}
	return p
}

func benchSolve(b *testing.B, n, m int) {
	b.Helper()
	src := rng.New(1)
	p := buildDense(src, n, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
		if math.IsNaN(sol.Objective) {
			b.Fatal("NaN objective")
		}
	}
}

func BenchmarkSolveSmall(b *testing.B)  { benchSolve(b, 10, 8) }
func BenchmarkSolveMedium(b *testing.B) { benchSolve(b, 60, 50) }
func BenchmarkSolveLarge(b *testing.B)  { benchSolve(b, 200, 150) }

// BenchmarkSolveSchedulingShaped mirrors the structure of the per-slot S1
// LPs: binary-boxed variables, sparse node-capacity rows, dense SINR rows.
func BenchmarkSolveSchedulingShaped(b *testing.B) {
	src := rng.New(2)
	const pairs = 120
	p := NewProblem(Maximize)
	ids := make([]VarID, pairs)
	for k := 0; k < pairs; k++ {
		ids[k] = p.AddVar("a", 0, 1, src.Uniform(1e5, 1e7))
	}
	// Node rows: each touches ~10 variables.
	for nrow := 0; nrow < 22; nrow++ {
		terms := make([]Term, 0, 12)
		for _, k := range src.Subset(pairs, 10) {
			terms = append(terms, Term{Var: ids[k], Coef: 1})
		}
		p.AddConstraint("radio", LE, 1, terms...)
	}
	// SINR-like rows: one per pair over ~pairs/5 band-mates.
	for k := 0; k < pairs; k++ {
		terms := []Term{{Var: ids[k], Coef: src.Uniform(-1, 1)}}
		for _, k2 := range src.Subset(pairs, pairs/5) {
			if k2 == k {
				continue
			}
			terms = append(terms, Term{Var: ids[k2], Coef: src.Uniform(0, 0.5)})
		}
		p.AddConstraint("sinr", LE, src.Uniform(0.5, 1), terms...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol, err := p.Solve(); err != nil || sol.Status != Optimal {
			b.Fatalf("err=%v status", err)
		}
	}
}

// Engine ablation: the dense tableau vs the revised simplex on the
// scheduling-shaped instance (many columns, fewer rows).
func BenchmarkEngineTableauSchedulingShaped(b *testing.B) {
	benchEngineSchedulingShaped(b, TableauEngine)
}

func BenchmarkEngineRevisedSchedulingShaped(b *testing.B) {
	benchEngineSchedulingShaped(b, RevisedEngine)
}

func benchEngineSchedulingShaped(b *testing.B, eng Engine) {
	b.Helper()
	src := rng.New(2)
	const pairs = 120
	p := NewProblem(Maximize)
	ids := make([]VarID, pairs)
	for k := 0; k < pairs; k++ {
		ids[k] = p.AddVar("a", 0, 1, src.Uniform(1e5, 1e7))
	}
	for nrow := 0; nrow < 22; nrow++ {
		terms := make([]Term, 0, 12)
		for _, k := range src.Subset(pairs, 10) {
			terms = append(terms, Term{Var: ids[k], Coef: 1})
		}
		p.AddConstraint("radio", LE, 1, terms...)
	}
	for k := 0; k < pairs; k++ {
		terms := []Term{{Var: ids[k], Coef: src.Uniform(-1, 1)}}
		for _, k2 := range src.Subset(pairs, pairs/5) {
			if k2 == k {
				continue
			}
			terms = append(terms, Term{Var: ids[k2], Coef: src.Uniform(0, 0.5)})
		}
		p.AddConstraint("sinr", LE, src.Uniform(0.5, 1), terms...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol, err := p.SolveWith(eng); err != nil || sol.Status != Optimal {
			b.Fatalf("err=%v status", err)
		}
	}
}
