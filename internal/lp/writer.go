package lp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteLP serializes the problem in the human-readable CPLEX-LP text
// format, so models can be inspected or cross-checked with external
// solvers. Variables are named x0, x1, … (the user-supplied names may
// repeat, which the format does not allow).
func (p *Problem) WriteLP(w io.Writer) error {
	var b strings.Builder
	if p.sense == Maximize {
		b.WriteString("Maximize\n obj:")
	} else {
		b.WriteString("Minimize\n obj:")
	}
	for j, v := range p.vars {
		if v.cost != 0 {
			fmt.Fprintf(&b, " %+g x%d", v.cost, j)
		}
	}
	b.WriteString("\nSubject To\n")
	coefs := make(map[VarID]float64, len(p.vars))
	order := make([]VarID, 0, len(p.vars))
	for i, c := range p.cons {
		fmt.Fprintf(&b, " c%d:", i)
		// Accumulate duplicate terms the way the solver does.
		clear(coefs)
		order = order[:0]
		for _, t := range c.terms {
			if _, seen := coefs[t.Var]; !seen {
				order = append(order, t.Var)
			}
			coefs[t.Var] += t.Coef
		}
		for _, v := range order {
			if coefs[v] != 0 {
				fmt.Fprintf(&b, " %+g x%d", coefs[v], v)
			}
		}
		if len(order) == 0 {
			b.WriteString(" 0 x0")
		}
		switch c.rel {
		case LE:
			fmt.Fprintf(&b, " <= %g\n", c.rhs)
		case GE:
			fmt.Fprintf(&b, " >= %g\n", c.rhs)
		case EQ:
			fmt.Fprintf(&b, " = %g\n", c.rhs)
		}
	}
	b.WriteString("Bounds\n")
	for j, v := range p.vars {
		switch {
		case math.IsInf(v.hi, 1):
			fmt.Fprintf(&b, " x%d >= %g\n", j, v.lo)
		//lint:allow nofloateq -- fixed bounds are assigned, not computed; exact match selects the "=" form
		case v.lo == v.hi:
			fmt.Fprintf(&b, " x%d = %g\n", j, v.lo)
		default:
			fmt.Fprintf(&b, " %g <= x%d <= %g\n", v.lo, j, v.hi)
		}
	}
	b.WriteString("End\n")
	_, err := io.WriteString(w, b.String())
	return err
}
