package lp

import "math"

// Numerical tolerances for the simplex engine.
const (
	priceTol = 1e-9  // reduced-cost tolerance for optimality
	pivTol   = 1e-9  // smallest acceptable pivot magnitude
	feasTol  = 1e-7  // phase-1 residual tolerance for feasibility
	boundEps = 1e-12 // slack when clamping values onto bounds
)

type colStatus int8

const (
	atLower colStatus = iota
	atUpper
	basic
)

// tableau is the dense simplex working state. Columns are ordered:
// structural variables, then slacks/surpluses, then artificials.
type tableau struct {
	m    int // rows
	n    int // structural variables
	ncol int // total columns

	// T is the current dictionary B^{-1}A, row-major (m rows of ncol).
	T [][]float64
	// d is the current reduced-cost row for the active phase objective.
	d []float64
	// cost is the phase-2 objective (sense-adjusted to minimize).
	cost []float64

	lo, hi []float64
	status []colStatus
	// xval holds the value of each nonbasic column (its active bound).
	xval []float64
	// basis[i] is the column basic in row i; xB[i] its value.
	basis []int
	xB    []float64

	nart     int // number of artificial columns (they occupy the tail)
	artStart int

	// iters counts simplex iterations (pivots + bound flips) across both
	// phases, reported on Solution.Iterations.
	iters int
	// limit, when positive, caps iters across both phases (the caller's
	// solve budget from Problem.SetIterationLimit).
	limit int

	// Dual recovery bookkeeping. rowMult[i] is the net multiplier taking
	// the user's original row i to the final setup row (equilibration and
	// sign flips). dualCol[i]/dualCoef[i] identify a column whose setup
	// matrix entry is ±1 on row i alone (the row's slack, or its
	// artificial for equality rows), from whose final reduced cost the
	// simplex multiplier is read.
	rowMult  []float64
	dualCol  []int
	dualCoef []float64
}

// newTableau converts p into equality standard form with slacks and
// artificials and installs an initial basic feasible point for phase 1.
func newTableau(p *Problem) *tableau {
	m := len(p.cons)
	n := len(p.vars)

	// Count slacks: one per inequality row.
	nslack := 0
	for _, c := range p.cons {
		if c.rel != EQ {
			nslack++
		}
	}
	// Reserve space for up to one artificial per row; unused ones are
	// simply never created.
	maxCols := n + nslack + m

	t := &tableau{
		m:      m,
		n:      n,
		limit:  p.maxIters,
		T:      make([][]float64, m),
		lo:     make([]float64, 0, maxCols),
		hi:     make([]float64, 0, maxCols),
		status: make([]colStatus, 0, maxCols),
		xval:   make([]float64, 0, maxCols),
		cost:   make([]float64, 0, maxCols),
		basis:  make([]int, m),
		xB:     make([]float64, m),

		rowMult:  make([]float64, m),
		dualCol:  make([]int, m),
		dualCoef: make([]float64, m),
	}
	for i := range t.rowMult {
		t.rowMult[i] = 1
		t.dualCol[i] = -1
	}

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}
	for _, v := range p.vars {
		lo, hi := v.lo, v.hi
		if lo > hi { // numerically-equal inverted box: pin
			lo, hi = hi, lo
		}
		t.addCol(lo, hi, sign*v.cost)
	}

	// Dense rows, slack columns, RHS.
	rhs := make([]float64, m)
	for i := range t.T {
		t.T[i] = make([]float64, maxCols)
	}
	for i, c := range p.cons {
		row := t.T[i]
		for _, term := range c.terms {
			row[term.Var] += term.Coef
		}
		rhs[i] = c.rhs
	}
	// Row equilibration: scale each row so its largest structural
	// coefficient has magnitude 1. Row scaling leaves the primal solution
	// unchanged and keeps badly-scaled models (e.g. SINR rows mixing
	// ~1e-12 gains with ~1e7 objective weights) inside the pivot
	// tolerances. Done before slack insertion so slack columns keep ±1.
	for i := range p.cons {
		row := t.T[i]
		maxAbs := 0.0
		for j := 0; j < n; j++ {
			if a := math.Abs(row[j]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 0 && (maxAbs < 1e-3 || maxAbs > 1e3) {
			inv := 1 / maxAbs
			for j := 0; j < n; j++ {
				if row[j] != 0 {
					row[j] *= inv
				}
			}
			rhs[i] *= inv
			t.rowMult[i] *= inv
		}
	}
	slackOf := make([]int, m)
	for i := range slackOf {
		slackOf[i] = -1
	}
	for i, c := range p.cons {
		switch c.rel {
		case LE:
			j := t.addCol(0, math.Inf(1), 0)
			t.T[i][j] = 1
			slackOf[i] = j
		case GE:
			j := t.addCol(0, math.Inf(1), 0)
			t.T[i][j] = -1
			slackOf[i] = j
		}
		if slackOf[i] >= 0 {
			t.dualCol[i] = slackOf[i]
		}
	}

	// Initial point: every column nonbasic at its lower bound.
	// Residual r_i = rhs_i - A_i . x  determines the initial basic column.
	t.artStart = len(t.status)
	for i := range p.cons {
		r := rhs[i]
		for j := 0; j < t.artStart; j++ {
			if t.T[i][j] != 0 {
				r -= t.T[i][j] * t.xval[j]
			}
		}
		if s := slackOf[i]; s >= 0 {
			// Slack value that would balance the row.
			sv := r / t.T[i][s] // coefficient is ±1
			if sv >= 0 {
				// Normalize the row so the basic (slack) column has +1.
				if t.T[i][s] < 0 {
					scaleRow(t.T[i], -1)
					rhs[i] = -rhs[i]
					t.rowMult[i] = -t.rowMult[i]
				}
				t.makeBasic(s, i, sv)
				continue
			}
		}
		// Need an artificial. Flip the row so the residual is >= 0.
		if r < 0 {
			scaleRow(t.T[i], -1)
			rhs[i] = -rhs[i]
			r = -r
			t.rowMult[i] = -t.rowMult[i]
		}
		j := t.addCol(0, math.Inf(1), 0)
		t.T[i][j] = 1
		t.makeBasic(j, i, r)
		if t.dualCol[i] < 0 {
			t.dualCol[i] = j // equality rows expose duals via the artificial
		}
	}
	t.ncol = len(t.status)
	t.nart = t.ncol - t.artStart
	// Record the setup-matrix entry of each row's dual column; reduced
	// costs are taken against the ORIGINAL columns, so this is read now,
	// before any pivoting.
	for i := 0; i < m; i++ {
		if j := t.dualCol[i]; j >= 0 {
			t.dualCoef[i] = t.T[i][j]
		}
	}
	// Trim rows to the realized column count.
	for i := range t.T {
		t.T[i] = t.T[i][:t.ncol]
	}
	t.d = make([]float64, t.ncol)
	return t
}

func (t *tableau) addCol(lo, hi, cost float64) int {
	t.lo = append(t.lo, lo)
	t.hi = append(t.hi, hi)
	t.cost = append(t.cost, cost)
	t.status = append(t.status, atLower)
	t.xval = append(t.xval, lo)
	return len(t.status) - 1
}

func (t *tableau) makeBasic(j, row int, value float64) {
	t.status[j] = basic
	t.basis[row] = j
	t.xB[row] = value
}

func scaleRow(row []float64, f float64) {
	for k := range row {
		if row[k] != 0 {
			row[k] *= f
		}
	}
}

// solve runs phase 1 then phase 2 and returns the final status.
func (t *tableau) solve() Status {
	if t.m == 0 {
		// No constraints: each variable sits at whichever bound its cost
		// prefers; unbounded if an improving direction has no bound.
		for j := 0; j < t.n; j++ {
			if t.cost[j] < 0 {
				if math.IsInf(t.hi[j], 1) {
					return Unbounded
				}
				t.status[j] = atUpper
				t.xval[j] = t.hi[j]
			}
		}
		return Optimal
	}

	if t.nart > 0 {
		// Phase 1: minimize the sum of artificials.
		phase1 := make([]float64, t.ncol)
		for j := t.artStart; j < t.ncol; j++ {
			phase1[j] = 1
		}
		t.computeReducedCosts(phase1)
		st := t.iterate()
		if st != Optimal {
			// Phase-1 objective is bounded below by zero, so Unbounded
			// cannot legitimately occur; propagate limit errors.
			if st == IterationLimit {
				return IterationLimit
			}
			return Infeasible
		}
		if t.artificialResidual() > feasTol {
			return Infeasible
		}
		t.driveOutArtificials()
		// Pin artificials to zero so they never re-enter.
		for j := t.artStart; j < t.ncol; j++ {
			t.hi[j] = 0
			if t.status[j] != basic {
				t.status[j] = atLower
				t.xval[j] = 0
			}
		}
	}

	t.computeReducedCosts(t.cost)
	return t.iterate()
}

// artificialResidual returns the total value carried by artificial columns.
func (t *tableau) artificialResidual() float64 {
	sum := 0.0
	for i, j := range t.basis {
		if j >= t.artStart {
			sum += math.Abs(t.xB[i])
		}
	}
	for j := t.artStart; j < t.ncol; j++ {
		if t.status[j] != basic {
			sum += math.Abs(t.xval[j])
		}
	}
	return sum
}

// driveOutArtificials pivots basic artificials (all at value ~0 after a
// feasible phase 1) out of the basis where a usable pivot exists. Rows with
// no eligible pivot are redundant; their artificial stays basic at zero.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find a non-artificial, nonbasic column with a usable pivot.
		for j := 0; j < t.artStart; j++ {
			if t.status[j] == basic {
				continue
			}
			if math.Abs(t.T[i][j]) > 1e-7 {
				t.pivot(i, j, t.xval[j])
				break
			}
		}
	}
}

// computeReducedCosts sets t.d = cost - y^T T where y = cost over the basis.
func (t *tableau) computeReducedCosts(cost []float64) {
	copy(t.d, cost)
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.T[i]
		for j := 0; j < t.ncol; j++ {
			if row[j] != 0 {
				t.d[j] -= cb * row[j]
			}
		}
	}
	// Basic columns have exactly-zero reduced cost by construction.
	for _, j := range t.basis {
		t.d[j] = 0
	}
}

// iterate runs primal simplex iterations until optimality, unboundedness,
// or the iteration cap, maintaining the reduced-cost row d across pivots.
func (t *tableau) iterate() Status {
	maxIter := 200*(t.m+t.ncol) + 2000
	blandAfter := 40 * (t.m + t.ncol)

	for iter := 0; iter < maxIter; iter++ {
		useBland := iter >= blandAfter
		q := t.chooseEntering(useBland)
		if q < 0 {
			t.snapBasics()
			return Optimal
		}
		// Another pivot is needed; stop if the caller's budget is spent.
		if t.limit > 0 && t.iters >= t.limit {
			return IterationLimit
		}
		t.iters++
		// sigma: +1 entering increases from lower, -1 decreases from upper.
		sigma := 1.0
		if t.status[q] == atUpper {
			sigma = -1.0
		}

		// Ratio test.
		limit := math.Inf(1)
		if !math.IsInf(t.hi[q], 1) {
			limit = t.hi[q] - t.lo[q] // full bound flip
		}
		leave := -1           // row index of leaving variable
		leaveToUpper := false // which bound the leaving variable hits
		for i := 0; i < t.m; i++ {
			a := sigma * t.T[i][q]
			if a > pivTol {
				// Basic value decreases toward its lower bound.
				b := t.basis[i]
				room := t.xB[i] - t.lo[b]
				if room < 0 {
					room = 0
				}
				if step := room / a; step < limit-boundEps ||
					(step < limit+boundEps && t.betterLeaving(leave, i, q, useBland)) {
					if step < limit {
						limit = step
					}
					leave = i
					leaveToUpper = false
				}
			} else if a < -pivTol {
				b := t.basis[i]
				if math.IsInf(t.hi[b], 1) {
					continue
				}
				room := t.hi[b] - t.xB[i]
				if room < 0 {
					room = 0
				}
				if step := room / -a; step < limit-boundEps ||
					(step < limit+boundEps && t.betterLeaving(leave, i, q, useBland)) {
					if step < limit {
						limit = step
					}
					leave = i
					leaveToUpper = true
				}
			}
		}

		if math.IsInf(limit, 1) {
			return Unbounded
		}

		if leave < 0 {
			// Bound flip: q runs from one bound to the other.
			delta := limit
			for i := 0; i < t.m; i++ {
				if t.T[i][q] != 0 {
					t.xB[i] -= sigma * delta * t.T[i][q]
				}
			}
			if t.status[q] == atLower {
				t.status[q] = atUpper
				t.xval[q] = t.hi[q]
			} else {
				t.status[q] = atLower
				t.xval[q] = t.lo[q]
			}
			continue
		}

		// Pivot q into the basis at row leave.
		delta := limit
		enterVal := t.xval[q] + sigma*delta
		leaveVar := t.basis[leave]
		for i := 0; i < t.m; i++ {
			if i != leave && t.T[i][q] != 0 {
				t.xB[i] -= sigma * delta * t.T[i][q]
			}
		}
		if leaveToUpper {
			t.status[leaveVar] = atUpper
			t.xval[leaveVar] = t.hi[leaveVar]
		} else {
			t.status[leaveVar] = atLower
			t.xval[leaveVar] = t.lo[leaveVar]
		}
		t.pivot(leave, q, enterVal)
	}
	return IterationLimit
}

// betterLeaving breaks ratio-test ties: under Bland's rule pick the lowest
// variable index (anti-cycling); otherwise prefer the larger pivot for
// numerical stability.
func (t *tableau) betterLeaving(cur, cand, q int, bland bool) bool {
	if cur < 0 {
		return true
	}
	if bland {
		return t.basis[cand] < t.basis[cur]
	}
	return math.Abs(t.T[cand][q]) > math.Abs(t.T[cur][q])
}

// chooseEntering returns an improving nonbasic column, or -1 at optimality.
func (t *tableau) chooseEntering(bland bool) int {
	best := -1
	bestScore := priceTol
	for j := 0; j < t.ncol; j++ {
		if t.status[j] == basic {
			continue
		}
		if t.hi[j]-t.lo[j] <= boundEps {
			continue // pinned column cannot move
		}
		var score float64
		switch t.status[j] {
		case atLower:
			score = -t.d[j]
		case atUpper:
			score = t.d[j]
		}
		if score > bestScore {
			if bland {
				return j
			}
			best = j
			bestScore = score
		}
	}
	return best
}

// pivot makes column q basic in row r with value enterVal, eliminating q
// from all other rows and from the reduced-cost row.
func (t *tableau) pivot(r, q int, enterVal float64) {
	prow := t.T[r]
	piv := prow[q]
	inv := 1.0 / piv
	for k := 0; k < t.ncol; k++ {
		if prow[k] != 0 {
			prow[k] *= inv
		}
	}
	prow[q] = 1 // kill roundoff
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.T[i][q]
		if f == 0 {
			continue
		}
		row := t.T[i]
		for k := 0; k < t.ncol; k++ {
			if prow[k] != 0 {
				row[k] -= f * prow[k]
			}
		}
		row[q] = 0
	}
	if f := t.d[q]; f != 0 {
		for k := 0; k < t.ncol; k++ {
			if prow[k] != 0 {
				t.d[k] -= f * prow[k]
			}
		}
		t.d[q] = 0
	}
	t.status[q] = basic
	t.basis[r] = q
	t.xB[r] = enterVal
}

// snapBasics clamps basic values onto their boxes to absorb roundoff.
func (t *tableau) snapBasics() {
	for i, j := range t.basis {
		if t.xB[i] < t.lo[j] {
			t.xB[i] = t.lo[j]
		}
		if t.xB[i] > t.hi[j] {
			t.xB[i] = t.hi[j]
		}
	}
}

// structuralValues extracts the primal solution for structural columns.
func (t *tableau) structuralValues() []float64 {
	x := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		x[j] = t.xval[j]
	}
	for i, j := range t.basis {
		if j < t.n {
			x[j] = t.xB[i]
		}
	}
	return x
}

// duals recovers the simplex multipliers for the original constraint rows
// after an optimal phase-2 solve. For the final setup matrix A, the
// maintained reduced-cost row is d = c − yᵀA; the dual column of row i has
// A-entry ±1 on row i alone and zero phase-2 cost, so y_i = −d_col/coef.
// rowMult maps back to the user's original row orientation and scale.
func (t *tableau) duals(sign float64) []float64 {
	out := make([]float64, t.m)
	for i := 0; i < t.m; i++ {
		j := t.dualCol[i]
		if j < 0 || t.dualCoef[i] == 0 {
			continue
		}
		yFinal := -t.d[j] / t.dualCoef[i]
		out[i] = sign * yFinal * t.rowMult[i]
	}
	return out
}
