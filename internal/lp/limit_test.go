package lp

import (
	"math"
	"testing"
)

// budgetProblem builds an LP that needs several simplex iterations: a
// transportation-like min-cost problem with equality rows (forcing a
// phase 1) and enough columns that the solve cannot finish in one pivot.
func budgetProblem() *Problem {
	p := NewProblem(Minimize)
	const n = 6
	xs := make([]VarID, n)
	for j := 0; j < n; j++ {
		xs[j] = p.AddVar("x", 0, math.Inf(1), float64(1+j%3))
	}
	for i := 0; i < n/2; i++ {
		p.AddConstraint("row", EQ, 4,
			Term{Var: xs[2*i], Coef: 1}, Term{Var: xs[2*i+1], Coef: 1})
	}
	p.AddConstraint("cap", LE, 9,
		Term{Var: xs[0], Coef: 1}, Term{Var: xs[2], Coef: 1}, Term{Var: xs[4], Coef: 1})
	return p
}

func TestIterationBudget(t *testing.T) {
	for _, eng := range []Engine{TableauEngine, RevisedEngine} {
		p := budgetProblem()
		free, err := p.SolveWith(eng)
		if err != nil {
			t.Fatal(err)
		}
		if free.Status != Optimal {
			t.Fatalf("engine %v: unbudgeted solve status %v", eng, free.Status)
		}
		if free.Iterations < 2 {
			t.Fatalf("engine %v: test problem too easy (%d iterations)", eng, free.Iterations)
		}

		p.SetIterationLimit(1)
		sol, err := p.SolveWith(eng)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != IterationLimit {
			t.Errorf("engine %v: limit 1 gave status %v, want iteration-limit", eng, sol.Status)
		}
		if sol.Iterations > 1 {
			t.Errorf("engine %v: spent %d iterations under a budget of 1", eng, sol.Iterations)
		}

		// A budget at least as large as the free solve must not bite.
		p.SetIterationLimit(free.Iterations)
		sol, err = p.SolveWith(eng)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Errorf("engine %v: budget %d gave status %v, want optimal",
				eng, free.Iterations, sol.Status)
		}
	}
}

func TestIterationBudgetSurvivesCloneAndPresolve(t *testing.T) {
	p := budgetProblem()
	p.SetIterationLimit(1)
	q := p.Clone()
	if q.IterationLimit() != 1 {
		t.Fatalf("Clone dropped the iteration limit: got %d", q.IterationLimit())
	}
	// Pin a variable so presolve builds a reduced problem; the budget must
	// apply to the reduced solve too.
	q.SetVarBounds(0, 2, 2)
	sol, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit {
		t.Errorf("presolved budgeted solve status %v, want iteration-limit", sol.Status)
	}

	// SetIterationLimit(0) restores the default (no caller budget).
	q.SetIterationLimit(0)
	sol, err = q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Errorf("after clearing budget, status %v, want optimal", sol.Status)
	}
}
