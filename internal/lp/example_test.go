package lp_test

import (
	"fmt"

	"greencell/internal/lp"
)

// Example solves a two-variable production problem and reads the optimum
// and a shadow price.
func Example() {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0, 40, 3) // product 1
	y := p.AddVar("y", 0, 30, 5) // product 2
	p.AddConstraint("hours", lp.LE, 120, lp.Term{Var: x, Coef: 2}, lp.Term{Var: y, Coef: 3})

	sol, err := p.Solve()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("status:", sol.Status)
	fmt.Println("objective:", sol.Objective)
	fmt.Println("x:", sol.Value(x), "y:", sol.Value(y))
	fmt.Println("hours shadow price:", sol.Dual(0))
	// Output:
	// status: optimal
	// objective: 195
	// x: 15 y: 30
	// hours shadow price: 1.5
}
