package lp

import (
	"math"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 40, 3)
	y := p.AddVar("y", 1, math.Inf(1), -5)
	z := p.AddVar("z", 2, 2, 0)
	p.AddConstraint("hours", LE, 120, Term{x, 2}, Term{y, 3})
	p.AddConstraint("bal", EQ, 7, Term{x, 1}, Term{z, -1})
	p.AddConstraint("dup", GE, 0, Term{y, 1}, Term{y, 1})

	var b strings.Builder
	if err := p.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Maximize",
		"obj: +3 x0 -5 x1",
		"c0: +2 x0 +3 x1 <= 120",
		"c1: +1 x0 -1 x2 = 7",
		"c2: +2 x1 >= 0", // duplicates summed
		"0 <= x0 <= 40",
		"x1 >= 1",
		"x2 = 2",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteLPEmptyRow(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 0, 1, 1)
	p.AddConstraint("empty", LE, 5)
	var b strings.Builder
	if err := p.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c0: 0 x0 <= 5") {
		t.Errorf("empty row badly rendered:\n%s", b.String())
	}
}
