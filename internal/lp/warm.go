package lp

// WarmSolver re-solves one Problem many times, carrying the simplex basis —
// and the live engine holding its factorized inverse — from each solve into
// the next. Between solves the caller may edit the problem through
// SetVarBounds, SetVarCost, SetConstraintRHS, and SetIterationLimit;
// constraint terms, relations, and dimensions are frozen (they define the
// basis layout — rebuild the solver to change them).
//
// Each Solve classifies what the edits preserved:
//
//   - the previous optimal basis is still primal feasible → phase-2 primal
//     simplex polishes it in a few pivots (often zero);
//   - only dual feasibility survived (RHS/bound edits with costs intact) →
//     dual simplex restores primal feasibility, skipping phase 1 entirely;
//   - neither survived, or the warm attempt ends anywhere other than a
//     clean optimum → a from-scratch solve confirms the outcome, counted
//     as a basis invalidation.
//
// Infeasible and Unbounded verdicts reached from reused state are never
// reported directly: they are re-derived cold first, so a stale basis can
// slow a solve down but cannot change its answer. Iteration budgets
// (Problem.SetIterationLimit) span the warm attempt and any cold fallback
// of one Solve call, preserving the one-shot budget semantics.
//
// The zero WarmSolver is not usable; create one with NewWarmSolver. A
// WarmSolver is not safe for concurrent use.
type WarmSolver struct {
	p        *Problem
	eng      *revisedEngine
	sig      uint64
	imported *Basis

	warmStarts    int
	invalidations int
}

// NewWarmSolver wraps p for repeated warm-started solves. The solver keeps
// a reference to p — callers mutate p between Solve calls rather than
// rebuilding it.
func NewWarmSolver(p *Problem) *WarmSolver {
	return &WarmSolver{p: p, sig: p.StructureSignature()}
}

// Problem returns the wrapped problem, for callers that thread only the
// solver through their plumbing.
func (w *WarmSolver) Problem() *Problem { return w.p }

// ImportBasis seeds the next Solve with a basis exported from another
// solver over a structurally identical problem (same StructureSignature).
// A nil basis is ignored; a snapshot with a mismatched signature is
// discarded and counted as an invalidation. The import takes effect only
// while the solver has no live engine of its own (i.e. before its first
// Solve), which is the cross-slot handoff it exists for.
func (w *WarmSolver) ImportBasis(b *Basis) {
	if b == nil {
		return
	}
	if b.sig != w.sig {
		w.invalidations++
		return
	}
	w.imported = b
}

// ExportBasis snapshots the current basis for a future ImportBasis, or nil
// when there is nothing exportable (no solve yet, or an artificial
// variable is still basic).
func (w *WarmSolver) ExportBasis() *Basis {
	if w.eng == nil {
		return nil
	}
	return w.eng.exportBasis(w.sig)
}

// Stats returns the cumulative counts of warm-started solves and basis
// invalidations (reused state discarded for a cold rebuild). These feed
// the lp_warm_starts_total and lp_basis_invalidations_total metrics
// (docs/METRICS.md).
func (w *WarmSolver) Stats() (warmStarts, invalidations int) {
	return w.warmStarts, w.invalidations
}

// Solve optimizes the wrapped problem, reusing the previous solve's basis
// when possible. Semantics match Problem.Solve: errors only for
// structurally invalid input, outcomes via Solution.Status.
func (w *WarmSolver) Solve() (*Solution, error) {
	if sol, err := w.p.validateForSolve(); sol != nil || err != nil {
		return sol, err
	}
	if len(w.p.cons) == 0 {
		// Row-free problems solve by inspection; nothing to warm-start.
		w.eng = nil
		return w.cold(0)
	}
	if w.eng != nil {
		w.eng.refresh(w.p)
		if sol, ok := w.warmAttempt(w.eng); ok {
			return sol, nil
		}
		spent := w.eng.iters
		w.eng = nil
		w.invalidations++
		return w.cold(spent)
	}
	if b := w.imported; b != nil {
		w.imported = nil
		if e := newRevisedFromBasis(w.p, b); e != nil {
			if sol, ok := w.warmAttempt(e); ok {
				return sol, nil
			}
			w.invalidations++
			return w.cold(e.iters)
		}
		w.invalidations++
	}
	return w.cold(0)
}

// warmAttempt classifies the engine's basis and finishes the solve with
// primal and/or dual simplex. It reports ok=false when the attempt is
// inconclusive — classification failed, the safety cap tripped, or the
// verdict (infeasible/unbounded) needs cold confirmation — in which case
// the caller discards the engine and re-solves from scratch.
func (w *WarmSolver) warmAttempt(e *revisedEngine) (*Solution, bool) {
	copy(e.cvec, e.cost)
	for j := e.artStart; j < e.ncol; j++ {
		e.cvec[j] = 0
	}
	var st Status
	switch {
	case e.primalFeasible():
		if e.dualClean {
			// Only dual-feasibility-preserving edits since the last
			// verified optimum, and the updated basic values are still in
			// bounds: the basis is optimal as it stands. Skipping the
			// pricing pass makes pure-RHS probe sequences (golden-section
			// over a budget row) nearly free.
			e.snap()
			st = Optimal
		} else {
			st = e.iterate()
		}
	case e.dualClean || e.dualFeasible():
		clean := e.dualClean
		st = e.dualIterate()
		if st == Optimal {
			if clean {
				// Dual simplex from an exactly dual-feasible start preserves
				// dual feasibility pivot by pivot, so the primal-feasible
				// end state is optimal without a confirming pricing pass.
				// A basis that merely passed the toleranced dualFeasible
				// scan still gets the primal polish below.
				e.snap()
			} else {
				st = e.iterate()
			}
		}
	default:
		return nil, false
	}
	if st == Optimal {
		w.eng = e
		w.warmStarts++
		return w.buildSolution(e, st), true
	}
	if st == IterationLimit && e.limit > 0 && e.iters >= e.limit {
		// The caller's budget, not the safety cap: report it faithfully,
		// keeping the (consistent, mid-solve) basis for the next round.
		w.eng = e
		w.warmStarts++
		return &Solution{Status: IterationLimit, Iterations: e.iters}, true
	}
	return nil, false
}

// cold solves from scratch with the revised engine, charging any
// iterations a failed warm attempt already spent (prior) against the
// problem's budget so a Solve call never exceeds it.
func (w *WarmSolver) cold(prior int) (*Solution, error) {
	e := newRevised(w.p)
	if e.limit > 0 {
		if prior >= e.limit {
			return &Solution{Status: IterationLimit, Iterations: prior}, nil
		}
		e.limit -= prior
	}
	st := e.solve()
	if st == Optimal {
		w.eng = e
	} else {
		w.eng = nil
	}
	sol := w.buildSolution(e, st)
	sol.Iterations += prior
	return sol, nil
}

// buildSolution mirrors the one-shot solve's solution assembly.
func (w *WarmSolver) buildSolution(e *revisedEngine, st Status) *Solution {
	sol := &Solution{Status: st, Iterations: e.iters}
	if st == Optimal {
		sign := 1.0
		if w.p.sense == Maximize {
			sign = -1.0
		}
		sol.y = e.duals(sign)
		sol.x = e.structuralValues()
		obj := 0.0
		for j, v := range w.p.vars {
			obj += v.cost * sol.x[j]
		}
		sol.Objective = obj
	}
	return sol
}
