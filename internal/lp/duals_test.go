package lp

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func TestDualsSimple(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6. Optimum x=4,y=0 with the first
	// constraint binding: its dual is 3 (one more unit of rhs is worth 3),
	// the slack second constraint has dual 0.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, math.Inf(1), 3)
	y := p.AddVar("y", 0, math.Inf(1), 2)
	p.AddConstraint("c1", LE, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("c2", LE, 6, Term{x, 1}, Term{y, 3})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if got := sol.Dual(0); math.Abs(got-3) > 1e-9 {
		t.Errorf("dual of binding row = %v, want 3", got)
	}
	if got := sol.Dual(1); math.Abs(got) > 1e-9 {
		t.Errorf("dual of slack row = %v, want 0", got)
	}
}

func TestDualEqualityRow(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x <= 3: optimum (3,2), objective 7.
	// Raising the rhs by 1 adds one unit of y: dual = 2.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 0, math.Inf(1), 2)
	p.AddConstraint("bal", EQ, 5, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if got := sol.Dual(0); math.Abs(got-2) > 1e-9 {
		t.Errorf("equality dual = %v, want 2", got)
	}
}

func TestDualGERow(t *testing.T) {
	// min 2x s.t. x >= 5: dual = 2 (cost of one more required unit).
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, math.Inf(1), 2)
	p.AddConstraint("req", GE, 5, Term{x, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if got := sol.Dual(0); math.Abs(got-2) > 1e-9 {
		t.Errorf("GE dual = %v, want 2", got)
	}
}

func TestDualScaledRow(t *testing.T) {
	// The equilibrated tiny-coefficient row must report the dual in the
	// USER's units: min x s.t. 1e-9·x >= 3e-9 is x >= 3; ∂obj/∂(3e-9) = 1e9.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, math.Inf(1), 1)
	p.AddConstraint("tiny", GE, 3e-9, Term{x, 1e-9})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Optimal)
	if got := sol.Dual(0); math.Abs(got-1e9)/1e9 > 1e-6 {
		t.Errorf("scaled-row dual = %v, want 1e9", got)
	}
}

// TestDualsMatchDualProblem: on random primal/dual pairs (the
// strong-duality construction), the primal's duals must be a feasible dual
// solution attaining the dual optimum: bᵀy = optimal objective.
func TestDualsMatchDualProblem(t *testing.T) {
	src := rng.New(71)
	for trial := 0; trial < 100; trial++ {
		n := 1 + src.Intn(4)
		m := 1 + src.Intn(4)
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for j := range c {
			c[j] = src.Uniform(0, 3)
		}
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = src.Uniform(0.1, 2.1)
			}
			b[i] = src.Uniform(-1, 3)
		}
		// primal: min c'x s.t. Ax >= b, x >= 0.
		primal := NewProblem(Minimize)
		xs := make([]VarID, n)
		for j := 0; j < n; j++ {
			xs[j] = primal.AddVar("x", 0, math.Inf(1), c[j])
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{xs[j], A[i][j]}
			}
			primal.AddConstraint("row", GE, b[i], terms...)
		}
		sol, err := primal.Solve()
		requireStatus(t, sol, err, Optimal)

		// Dual feasibility: y >= 0 and Aᵀy <= c.
		dualObj := 0.0
		for i := 0; i < m; i++ {
			y := sol.Dual(i)
			if y < -1e-7 {
				t.Fatalf("trial %d: negative dual %v on GE row of a minimize", trial, y)
			}
			dualObj += y * b[i]
		}
		for j := 0; j < n; j++ {
			lhs := 0.0
			for i := 0; i < m; i++ {
				lhs += A[i][j] * sol.Dual(i)
			}
			if lhs > c[j]+1e-6 {
				t.Fatalf("trial %d: dual infeasible on column %d: %v > %v", trial, j, lhs, c[j])
			}
		}
		// Strong duality through the recovered multipliers.
		if math.Abs(dualObj-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: bᵀy = %v != objective %v", trial, dualObj, sol.Objective)
		}
	}
}

// TestDualsAsSensitivities perturbs each rhs a little and compares the
// realized objective change with the reported dual.
func TestDualsAsSensitivities(t *testing.T) {
	src := rng.New(72)
	checked := 0
	for trial := 0; trial < 60 && checked < 100; trial++ {
		p, _, _ := feasibleRandomLP(src, 1+src.Intn(4), 1+src.Intn(4), Minimize)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			continue
		}
		const eps = 1e-5
		for i := 0; i < p.NumConstraints(); i++ {
			q := p.Clone()
			q.cons[i].rhs += eps
			sol2, err := q.Solve()
			if err != nil || sol2.Status != Optimal {
				continue
			}
			pred := sol.Dual(i) * eps
			actual := sol2.Objective - sol.Objective
			// Basis changes and degeneracy allow one-sided deviations; the
			// realized change can only be "better than predicted" for a
			// minimize when increasing slack, so use a loose tolerance.
			if math.Abs(actual-pred) > 1e-6+0.5*math.Abs(pred) {
				t.Fatalf("trial %d row %d: predicted Δ=%v, actual Δ=%v (dual %v)",
					trial, i, pred, actual, sol.Dual(i))
			}
			checked++
		}
	}
	if checked < 20 {
		t.Skipf("only %d sensitivity checks ran", checked)
	}
}

func TestDualNonOptimal(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddConstraint("impossible", GE, 5, Term{x, 1})
	sol, err := p.Solve()
	requireStatus(t, sol, err, Infeasible)
	if sol.Dual(0) != 0 {
		t.Error("non-optimal solutions should report zero duals")
	}
}
