package lp

import "math"

// revisedEngine is the second simplex implementation: a revised simplex
// with an explicitly maintained dense basis inverse (refactorized
// periodically) over column-sparse constraint storage.
//
// Its purpose in this repository is cross-validation, not speed: the two
// engines are deliberately independent implementations of the same
// bounded-variable simplex semantics, and the test suite solves thousands
// of random LPs with both and requires agreement — the defense against
// subtle pivoting bugs in either. (On the scheduling-shaped instances the
// per-iteration O(nnz) pricing is outweighed by the refactorization and
// relative-tolerance overhead, so the tableau engine stays the default;
// see the Engine benchmarks.)
type revisedEngine struct {
	m    int // rows
	n    int // structural columns
	ncol int // total columns (with slacks and artificials)

	// cols[j] is column j of the setup matrix A in sparse form.
	cols []sparseCol
	// binv is the dense basis inverse B^{-1}.
	binv [][]float64
	// cost is the phase-2 objective (sense-adjusted to minimize).
	cost []float64

	lo, hi []float64
	status []colStatus
	xval   []float64
	basis  []int
	xB     []float64

	artStart int

	// iters counts simplex iterations (pivots + bound flips) across both
	// phases, reported on Solution.Iterations.
	iters int
	// limit, when positive, caps iters across both phases (the caller's
	// solve budget from Problem.SetIterationLimit).
	limit int

	// rowMult maps final setup rows back to the user's rows for duals.
	rowMult []float64
	// bvec is the setup right-hand side (post equilibration and flips),
	// kept for refactorization.
	bvec []float64

	// Scratch buffers reused across iterations.
	y    []float64 // simplex multipliers
	dir  []float64 // B^{-1} A_q
	cvec []float64 // active-phase cost vector
}

type sparseCol struct {
	idx []int
	val []float64
}

func (c *sparseCol) add(row int, v float64) {
	if v == 0 {
		return
	}
	c.idx = append(c.idx, row)
	c.val = append(c.val, v)
}

// newRevised mirrors newTableau's setup: equality form, equilibrated rows,
// slacks, artificials, initial basis.
func newRevised(p *Problem) *revisedEngine {
	m := len(p.cons)
	n := len(p.vars)
	e := &revisedEngine{
		m: m, n: n,
		limit:   p.maxIters,
		rowMult: make([]float64, m),
	}
	for i := range e.rowMult {
		e.rowMult[i] = 1
	}

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}

	// Dense staging rows for equilibration, then converted to columns.
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	for i, c := range p.cons {
		rows[i] = make([]float64, n)
		for _, t := range c.terms {
			rows[i][t.Var] += t.Coef
		}
		rhs[i] = c.rhs
	}
	for i := range rows {
		maxAbs := 0.0
		for _, v := range rows[i] {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 0 && (maxAbs < 1e-3 || maxAbs > 1e3) {
			inv := 1 / maxAbs
			for j := range rows[i] {
				rows[i][j] *= inv
			}
			rhs[i] *= inv
			e.rowMult[i] *= inv
		}
	}

	addCol := func(lo, hi, cost float64) int {
		e.lo = append(e.lo, lo)
		e.hi = append(e.hi, hi)
		e.cost = append(e.cost, cost)
		e.status = append(e.status, atLower)
		e.xval = append(e.xval, lo)
		e.cols = append(e.cols, sparseCol{})
		return len(e.status) - 1
	}
	for _, v := range p.vars {
		lo, hi := v.lo, v.hi
		if lo > hi {
			lo, hi = hi, lo
		}
		addCol(lo, hi, sign*v.cost)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			e.cols[j].add(i, rows[i][j])
		}
	}

	// Slack columns. Sign flips below must flip already-placed entries, so
	// track per-row net flips and apply at the end.
	slackOf := make([]int, m)
	flip := make([]bool, m)
	for i := range slackOf {
		slackOf[i] = -1
	}
	for i, c := range p.cons {
		switch c.rel {
		case LE:
			j := addCol(0, math.Inf(1), 0)
			e.cols[j].add(i, 1)
			slackOf[i] = j
		case GE:
			j := addCol(0, math.Inf(1), 0)
			e.cols[j].add(i, -1)
			slackOf[i] = j
		}
	}

	// Initial basis: slack where its value is admissible, else artificial,
	// flipping rows so basic values are non-negative.
	e.basis = make([]int, m)
	e.xB = make([]float64, m)
	e.bvec = make([]float64, m)
	copy(e.bvec, rhs)
	for i, c := range p.cons {
		r := rhs[i]
		for j := 0; j < n; j++ {
			if rows[i][j] != 0 {
				r -= rows[i][j] * e.xval[j]
			}
		}
		if s := slackOf[i]; s >= 0 {
			coef := 1.0
			if c.rel == GE {
				coef = -1.0
			}
			sv := r / coef
			if sv >= 0 {
				if coef < 0 {
					flip[i] = true
				}
				e.status[s] = basic
				e.basis[i] = s
				e.xB[i] = sv
				continue
			}
		}
		if r < 0 {
			flip[i] = !flip[i]
			r = -r
		}
		j := addCol(0, math.Inf(1), 0)
		// The artificial enters post-flip with +1.
		e.cols[j].add(i, 1)
		e.status[j] = basic
		e.basis[i] = j
		e.xB[i] = r
	}
	// The artificial region starts after structural + slack columns.
	e.artStart = n
	for i := range slackOf {
		if slackOf[i] >= 0 {
			e.artStart++
		}
	}
	// Apply row flips to structural and slack columns. Artificials were
	// added with +1 after their row's flip was decided, so they are
	// excluded.
	for j := 0; j < e.artStart; j++ {
		col := &e.cols[j]
		for k, i := range col.idx {
			if flip[i] {
				col.val[k] = -col.val[k]
			}
		}
	}
	for i, f := range flip {
		if f {
			e.rowMult[i] = -e.rowMult[i]
			e.bvec[i] = -e.bvec[i]
		}
	}

	e.ncol = len(e.status)

	// Identity basis inverse: after the row flips every initial basic
	// column (slack or artificial) carries +1 on its own row, so B = I.
	e.binv = make([][]float64, m)
	for i := range e.binv {
		e.binv[i] = make([]float64, m)
		e.binv[i][i] = 1
	}

	e.y = make([]float64, m)
	e.dir = make([]float64, m)
	e.cvec = make([]float64, e.ncol)
	return e
}

// colDot returns column j dotted with vector v (v indexed by row).
func (e *revisedEngine) colDot(j int, v []float64) float64 {
	col := &e.cols[j]
	sum := 0.0
	for k, i := range col.idx {
		sum += col.val[k] * v[i]
	}
	return sum
}

// applyBinv computes dst = B^{-1} A_j.
func (e *revisedEngine) applyBinv(j int, dst []float64) {
	col := &e.cols[j]
	for i := range dst {
		dst[i] = 0
	}
	for k, r := range col.idx {
		v := col.val[k]
		for i := 0; i < e.m; i++ {
			if b := e.binv[i][r]; b != 0 {
				dst[i] += b * v
			}
		}
	}
}

// solve runs both phases and returns the status.
func (e *revisedEngine) solve() Status {
	if e.m == 0 {
		for j := 0; j < e.n; j++ {
			if e.cost[j] < 0 {
				if math.IsInf(e.hi[j], 1) {
					return Unbounded
				}
				e.status[j] = atUpper
				e.xval[j] = e.hi[j]
			}
		}
		return Optimal
	}
	if e.ncol > e.artStart {
		for j := range e.cvec {
			e.cvec[j] = 0
		}
		for j := e.artStart; j < e.ncol; j++ {
			e.cvec[j] = 1
		}
		st := e.iterate()
		if st != Optimal {
			if st == IterationLimit {
				return st
			}
			return Infeasible
		}
		res := 0.0
		for i, b := range e.basis {
			if b >= e.artStart {
				res += math.Abs(e.xB[i])
			}
		}
		if res > feasTol {
			return Infeasible
		}
		// Pin artificials.
		for j := e.artStart; j < e.ncol; j++ {
			e.hi[j] = 0
			if e.status[j] != basic {
				e.status[j] = atLower
				e.xval[j] = 0
			}
		}
	}
	copy(e.cvec, e.cost)
	for j := e.artStart; j < e.ncol; j++ {
		e.cvec[j] = 0
	}
	return e.iterate()
}

// iterate runs primal simplex with Dantzig pricing and a Bland fallback.
func (e *revisedEngine) iterate() Status {
	maxIter := 200*(e.m+e.ncol) + 2000
	blandAfter := 40 * (e.m + e.ncol)

	pivots := 0
	fresh := true // binv exactly reflects the basis (no drift yet)
	for iter := 0; iter < maxIter; iter++ {
		bland := iter >= blandAfter
		if pivots > 0 && pivots%64 == 0 {
			e.refactorize()
			fresh = true
			pivots++ // avoid refactorizing repeatedly on bound-flip loops
		}
		// Multipliers y = c_B^T B^{-1}.
		for i := range e.y {
			e.y[i] = 0
		}
		for i, b := range e.basis {
			cb := e.cvec[b]
			if cb == 0 {
				continue
			}
			row := e.binv[i]
			for r := 0; r < e.m; r++ {
				if row[r] != 0 {
					e.y[r] += cb * row[r]
				}
			}
		}
		// Price and choose entering. Reduced costs are recomputed from y
		// every iteration, so the optimality test must be RELATIVE to the
		// magnitudes involved — with 1e7-scale objective coefficients the
		// float noise in c_j − y·A_j dwarfs any absolute tolerance.
		q := -1
		best := priceTol
		for j := 0; j < e.ncol; j++ {
			if e.status[j] == basic || e.hi[j]-e.lo[j] <= boundEps {
				continue
			}
			dot := e.colDot(j, e.y)
			dj := e.cvec[j] - dot
			denom := 1 + math.Abs(e.cvec[j]) + math.Abs(dot)
			var score float64
			if e.status[j] == atLower {
				score = -dj / denom
			} else {
				score = dj / denom
			}
			if score > best {
				if bland {
					q = j
					break
				}
				q = j
				best = score
			}
		}
		if q < 0 {
			// Optimality under a possibly-drifted inverse: refresh and
			// re-price once before declaring victory.
			if !fresh {
				if e.refactorize() {
					fresh = true
					continue
				}
			}
			e.snap()
			return Optimal
		}
		// Another pivot is needed; stop if the caller's budget is spent.
		if e.limit > 0 && e.iters >= e.limit {
			return IterationLimit
		}
		e.iters++

		sigma := 1.0
		if e.status[q] == atUpper {
			sigma = -1.0
		}
		e.applyBinv(q, e.dir)

		limit := math.Inf(1)
		if !math.IsInf(e.hi[q], 1) {
			limit = e.hi[q] - e.lo[q]
		}
		leave := -1
		leaveToUpper := false
		for i := 0; i < e.m; i++ {
			a := sigma * e.dir[i]
			b := e.basis[i]
			if a > pivTol {
				room := e.xB[i] - e.lo[b]
				if room < 0 {
					room = 0
				}
				if step := room / a; step < limit-boundEps ||
					(step < limit+boundEps && e.betterLeaving(leave, i, bland)) {
					if step < limit {
						limit = step
					}
					leave = i
					leaveToUpper = false
				}
			} else if a < -pivTol {
				if math.IsInf(e.hi[b], 1) {
					continue
				}
				room := e.hi[b] - e.xB[i]
				if room < 0 {
					room = 0
				}
				if step := room / -a; step < limit-boundEps ||
					(step < limit+boundEps && e.betterLeaving(leave, i, bland)) {
					if step < limit {
						limit = step
					}
					leave = i
					leaveToUpper = true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}

		if leave < 0 {
			// Bound flip.
			for i := 0; i < e.m; i++ {
				if e.dir[i] != 0 {
					e.xB[i] -= sigma * limit * e.dir[i]
				}
			}
			if e.status[q] == atLower {
				e.status[q] = atUpper
				e.xval[q] = e.hi[q]
			} else {
				e.status[q] = atLower
				e.xval[q] = e.lo[q]
			}
			continue
		}

		// Pivot: q enters at row leave.
		enterVal := e.xval[q] + sigma*limit
		leaveVar := e.basis[leave]
		for i := 0; i < e.m; i++ {
			if i != leave && e.dir[i] != 0 {
				e.xB[i] -= sigma * limit * e.dir[i]
			}
		}
		if leaveToUpper {
			e.status[leaveVar] = atUpper
			e.xval[leaveVar] = e.hi[leaveVar]
		} else {
			e.status[leaveVar] = atLower
			e.xval[leaveVar] = e.lo[leaveVar]
		}
		// Update B^{-1}: row ops making dir into e_leave.
		piv := e.dir[leave]
		inv := 1 / piv
		rowL := e.binv[leave]
		for r := 0; r < e.m; r++ {
			rowL[r] *= inv
		}
		for i := 0; i < e.m; i++ {
			if i == leave {
				continue
			}
			f := e.dir[i]
			if f == 0 {
				continue
			}
			row := e.binv[i]
			for r := 0; r < e.m; r++ {
				if rowL[r] != 0 {
					row[r] -= f * rowL[r]
				}
			}
		}
		e.status[q] = basic
		e.basis[leave] = q
		e.xB[leave] = enterVal
		pivots++
		fresh = false
	}
	return IterationLimit
}

// refactorize rebuilds B^{-1} from the basis columns by Gauss-Jordan
// elimination and recomputes the basic values, absorbing the numerical
// drift of long pivot sequences. It reports whether the basis matrix was
// invertible (it always should be; on failure the previous inverse is
// kept).
func (e *revisedEngine) refactorize() bool {
	m := e.m
	// Assemble [B | I].
	work := make([][]float64, m)
	for i := range work {
		work[i] = make([]float64, 2*m)
		work[i][m+i] = 1
	}
	for pos, b := range e.basis {
		col := &e.cols[b]
		for k, r := range col.idx {
			work[r][pos] = col.val[k]
		}
	}
	for colIdx := 0; colIdx < m; colIdx++ {
		piv := colIdx
		for r := colIdx + 1; r < m; r++ {
			if math.Abs(work[r][colIdx]) > math.Abs(work[piv][colIdx]) {
				piv = r
			}
		}
		if math.Abs(work[piv][colIdx]) < 1e-12 {
			return false
		}
		work[colIdx], work[piv] = work[piv], work[colIdx]
		inv := 1 / work[colIdx][colIdx]
		for k := 0; k < 2*m; k++ {
			work[colIdx][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == colIdx {
				continue
			}
			f := work[r][colIdx]
			if f == 0 {
				continue
			}
			for k := 0; k < 2*m; k++ {
				work[r][k] -= f * work[colIdx][k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(e.binv[i], work[i][m:])
	}
	// Recompute basic values: xB = B^{-1} (b − Σ_nonbasic A_j x_j).
	resid := make([]float64, m)
	copy(resid, e.bvec)
	for j := 0; j < e.ncol; j++ {
		if e.status[j] == basic || e.xval[j] == 0 {
			continue
		}
		col := &e.cols[j]
		for k, r := range col.idx {
			resid[r] -= col.val[k] * e.xval[j]
		}
	}
	for i := 0; i < m; i++ {
		sum := 0.0
		row := e.binv[i]
		for r := 0; r < m; r++ {
			if row[r] != 0 {
				sum += row[r] * resid[r]
			}
		}
		e.xB[i] = sum
	}
	return true
}

func (e *revisedEngine) betterLeaving(cur, cand int, bland bool) bool {
	if cur < 0 {
		return true
	}
	if bland {
		return e.basis[cand] < e.basis[cur]
	}
	return math.Abs(e.dir[cand]) > math.Abs(e.dir[cur])
}

func (e *revisedEngine) snap() {
	for i, b := range e.basis {
		if e.xB[i] < e.lo[b] {
			e.xB[i] = e.lo[b]
		}
		if e.xB[i] > e.hi[b] {
			e.xB[i] = e.hi[b]
		}
	}
}

func (e *revisedEngine) structuralValues() []float64 {
	x := make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		x[j] = e.xval[j]
	}
	for i, b := range e.basis {
		if b < e.n {
			x[b] = e.xB[i]
		}
	}
	return x
}

// duals mirrors the tableau engine's recovery, reading the multipliers
// directly from y at optimality.
func (e *revisedEngine) duals(sign float64) []float64 {
	// Recompute y for the final basis under phase-2 costs.
	for i := range e.y {
		e.y[i] = 0
	}
	for i, b := range e.basis {
		cb := e.cvec[b]
		if cb == 0 {
			continue
		}
		row := e.binv[i]
		for r := 0; r < e.m; r++ {
			e.y[r] += cb * row[r]
		}
	}
	out := make([]float64, e.m)
	for i := 0; i < e.m; i++ {
		out[i] = sign * e.y[i] * e.rowMult[i]
	}
	return out
}
