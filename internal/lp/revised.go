package lp

import "math"

// revisedEngine is the second simplex implementation: a revised simplex
// with an explicitly maintained dense basis inverse (refactorized
// periodically) over column-sparse constraint storage.
//
// Its purpose in this repository is cross-validation, not speed: the two
// engines are deliberately independent implementations of the same
// bounded-variable simplex semantics, and the test suite solves thousands
// of random LPs with both and requires agreement — the defense against
// subtle pivoting bugs in either. (On the scheduling-shaped instances the
// per-iteration O(nnz) pricing is outweighed by the refactorization and
// relative-tolerance overhead, so the tableau engine stays the default;
// see the Engine benchmarks.)
type revisedEngine struct {
	m    int // rows
	n    int // structural columns
	ncol int // total columns (with slacks and artificials)

	// cols[j] is column j of the setup matrix A in sparse form.
	cols []sparseCol
	// binv is the dense basis inverse B^{-1}.
	binv [][]float64
	// cost is the phase-2 objective (sense-adjusted to minimize).
	cost []float64

	lo, hi []float64
	status []colStatus
	xval   []float64
	basis  []int
	xB     []float64

	artStart int

	// iters counts simplex iterations (pivots + bound flips) across both
	// phases, reported on Solution.Iterations.
	iters int
	// limit, when positive, caps iters across both phases (the caller's
	// solve budget from Problem.SetIterationLimit).
	limit int

	// rowMult maps final setup rows back to the user's rows for duals.
	rowMult []float64
	// bvec is the setup right-hand side (post equilibration and flips),
	// kept for refactorization.
	bvec []float64

	// stalePivots counts basis changes since the last refactorization,
	// across solves: a WarmSolver re-solve inherits the drift of the pivots
	// before it and refactorizes when the count crosses the cadence.
	stalePivots int

	// journalSynced records that this engine's bounds/costs/rhs mirror the
	// problem exactly and the problem's edit journal covers everything that
	// changed since — the precondition for an incremental refresh.
	journalSynced bool
	// staleRefreshes counts incremental xB updates since the basic values
	// were last recomputed exactly; recomputeXB resets it.
	staleRefreshes int
	// dualClean records that the basis is dual feasible under the current
	// phase-2 costs by construction (it ended an Optimal solve, or only
	// dual-feasibility-preserving edits happened since), so warm
	// classification can skip the O(m·n) reduced-cost scan.
	dualClean bool

	// Scratch buffers reused across iterations.
	y         []float64   // simplex multipliers
	dir       []float64   // B^{-1} A_q
	cvec      []float64   // active-phase cost vector
	resid     []float64   // rhs residual for recomputeXB
	refacWork [][]float64 // m×2m Gauss-Jordan workspace for refactorize
}

type sparseCol struct {
	idx []int
	val []float64
}

func (c *sparseCol) add(row int, v float64) {
	if v == 0 {
		return
	}
	c.idx = append(c.idx, row)
	c.val = append(c.val, v)
}

// newEngineShell builds the structural and slack columns of p in sparse,
// row-equilibrated form — the part of engine setup shared by the cold
// constructor newRevised (which adds row flips and artificials on top) and
// the basis-import constructor newRevisedFromBasis (which installs a
// caller-provided basis instead). The returned rhs is equilibrated but
// unflipped, and slackOf maps each row to its slack column (−1 for EQ
// rows).
func newEngineShell(p *Problem) (e *revisedEngine, rhs []float64, slackOf []int) {
	m := len(p.cons)
	n := len(p.vars)
	e = &revisedEngine{
		m: m, n: n,
		limit:   p.maxIters,
		rowMult: make([]float64, m),
	}
	for i := range e.rowMult {
		e.rowMult[i] = 1
	}

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}

	// Structural columns straight from the constraint terms, duplicate
	// variables summed in place (lastRow/lastPos find a duplicate of the
	// current row in O(1) because terms arrive row by row).
	e.cols = make([]sparseCol, n, n+2*m)
	lastRow := make([]int, n)
	lastPos := make([]int, n)
	for j := range lastRow {
		lastRow[j] = -1
	}
	rhs = make([]float64, m)
	for i, c := range p.cons {
		rhs[i] = c.rhs
		for _, t := range c.terms {
			j := int(t.Var)
			if lastRow[j] == i {
				e.cols[j].val[lastPos[j]] += t.Coef
			} else {
				lastRow[j] = i
				lastPos[j] = len(e.cols[j].idx)
				e.cols[j].idx = append(e.cols[j].idx, i)
				e.cols[j].val = append(e.cols[j].val, t.Coef)
			}
		}
	}

	// Row equilibration over the structural coefficients.
	rowScale := make([]float64, m)
	rowMax := make([]float64, m)
	for i := range rowScale {
		rowScale[i] = 1
	}
	for j := 0; j < n; j++ {
		col := &e.cols[j]
		for k, i := range col.idx {
			if a := math.Abs(col.val[k]); a > rowMax[i] {
				rowMax[i] = a
			}
		}
	}
	for i, mx := range rowMax {
		if mx > 0 && (mx < 1e-3 || mx > 1e3) {
			inv := 1 / mx
			rowScale[i] = inv
			rhs[i] *= inv
			e.rowMult[i] *= inv
		}
	}
	// Scale the columns and drop entries whose duplicates summed to zero
	// (the dense staging path never materialized those as sparse entries).
	for j := 0; j < n; j++ {
		col := &e.cols[j]
		w := 0
		for k, i := range col.idx {
			v := col.val[k] * rowScale[i]
			if v == 0 {
				continue
			}
			col.idx[w], col.val[w] = i, v
			w++
		}
		col.idx, col.val = col.idx[:w], col.val[:w]
	}

	e.lo = make([]float64, n, n+2*m)
	e.hi = make([]float64, n, n+2*m)
	e.cost = make([]float64, n, n+2*m)
	e.status = make([]colStatus, n, n+2*m)
	e.xval = make([]float64, n, n+2*m)
	for j, v := range p.vars {
		lo, hi := v.lo, v.hi
		if lo > hi {
			lo, hi = hi, lo
		}
		e.lo[j], e.hi[j], e.cost[j] = lo, hi, sign*v.cost
		e.status[j] = atLower
		e.xval[j] = lo
	}
	addCol := func(lo, hi, cost float64) int {
		e.lo = append(e.lo, lo)
		e.hi = append(e.hi, hi)
		e.cost = append(e.cost, cost)
		e.status = append(e.status, atLower)
		e.xval = append(e.xval, lo)
		e.cols = append(e.cols, sparseCol{})
		return len(e.status) - 1
	}

	// Slack columns, in row order: the canonical column layout a Basis
	// snapshot refers to is structural 0..n−1 followed by these.
	slackOf = make([]int, m)
	for i := range slackOf {
		slackOf[i] = -1
	}
	for i, c := range p.cons {
		switch c.rel {
		case LE:
			j := addCol(0, math.Inf(1), 0)
			e.cols[j].add(i, 1)
			slackOf[i] = j
		case GE:
			j := addCol(0, math.Inf(1), 0)
			e.cols[j].add(i, -1)
			slackOf[i] = j
		}
	}
	return e, rhs, slackOf
}

// newRevised mirrors newTableau's setup: equality form, equilibrated rows,
// slacks, artificials, initial basis. Columns are built directly in sparse
// form — no dense staging matrix — with the same per-row arithmetic order
// as the dense construction, so the two produce bit-identical engines.
func newRevised(p *Problem) *revisedEngine {
	e, rhs, slackOf := newEngineShell(p)
	m, n := e.m, e.n
	addCol := func(lo, hi, cost float64) int {
		e.lo = append(e.lo, lo)
		e.hi = append(e.hi, hi)
		e.cost = append(e.cost, cost)
		e.status = append(e.status, atLower)
		e.xval = append(e.xval, lo)
		e.cols = append(e.cols, sparseCol{})
		return len(e.status) - 1
	}
	flip := make([]bool, m)

	// Initial basis: slack where its value is admissible, else artificial,
	// flipping rows so basic values are non-negative. The residuals
	// rhs − Σ_j A_j x_j accumulate column-by-column in ascending j — the
	// same per-row subtraction order as a dense row scan.
	e.basis = make([]int, m)
	e.xB = make([]float64, m)
	e.bvec = make([]float64, m)
	copy(e.bvec, rhs)
	residual := make([]float64, m)
	copy(residual, rhs)
	for j := 0; j < n; j++ {
		if e.xval[j] == 0 {
			continue
		}
		col := &e.cols[j]
		for k, i := range col.idx {
			residual[i] -= col.val[k] * e.xval[j]
		}
	}
	for i, c := range p.cons {
		r := residual[i]
		if s := slackOf[i]; s >= 0 {
			coef := 1.0
			if c.rel == GE {
				coef = -1.0
			}
			sv := r / coef
			if sv >= 0 {
				if coef < 0 {
					flip[i] = true
				}
				e.status[s] = basic
				e.basis[i] = s
				e.xB[i] = sv
				continue
			}
		}
		if r < 0 {
			flip[i] = !flip[i]
			r = -r
		}
		j := addCol(0, math.Inf(1), 0)
		// The artificial enters post-flip with +1.
		e.cols[j].add(i, 1)
		e.status[j] = basic
		e.basis[i] = j
		e.xB[i] = r
	}
	// The artificial region starts after structural + slack columns.
	e.artStart = n
	for i := range slackOf {
		if slackOf[i] >= 0 {
			e.artStart++
		}
	}
	// Apply row flips to structural and slack columns. Artificials were
	// added with +1 after their row's flip was decided, so they are
	// excluded.
	for j := 0; j < e.artStart; j++ {
		col := &e.cols[j]
		for k, i := range col.idx {
			if flip[i] {
				col.val[k] = -col.val[k]
			}
		}
	}
	for i, f := range flip {
		if f {
			e.rowMult[i] = -e.rowMult[i]
			e.bvec[i] = -e.bvec[i]
		}
	}

	e.ncol = len(e.status)

	// Identity basis inverse: after the row flips every initial basic
	// column (slack or artificial) carries +1 on its own row, so B = I.
	e.binv = make([][]float64, m)
	for i := range e.binv {
		e.binv[i] = make([]float64, m)
		e.binv[i][i] = 1
	}

	e.y = make([]float64, m)
	e.dir = make([]float64, m)
	e.cvec = make([]float64, e.ncol)
	e.syncJournal(p) // built from p's current state: pending edits covered
	return e
}

// colDot returns column j dotted with vector v (v indexed by row).
func (e *revisedEngine) colDot(j int, v []float64) float64 {
	col := &e.cols[j]
	sum := 0.0
	for k, i := range col.idx {
		sum += col.val[k] * v[i]
	}
	return sum
}

// applyBinv computes dst = B^{-1} A_j, walking binv row by row so the
// traversal is cache-contiguous (the column-major order touches m cache
// lines per sparse entry and dominated warm-solve profiles).
func (e *revisedEngine) applyBinv(j int, dst []float64) {
	col := &e.cols[j]
	idx, val := col.idx, col.val
	for i := 0; i < e.m; i++ {
		row := e.binv[i]
		s := 0.0
		for k, r := range idx {
			s += row[r] * val[k]
		}
		dst[i] = s
	}
}

// solve runs both phases and returns the status.
func (e *revisedEngine) solve() Status {
	if e.m == 0 {
		for j := 0; j < e.n; j++ {
			if e.cost[j] < 0 {
				if math.IsInf(e.hi[j], 1) {
					return Unbounded
				}
				e.status[j] = atUpper
				e.xval[j] = e.hi[j]
			}
		}
		return Optimal
	}
	if e.ncol > e.artStart {
		for j := range e.cvec {
			e.cvec[j] = 0
		}
		for j := e.artStart; j < e.ncol; j++ {
			e.cvec[j] = 1
		}
		st := e.iterate()
		if st != Optimal {
			if st == IterationLimit {
				return st
			}
			return Infeasible
		}
		res := 0.0
		for i, b := range e.basis {
			if b >= e.artStart {
				res += math.Abs(e.xB[i])
			}
		}
		if res > feasTol {
			return Infeasible
		}
		// Pin artificials.
		for j := e.artStart; j < e.ncol; j++ {
			e.hi[j] = 0
			if e.status[j] != basic {
				e.status[j] = atLower
				e.xval[j] = 0
			}
		}
	}
	copy(e.cvec, e.cost)
	for j := e.artStart; j < e.ncol; j++ {
		e.cvec[j] = 0
	}
	return e.iterate()
}

// iterate runs primal simplex with Dantzig pricing and a Bland fallback.
func (e *revisedEngine) iterate() Status {
	maxIter := 200*(e.m+e.ncol) + 2000
	blandAfter := 40 * (e.m + e.ncol)

	// Mid-solve primal bases are not dual feasible; snap restores the flag
	// when the solve ends at a verified optimum.
	e.dualClean = false
	pivots := 0
	for iter := 0; iter < maxIter; iter++ {
		bland := iter >= blandAfter
		if pivots > 0 && pivots%64 == 0 {
			e.refactorize()
			pivots++ // avoid refactorizing repeatedly on bound-flip loops
		}
		e.computeY()
		// Price and choose entering. Reduced costs are recomputed from y
		// every iteration, so the optimality test must be RELATIVE to the
		// magnitudes involved — with 1e7-scale objective coefficients the
		// float noise in c_j − y·A_j dwarfs any absolute tolerance.
		q := -1
		best := priceTol
		for j := 0; j < e.ncol; j++ {
			if e.status[j] == basic || e.hi[j]-e.lo[j] <= boundEps {
				continue
			}
			dot := e.colDot(j, e.y)
			dj := e.cvec[j] - dot
			denom := 1 + math.Abs(e.cvec[j]) + math.Abs(dot)
			var score float64
			if e.status[j] == atLower {
				score = -dj / denom
			} else {
				score = dj / denom
			}
			if score > best {
				if bland {
					q = j
					break
				}
				q = j
				best = score
			}
		}
		if q < 0 {
			// Optimality under a possibly-drifted inverse: refresh and
			// re-price once before declaring victory — but only when enough
			// row operations have accumulated since the last factorization
			// for drift to be plausible. Warm re-solves finish in a handful
			// of pivots and must not pay an O(m³) confirmation each; drift
			// from a few rank-one updates is at machine-epsilon scale.
			if e.stalePivots >= confirmPivots {
				if e.refactorize() {
					continue
				}
			}
			e.snap()
			return Optimal
		}
		// Another pivot is needed; stop if the caller's budget is spent.
		if e.limit > 0 && e.iters >= e.limit {
			return IterationLimit
		}
		e.iters++

		sigma := 1.0
		if e.status[q] == atUpper {
			sigma = -1.0
		}
		e.applyBinv(q, e.dir)

		limit := math.Inf(1)
		if !math.IsInf(e.hi[q], 1) {
			limit = e.hi[q] - e.lo[q]
		}
		leave := -1
		leaveToUpper := false
		for i := 0; i < e.m; i++ {
			a := sigma * e.dir[i]
			b := e.basis[i]
			if a > pivTol {
				room := e.xB[i] - e.lo[b]
				if room < 0 {
					room = 0
				}
				if step := room / a; step < limit-boundEps ||
					(step < limit+boundEps && e.betterLeaving(leave, i, bland)) {
					if step < limit {
						limit = step
					}
					leave = i
					leaveToUpper = false
				}
			} else if a < -pivTol {
				if math.IsInf(e.hi[b], 1) {
					continue
				}
				room := e.hi[b] - e.xB[i]
				if room < 0 {
					room = 0
				}
				if step := room / -a; step < limit-boundEps ||
					(step < limit+boundEps && e.betterLeaving(leave, i, bland)) {
					if step < limit {
						limit = step
					}
					leave = i
					leaveToUpper = true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}

		if leave < 0 {
			// Bound flip.
			for i := 0; i < e.m; i++ {
				if e.dir[i] != 0 {
					e.xB[i] -= sigma * limit * e.dir[i]
				}
			}
			if e.status[q] == atLower {
				e.status[q] = atUpper
				e.xval[q] = e.hi[q]
			} else {
				e.status[q] = atLower
				e.xval[q] = e.lo[q]
			}
			continue
		}

		// Pivot: q enters at row leave.
		enterVal := e.xval[q] + sigma*limit
		leaveVar := e.basis[leave]
		for i := 0; i < e.m; i++ {
			if i != leave && e.dir[i] != 0 {
				e.xB[i] -= sigma * limit * e.dir[i]
			}
		}
		if leaveToUpper {
			e.status[leaveVar] = atUpper
			e.xval[leaveVar] = e.hi[leaveVar]
		} else {
			e.status[leaveVar] = atLower
			e.xval[leaveVar] = e.lo[leaveVar]
		}
		// Update B^{-1}: row ops making dir into e_leave.
		piv := e.dir[leave]
		inv := 1 / piv
		rowL := e.binv[leave]
		for r := 0; r < e.m; r++ {
			rowL[r] *= inv
		}
		for i := 0; i < e.m; i++ {
			if i == leave {
				continue
			}
			f := e.dir[i]
			if f == 0 {
				continue
			}
			row := e.binv[i]
			for r := 0; r < e.m; r++ {
				if rowL[r] != 0 {
					row[r] -= f * rowL[r]
				}
			}
		}
		e.status[q] = basic
		e.basis[leave] = q
		e.xB[leave] = enterVal
		pivots++
		e.stalePivots++
	}
	return IterationLimit
}

// computeY fills e.y with the simplex multipliers y = c_B^T B^{-1} under
// the active-phase cost vector.
func (e *revisedEngine) computeY() {
	for i := range e.y {
		e.y[i] = 0
	}
	for i, b := range e.basis {
		cb := e.cvec[b]
		if cb == 0 {
			continue
		}
		row := e.binv[i]
		for r := 0; r < e.m; r++ {
			if row[r] != 0 {
				e.y[r] += cb * row[r]
			}
		}
	}
}

// refactorize rebuilds B^{-1} from the basis columns by Gauss-Jordan
// elimination and recomputes the basic values, absorbing the numerical
// drift of long pivot sequences. It reports whether the basis matrix was
// invertible (it always should be; on failure the previous inverse is
// kept).
func (e *revisedEngine) refactorize() bool {
	m := e.m
	// Assemble [B | I] in the cached workspace (a warm solver refactorizes
	// many times over the engine's lifetime; reallocating m×2m each call
	// shows up as GC pressure).
	if e.refacWork == nil {
		e.refacWork = make([][]float64, m)
		for i := range e.refacWork {
			e.refacWork[i] = make([]float64, 2*m)
		}
	}
	work := e.refacWork
	for i := range work {
		row := work[i]
		for k := range row {
			row[k] = 0
		}
		row[m+i] = 1
	}
	for pos, b := range e.basis {
		col := &e.cols[b]
		for k, r := range col.idx {
			work[r][pos] = col.val[k]
		}
	}
	for colIdx := 0; colIdx < m; colIdx++ {
		piv := colIdx
		for r := colIdx + 1; r < m; r++ {
			if math.Abs(work[r][colIdx]) > math.Abs(work[piv][colIdx]) {
				piv = r
			}
		}
		if math.Abs(work[piv][colIdx]) < 1e-12 {
			return false
		}
		work[colIdx], work[piv] = work[piv], work[colIdx]
		inv := 1 / work[colIdx][colIdx]
		for k := 0; k < 2*m; k++ {
			work[colIdx][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == colIdx {
				continue
			}
			f := work[r][colIdx]
			if f == 0 {
				continue
			}
			for k := 0; k < 2*m; k++ {
				work[r][k] -= f * work[colIdx][k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(e.binv[i], work[i][m:])
	}
	e.recomputeXB()
	e.stalePivots = 0
	return true
}

// recomputeXB recomputes the basic values xB = B^{-1}(b − Σ_nonbasic A_j x_j)
// under the current basis inverse and nonbasic placements.
func (e *revisedEngine) recomputeXB() {
	m := e.m
	e.staleRefreshes = 0
	if e.resid == nil {
		e.resid = make([]float64, m)
	}
	resid := e.resid
	copy(resid, e.bvec)
	for j := 0; j < e.ncol; j++ {
		if e.status[j] == basic || e.xval[j] == 0 {
			continue
		}
		col := &e.cols[j]
		for k, r := range col.idx {
			resid[r] -= col.val[k] * e.xval[j]
		}
	}
	for i := 0; i < m; i++ {
		sum := 0.0
		row := e.binv[i]
		for r := 0; r < m; r++ {
			if row[r] != 0 {
				sum += row[r] * resid[r]
			}
		}
		e.xB[i] = sum
	}
}

// dualFeasTol gates warm-start classification: a basis whose reduced costs
// are within this relative tolerance of the right sign counts as dual
// feasible. Looser than priceTol on purpose — a marginally wrong-signed
// reduced cost makes the dual ratio test pick that column first (ratio ≈ 0)
// rather than corrupting the solve, and the final primal cleanup pass
// restores exact optimality conditions either way.
const dualFeasTol = 1e-7

// confirmPivots is the drift budget below which iterate trusts the product-
// form inverse when declaring optimality. Each pivot applies one rank-one
// row operation to binv; after fewer than this many since the last exact
// factorization, the accumulated error is far below the pricing tolerance,
// so the O(m³) confirm-refactorize is pure overhead. Warm re-solves (dual
// repair after an RHS edit, SF fixing rounds) typically finish in one to a
// handful of pivots and would otherwise pay the confirmation every round.
// 64 matches the periodic in-solve refactorization interval and refresh's
// staleness threshold, so the engine has one drift budget everywhere.
const confirmPivots = 64

// refresh re-reads the mutable pieces of p — bounds, costs, right-hand
// sides, and the iteration budget — into the engine without rebuilding
// columns, the basis, or the inverse. When the engine is synced to p's
// edit journal, only the journaled edits are applied and the basic values
// are updated incrementally (a rank-one correction per effective edit);
// otherwise everything is rescanned and xB recomputed from scratch.
// The caller must not have changed p's constraint terms, relations, or
// dimensions (the column layout and equilibration are frozen at
// construction). The iteration counter resets: each refresh starts a new
// solve with a fresh budget, matching one-shot Solve semantics.
func (e *revisedEngine) refresh(p *Problem) {
	incremental := e.journalSynced && !p.mutsFull
	e.limit = p.maxIters
	e.iters = 0
	if incremental {
		e.applyJournal(p)
	} else {
		e.rescan(p)
	}
	e.syncJournal(p)
	if e.stalePivots >= confirmPivots {
		e.refactorize() // also recomputes xB
		return
	}
	if !incremental {
		e.recomputeXB()
		return
	}
	e.staleRefreshes++
	if e.staleRefreshes >= confirmPivots {
		e.recomputeXB() // absorb incremental-update float drift
	}
}

// syncJournal truncates p's edit journal and marks the engine as covering
// it: after the caller applies the pending edits (or rescans everything),
// future journal entries describe exactly the edits this engine has not
// yet seen.
func (e *revisedEngine) syncJournal(p *Problem) {
	p.muts = p.muts[:0]
	p.mutsFull = false
	e.journalSynced = true
}

// rescan re-reads every bound, cost, and right-hand side from p — the
// full-refresh path used when the edit journal does not cover the changes.
func (e *revisedEngine) rescan(p *Problem) {
	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}
	for j, v := range p.vars {
		lo, hi := v.lo, v.hi
		if lo > hi {
			lo, hi = hi, lo
		}
		e.lo[j], e.hi[j] = lo, hi
		e.cost[j] = sign * v.cost
	}
	// Re-place nonbasic columns on their (possibly moved) bounds.
	// Artificials keep hi=0 from the pin after phase 1, so they stay at 0.
	for j := 0; j < e.ncol; j++ {
		if e.status[j] == basic {
			continue
		}
		if e.status[j] == atUpper && math.IsInf(e.hi[j], 1) {
			e.status[j] = atLower
		}
		if e.status[j] == atUpper {
			e.xval[j] = e.hi[j]
		} else {
			e.xval[j] = e.lo[j]
		}
	}
	// rowMult folds the setup-time equilibration and row flips, so the
	// setup rhs is always rhs_user scaled by it.
	for i, c := range p.cons {
		e.bvec[i] = c.rhs * e.rowMult[i]
	}
	// The rescan gives no cost-edit information, so dual feasibility of
	// the carried basis must be re-established by the explicit scan.
	e.dualClean = false
}

// applyJournal replays p's journaled edits against the engine state,
// folding each effective change into the basic values:
//
//   - an RHS edit on row i moves xB by Δb_i · B^{-1}e_i (one inverse
//     column, O(m));
//   - a bound edit that moves a nonbasic variable by Δ moves xB by
//     −Δ · B^{-1}A_j (one ftran, O(m·nnz));
//   - a cost edit rewrites one objective coefficient and, when the value
//     actually changed, invalidates dualClean (reduced-cost signs are no
//     longer guaranteed).
//
// Rereading current values from p makes duplicate journal entries
// idempotent: the second replay sees a zero delta and does nothing.
// The caller is responsible for journal truncation (syncJournal).
func (e *revisedEngine) applyJournal(p *Problem) {
	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}
	for _, mu := range p.muts {
		switch mu.kind {
		case mutCost:
			j := int(mu.idx)
			c := sign * p.vars[j].cost
			//lint:allow nofloateq -- no-op-replay guard: values are assigned, not computed, and any bit-level change must invalidate dualClean
			if c != e.cost[j] {
				e.cost[j] = c
				e.dualClean = false
			}
		case mutRHS:
			i := int(mu.idx)
			nb := p.cons[i].rhs * e.rowMult[i]
			d := nb - e.bvec[i]
			if d == 0 {
				continue
			}
			e.bvec[i] = nb
			for r := 0; r < e.m; r++ {
				if v := e.binv[r][i]; v != 0 {
					e.xB[r] += v * d
				}
			}
		case mutBound:
			j := int(mu.idx)
			lo, hi := p.vars[j].lo, p.vars[j].hi
			if lo > hi {
				lo, hi = hi, lo
			}
			//lint:allow nofloateq -- no-op-replay guard: bounds are assigned, not computed; duplicate journal entries see an exact match and skip
			if lo == e.lo[j] && hi == e.hi[j] {
				continue
			}
			e.lo[j], e.hi[j] = lo, hi
			if e.status[j] == basic {
				continue
			}
			v0 := e.xval[j]
			if e.status[j] == atUpper && math.IsInf(hi, 1) {
				// Placement flips sides, so the reduced-cost sign
				// requirement flips with it: dual feasibility is no longer
				// implied by the previous optimum.
				e.status[j] = atLower
				e.dualClean = false
			}
			if e.status[j] == atUpper {
				e.xval[j] = e.hi[j]
			} else {
				e.xval[j] = e.lo[j]
			}
			d := e.xval[j] - v0
			if d == 0 {
				continue
			}
			e.applyBinv(j, e.dir)
			for i := 0; i < e.m; i++ {
				if e.dir[i] != 0 {
					e.xB[i] -= d * e.dir[i]
				}
			}
		}
	}
}

// primalFeasible reports whether every basic value lies within its bounds
// (relative feasTol), i.e. whether phase-2 primal simplex can continue
// directly from this basis.
func (e *revisedEngine) primalFeasible() bool {
	for i, b := range e.basis {
		tol := feasTol * (1 + math.Abs(e.xB[i]))
		if e.xB[i] < e.lo[b]-tol || e.xB[i] > e.hi[b]+tol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether every nonbasic reduced cost has the
// optimality sign for its bound placement under the active costs — the
// precondition for re-solving with dual simplex after RHS or bound edits.
func (e *revisedEngine) dualFeasible() bool {
	e.computeY()
	for j := 0; j < e.ncol; j++ {
		if e.status[j] == basic || e.hi[j]-e.lo[j] <= boundEps {
			continue
		}
		dot := e.colDot(j, e.y)
		dj := e.cvec[j] - dot
		denom := 1 + math.Abs(e.cvec[j]) + math.Abs(dot)
		if e.status[j] == atLower {
			if -dj/denom > dualFeasTol {
				return false
			}
		} else {
			if dj/denom > dualFeasTol {
				return false
			}
		}
	}
	return true
}

// dualIterate runs bounded-variable dual simplex from a dual-feasible
// basis: each iteration drives the most-violated basic variable out to its
// nearest bound, with the entering column chosen by the dual ratio test so
// reduced costs keep their optimality signs. It returns Optimal once the
// basis is primal feasible (run iterate afterwards for the final primal
// polish), Infeasible when a violated row admits no entering column (the
// dual is unbounded), or IterationLimit on the caller's budget or the
// safety cap.
func (e *revisedEngine) dualIterate() Status {
	maxIter := 200*(e.m+e.ncol) + 2000
	blandAfter := 40 * (e.m + e.ncol)

	pivots := 0
	for iter := 0; iter < maxIter; iter++ {
		bland := iter >= blandAfter
		if pivots > 0 && pivots%64 == 0 {
			e.refactorize()
			pivots++
		}
		// Leaving row: largest relative bound violation among the basics.
		r := -1
		above := false
		worst := feasTol
		for i, b := range e.basis {
			denom := 1 + math.Abs(e.xB[i])
			if d := (e.lo[b] - e.xB[i]) / denom; d > worst {
				r, above, worst = i, false, d
			}
			if math.IsInf(e.hi[b], 1) {
				continue
			}
			if d := (e.xB[i] - e.hi[b]) / denom; d > worst {
				r, above, worst = i, true, d
			}
		}
		if r < 0 {
			return Optimal // primal feasible: hand back to primal simplex
		}
		if e.limit > 0 && e.iters >= e.limit {
			return IterationLimit
		}
		e.iters++

		leaveVar := e.basis[r]
		var bound float64
		if above {
			bound = e.hi[leaveVar]
		} else {
			bound = e.lo[leaveVar]
		}
		delta := e.xB[r] - bound // >0 above the upper bound, <0 below lower

		// Dual ratio test over row r of B^{-1}A: eligible entering columns
		// are those whose step direction both respects their own bound and
		// keeps the leaving variable's new reduced cost on the right side.
		rho := e.binv[r]
		e.computeY()
		q := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		for j := 0; j < e.ncol; j++ {
			if e.status[j] == basic || e.hi[j]-e.lo[j] <= boundEps {
				continue
			}
			alpha := e.colDot(j, rho)
			if math.Abs(alpha) <= pivTol {
				continue
			}
			atLo := e.status[j] == atLower
			if above {
				if atLo && alpha <= 0 || !atLo && alpha >= 0 {
					continue
				}
			} else {
				if atLo && alpha >= 0 || !atLo && alpha <= 0 {
					continue
				}
			}
			if bland {
				if q < 0 || j < q {
					q, bestAlpha = j, alpha
				}
				continue
			}
			dot := e.colDot(j, e.y)
			dj := e.cvec[j] - dot
			ratio := math.Abs(dj) / math.Abs(alpha)
			if ratio < bestRatio-boundEps ||
				(ratio < bestRatio+boundEps && math.Abs(alpha) > math.Abs(bestAlpha)) {
				q, bestRatio, bestAlpha = j, ratio, alpha
			}
		}
		if q < 0 {
			// No column can repair the violated row: primal infeasible.
			return Infeasible
		}

		// Pivot: q enters at row r, the leaving variable lands on the bound
		// it was violating.
		e.applyBinv(q, e.dir)
		alphaQ := e.dir[r]
		if math.Abs(alphaQ) <= pivTol {
			// rho was drifted; refactorize and retry the row selection.
			e.refactorize()
			pivots++
			continue
		}
		step := delta / alphaQ
		for i := 0; i < e.m; i++ {
			if i != r && e.dir[i] != 0 {
				e.xB[i] -= step * e.dir[i]
			}
		}
		if above {
			e.status[leaveVar] = atUpper
			e.xval[leaveVar] = e.hi[leaveVar]
		} else {
			e.status[leaveVar] = atLower
			e.xval[leaveVar] = e.lo[leaveVar]
		}
		piv := e.dir[r]
		inv := 1 / piv
		rowR := e.binv[r]
		for c := 0; c < e.m; c++ {
			rowR[c] *= inv
		}
		for i := 0; i < e.m; i++ {
			if i == r {
				continue
			}
			f := e.dir[i]
			if f == 0 {
				continue
			}
			row := e.binv[i]
			for c := 0; c < e.m; c++ {
				if rowR[c] != 0 {
					row[c] -= f * rowR[c]
				}
			}
		}
		newVal := e.xval[q] + step
		e.status[q] = basic
		e.basis[r] = q
		e.xB[r] = newVal
		pivots++
		e.stalePivots++
	}
	return IterationLimit
}

func (e *revisedEngine) betterLeaving(cur, cand int, bland bool) bool {
	if cur < 0 {
		return true
	}
	if bland {
		return e.basis[cand] < e.basis[cur]
	}
	return math.Abs(e.dir[cand]) > math.Abs(e.dir[cur])
}

// snap clamps the basic values onto their bounds at a declared optimum and
// records that the basis is dual feasible under the active costs, so later
// RHS-only re-solves can skip the explicit reduced-cost scan.
func (e *revisedEngine) snap() {
	e.dualClean = true
	for i, b := range e.basis {
		if e.xB[i] < e.lo[b] {
			e.xB[i] = e.lo[b]
		}
		if e.xB[i] > e.hi[b] {
			e.xB[i] = e.hi[b]
		}
	}
}

func (e *revisedEngine) structuralValues() []float64 {
	x := make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		x[j] = e.xval[j]
	}
	for i, b := range e.basis {
		if b < e.n {
			x[b] = e.xB[i]
		}
	}
	return x
}

// duals mirrors the tableau engine's recovery, reading the multipliers
// directly from y at optimality.
func (e *revisedEngine) duals(sign float64) []float64 {
	// Recompute y for the final basis under phase-2 costs.
	for i := range e.y {
		e.y[i] = 0
	}
	for i, b := range e.basis {
		cb := e.cvec[b]
		if cb == 0 {
			continue
		}
		row := e.binv[i]
		for r := 0; r < e.m; r++ {
			e.y[r] += cb * row[r]
		}
	}
	out := make([]float64, e.m)
	for i := 0; i < e.m; i++ {
		out[i] = sign * e.y[i] * e.rowMult[i]
	}
	return out
}
