// Package lp implements a two-phase, bounded-variable simplex solver for
// linear programs, with warm-started re-solves over a persistent basis.
//
// It exists because the paper's per-slot subproblems (the S1 sequential-
// fix scheduling heuristic, its exact branch-and-bound counterpart, the
// relaxed lower-bound problem P3̄, and the inner programs of the S4 energy
// management in internal/energymgmt) all reduce to small/medium LPs that
// the original authors solved with CPLEX; this package is the
// from-scratch, stdlib-only substitute. Solution.Iterations exposes each
// solve's simplex work to the metrics layer (docs/METRICS.md).
//
// Scope and guarantees:
//   - Variables have a finite lower bound and a finite or +Inf upper bound.
//     (Free variables can be modeled by splitting into two non-negatives.)
//   - Constraints are <=, >=, or = rows.
//   - Phase 1 uses artificial variables; Phase 2 optimizes the real
//     objective. Dantzig pricing with an automatic switch to Bland's rule
//     guards against cycling.
//   - Status is one of Optimal, Infeasible, Unbounded, or IterationLimit.
//
// # Solve flow and basis lifecycle
//
// A one-shot Solve runs presolve (fixed-variable substitution, empty-row
// elimination) and then the two-phase primal simplex: phase 1 drives
// artificial variables out of the basis to find a feasible point, phase 2
// optimizes the real objective. Two engines implement identical semantics
// — the dense full-tableau engine (the default) and a revised simplex
// holding an explicit basis inverse over sparse columns — and are
// cross-validated against each other in the test suite.
//
// Repeated solves of the same Problem after small edits should go through
// a WarmSolver instead. It keeps the revised engine (columns, basis, and
// factorized basis inverse) alive between Solve calls and classifies each
// re-solve by what the edit preserved:
//
//   - bounds, costs, and right-hand sides unchanged enough that the old
//     basis is still primal feasible → phase-2 primal simplex finishes in
//     a few pivots (often zero);
//   - RHS or bound changes only (costs intact) → the old basis stays DUAL
//     feasible, and the dual simplex restores primal feasibility without
//     ever re-running phase 1;
//   - anything else → cold fallback, counted as a basis invalidation.
//
// The basis itself can outlive the solver: ExportBasis snapshots the
// final column statuses, ImportBasis seeds a WarmSolver for a different
// Problem instance with the same structure (checked by signature), and
// the engine revalidates the snapshot by refactorizing before trusting
// it. docs/PERFORMANCE.md documents the reuse and invalidation rules.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota + 1 // <=
	GE                // >=
	EQ                // =
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// VarID identifies a variable within a Problem.
type VarID int

// Term is one coefficient of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	IterationLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrBadProblem reports a structurally invalid problem (e.g. inconsistent
// bounds or an unknown variable in a constraint).
var ErrBadProblem = errors.New("lp: invalid problem")

type variable struct {
	name string
	lo   float64
	hi   float64
	cost float64
}

type constraint struct {
	name  string
	rel   Rel
	rhs   float64
	terms []Term
}

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
type Problem struct {
	sense Sense
	vars  []variable
	cons  []constraint
	// maxIters caps the total simplex iterations of a solve (both phases);
	// 0 means the engines' built-in safety cap only. See SetIterationLimit.
	maxIters int

	// muts journals bound/cost/RHS edits since the last warm-engine sync,
	// letting WarmSolver refreshes update only what changed instead of
	// rescanning every column and recomputing the basic values from
	// scratch (docs/PERFORMANCE.md). Structural edits and journal overflow
	// set mutsFull, which sends the next refresh down the full rescan
	// path. The journal is consumed (truncated) by the engine it syncs.
	muts     []mutation
	mutsFull bool
}

// mutation is one journaled edit: which kind of mutable field changed and
// its index (a VarID for bounds/costs, a constraint index for RHS). The
// new value is not recorded — the consumer rereads the problem, which
// makes replaying duplicates idempotent.
type mutation struct {
	kind mutKind
	idx  int32
}

type mutKind uint8

const (
	mutBound mutKind = iota
	mutCost
	mutRHS
)

// maxJournal bounds the edit journal: past this many pending edits a full
// refresh rescan is cheaper than replaying them one by one.
const maxJournal = 512

func (p *Problem) journal(k mutKind, idx int) {
	if p.mutsFull {
		return
	}
	if len(p.muts) >= maxJournal {
		p.mutsFull = true
		p.muts = p.muts[:0]
		return
	}
	p.muts = append(p.muts, mutation{kind: k, idx: int32(idx)})
}

// NewProblem returns an empty problem with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its identifier. hi may be math.Inf(1); lo must be finite.
func (p *Problem) AddVar(name string, lo, hi, cost float64) VarID {
	p.vars = append(p.vars, variable{name: name, lo: lo, hi: hi, cost: cost})
	p.mutsFull = true // structural edit: no incremental refresh across it
	p.muts = p.muts[:0]
	return VarID(len(p.vars) - 1)
}

// Sense returns the objective sense the problem was created with.
func (p *Problem) Sense() Sense { return p.sense }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetVarBounds replaces the bounds of v. It panics if v is unknown.
func (p *Problem) SetVarBounds(v VarID, lo, hi float64) {
	p.vars[v].lo = lo
	p.vars[v].hi = hi
	p.journal(mutBound, int(v))
}

// SetIterationLimit caps the total simplex iterations (pivots and bound
// flips, both phases) a Solve may spend; a solve that exhausts the budget
// reports Status IterationLimit. n <= 0 restores the default behavior: the
// engines' built-in anti-cycling safety cap only. The limit is a solve
// budget for callers with per-slot deadlines (docs/ROBUSTNESS.md), so it
// survives Clone and presolve reduction.
func (p *Problem) SetIterationLimit(n int) {
	if n < 0 {
		n = 0
	}
	p.maxIters = n
}

// IterationLimit returns the configured iteration budget (0 = none).
func (p *Problem) IterationLimit() int { return p.maxIters }

// SetVarCost replaces the objective coefficient of v.
func (p *Problem) SetVarCost(v VarID, cost float64) {
	p.vars[v].cost = cost
	p.journal(mutCost, int(v))
}

// SetConstraintRHS replaces the right-hand side of constraint i (in the
// order constraints were added). It panics if i is out of range. Together
// with SetVarBounds this is the mutation vocabulary of warm-started
// re-solves: RHS and bound edits preserve dual feasibility of the previous
// basis, so a WarmSolver can continue with dual simplex instead of
// re-running phase 1.
func (p *Problem) SetConstraintRHS(i int, rhs float64) {
	p.cons[i].rhs = rhs
	p.journal(mutRHS, i)
}

// ConstraintRHS returns the current right-hand side of constraint i.
func (p *Problem) ConstraintRHS(i int) float64 { return p.cons[i].rhs }

// VarName returns the name given to v at creation.
func (p *Problem) VarName(v VarID) string { return p.vars[v].name }

// VarBounds returns the current bounds of v.
func (p *Problem) VarBounds(v VarID) (lo, hi float64) {
	return p.vars[v].lo, p.vars[v].hi
}

// AddConstraint adds the row "sum(terms) rel rhs". Duplicate variables in
// terms are summed. Rows with no terms are allowed and checked for
// consistency at solve time.
func (p *Problem) AddConstraint(name string, rel Rel, rhs float64, terms ...Term) {
	p.mutsFull = true // structural edit: no incremental refresh across it
	p.muts = p.muts[:0]
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{name: name, rel: rel, rhs: rhs, terms: cp})
}

// Clone returns a deep copy of p; bound changes on the clone do not affect
// the original. Constraint term slices are shared structurally but never
// mutated by the solver, so cloning copies only the headers.
func (p *Problem) Clone() *Problem {
	q := &Problem{sense: p.sense, maxIters: p.maxIters}
	q.vars = make([]variable, len(p.vars))
	copy(q.vars, p.vars)
	q.cons = make([]constraint, len(p.cons))
	copy(q.cons, p.cons)
	return q
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	// Iterations is the total number of simplex iterations (pivots and
	// bound flips, phases 1 and 2) the engine spent on this solve — the
	// work measure surfaced by the metrics layer (docs/METRICS.md).
	Iterations int

	x []float64
	y []float64
}

// Value returns the optimal value of v. It returns 0 for non-Optimal
// solutions.
func (s *Solution) Value(v VarID) float64 {
	if s.Status != Optimal || int(v) >= len(s.x) {
		return 0
	}
	return s.x[v]
}

// Dual returns the simplex multiplier of constraint i (in the order
// constraints were added): the sensitivity ∂Objective/∂rhs_i at the
// optimum. For degenerate optima the multiplier is one valid member of the
// dual optimal set. It returns 0 for non-Optimal solutions.
func (s *Solution) Dual(i int) float64 {
	if s.Status != Optimal || i < 0 || i >= len(s.y) {
		return 0
	}
	return s.y[i]
}

// Values returns a copy of the full primal solution vector (structural
// variables only), or nil for non-Optimal solutions.
func (s *Solution) Values() []float64 {
	if s.Status != Optimal {
		return nil
	}
	out := make([]float64, len(s.x))
	copy(out, s.x)
	return out
}

// Engine selects a simplex implementation.
type Engine int

// Available engines.
const (
	// TableauEngine is the dense full-tableau simplex (the default):
	// simple, O(m·n) per pivot.
	TableauEngine Engine = iota
	// RevisedEngine maintains an explicit basis inverse over sparse
	// columns: O(nnz) pricing + O(m²) updates, faster when n ≫ m.
	RevisedEngine
)

// Solve optimizes with the default engine. An error is returned only for
// structurally invalid input; solver outcomes (infeasible, unbounded,
// iteration limit) are reported via Solution.Status.
func (p *Problem) Solve() (*Solution, error) { return p.SolveWith(TableauEngine) }

// SolveWith optimizes the problem with the chosen engine. Both engines
// implement identical bounded-variable simplex semantics and are
// cross-validated in the test suite.
func (p *Problem) SolveWith(engine Engine) (*Solution, error) {
	if sol, err := p.validateForSolve(); sol != nil || err != nil {
		return sol, err
	}

	// Presolve: substitute fixed variables and drop rows that become
	// empty. The scheduler's sequential-fix loop pins more variables each
	// round, so this shrinks its LPs substantially.
	return p.solvePresolved(engine, presolve(p))
}

// validateForSolve checks the problem for structural validity. It returns
// a non-nil Solution for trivially infeasible bound boxes, a non-nil error
// for malformed input, and (nil, nil) when the problem may be solved.
func (p *Problem) validateForSolve() (*Solution, error) {
	for i, v := range p.vars {
		if math.IsInf(v.lo, 0) || math.IsNaN(v.lo) || math.IsNaN(v.hi) || math.IsInf(v.hi, -1) {
			return nil, fmt.Errorf("%w: variable %d (%s) has invalid bounds [%v,%v]",
				ErrBadProblem, i, v.name, v.lo, v.hi)
		}
		if v.lo > v.hi {
			// Inconsistent box: trivially infeasible, but catch the
			// clearly-bogus construction cases too.
			if v.lo > v.hi+1e-12 {
				return &Solution{Status: Infeasible}, nil
			}
		}
	}
	for _, c := range p.cons {
		for _, t := range c.terms {
			if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
				return nil, fmt.Errorf("%w: constraint %q references unknown variable %d",
					ErrBadProblem, c.name, t.Var)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return nil, fmt.Errorf("%w: constraint %q has non-finite coefficient",
					ErrBadProblem, c.name)
			}
		}
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return nil, fmt.Errorf("%w: constraint %q has non-finite rhs", ErrBadProblem, c.name)
		}
	}
	return nil, nil
}

// solvePresolved runs the engine on the already-presolved problem and maps
// the reduced solution back to p's variable space.
func (p *Problem) solvePresolved(engine Engine, ps *presolved) (*Solution, error) {
	if ps.infeasible {
		return &Solution{Status: Infeasible}, nil
	}
	if !ps.identity {
		sol, err := ps.reduced.SolveWith(engine)
		if err != nil {
			return nil, err
		}
		return ps.expand(p, sol), nil
	}

	var (
		status Status
		iters  int
		values func() []float64
		duals  func(float64) []float64
	)
	if engine == RevisedEngine {
		e := newRevised(p)
		status = e.solve()
		iters = e.iters
		values, duals = e.structuralValues, e.duals
	} else {
		t := newTableau(p)
		status = t.solve()
		iters = t.iters
		values, duals = t.structuralValues, t.duals
	}
	sol := &Solution{Status: status, Iterations: iters}
	if status == Optimal {
		sign := 1.0
		if p.sense == Maximize {
			sign = -1.0
		}
		sol.y = duals(sign)
		sol.x = values()
		obj := 0.0
		for j, v := range p.vars {
			obj += v.cost * sol.x[j]
		}
		sol.Objective = obj
	}
	return sol, nil
}
