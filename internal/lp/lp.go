// Package lp implements a dense, two-phase, bounded-variable primal simplex
// solver for linear programs.
//
// It exists because the paper's per-slot subproblems (the S1 sequential-
// fix scheduling heuristic, its exact branch-and-bound counterpart, the
// relaxed lower-bound problem P3̄, and the inner programs of the S4 energy
// management in internal/energymgmt) all reduce to small/medium dense LPs
// that the original authors solved with CPLEX; this package is the
// from-scratch, stdlib-only substitute. Solution.Iterations exposes each
// solve's simplex work to the metrics layer (docs/METRICS.md).
//
// Scope and guarantees:
//   - Variables have a finite lower bound and a finite or +Inf upper bound.
//     (Free variables can be modeled by splitting into two non-negatives.)
//   - Constraints are <=, >=, or = rows.
//   - Phase 1 uses artificial variables; Phase 2 optimizes the real
//     objective. Dantzig pricing with an automatic switch to Bland's rule
//     guards against cycling.
//   - Status is one of Optimal, Infeasible, Unbounded, or IterationLimit.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota + 1 // <=
	GE                // >=
	EQ                // =
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// VarID identifies a variable within a Problem.
type VarID int

// Term is one coefficient of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	IterationLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrBadProblem reports a structurally invalid problem (e.g. inconsistent
// bounds or an unknown variable in a constraint).
var ErrBadProblem = errors.New("lp: invalid problem")

type variable struct {
	name string
	lo   float64
	hi   float64
	cost float64
}

type constraint struct {
	name  string
	rel   Rel
	rhs   float64
	terms []Term
}

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
type Problem struct {
	sense Sense
	vars  []variable
	cons  []constraint
	// maxIters caps the total simplex iterations of a solve (both phases);
	// 0 means the engines' built-in safety cap only. See SetIterationLimit.
	maxIters int
}

// NewProblem returns an empty problem with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its identifier. hi may be math.Inf(1); lo must be finite.
func (p *Problem) AddVar(name string, lo, hi, cost float64) VarID {
	p.vars = append(p.vars, variable{name: name, lo: lo, hi: hi, cost: cost})
	return VarID(len(p.vars) - 1)
}

// Sense returns the objective sense the problem was created with.
func (p *Problem) Sense() Sense { return p.sense }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetVarBounds replaces the bounds of v. It panics if v is unknown.
func (p *Problem) SetVarBounds(v VarID, lo, hi float64) {
	p.vars[v].lo = lo
	p.vars[v].hi = hi
}

// SetIterationLimit caps the total simplex iterations (pivots and bound
// flips, both phases) a Solve may spend; a solve that exhausts the budget
// reports Status IterationLimit. n <= 0 restores the default behavior: the
// engines' built-in anti-cycling safety cap only. The limit is a solve
// budget for callers with per-slot deadlines (docs/ROBUSTNESS.md), so it
// survives Clone and presolve reduction.
func (p *Problem) SetIterationLimit(n int) {
	if n < 0 {
		n = 0
	}
	p.maxIters = n
}

// IterationLimit returns the configured iteration budget (0 = none).
func (p *Problem) IterationLimit() int { return p.maxIters }

// SetVarCost replaces the objective coefficient of v.
func (p *Problem) SetVarCost(v VarID, cost float64) {
	p.vars[v].cost = cost
}

// VarName returns the name given to v at creation.
func (p *Problem) VarName(v VarID) string { return p.vars[v].name }

// VarBounds returns the current bounds of v.
func (p *Problem) VarBounds(v VarID) (lo, hi float64) {
	return p.vars[v].lo, p.vars[v].hi
}

// AddConstraint adds the row "sum(terms) rel rhs". Duplicate variables in
// terms are summed. Rows with no terms are allowed and checked for
// consistency at solve time.
func (p *Problem) AddConstraint(name string, rel Rel, rhs float64, terms ...Term) {
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{name: name, rel: rel, rhs: rhs, terms: cp})
}

// Clone returns a deep copy of p; bound changes on the clone do not affect
// the original. Constraint term slices are shared structurally but never
// mutated by the solver, so cloning copies only the headers.
func (p *Problem) Clone() *Problem {
	q := &Problem{sense: p.sense, maxIters: p.maxIters}
	q.vars = make([]variable, len(p.vars))
	copy(q.vars, p.vars)
	q.cons = make([]constraint, len(p.cons))
	copy(q.cons, p.cons)
	return q
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	// Iterations is the total number of simplex iterations (pivots and
	// bound flips, phases 1 and 2) the engine spent on this solve — the
	// work measure surfaced by the metrics layer (docs/METRICS.md).
	Iterations int

	x []float64
	y []float64
}

// Value returns the optimal value of v. It returns 0 for non-Optimal
// solutions.
func (s *Solution) Value(v VarID) float64 {
	if s.Status != Optimal || int(v) >= len(s.x) {
		return 0
	}
	return s.x[v]
}

// Dual returns the simplex multiplier of constraint i (in the order
// constraints were added): the sensitivity ∂Objective/∂rhs_i at the
// optimum. For degenerate optima the multiplier is one valid member of the
// dual optimal set. It returns 0 for non-Optimal solutions.
func (s *Solution) Dual(i int) float64 {
	if s.Status != Optimal || i < 0 || i >= len(s.y) {
		return 0
	}
	return s.y[i]
}

// Values returns a copy of the full primal solution vector (structural
// variables only), or nil for non-Optimal solutions.
func (s *Solution) Values() []float64 {
	if s.Status != Optimal {
		return nil
	}
	out := make([]float64, len(s.x))
	copy(out, s.x)
	return out
}

// Engine selects a simplex implementation.
type Engine int

// Available engines.
const (
	// TableauEngine is the dense full-tableau simplex (the default):
	// simple, O(m·n) per pivot.
	TableauEngine Engine = iota
	// RevisedEngine maintains an explicit basis inverse over sparse
	// columns: O(nnz) pricing + O(m²) updates, faster when n ≫ m.
	RevisedEngine
)

// Solve optimizes with the default engine. An error is returned only for
// structurally invalid input; solver outcomes (infeasible, unbounded,
// iteration limit) are reported via Solution.Status.
func (p *Problem) Solve() (*Solution, error) { return p.SolveWith(TableauEngine) }

// SolveWith optimizes the problem with the chosen engine. Both engines
// implement identical bounded-variable simplex semantics and are
// cross-validated in the test suite.
func (p *Problem) SolveWith(engine Engine) (*Solution, error) {
	for i, v := range p.vars {
		if math.IsInf(v.lo, 0) || math.IsNaN(v.lo) || math.IsNaN(v.hi) || math.IsInf(v.hi, -1) {
			return nil, fmt.Errorf("%w: variable %d (%s) has invalid bounds [%v,%v]",
				ErrBadProblem, i, v.name, v.lo, v.hi)
		}
		if v.lo > v.hi {
			// Inconsistent box: trivially infeasible, but catch the
			// clearly-bogus construction cases too.
			if v.lo > v.hi+1e-12 {
				return &Solution{Status: Infeasible}, nil
			}
		}
	}
	for _, c := range p.cons {
		for _, t := range c.terms {
			if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
				return nil, fmt.Errorf("%w: constraint %q references unknown variable %d",
					ErrBadProblem, c.name, t.Var)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return nil, fmt.Errorf("%w: constraint %q has non-finite coefficient",
					ErrBadProblem, c.name)
			}
		}
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return nil, fmt.Errorf("%w: constraint %q has non-finite rhs", ErrBadProblem, c.name)
		}
	}

	// Presolve: substitute fixed variables and drop rows that become
	// empty. The scheduler's sequential-fix loop pins more variables each
	// round, so this shrinks its LPs substantially.
	ps := presolve(p)
	if ps.infeasible {
		return &Solution{Status: Infeasible}, nil
	}
	if !ps.identity {
		sol, err := ps.reduced.SolveWith(engine)
		if err != nil {
			return nil, err
		}
		return ps.expand(p, sol), nil
	}

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}
	var (
		status Status
		iters  int
		values func() []float64
		duals  func(float64) []float64
	)
	if engine == RevisedEngine {
		e := newRevised(p)
		status = e.solve()
		iters = e.iters
		values, duals = e.structuralValues, e.duals
	} else {
		t := newTableau(p)
		status = t.solve()
		iters = t.iters
		values, duals = t.structuralValues, t.duals
	}
	sol := &Solution{Status: status, Iterations: iters}
	if status == Optimal {
		sol.y = duals(sign)
		sol.x = values()
		obj := 0.0
		for j, v := range p.vars {
			obj += v.cost * sol.x[j]
		}
		sol.Objective = obj
	}
	return sol, nil
}
