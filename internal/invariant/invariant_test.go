package invariant_test

import (
	"errors"
	"testing"

	"greencell/internal/core"
	"greencell/internal/energy"
	"greencell/internal/invariant"
	"greencell/internal/rng"
	"greencell/internal/sim"
)

// runWithTamper executes a fresh small paper scenario whose Check hook
// first applies tamper to the slot record, then runs a fresh Checker.
// It returns the first Step error (nil if the horizon completes).
func runWithTamper(t *testing.T, tamper func(*core.SlotCheck)) error {
	t.Helper()
	sc := sim.Paper()
	sc.Slots = 5
	_, net, tm, err := sim.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New()
	ctrl, err := core.New(core.Config{
		Net:         net,
		Traffic:     tm,
		V:           sc.V,
		Lambda:      sc.Lambda,
		SlotSeconds: sc.SlotSeconds,
		Cost:        energy.PaperCost(),
		EnergyGate:  true,
		Check: func(s *core.SlotCheck) error {
			if tamper != nil {
				tamper(s)
			}
			return chk.Check(s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(sc.Seed).Split("slots")
	for slot := 0; slot < sc.Slots; slot++ {
		if _, err := ctrl.Step(src); err != nil {
			return err
		}
	}
	return nil
}

// wantViolation asserts err wraps a *Violation with the given equation.
func wantViolation(t *testing.T, err error, eq string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected a violation of eq %s, run passed", eq)
	}
	var v *invariant.Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected *invariant.Violation, got %v", err)
	}
	if v.Eq != eq {
		t.Fatalf("expected eq %s, got %s (%v)", eq, v.Eq, v)
	}
	if v.Slot < 0 {
		t.Fatalf("violation missing slot: %v", v)
	}
}

func TestCleanRunPasses(t *testing.T) {
	if err := runWithTamper(t, nil); err != nil {
		t.Fatalf("untampered paper run violated an invariant: %v", err)
	}
}

func TestPaperRunCheckInvariants(t *testing.T) {
	sc := sim.Paper()
	sc.Slots = 30
	sc.CheckInvariants = true
	if _, err := sim.Run(sc); err != nil {
		t.Fatalf("paper preset with CheckInvariants: %v", err)
	}
}

func TestEnergyViolations(t *testing.T) {
	cases := []struct {
		name string
		eq   string
		tamp func(*core.SlotCheck)
	}{
		{"simultaneous charge and discharge", "(9)", func(s *core.SlotCheck) {
			s.Energy.Nodes[0].GridToBattery = 1
			s.Energy.Nodes[0].DischargeWh = 1
			// Keep the prior checks satisfied while (9) breaks.
			s.Obs.Connected[0] = true
			s.ChargeHeadroomWh[0] = 10
			s.DischargeHeadroomWh[0] = 10
		}},
		{"battery below zero", "(10)", func(s *core.SlotCheck) {
			s.BatteryAfterWh[0] = -5
		}},
		{"charge beyond headroom", "(11)", func(s *core.SlotCheck) {
			s.ChargeHeadroomWh[0] = -1
		}},
		{"discharge beyond headroom", "(12)", func(s *core.SlotCheck) {
			s.DischargeHeadroomWh[0] = -1
		}},
		{"grid draw while disconnected", "(14)", func(s *core.SlotCheck) {
			s.Obs.Connected[0] = false
			s.Energy.Nodes[0].GridToDemand = 1
			// The extra grid supply cannot trip the balance check (2),
			// which only catches under-supply.
		}},
		{"unserved demand", "(2)", func(s *core.SlotCheck) {
			n := s.Energy.Nodes[0]
			s.DemandWh[0] = n.RenewToDemand + n.GridToDemand + n.DischargeWh + n.DeficitWh + 100
		}},
		{"infeasible battery spec", "(13)", func(s *core.SlotCheck) {
			spec := &s.Net.Nodes[0].Spec.Battery
			spec.MaxChargeWh = spec.CapacityWh + 1
			spec.MaxDischargeWh = spec.CapacityWh + 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantViolation(t, runWithTamper(t, tc.tamp), tc.eq)
		})
	}
}

func TestScheduleViolation(t *testing.T) {
	err := runWithTamper(t, func(s *core.SlotCheck) {
		s.Assignment.Activity[0] = 5 // outside [0,1], and over any radio count
	})
	wantViolation(t, err, "(22)")
}

func TestFlowViolations(t *testing.T) {
	t.Run("flow into the source", func(t *testing.T) {
		err := runWithTamper(t, func(s *core.SlotCheck) {
			in := s.Net.InLinks(s.Source[0])
			if len(in) == 0 {
				t.Skip("source has no incoming candidate links")
			}
			l := in[0]
			s.Flow[l][0] = 1
			s.RouteCapPkts[l] = 10
		})
		wantViolation(t, err, "(16)")
	})
	t.Run("flow out of a delivery point", func(t *testing.T) {
		err := runWithTamper(t, func(s *core.SlotCheck) {
			for s2 := range s.Admit {
				for _, l := range s.Net.OutLinks(findSink(s, s2)) {
					if s.Net.Links[l].To != s.Source[s2] {
						s.Flow[l][s2] = 1
						s.RouteCapPkts[l] = 10
						return
					}
				}
			}
			t.Skip("no out-link from any delivery point")
		})
		wantViolation(t, err, "(17)")
	})
	t.Run("executed exceeds routed", func(t *testing.T) {
		err := runWithTamper(t, func(s *core.SlotCheck) {
			s.Actual[0][0] = s.Flow[0][0] + 5
		})
		wantViolation(t, err, "(19)")
	})
	t.Run("ship beyond backlog", func(t *testing.T) {
		err := runWithTamper(t, func(s *core.SlotCheck) {
			l, ok := neutralLink(s)
			if !ok {
				t.Skip("no link free of source/sink rules")
			}
			from := s.Net.Links[l].From
			s.Flow[l][0] = s.QBefore[0][from] + 7
			s.Actual[l][0] = s.QBefore[0][from] + 7
			s.RouteCapPkts[l] = s.QBefore[0][from] + 100
		})
		wantViolation(t, err, "(19)")
	})
	t.Run("flow beyond link capacity", func(t *testing.T) {
		err := runWithTamper(t, func(s *core.SlotCheck) {
			l, ok := neutralLink(s)
			if !ok {
				t.Skip("no link free of source/sink rules")
			}
			s.Flow[l][0] = s.RouteCapPkts[l] + 5
		})
		wantViolation(t, err, "(25)")
	})
	t.Run("delivery beyond admission", func(t *testing.T) {
		err := runWithTamper(t, func(s *core.SlotCheck) {
			sink := findSink(s, 0)
			in := s.Net.InLinks(sink)
			if len(in) == 0 {
				t.Skip("delivery point has no incoming candidate links")
			}
			l := in[0]
			from := s.Net.Links[l].From
			// Satisfy the per-slot flow checks so only the cumulative
			// session ledger (18) can object.
			s.Flow[l][0] = 50
			s.Actual[l][0] = 50
			s.RouteCapPkts[l] = 100
			s.QBefore[0][from] = 100
		})
		wantViolation(t, err, "(18)")
	})
}

// findSink returns a delivery point of session s.
func findSink(s *core.SlotCheck, session int) int {
	for i := 0; i < s.Net.NumNodes(); i++ {
		if s.IsSink(session, i) {
			return i
		}
	}
	return -1
}

// neutralLink finds a link session 0 may legally use: not into its source,
// not out of any of its delivery points.
func neutralLink(s *core.SlotCheck) (int, bool) {
	for l, link := range s.Net.Links {
		if link.To != s.Source[0] && !s.IsSink(0, link.From) && link.To != findSink(s, 0) {
			return l, true
		}
	}
	return 0, false
}
