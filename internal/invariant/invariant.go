// Package invariant validates every controller slot against the paper's
// per-slot constraints. It plugs into the control loop through
// core.Config.Check (enabled by sim.Scenario.CheckInvariants) and examines
// the raw decisions of each slot — the S1 schedule, the S3 flows and their
// execution, and the S4 energy split — rather than the aggregated
// SlotResult, so a violation cannot hide inside a sum.
//
// Checked constraints, by the paper's equation numbers (docs/ANALYSIS.md
// documents each in prose):
//
//	 (2)  per-node energy balance: r + g + d + u covers the demand E_i(t)
//	 (3)  renewable split: r + c^r ≤ R_i(t), both parts non-negative
//	 (5)  grid split non-negative (g, c^g ≥ 0)
//	 (9)  no simultaneous charge and discharge
//	(10)  battery level stays within [0, x_i^max]
//	(11)  charge within the pre-step headroom min(c^max, (x^max−x)/η_c)
//	(12)  discharge within the pre-step headroom min(d^max, x·η_d)
//	(13)  battery spec feasibility (checked once, on the first slot)
//	(14)  grid draw g + c^g ≤ ω_i(t)·p_i^max
//	(16)  no flow into the slot's session source s_s(t)
//	(17)  no flow out of a session's delivery point
//	(18)  destination demand rule, in its achievable time-average form:
//	      cumulative delivery never exceeds cumulative admission
//	      (THEORY.md §7 — the literal per-slot form is infeasible)
//	(19)  flow sanity: non-negative, executed ≤ routed, and the DESIGN.md
//	      I2 rule that a node ships no more than its pre-slot backlog
//	(22)  per-node radio limit: Σ activities ≤ Radios(i), each α ∈ [0,1]
//	(25)  per-link capacity: Σ_s flow ≤ the slot's routing cap
//
// A failed check returns a *Violation naming the slot, the node (or link
// endpoint) and the equation, and aborts the run — tests and fuzzing treat
// any violation as fatal.
package invariant

import (
	"fmt"
	"math"

	"greencell/internal/core"
)

// Violation is one constraint breach.
type Violation struct {
	// Slot is the 0-based slot index.
	Slot int
	// Node is the offending node, or -1 when the constraint is not
	// node-specific (session-level checks).
	Node int
	// Eq is the paper's equation number, e.g. "(9)".
	Eq string
	// Msg states the breach with the offending values.
	Msg string
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Node >= 0 {
		return fmt.Sprintf("invariant: slot %d node %d: eq %s: %s", v.Slot, v.Node, v.Eq, v.Msg)
	}
	return fmt.Sprintf("invariant: slot %d: eq %s: %s", v.Slot, v.Eq, v.Msg)
}

// Checker validates SlotChecks for one run. It is stateful — the
// time-average form of (18) needs cumulative admission and delivery — so
// use a fresh Checker per controller; it is not safe for concurrent use.
type Checker struct {
	// Tol is the comparison slack: a ≤ b is accepted up to
	// Tol·(1 + |b|), absorbing float accumulation on both small packet
	// counts and large battery levels. Zero means the 1e-6 default.
	Tol float64

	specChecked bool
	// admitted/delivered accumulate Σ_t k_s and Σ_t deliveries per
	// session for the (18) time-average check.
	admitted, delivered []float64
}

// New returns a Checker with the default tolerance.
func New() *Checker { return &Checker{} }

// tol returns the effective tolerance scaled to b's magnitude.
func (c *Checker) tol(b float64) float64 {
	t := c.Tol
	if t == 0 {
		t = 1e-6
	}
	return t * (1 + math.Abs(b))
}

// le reports a ≤ b within tolerance.
func (c *Checker) le(a, b float64) bool { return a <= b+c.tol(b) }

// Check validates one slot; wire it as core.Config.Check.
func (c *Checker) Check(sc *core.SlotCheck) error {
	if err := c.checkEnergy(sc); err != nil {
		return err
	}
	if err := c.checkSchedule(sc); err != nil {
		return err
	}
	if err := c.checkFlows(sc); err != nil {
		return err
	}
	return c.checkSessions(sc)
}

// checkEnergy validates the S4 decision and battery step: eqs. (2), (3),
// (5), (9)–(14).
func (c *Checker) checkEnergy(sc *core.SlotCheck) error {
	v := func(node int, eq, format string, args ...any) error {
		return &Violation{Slot: sc.Slot, Node: node, Eq: eq, Msg: fmt.Sprintf(format, args...)}
	}
	for i := range sc.Net.Nodes {
		nd := sc.Energy.Nodes[i]
		spec := sc.Net.Nodes[i].Spec
		if !c.specChecked {
			if err := spec.Battery.Validate(); err != nil {
				return v(i, "(13)", "battery spec infeasible: %v", err)
			}
		}
		for _, part := range []struct {
			eq   string
			name string
			val  float64
		}{
			{"(3)", "renewable→demand r", nd.RenewToDemand.Wh()},
			{"(3)", "renewable→battery c^r", nd.RenewToBattery.Wh()},
			{"(5)", "grid→demand g", nd.GridToDemand.Wh()},
			{"(5)", "grid→battery c^g", nd.GridToBattery.Wh()},
			{"(12)", "discharge d", nd.DischargeWh.Wh()},
			{"(2)", "deficit u", nd.DeficitWh.Wh()},
		} {
			if !c.le(0, part.val) {
				return v(i, part.eq, "%s = %g is negative", part.name, part.val)
			}
		}
		if !c.le((nd.RenewToDemand + nd.RenewToBattery).Wh(), sc.Obs.RenewWh[i].Wh()) {
			return v(i, "(3)", "renewable use r+c^r = %g exceeds output R = %g",
				(nd.RenewToDemand + nd.RenewToBattery).Wh(), sc.Obs.RenewWh[i].Wh())
		}
		if nd.ChargeWh().Wh() > c.tol(0) && nd.DischargeWh.Wh() > c.tol(0) {
			return v(i, "(9)", "simultaneous charge c = %g and discharge d = %g",
				nd.ChargeWh().Wh(), nd.DischargeWh.Wh())
		}
		if !c.le(0, sc.BatteryAfterWh[i].Wh()) || !c.le(sc.BatteryAfterWh[i].Wh(), spec.Battery.CapacityWh.Wh()) {
			return v(i, "(10)", "battery level %g outside [0, %g]",
				sc.BatteryAfterWh[i].Wh(), spec.Battery.CapacityWh.Wh())
		}
		if !c.le(nd.ChargeWh().Wh(), sc.ChargeHeadroomWh[i].Wh()) {
			return v(i, "(11)", "charge c = %g exceeds headroom %g",
				nd.ChargeWh().Wh(), sc.ChargeHeadroomWh[i].Wh())
		}
		if !c.le(nd.DischargeWh.Wh(), sc.DischargeHeadroomWh[i].Wh()) {
			return v(i, "(12)", "discharge d = %g exceeds headroom %g",
				nd.DischargeWh.Wh(), sc.DischargeHeadroomWh[i].Wh())
		}
		gridCap := 0.0
		if sc.Obs.Connected[i] {
			gridCap = spec.Grid.MaxDrawWh.Wh()
		}
		if !c.le(nd.GridDrawWh().Wh(), gridCap) {
			return v(i, "(14)", "grid draw g+c^g = %g exceeds ω·p^max = %g",
				nd.GridDrawWh().Wh(), gridCap)
		}
		supply := nd.RenewToDemand + nd.GridToDemand + nd.DischargeWh + nd.DeficitWh
		if !c.le(sc.DemandWh[i].Wh(), supply.Wh()) {
			return v(i, "(2)", "supply r+g+d+u = %g short of demand E = %g",
				supply.Wh(), sc.DemandWh[i].Wh())
		}
	}
	c.specChecked = true
	return nil
}

// checkSchedule validates the S1 assignment against the per-node radio
// limit (22).
func (c *Checker) checkSchedule(sc *core.SlotCheck) error {
	radioUse := make([]float64, sc.Net.NumNodes())
	for l, link := range sc.Net.Links {
		a := sc.Assignment.Activity[l]
		if !c.le(0, a) || !c.le(a, 1) {
			return &Violation{Slot: sc.Slot, Node: link.From, Eq: "(22)",
				Msg: fmt.Sprintf("link %d→%d activity %g outside [0,1]", link.From, link.To, a)}
		}
		radioUse[link.From] += a
		radioUse[link.To] += a
	}
	for i := range sc.Net.Nodes {
		if limit := float64(sc.Net.Radios(i)); !c.le(radioUse[i], limit) {
			return &Violation{Slot: sc.Slot, Node: i, Eq: "(22)",
				Msg: fmt.Sprintf("radio use Σα = %g exceeds %g radios", radioUse[i], limit)}
		}
	}
	return nil
}

// checkFlows validates the S3 decision and its execution: source and
// delivery-point rules (16)–(17), flow sanity and the I2 backlog rule
// (19), and link capacity (25).
func (c *Checker) checkFlows(sc *core.SlotCheck) error {
	S := len(sc.Admit)
	// shipped[s·N+i] sums session s's executed outflow at node i for the
	// I2 backlog rule.
	N := sc.Net.NumNodes()
	shipped := make([]float64, S*N)
	for l, link := range sc.Net.Links {
		total := 0.0
		for s := 0; s < S; s++ {
			f, a := sc.Flow[l][s], sc.Actual[l][s]
			if !c.le(0, f) || !c.le(0, a) {
				return &Violation{Slot: sc.Slot, Node: link.From, Eq: "(19)",
					Msg: fmt.Sprintf("session %d link %d→%d negative flow (routed %g, executed %g)",
						s, link.From, link.To, f, a)}
			}
			if !c.le(a, f) {
				return &Violation{Slot: sc.Slot, Node: link.From, Eq: "(19)",
					Msg: fmt.Sprintf("session %d link %d→%d executed %g exceeds routed %g",
						s, link.From, link.To, a, f)}
			}
			if f > c.tol(0) && link.To == sc.Source[s] {
				return &Violation{Slot: sc.Slot, Node: link.To, Eq: "(16)",
					Msg: fmt.Sprintf("session %d routes %g into its source via link %d→%d",
						s, f, link.From, link.To)}
			}
			if f > c.tol(0) && sc.IsSink(s, link.From) {
				return &Violation{Slot: sc.Slot, Node: link.From, Eq: "(17)",
					Msg: fmt.Sprintf("session %d routes %g out of a delivery point via link %d→%d",
						s, f, link.From, link.To)}
			}
			total += f
			shipped[s*N+link.From] += a
		}
		if !c.le(total, sc.RouteCapPkts[l]) {
			return &Violation{Slot: sc.Slot, Node: link.From, Eq: "(25)",
				Msg: fmt.Sprintf("link %d→%d total flow %g exceeds capacity %g",
					link.From, link.To, total, sc.RouteCapPkts[l])}
		}
	}
	for s := 0; s < S; s++ {
		for i := 0; i < N; i++ {
			if !c.le(shipped[s*N+i], sc.QBefore[s][i]) {
				return &Violation{Slot: sc.Slot, Node: i, Eq: "(19)",
					Msg: fmt.Sprintf("session %d ships %g packets against backlog %g (I2)",
						s, shipped[s*N+i], sc.QBefore[s][i])}
			}
		}
	}
	return nil
}

// checkSessions validates the session-level admission/delivery ledger:
// the time-average form of the destination rule (18).
func (c *Checker) checkSessions(sc *core.SlotCheck) error {
	S := len(sc.Admit)
	if c.admitted == nil {
		c.admitted = make([]float64, S)
		c.delivered = make([]float64, S)
	}
	for s := 0; s < S; s++ {
		if sc.Admit[s] < -c.tol(0) {
			return &Violation{Slot: sc.Slot, Node: sc.Source[s], Eq: "(19)",
				Msg: fmt.Sprintf("session %d negative admission %g", s, sc.Admit[s])}
		}
		c.admitted[s] += sc.Admit[s]
		for l, link := range sc.Net.Links {
			if sc.IsSink(s, link.To) {
				c.delivered[s] += sc.Actual[l][s]
			}
		}
		if !c.le(c.delivered[s], c.admitted[s]) {
			return &Violation{Slot: sc.Slot, Node: -1, Eq: "(18)",
				Msg: fmt.Sprintf("session %d cumulative delivery %g exceeds cumulative admission %g",
					s, c.delivered[s], c.admitted[s])}
		}
	}
	return nil
}
