package geom

import (
	"math"
	"testing"
	"testing/quick"

	"greencell/internal/rng"
)

func TestDistance(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Distance(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	src := rng.New(11)
	for i := 0; i < 500; i++ {
		a := Point{src.Uniform(-10, 10), src.Uniform(-10, 10)}
		b := Point{src.Uniform(-10, 10), src.Uniform(-10, 10)}
		c := Point{src.Uniform(-10, 10), src.Uniform(-10, 10)}
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestUniformPointsInside(t *testing.T) {
	r := Square(2000)
	src := rng.New(8)
	for _, p := range r.UniformPoints(src, 1000) {
		if !r.Contains(p) {
			t.Fatalf("point %v outside %v", p, r)
		}
	}
}

func TestContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 5}) {
		t.Error("border points should be contained")
	}
	if r.Contains(Point{11, 3}) || r.Contains(Point{5, -1}) {
		t.Error("outside points should not be contained")
	}
}
