// Package geom provides the small amount of planar geometry the network
// model needs: points, Euclidean distance, and random placement in a
// rectangular deployment area.
package geom

import (
	"fmt"
	"math"

	"greencell/internal/rng"
)

// Point is a location in the deployment plane, in meters.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Distance returns the Euclidean distance between p and q in meters.
func Distance(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY] in meters.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns a side x side rectangle anchored at the origin.
func Square(side float64) Rect {
	return Rect{MaxX: side, MaxY: side}
}

// Contains reports whether p lies inside (or on the border of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// UniformPoint draws a point uniformly at random inside r.
func (r Rect) UniformPoint(src *rng.Source) Point {
	return Point{
		X: src.Uniform(r.MinX, r.MaxX),
		Y: src.Uniform(r.MinY, r.MaxY),
	}
}

// UniformPoints draws n i.i.d. uniform points inside r.
func (r Rect) UniformPoints(src *rng.Source, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = r.UniformPoint(src)
	}
	return pts
}
