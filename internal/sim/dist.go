// The distributed runner: sim's entry point into the message-passing
// controller of internal/machine (docs/DISTRIBUTED.md). DistRun is Run's
// sibling — same Scenario, same Result, same aggregation loop — with the
// monolithic Controller.Step replaced by the four-round slot protocol of
// machine.Deployment. Under the zero-valued delivery model the two are
// byte-identical (the fidelity gate, enforced by `make dist-check`);
// under loss, latency, duplication, reordering, or partition, the run
// remains a pure function of (seed, delivery model) and Result.Net
// reports how far the coordinator's belief drifted from node truth.
package sim

import (
	"context"
	"fmt"

	"greencell/internal/machine"
)

// DistRun executes the scenario on the distributed controller.
func DistRun(sc Scenario) (*Result, error) {
	return DistRunCtx(context.Background(), sc)
}

// DistRunCtx is DistRun with cooperative cancellation.
func DistRunCtx(ctx context.Context, sc Scenario) (*Result, error) {
	sc.Dist = true
	if sc.TrackDelay {
		return nil, fmt.Errorf("%w: TrackDelay is unsupported with Dist (per-packet FIFOs cannot follow view imports)", ErrScenario)
	}
	cfg, _, tm, err := buildConfig(sc)
	if err != nil {
		return nil, err
	}
	dep, err := machine.NewDeployment(machine.Config{
		Core:    cfg,
		Traffic: tm,
		Seed:    sc.Seed,
		Model: machine.DeliveryModel{
			LossProb:      sc.NetLoss,
			DelayProb:     sc.NetLatency,
			MaxDelayTicks: sc.NetLatencyMax,
			DupProb:       sc.NetDup,
			ReorderWindow: sc.NetReorder,
		},
		Offline: sc.NetPartition,
		Hook:    sc.NetHook,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	res, err := collect(ctx, sc, tm, dep.Controller(), dep.Step)
	if err != nil {
		return nil, err
	}
	res.Net = dep.Report()
	return res, nil
}
