package sim

import (
	"testing"

	"greencell/internal/rng"
	"greencell/internal/sched"
)

// TestRandomScenarios drives randomized scenario knobs through short runs
// and asserts the invariants every configuration must satisfy: no error,
// packet conservation (delivered ≤ admitted), non-negative metrics, and
// determinism per seed.
func TestRandomScenarios(t *testing.T) {
	src := rng.New(4242)
	schedulers := []sched.Scheduler{nil, sched.Greedy{}, sched.Relaxed{}, sched.EnergyAware{Kappa: 3}}
	for trial := 0; trial < 12; trial++ {
		sc := Paper()
		sc.Seed = int64(1000 + trial)
		sc.Slots = 8 + src.Intn(10)
		sc.Topology.NumUsers = 4 + src.Intn(10)
		sc.Topology.MaxNeighbors = 2 + src.Intn(5)
		sc.NumSessions = 1 + src.Intn(3)
		sc.UplinkSessions = src.Intn(3)
		sc.V = []float64{1e4, 1e5, 1e6}[src.Intn(3)]
		sc.Lambda = src.Uniform(0.0001, 0.01)
		sc.Scheduler = schedulers[src.Intn(len(schedulers))]
		sc.EnergyGate = src.Bernoulli(0.7)
		sc.TrackDelay = src.Bernoulli(0.5)
		sc.AuditDrift = src.Bernoulli(0.5)
		sc.Architecture = Architecture(src.Intn(4))
		sc.Topology.ShadowingSigmaDB = src.Uniform(0, 6)
		if src.Bernoulli(0.3) {
			sc.Topology.BSSpec.Radios = 2
		}
		sc.KeepTraces = true

		a, err := Run(sc)
		if err != nil {
			t.Fatalf("trial %d (%+v...): %v", trial, sc.Architecture, err)
		}
		if a.DeliveredPkts > a.AdmittedPkts+1e-6 {
			t.Fatalf("trial %d: delivered %v > admitted %v", trial, a.DeliveredPkts, a.AdmittedPkts)
		}
		if a.AvgEnergyCost < 0 || a.AvgGridWh < 0 || a.AvgTxEnergyWh < 0 {
			t.Fatalf("trial %d: negative metric: %+v", trial, a)
		}
		if sc.AuditDrift && a.AuditViolations != 0 {
			t.Fatalf("trial %d: %d Lemma 1 violations", trial, a.AuditViolations)
		}
		b, err := Run(sc)
		if err != nil {
			t.Fatalf("trial %d rerun: %v", trial, err)
		}
		if a.AvgEnergyCost != b.AvgEnergyCost || a.DeliveredPkts != b.DeliveredPkts {
			t.Fatalf("trial %d: nondeterministic", trial)
		}
	}
}
