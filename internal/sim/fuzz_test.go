package sim

import (
	"math"
	"testing"

	"greencell/internal/faultinject"
	"greencell/internal/rng"
	"greencell/internal/sched"
)

// The fuzzable scenario space: every knob a byte or float selects from.
var (
	fuzzSchedulers = []sched.Scheduler{nil, sched.Greedy{}, sched.Relaxed{}, sched.EnergyAware{Kappa: 3}}
	fuzzVs         = []float64{1e3, 1e4, 1e5, 1e6}
)

// foldRange maps an arbitrary float into [lo, hi], passing in-range values
// through unchanged so corpus entries mean what they say.
func foldRange(v, lo, hi float64) float64 {
	if v >= lo && v <= hi {
		return v
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	return lo + math.Mod(math.Abs(v), hi-lo)
}

// fuzzScenario clamps raw fuzz inputs into a valid Scenario. The byte
// knobs are taken modulo their range, so every input is runnable; the
// paper-invariant checker is always on.
func fuzzScenario(seed int64, slots, users, neighbors, sessions, uplink,
	vSel, schedSel, archSel uint8, lambda, shadow float64,
	gate, delay, audit, radios2 bool, faults uint8) Scenario {
	sc := Paper()
	sc.Seed = seed
	sc.Slots = 1 + int(slots%20)
	sc.Topology.NumUsers = 2 + int(users%14)
	sc.Topology.MaxNeighbors = int(neighbors % 7)
	sc.NumSessions = 1 + int(sessions%4)
	sc.UplinkSessions = int(uplink % 3)
	sc.V = fuzzVs[int(vSel%4)]
	sc.Lambda = foldRange(lambda, 0.0001, 0.01)
	sc.Scheduler = fuzzSchedulers[int(schedSel)%len(fuzzSchedulers)]
	sc.EnergyGate = gate
	sc.TrackDelay = delay
	sc.AuditDrift = audit
	sc.Architecture = Architecture(int(archSel % 4))
	sc.Topology.ShadowingSigmaDB = foldRange(shadow, 0, 6)
	if radios2 {
		sc.Topology.BSSpec.Radios = 2
	}
	sc.KeepTraces = true
	sc.CheckInvariants = true
	// A non-zero faults byte turns on uniform fault injection at up to
	// 25% per site per slot; every degraded slot must still satisfy the
	// paper's per-slot constraints (the checker stays on).
	if p := float64(faults%26) / 100; p > 0 {
		cfg := faultinject.Uniform(p)
		sc.Faults = &cfg
	}
	return sc
}

// assertRunInvariants runs a scenario and asserts what every configuration
// must satisfy: no error (the per-slot paper-constraint checker is part of
// the run), packet conservation, non-negative metrics, a clean Lemma 1
// audit, and per-seed determinism.
func assertRunInvariants(t *testing.T, sc Scenario) {
	t.Helper()
	a, err := Run(sc)
	if err != nil {
		t.Fatalf("run (arch %v, V %g): %v", sc.Architecture, sc.V, err)
	}
	if a.DeliveredPkts > a.AdmittedPkts+1e-6 {
		t.Fatalf("delivered %v > admitted %v", a.DeliveredPkts, a.AdmittedPkts)
	}
	if a.AvgEnergyCost < 0 || a.AvgGridWh < 0 || a.AvgTxEnergyWh < 0 {
		t.Fatalf("negative metric: %+v", a)
	}
	if sc.AuditDrift && a.AuditViolations != 0 {
		t.Fatalf("%d Lemma 1 violations", a.AuditViolations)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if a.AvgEnergyCost != b.AvgEnergyCost || a.DeliveredPkts != b.DeliveredPkts {
		t.Fatal("nondeterministic")
	}
}

// trialKnobs draws the legacy 12-trial knob sequence (rng.New(4242), the
// original TestRandomScenarios stream) in fuzz-argument encoding, so the
// test trials and the fuzz seed corpus are provably the same scenarios.
type trialKnobs struct {
	seed                                      int64
	slots, users, neighbors, sessions, uplink uint8
	vSel, schedSel, archSel                   uint8
	lambda, shadow                            float64
	gate, delay, audit, radios2               bool
	faults                                    uint8
}

func legacyTrials() []trialKnobs {
	src := rng.New(4242)
	out := make([]trialKnobs, 12)
	for trial := range out {
		k := &out[trial]
		k.seed = int64(1000 + trial)
		k.slots = uint8(8 + src.Intn(10) - 1)   // fuzzScenario adds 1
		k.users = uint8(4 + src.Intn(10) - 2)   // fuzzScenario adds 2
		k.neighbors = uint8(2 + src.Intn(5))    // identity below 7
		k.sessions = uint8(1 + src.Intn(3) - 1) // fuzzScenario adds 1
		k.uplink = uint8(src.Intn(3))           // identity below 3
		k.vSel = uint8(src.Intn(3) + 1)         // fuzzVs[1:] = {1e4,1e5,1e6}
		k.lambda = src.Uniform(0.0001, 0.01)    // in range: passes through
		k.schedSel = uint8(src.Intn(len(fuzzSchedulers)))
		k.gate = src.Bernoulli(0.7)
		k.delay = src.Bernoulli(0.5)
		k.audit = src.Bernoulli(0.5)
		k.archSel = uint8(src.Intn(4))
		k.shadow = src.Uniform(0, 6) // in range: passes through
		k.radios2 = src.Bernoulli(0.3)
		// k.faults stays 0: the legacy trials predate fault injection and
		// must keep reproducing the same healthy runs.
	}
	return out
}

// TestRandomScenarios drives the 12 legacy randomized configurations
// through short runs with the per-slot invariant checker enabled.
func TestRandomScenarios(t *testing.T) {
	for trial, k := range legacyTrials() {
		sc := fuzzScenario(k.seed, k.slots, k.users, k.neighbors, k.sessions,
			k.uplink, k.vSel, k.schedSel, k.archSel, k.lambda, k.shadow,
			k.gate, k.delay, k.audit, k.radios2, k.faults)
		t.Logf("trial %d: arch %v V %g slots %d", trial, sc.Architecture, sc.V, sc.Slots)
		assertRunInvariants(t, sc)
	}
}

// FuzzScenario explores the scenario space with go test -fuzz=FuzzScenario
// (make fuzz runs a short smoke). Every execution runs the full control
// loop with the paper-constraint checker on, so the fuzzer is hunting for
// knob combinations under which the controller breaks an equation of the
// paper — not just crashes.
func FuzzScenario(f *testing.F) {
	for _, k := range legacyTrials() {
		f.Add(k.seed, k.slots, k.users, k.neighbors, k.sessions, k.uplink,
			k.vSel, k.schedSel, k.archSel, k.lambda, k.shadow,
			k.gate, k.delay, k.audit, k.radios2, k.faults)
	}
	f.Fuzz(func(t *testing.T, seed int64, slots, users, neighbors, sessions, uplink,
		vSel, schedSel, archSel uint8, lambda, shadow float64,
		gate, delay, audit, radios2 bool, faults uint8) {
		sc := fuzzScenario(seed, slots, users, neighbors, sessions, uplink,
			vSel, schedSel, archSel, lambda, shadow, gate, delay, audit, radios2, faults)
		assertRunInvariants(t, sc)
	})
}
