package sim

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"greencell/internal/machine"
	"greencell/internal/metrics"
)

// TestDistPerfectMatchesMonolith is the fidelity gate at the Result
// level: a distributed run over a perfect network must be
// reflect.DeepEqual to the monolithic run of the same scenario and seed
// — every aggregate, every degradation flag, bit for bit.
func TestDistPerfectMatchesMonolith(t *testing.T) {
	sc := Paper()
	sc.Slots = 25
	sc.Seed = 11
	sc.KeepTraces = true
	sc.CheckInvariants = true

	mono, err := Run(sc)
	if err != nil {
		t.Fatalf("monolith: %v", err)
	}
	sc.Dist = true
	dist, err := Run(sc)
	if err != nil {
		t.Fatalf("dist: %v", err)
	}
	if dist.Net == nil {
		t.Fatalf("distributed run carries no NetReport")
	}
	net := dist.Net
	dist.Net = nil
	if !reflect.DeepEqual(mono, dist) {
		t.Errorf("perfect-network distributed result differs from monolith:\nmono: %+v\ndist: %+v", mono, dist)
	}
	if net.MsgsDropped != 0 || net.MsgsDelayed != 0 || net.MsgsDuped != 0 ||
		net.MsgsLate != 0 || net.MissedCmds != 0 || net.StaleViews != 0 ||
		net.StaleSlots != 0 || net.NodeClamps != 0 {
		t.Errorf("perfect network perturbed messages: %+v", *net)
	}
	if net.MsgsSent == 0 || net.DataMsgs == 0 {
		t.Errorf("no traffic on the control or data plane: %+v", *net)
	}
	if net.TrueDeliveredPkts != mono.DeliveredPkts {
		t.Errorf("node-truth delivery %v != monolith view %v", net.TrueDeliveredPkts, mono.DeliveredPkts)
	}
}

// TestDistFidelityGolden extends the gate through the metrics layer: the
// canonicalized stream of a perfect-network distributed run must be
// byte-identical to the monolith's golden fixture. This is what
// `make dist-check` enforces in CI.
func TestDistFidelityGolden(t *testing.T) {
	sc := Paper()
	sc.Slots = 12
	sc.Seed = 1
	sc.KeepTraces = false
	sc.Dist = true
	var buf bytes.Buffer
	rec := NewRecorder(metrics.NewJSONLWriter(&buf), HeaderFor(sc, "paper"))
	rec.Attach(&sc, false)
	if _, err := Run(sc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Recorder.Close: %v", err)
	}
	got, err := metrics.CanonicalizeJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	want, err := os.ReadFile("testdata/golden_metrics.jsonl")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("distributed stream differs from monolithic golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("distributed stream differs from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestDistLossSoak is the degradation soak of docs/DISTRIBUTED.md: 1000
// slots at 5% control-plane loss with per-node invariant checking on.
// The run must complete with the network visibly lossy, the coordinator
// visibly stale, and a rerun bit-identical — degraded operation is still
// a pure function of (seed, delivery model).
func TestDistLossSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sc := Paper()
	sc.Slots = 1000
	sc.Seed = 3
	sc.KeepTraces = false
	sc.CheckInvariants = true
	sc.Dist = true
	sc.NetLoss = 0.05

	res, err := Run(sc)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if res.Net.MsgsDropped == 0 {
		t.Errorf("5%% loss over 1000 slots dropped nothing: %+v", *res.Net)
	}
	if res.Net.StaleSlots == 0 || res.DegradedByCause[machine.CauseNetStale] != res.Net.StaleSlots {
		t.Errorf("stale decisions not surfaced as degradation: net=%+v byCause=%v",
			*res.Net, res.DegradedByCause)
	}
	if res.Net.TrueDeliveredPkts <= 0 {
		t.Errorf("no ground-truth delivery under 5%% loss: %+v", *res.Net)
	}

	rerun, err := Run(sc)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !reflect.DeepEqual(res, rerun) {
		t.Errorf("lossy run is not deterministic: rerun differs")
	}
}

// TestDistLossyMetricsCounters checks the net_* summary counters of
// schema v5 appear on a lossy run and agree with the NetReport.
func TestDistLossyMetricsCounters(t *testing.T) {
	sc := Paper()
	sc.Slots = 40
	sc.Seed = 5
	sc.KeepTraces = false
	sc.Dist = true
	sc.NetLoss = 0.1
	var buf bytes.Buffer
	rec := NewRecorder(metrics.NewJSONLWriter(&buf), HeaderFor(sc, "paper"))
	rec.Attach(&sc, false)
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Recorder.Close: %v", err)
	}
	snap := rec.Registry().Snapshot()
	for name, want := range map[string]int{
		"net_msgs_sent_total":    res.Net.MsgsSent,
		"net_msgs_dropped_total": res.Net.MsgsDropped,
		"net_missed_cmds_total":  res.Net.MissedCmds,
		"net_stale_views_total":  res.Net.StaleViews,
	} {
		got, ok := snap[name]
		if !ok {
			t.Errorf("summary missing %s", name)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, NetReport says %d", name, got, want)
		}
	}
}

// TestDistPartition runs with one node offline: the coordinator must
// decide on a stale view of it every slot, flagging every slot degraded
// with cause net_stale, while the run itself still completes.
func TestDistPartition(t *testing.T) {
	sc := Paper()
	sc.Slots = 30
	sc.Seed = 2
	sc.KeepTraces = false
	sc.Dist = true
	sc.NetPartition = []int{3}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if res.Net.StaleSlots != sc.Slots {
		t.Errorf("offline node stale on %d/%d slots", res.Net.StaleSlots, sc.Slots)
	}
	if res.DegradedByCause[machine.CauseNetStale] != sc.Slots {
		t.Errorf("degradation causes = %v, want %d net_stale", res.DegradedByCause, sc.Slots)
	}
}

// TestDistRejectsTrackDelay pins the documented limitation: per-packet
// delay FIFOs cannot follow coordinator view imports, so Dist+TrackDelay
// is an ErrScenario, not a silently wrong run.
func TestDistRejectsTrackDelay(t *testing.T) {
	sc := Paper()
	sc.Slots = 5
	sc.Dist = true
	sc.TrackDelay = true
	if _, err := Run(sc); !errors.Is(err, ErrScenario) {
		t.Fatalf("Dist+TrackDelay: got %v, want ErrScenario", err)
	}
}

// FuzzNetworkRunner drives the distributed runner across the delivery-
// model parameter space: any valid model must yield a run that completes
// and reruns bit-identically, and a zero model must match the monolith.
func FuzzNetworkRunner(f *testing.F) {
	f.Add(int64(1), 0.0, 0.0, uint8(0), 0.0, uint8(0))
	f.Add(int64(2), 0.05, 0.0, uint8(0), 0.0, uint8(0))
	f.Add(int64(3), 0.0, 0.3, uint8(2), 0.0, uint8(1))
	f.Add(int64(4), 0.2, 0.2, uint8(3), 0.2, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, loss, delay float64, maxDelay uint8, dup float64, reorder uint8) {
		clamp := func(p float64) float64 {
			if !(p > 0) {
				return 0
			}
			if p > 1 {
				return 1
			}
			return p
		}
		sc := Paper()
		sc.Slots = 6
		sc.Seed = seed
		sc.KeepTraces = false
		sc.CheckInvariants = true
		sc.Dist = true
		sc.NetLoss = clamp(loss)
		sc.NetLatency = clamp(delay)
		sc.NetLatencyMax = int(maxDelay % 4)
		sc.NetDup = clamp(dup)
		sc.NetReorder = int(reorder % 4)

		res, err := Run(sc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		rerun, err := Run(sc)
		if err != nil {
			t.Fatalf("rerun: %v", err)
		}
		if !reflect.DeepEqual(res, rerun) {
			t.Fatalf("rerun differs for model loss=%v delay=%v/%d dup=%v reorder=%d",
				sc.NetLoss, sc.NetLatency, sc.NetLatencyMax, sc.NetDup, sc.NetReorder)
		}
		if sc.NetLoss == 0 && sc.NetLatency == 0 && sc.NetDup == 0 {
			mono := sc
			mono.Dist = false
			want, err := Run(mono)
			if err != nil {
				t.Fatalf("monolith: %v", err)
			}
			res.Net = nil
			if !reflect.DeepEqual(want, res) {
				t.Fatalf("perfect-network run differs from monolith")
			}
		}
	})
}
