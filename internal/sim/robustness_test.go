package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"greencell/internal/core"
	"greencell/internal/faultinject"
	"greencell/internal/machine"
)

// faultScenario is the base configuration of the robustness tests: the
// paper scenario shrunk to a fast horizon, with the per-slot paper
// invariant checker always on so degraded slots are proven feasible.
func faultScenario(slots int) Scenario {
	sc := Paper()
	sc.Slots = slots
	sc.Seed = 7
	sc.KeepTraces = false
	sc.CheckInvariants = true
	return sc
}

// TestFaultEverySite drives each injection site at probability 1 and
// checks the degradation contract stage by stage: every slot completes,
// is marked degraded with exactly the expected cause label, and still
// satisfies the paper's per-slot constraints (the invariant checker runs
// inside Run and would fail the run otherwise). The net_* sites only
// exist on the distributed runner's fabric (docs/DISTRIBUTED.md); their
// cases run with Dist set, and net_dup is the deliberate odd one out —
// duplicate delivery must never degrade anything.
func TestFaultEverySite(t *testing.T) {
	cases := []struct {
		site  faultinject.Site
		cause string
		// needDeadline: the latency site only bites when the slot has a
		// wall-clock budget to consume.
		needDeadline bool
		// dist: the site lives in the distributed fabric, not the monolith.
		dist bool
		// noDegrade: the site must leave every slot healthy.
		noDegrade bool
	}{
		{site: faultinject.S1Infeasible, cause: core.CauseS1Infeasible},
		{site: faultinject.S1IterLimit, cause: core.CauseS1IterLimit},
		{site: faultinject.S2Fail, cause: core.CauseS2Fault},
		{site: faultinject.S3Fail, cause: core.CauseS3Fault},
		{site: faultinject.S4Infeasible, cause: core.CauseS4Infeasible},
		{site: faultinject.S4IterLimit, cause: core.CauseS4IterLimit},
		{site: faultinject.ObsRenewableNaN, cause: core.CauseObs},
		{site: faultinject.ObsWidthInf, cause: core.CauseObs},
		{site: faultinject.Latency, cause: core.CauseLatency, needDeadline: true},
		{site: faultinject.NetDrop, cause: machine.CauseNetStale, dist: true},
		{site: faultinject.NetDelay, cause: machine.CauseNetStale, dist: true},
		{site: faultinject.NetDup, dist: true, noDegrade: true},
	}
	for _, tc := range cases {
		t.Run(string(tc.site), func(t *testing.T) {
			const slots = 5
			sc := faultScenario(slots)
			sc.Dist = tc.dist
			sc.Faults = &faultinject.Config{
				Probability: map[faultinject.Site]float64{tc.site: 1},
			}
			if tc.needDeadline {
				// Generous enough that the deadline never fires organically;
				// only the virtual latency spike consumes it.
				sc.Budget.SlotDeadline = time.Hour
			}
			var causes []string
			sc.SlotHook = func(sr *core.SlotResult) {
				if sr.Degraded == tc.noDegrade {
					t.Errorf("slot %d degraded = %v, want %v", sr.Slot, sr.Degraded, !tc.noDegrade)
				}
				causes = append(causes, sr.DegradedCauses...)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("run with %s at p=1: %v", tc.site, err)
			}
			if tc.noDegrade {
				if res.DegradedSlots != 0 {
					t.Errorf("DegradedSlots = %d, want 0 (causes: %v)", res.DegradedSlots, causes)
				}
				if res.Net == nil || res.Net.MsgsDuped == 0 {
					t.Errorf("net_dup at p=1 duplicated nothing: %+v", res.Net)
				}
				return
			}
			if res.DegradedSlots != slots {
				t.Errorf("DegradedSlots = %d, want %d", res.DegradedSlots, slots)
			}
			if got := res.DegradedByCause[tc.cause]; got != slots {
				t.Errorf("DegradedByCause[%q] = %d, want %d (map: %v)",
					tc.cause, got, slots, res.DegradedByCause)
			}
			if res.MaxDegradedStreak != slots {
				t.Errorf("MaxDegradedStreak = %d, want %d", res.MaxDegradedStreak, slots)
			}
			for _, c := range causes {
				if c != tc.cause {
					t.Errorf("unexpected cause %q (want only %q)", c, tc.cause)
				}
			}
			if tc.dist && (res.Net == nil || res.Net.StaleSlots != slots) {
				t.Errorf("NetReport stale slots = %+v, want %d", res.Net, slots)
			}
		})
	}
}

// TestFaultSoak is the acceptance soak: a long horizon with every site
// firing at 5%, the invariant checker on, and a latency deadline armed.
// All slots must complete without error, a healthy majority and a degraded
// minority must both occur, and two identically-seeded runs must agree
// bit-for-bit — fault injection may not leak nondeterminism.
func TestFaultSoak(t *testing.T) {
	slots := 2000
	if testing.Short() {
		slots = 200
	}
	sc := faultScenario(slots)
	sc.KeepTraces = true
	cfg := faultinject.Uniform(0.05)
	sc.Faults = &cfg
	sc.Budget.SlotDeadline = time.Hour

	a, err := Run(sc)
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if a.DegradedSlots == 0 {
		t.Fatal("soak with 5% faults at every site degraded no slots")
	}
	if a.DegradedSlots == slots {
		t.Fatalf("all %d slots degraded; expected a healthy majority", slots)
	}
	// At 5% per site, every cause label should occur over a long horizon.
	for _, want := range []string{
		core.CauseObs, core.CauseLatency,
		core.CauseS1Infeasible, core.CauseS1IterLimit,
		core.CauseS2Fault, core.CauseS3Fault,
		core.CauseS4Infeasible, core.CauseS4IterLimit,
	} {
		if a.DegradedByCause[want] == 0 && !testing.Short() {
			t.Errorf("cause %q never occurred in %d slots: %v", want, slots, a.DegradedByCause)
		}
	}
	t.Logf("degraded %d/%d (max streak %d): %v",
		a.DegradedSlots, slots, a.MaxDegradedStreak, a.DegradedByCause)

	b, err := Run(sc)
	if err != nil {
		t.Fatalf("soak rerun: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two same-seed fault-injected runs differ; injection leaked nondeterminism")
	}
}

// TestFaultDeterminismAcrossSites checks decision independence: adding a
// second site must not shift the first site's firing pattern, because
// each (site, slot) decision draws from its own named sub-stream.
func TestFaultDeterminismAcrossSites(t *testing.T) {
	base := faultScenario(100)
	base.Faults = &faultinject.Config{
		Probability: map[faultinject.Site]float64{faultinject.S2Fail: 0.1},
	}
	solo, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	both := faultScenario(100)
	both.Faults = &faultinject.Config{
		Probability: map[faultinject.Site]float64{
			faultinject.S2Fail: 0.1,
			faultinject.S3Fail: 0.1,
		},
	}
	duo, err := Run(both)
	if err != nil {
		t.Fatal(err)
	}
	if solo.DegradedByCause[core.CauseS2Fault] != duo.DegradedByCause[core.CauseS2Fault] {
		t.Errorf("S2 firing pattern shifted when S3 was enabled: solo %d, duo %d",
			solo.DegradedByCause[core.CauseS2Fault], duo.DegradedByCause[core.CauseS2Fault])
	}
}

// TestIterationBudgetDegrades arms a tiny LP iteration budget with no
// injection at all: organic IterationLimit outcomes must degrade slots
// (with the iterlimit cause labels), not abort the run.
func TestIterationBudgetDegrades(t *testing.T) {
	sc := faultScenario(20)
	sc.Budget.MaxLPIterations = 1
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	if res.DegradedSlots == 0 {
		t.Fatal("1-iteration LP budget degraded no slots")
	}
	for cause := range res.DegradedByCause {
		if cause != core.CauseS1IterLimit && cause != core.CauseS4IterLimit {
			t.Errorf("unexpected cause %q under pure iteration budget", cause)
		}
	}
}

// TestRunSeedsRecoversPanic panics inside every replication via a slot
// hook — the stand-in for a buggy solver — and checks the worker pool
// converts each panic into that seed's error instead of crashing the
// batch.
func TestRunSeedsRecoversPanic(t *testing.T) {
	sc := faultScenario(5)
	sc.SlotHook = func(sr *core.SlotResult) {
		panic("solver bug")
	}
	outs := RunSeeds(context.Background(), sc, []int64{1, 2, 3})
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outs))
	}
	for _, o := range outs {
		if o.Err == nil || o.Result != nil {
			t.Fatalf("seed %d: panic not converted to error: %+v", o.Seed, o)
		}
		if !strings.Contains(o.Err.Error(), "panic") {
			t.Errorf("seed %d error does not mention the panic: %v", o.Seed, o.Err)
		}
	}
}

// TestRunReplicatedAllSeedsFail drives the aggregation path when every
// replication dies: RunReplicatedCtx must return a non-nil result listing
// every seed in FailedSeeds (in seed order) plus a joined error naming
// each, instead of panicking or returning nil.
func TestRunReplicatedAllSeedsFail(t *testing.T) {
	sc := faultScenario(5)
	sc.SlotHook = func(sr *core.SlotResult) {
		panic("solver bug")
	}
	seeds := []int64{3, 1, 2}
	rr, err := RunReplicatedCtx(context.Background(), sc, seeds)
	if err == nil {
		t.Fatal("all-failed batch returned nil error")
	}
	if rr == nil {
		t.Fatal("all-failed batch returned nil result")
	}
	if len(rr.FailedSeeds) != len(seeds) {
		t.Fatalf("FailedSeeds = %v, want all of %v", rr.FailedSeeds, seeds)
	}
	for i, s := range seeds {
		if rr.FailedSeeds[i] != s {
			t.Fatalf("FailedSeeds = %v, want seed order %v", rr.FailedSeeds, seeds)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("seed %d", s)) {
			t.Errorf("joined error does not name seed %d: %v", s, err)
		}
	}
	if rr.AvgEnergyCost.N != 0 {
		t.Errorf("summary over %d seeds, want 0 (none succeeded)", rr.AvgEnergyCost.N)
	}
}

// TestRunReplicatedCtxCancelPrompt cancels a long batch mid-flight and
// checks RunReplicatedCtx returns promptly with the unfinished seeds
// failed on context.Canceled.
func TestRunReplicatedCtxCancelPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	type reply struct {
		rr  *ReplicatedResult
		err error
	}
	replies := make(chan reply, 1)
	go func() {
		long := faultScenario(200000) // long enough that cancel lands mid-run
		long.CheckInvariants = false
		rr, err := RunReplicatedCtx(ctx, long, []int64{1, 2})
		replies <- reply{rr, err}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	var rr *ReplicatedResult
	var err error
	select {
	case r := <-replies:
		rr, err = r.rr, r.err
	case <-time.After(30 * time.Second):
		t.Fatal("RunReplicatedCtx did not return promptly after cancel")
	}
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error does not carry context.Canceled: %v", err)
	}
	if len(rr.FailedSeeds) == 0 {
		t.Fatal("cancelled batch lists no failed seeds")
	}
}

// TestSeedMetricsRoundTrip checks the checkpoint unit: folding MetricsOf
// records reproduces the summaries RunReplicated computes from the same
// runs, which is what makes cmd/sweep's -resume sound.
func TestSeedMetricsRoundTrip(t *testing.T) {
	sc := faultScenario(10)
	seeds := []int64{1, 2, 3}
	rr, err := RunReplicatedCtx(context.Background(), sc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var ms []SeedMetrics
	for _, o := range RunSeeds(context.Background(), sc, seeds) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		ms = append(ms, MetricsOf(o.Seed, o.Result))
	}
	folded := SummarizeSeedMetrics(ms)
	if folded.AvgEnergyCost != rr.AvgEnergyCost {
		t.Errorf("AvgEnergyCost summaries differ: %+v vs %+v",
			folded.AvgEnergyCost, rr.AvgEnergyCost)
	}
	if folded.DegradedSlots != rr.DegradedSlots {
		t.Errorf("DegradedSlots summaries differ: %+v vs %+v",
			folded.DegradedSlots, rr.DegradedSlots)
	}
}
