package sim

import "testing"

func TestUrbanPresetRuns(t *testing.T) {
	sc := Urban()
	sc.Slots = 15
	sc.KeepTraces = false
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPkts <= 0 {
		t.Error("urban preset delivered nothing")
	}
	if res.DeficitWh > 1e-6 {
		t.Errorf("urban preset has energy deficit %v", res.DeficitWh)
	}
}

func TestUrbanPresetDeterministic(t *testing.T) {
	sc := Urban()
	sc.Slots = 10
	sc.KeepTraces = false
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Stateful Markov bands and Diurnal processes must be cloned per run:
	// identical scenarios give identical results.
	if a.AvgEnergyCost != b.AvgEnergyCost || a.DeliveredPkts != b.DeliveredPkts {
		t.Error("urban preset not deterministic — stateful processes leaked between runs")
	}
}

func TestRuralPresetRuns(t *testing.T) {
	sc := Rural()
	sc.Slots = 15
	sc.KeepTraces = false
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgEnergyCost < 0 {
		t.Error("negative cost")
	}
	_, net, _, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.BaseStations()) != 1 {
		t.Errorf("rural preset has %d base stations, want 1", len(net.BaseStations()))
	}
}
