package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"greencell/internal/core"
	"greencell/internal/faultinject"
	"greencell/internal/sched"
)

// ScenarioSpec is the serializable wire form of a Scenario: a preset name
// plus named overrides, all plain JSON values. Scenario itself holds
// interfaces and closures (cost functions, schedulers, hooks) that cannot
// round-trip through JSON, so everything that crosses a process boundary —
// greencelld job submissions, journals, sweep configs — travels as a spec
// and is materialized with Scenario().
//
// Zero-valued fields keep the preset's defaults, so the JSON encoding of a
// spec contains exactly the knobs the caller set (omitempty throughout).
// Two fields whose zero value is meaningful use pointers: Neighbors
// (0 = unlimited candidate links) and EnergyGate (false = gate off).
type ScenarioSpec struct {
	// Preset seeds every default: "paper" (the default), "urban", "rural".
	Preset string `json:"preset,omitempty"`
	// Architecture is the Fig. 2(f) variant:
	// proposed | multihop-nr | onehop-r | onehop-nr.
	Architecture string `json:"architecture,omitempty"`
	// Scheduler is the S1 solver: sf | greedy | exact | relaxed.
	Scheduler string `json:"scheduler,omitempty"`

	V           float64 `json:"v,omitempty"`
	Lambda      float64 `json:"lambda,omitempty"`
	SlotSeconds float64 `json:"slot_seconds,omitempty"`
	Slots       int     `json:"slots,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	Users          int   `json:"users,omitempty"`
	Sessions       int   `json:"sessions,omitempty"`
	UplinkSessions int   `json:"uplink_sessions,omitempty"`
	Neighbors      *int  `json:"neighbors,omitempty"`
	EnergyGate     *bool `json:"energy_gate,omitempty"`

	TrackDelay      bool `json:"track_delay,omitempty"`
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// WarmStartLP carries LP warm-start state across slots
	// (Scenario.WarmStartLP, docs/PERFORMANCE.md).
	WarmStartLP bool `json:"warm_start_lp,omitempty"`

	// FaultProb fires every injection site uniformly at this probability;
	// Faults sets per-site probabilities (overriding FaultProb site-wise).
	FaultProb float64            `json:"fault_prob,omitempty"`
	Faults    map[string]float64 `json:"faults,omitempty"`

	// BudgetIters caps simplex iterations per LP solve (core.SolveBudget);
	// SlotDeadlineMS is the per-slot wall-clock solve deadline.
	BudgetIters    int   `json:"budget_iters,omitempty"`
	SlotDeadlineMS int64 `json:"slot_deadline_ms,omitempty"`

	// Dist switches to the distributed message-passing controller
	// (docs/DISTRIBUTED.md); the Net* knobs parameterize its simulated
	// control-plane delivery model and are meaningful only with Dist set.
	Dist bool `json:"dist,omitempty"`
	// NetLoss/NetLatency/NetDup are per-message perturbation
	// probabilities in [0,1]; NetLatencyMax bounds the extra delay ticks
	// of a delayed message; NetReorder jitters within-tick delivery
	// order; NetPartition lists node IDs taken offline for the whole run.
	NetLoss       float64 `json:"net_loss,omitempty"`
	NetLatency    float64 `json:"net_latency,omitempty"`
	NetLatencyMax int     `json:"net_latency_max,omitempty"`
	NetDup        float64 `json:"net_dup,omitempty"`
	NetReorder    int     `json:"net_reorder,omitempty"`
	NetPartition  []int   `json:"net_partition,omitempty"`
}

// ErrSpec reports an invalid ScenarioSpec; the wrapped message names the
// offending field.
var ErrSpec = errors.New("sim: invalid scenario spec")

func specErr(field, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrSpec, field, fmt.Sprintf(format, args...))
}

// presets maps a preset name to its scenario constructor.
var presets = map[string]func() Scenario{
	"paper": Paper,
	"urban": Urban,
	"rural": Rural,
}

// architectures maps the wire names to the Fig. 2(f) variants. The names
// match cmd/greencellsim's -arch values.
var architectures = map[string]Architecture{
	"proposed":    Proposed,
	"multihop-nr": MultiHopNoRenewable,
	"onehop-r":    OneHopRenewable,
	"onehop-nr":   OneHopNoRenewable,
}

// schedulers maps the wire names (sched.StrategyName values) to S1 solver
// constructors.
var schedulers = map[string]func() sched.Scheduler{
	"sf":      func() sched.Scheduler { return sched.SequentialFix{} },
	"greedy":  func() sched.Scheduler { return sched.Greedy{} },
	"exact":   func() sched.Scheduler { return sched.Exact{} },
	"relaxed": func() sched.Scheduler { return sched.Relaxed{} },
}

// sortedKeys renders a name set for error messages deterministically.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate checks every field and returns an error wrapping ErrSpec that
// names the first offending field.
func (s ScenarioSpec) Validate() error {
	if s.Preset != "" {
		if _, ok := presets[s.Preset]; !ok {
			return specErr("preset", "unknown preset %q (want one of %v)", s.Preset, sortedKeys(presets))
		}
	}
	if s.Architecture != "" {
		if _, ok := architectures[s.Architecture]; !ok {
			return specErr("architecture", "unknown architecture %q (want one of %v)", s.Architecture, sortedKeys(architectures))
		}
	}
	if s.Scheduler != "" {
		if _, ok := schedulers[s.Scheduler]; !ok {
			return specErr("scheduler", "unknown scheduler %q (want one of %v)", s.Scheduler, sortedKeys(schedulers))
		}
	}
	if s.V < 0 {
		return specErr("v", "must be non-negative, got %g", s.V)
	}
	if s.Lambda < 0 {
		return specErr("lambda", "must be non-negative, got %g", s.Lambda)
	}
	if s.SlotSeconds < 0 {
		return specErr("slot_seconds", "must be non-negative, got %g", s.SlotSeconds)
	}
	if s.Slots < 0 {
		return specErr("slots", "must be non-negative, got %d", s.Slots)
	}
	if s.Users < 0 {
		return specErr("users", "must be non-negative, got %d", s.Users)
	}
	if s.Sessions < 0 {
		return specErr("sessions", "must be non-negative, got %d", s.Sessions)
	}
	if s.UplinkSessions < 0 {
		return specErr("uplink_sessions", "must be non-negative, got %d", s.UplinkSessions)
	}
	if s.Neighbors != nil && *s.Neighbors < 0 {
		return specErr("neighbors", "must be non-negative, got %d", *s.Neighbors)
	}
	if s.FaultProb < 0 || s.FaultProb > 1 {
		return specErr("fault_prob", "must be in [0,1], got %g", s.FaultProb)
	}
	known := make(map[string]bool, len(faultinject.Sites()))
	for _, site := range faultinject.Sites() {
		known[string(site)] = true
	}
	for _, site := range sortedKeys(s.Faults) {
		if !known[site] {
			return specErr("faults", "unknown injection site %q", site)
		}
		if p := s.Faults[site]; p < 0 || p > 1 {
			return specErr("faults", "site %q probability must be in [0,1], got %g", site, p)
		}
	}
	if s.BudgetIters < 0 {
		return specErr("budget_iters", "must be non-negative, got %d", s.BudgetIters)
	}
	if s.SlotDeadlineMS < 0 {
		return specErr("slot_deadline_ms", "must be non-negative, got %d", s.SlotDeadlineMS)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"net_loss", s.NetLoss}, {"net_latency", s.NetLatency}, {"net_dup", s.NetDup}} {
		if p.v < 0 || p.v > 1 {
			return specErr(p.name, "must be in [0,1], got %g", p.v)
		}
	}
	if s.NetLatencyMax < 0 {
		return specErr("net_latency_max", "must be non-negative, got %d", s.NetLatencyMax)
	}
	if s.NetReorder < 0 {
		return specErr("net_reorder", "must be non-negative, got %d", s.NetReorder)
	}
	for _, id := range s.NetPartition {
		if id < 0 {
			return specErr("net_partition", "node IDs must be non-negative, got %d", id)
		}
	}
	if !s.Dist && (s.NetLoss != 0 || s.NetLatency != 0 || s.NetLatencyMax != 0 ||
		s.NetDup != 0 || s.NetReorder != 0 || len(s.NetPartition) != 0) {
		return specErr("dist", "net_* knobs require dist: true")
	}
	if s.Dist && s.TrackDelay {
		return specErr("dist", "track_delay is unsupported with the distributed runner")
	}
	return nil
}

// Label returns the header label of the spec's scenario (its preset name).
func (s ScenarioSpec) Label() string {
	if s.Preset == "" {
		return "paper"
	}
	return s.Preset
}

// Scenario materializes the spec: the preset's scenario with every set
// field overlaid. The result keeps no per-slot traces (callers wanting
// traces flip KeepTraces themselves). The spec is validated first.
func (s ScenarioSpec) Scenario() (Scenario, error) {
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	sc := presets[s.Label()]()
	if s.Architecture != "" {
		sc.Architecture = architectures[s.Architecture]
	}
	if s.Scheduler != "" {
		sc.Scheduler = schedulers[s.Scheduler]()
	}
	if s.V != 0 {
		sc.V = s.V
	}
	if s.Lambda != 0 {
		sc.Lambda = s.Lambda
	}
	if s.SlotSeconds != 0 {
		sc.SlotSeconds = s.SlotSeconds
	}
	if s.Slots != 0 {
		sc.Slots = s.Slots
	}
	if s.Seed != 0 {
		sc.Seed = s.Seed
	}
	if s.Users != 0 {
		sc.Topology.NumUsers = s.Users
	}
	if s.Sessions != 0 {
		sc.NumSessions = s.Sessions
	}
	if s.UplinkSessions != 0 {
		sc.UplinkSessions = s.UplinkSessions
	}
	if s.Neighbors != nil {
		sc.Topology.MaxNeighbors = *s.Neighbors
	}
	if s.EnergyGate != nil {
		sc.EnergyGate = *s.EnergyGate
	}
	sc.TrackDelay = sc.TrackDelay || s.TrackDelay
	sc.CheckInvariants = sc.CheckInvariants || s.CheckInvariants
	sc.WarmStartLP = sc.WarmStartLP || s.WarmStartLP
	if s.FaultProb > 0 || len(s.Faults) > 0 {
		cfg := faultinject.Uniform(s.FaultProb)
		for _, site := range sortedKeys(s.Faults) {
			cfg.Probability[faultinject.Site(site)] = s.Faults[site]
		}
		sc.Faults = &cfg
	}
	sc.Budget = core.SolveBudget{
		MaxLPIterations: s.BudgetIters,
		SlotDeadline:    time.Duration(s.SlotDeadlineMS) * time.Millisecond,
	}
	sc.Dist = sc.Dist || s.Dist
	sc.NetLoss = s.NetLoss
	sc.NetLatency = s.NetLatency
	sc.NetLatencyMax = s.NetLatencyMax
	sc.NetDup = s.NetDup
	sc.NetReorder = s.NetReorder
	if len(s.NetPartition) != 0 {
		sc.NetPartition = append([]int(nil), s.NetPartition...)
	}
	sc.KeepTraces = false
	return sc, nil
}

// EncodeSpec serializes a spec as compact JSON (set fields only).
func EncodeSpec(s ScenarioSpec) ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSpec parses and validates a spec. Unknown fields are rejected by
// name, so a typoed knob fails loudly instead of silently keeping its
// preset default.
func DecodeSpec(data []byte) (ScenarioSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s ScenarioSpec
	if err := dec.Decode(&s); err != nil {
		return ScenarioSpec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if err := s.Validate(); err != nil {
		return ScenarioSpec{}, err
	}
	return s, nil
}
