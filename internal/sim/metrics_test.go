package sim

import (
	"bytes"
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"

	"greencell/internal/metrics"
)

// updateGolden rewrites testdata/golden_metrics.jsonl instead of diffing
// against it. Use only for intentional semantic changes to the stream.
var updateGolden = flag.Bool("update", false, "rewrite golden metrics fixtures")

// runMetricsStream executes a short Paper() run with an attached Recorder
// and returns the raw JSONL stream.
func runMetricsStream(t *testing.T, seed int64, gap bool) []byte {
	t.Helper()
	sc := Paper()
	sc.Slots = 12
	sc.Seed = seed
	sc.KeepTraces = false
	var buf bytes.Buffer
	rec := NewRecorder(metrics.NewJSONLWriter(&buf), HeaderFor(sc, "paper"))
	rec.Attach(&sc, gap)
	if _, err := Run(sc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Recorder.Close: %v", err)
	}
	return buf.Bytes()
}

// TestMetricsDeterministicForSeed is the emission regression test: two
// runs of the same scenario and seed must produce byte-identical streams
// once the wall-clock (_ns) fields are canonicalized away.
func TestMetricsDeterministicForSeed(t *testing.T) {
	a := runMetricsStream(t, 1, false)
	b := runMetricsStream(t, 1, false)
	ca, err := metrics.CanonicalizeJSONL(a)
	if err != nil {
		t.Fatalf("canonicalize a: %v", err)
	}
	cb, err := metrics.CanonicalizeJSONL(b)
	if err != nil {
		t.Fatalf("canonicalize b: %v", err)
	}
	if !bytes.Equal(ca, cb) {
		line := 1
		for i := range ca {
			if i >= len(cb) || ca[i] != cb[i] {
				break
			}
			if ca[i] == '\n' {
				line++
			}
		}
		t.Fatalf("same-seed streams differ after canonicalization (first difference around line %d)", line)
	}

	// A different seed must change the canonical stream (the test would be
	// vacuous if canonicalization erased everything interesting).
	c, err := metrics.CanonicalizeJSONL(runMetricsStream(t, 2, false))
	if err != nil {
		t.Fatalf("canonicalize c: %v", err)
	}
	if bytes.Equal(ca, c) {
		t.Fatal("streams of different seeds canonicalize identically; canonicalization is erasing real data")
	}
}

// TestMetricsGoldenByteIdentity pins the canonicalized fixed-seed stream
// to testdata/golden_metrics.jsonl, which was generated before the typed
// internal/units refactor. Defined types over float64 share the raw
// representation, so the refactor must not move a single bit of any
// metric; a diff here means some refactored expression changed its
// floating-point grouping. Regenerate the golden only for an intentional
// semantic change: go test ./internal/sim -run GoldenByteIdentity -update
func TestMetricsGoldenByteIdentity(t *testing.T) {
	got, err := metrics.CanonicalizeJSONL(runMetricsStream(t, 1, false))
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	const golden = "testdata/golden_metrics.jsonl"
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("stream differs from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("stream differs from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestMetricsStreamShape checks the stream carries what docs/METRICS.md
// promises: every slot, all four stage timings, and the queue/battery/
// grid series.
func TestMetricsStreamShape(t *testing.T) {
	raw := runMetricsStream(t, 1, false)
	slots, err := metrics.ReadAllSlots(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadAllSlots: %v", err)
	}
	if len(slots) != 12 {
		t.Fatalf("got %d slot records, want 12", len(slots))
	}
	sawGrid, sawBattery, sawBacklog := false, false, false
	for i, s := range slots {
		if s.Slot != i {
			t.Errorf("record %d has slot %d", i, s.Slot)
		}
		if s.S1NS <= 0 || s.S2NS <= 0 || s.S3NS <= 0 || s.S4NS <= 0 {
			t.Errorf("slot %d: stage timings must be positive, got s1=%d s2=%d s3=%d s4=%d",
				i, s.S1NS, s.S2NS, s.S3NS, s.S4NS)
		}
		if s.TotalNS < s.S1NS+s.S2NS+s.S3NS+s.QueueNS+s.S4NS {
			t.Errorf("slot %d: total_ns %d below the stage sum", i, s.TotalNS)
		}
		if s.S4LPSolves <= 0 || s.S4LPIters <= 0 {
			t.Errorf("slot %d: S4 always solves LPs, got solves=%d iters=%d", i, s.S4LPSolves, s.S4LPIters)
		}
		if s.OfferedPkts <= 0 || s.AdmittedPkts+s.DroppedPkts != s.OfferedPkts {
			t.Errorf("slot %d: offered=%g admitted=%g dropped=%g do not reconcile",
				i, s.OfferedPkts, s.AdmittedPkts, s.DroppedPkts)
		}
		if s.S1RelaxedObjective != nil {
			t.Errorf("slot %d: relaxed objective present without -metrics-gap", i)
		}
		sawGrid = sawGrid || s.GridWh > 0
		sawBattery = sawBattery || s.BatteryWhBS > 0 || s.BatteryWhUsers > 0
		sawBacklog = sawBacklog || s.DataBacklogBS > 0 || s.DataBacklogUsers > 0
	}
	if !sawGrid || !sawBattery || !sawBacklog {
		t.Errorf("series missing: grid=%v battery=%v backlog=%v", sawGrid, sawBattery, sawBacklog)
	}
}

// TestMetricsGap checks the -metrics-gap mode: every slot carries the
// LP-relaxation bound, and the bound dominates the heuristic objective.
func TestMetricsGap(t *testing.T) {
	raw := runMetricsStream(t, 1, true)
	slots, err := metrics.ReadAllSlots(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadAllSlots: %v", err)
	}
	for i, s := range slots {
		if s.S1RelaxedObjective == nil {
			t.Fatalf("slot %d: missing relaxed objective in gap mode", i)
		}
		const tol = 1e-6
		if *s.S1RelaxedObjective < s.S1Objective-tol*(1+s.S1Objective) {
			t.Errorf("slot %d: relaxation %g below achieved objective %g",
				i, *s.S1RelaxedObjective, s.S1Objective)
		}
	}
}

// TestSummaryMetricsDocumented cross-checks the Recorder's registry
// against docs/METRICS.md: every registered metric name must be
// documented (per-strategy timers via their <strategy> pattern).
func TestSummaryMetricsDocumented(t *testing.T) {
	data, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatalf("docs/METRICS.md: %v", err)
	}
	doc := string(data)

	sc := Paper()
	sc.Slots = 3
	sc.KeepTraces = false
	rec := NewRecorder(metrics.NewJSONLWriter(&bytes.Buffer{}), HeaderFor(sc, "paper"))
	rec.Attach(&sc, true) // gap on, so s1_gap registers too
	if _, err := Run(sc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	perStrategy := regexp.MustCompile(`^sched_.+_solve_ns$`)
	for _, name := range rec.Registry().Names() {
		if perStrategy.MatchString(name) {
			name = "sched_<strategy>_solve_ns"
		}
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("summary metric %q is not documented in docs/METRICS.md", name)
		}
	}
}
