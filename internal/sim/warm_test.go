package sim

import (
	"math"
	"testing"

	"greencell/internal/core"
)

// relDiff is the relative difference |x−y| / (1+|x|).
func relDiff(x, y float64) float64 {
	return math.Abs(x-y) / (1 + math.Abs(x))
}

// TestWarmStartLPRun runs the fast paper scenario with warm-starting on and
// the invariant checker enabled: the run must stay feasible slot by slot,
// must actually warm-start, and its headline aggregates must stay close to
// the cold run. Exact equality is not required — the warm engine may settle
// on a different vertex of a degenerate LP optimum, and the SF rounding can
// amplify that into slightly different schedules — but the control loop is
// self-stabilizing, so the time averages have to agree to a few percent.
func TestWarmStartLPRun(t *testing.T) {
	coldSc := fastScenario()
	coldSc.CheckInvariants = true
	cold, err := Run(coldSc)
	if err != nil {
		t.Fatal(err)
	}

	warmSc := fastScenario()
	warmSc.CheckInvariants = true
	warmSc.WarmStartLP = true
	warmSc.Instrument = true
	warmStarts, invalidations := 0, 0
	warmSc.SlotHook = func(sr *core.SlotResult) {
		if sr.Stages != nil {
			warmStarts += sr.Stages.LPWarmStarts
			invalidations += sr.Stages.LPBasisInvalidations
		}
	}
	warm, err := Run(warmSc)
	if err != nil {
		t.Fatal(err)
	}

	if warmStarts == 0 {
		t.Fatal("warm-start run recorded zero warm starts")
	}
	t.Logf("warm starts %d, invalidations %d", warmStarts, invalidations)
	if warm.DeficitWh > 1e-6 {
		t.Errorf("warm run has energy deficit %v", warm.DeficitWh)
	}
	if d := relDiff(cold.AvgEnergyCost.Value(), warm.AvgEnergyCost.Value()); d > 0.05 {
		t.Errorf("avg energy cost diverged: cold %v warm %v (rel %v)",
			cold.AvgEnergyCost, warm.AvgEnergyCost, d)
	}
	if d := relDiff(cold.DeliveredPkts, warm.DeliveredPkts); d > 0.05 {
		t.Errorf("delivered diverged: cold %v warm %v (rel %v)",
			cold.DeliveredPkts, warm.DeliveredPkts, d)
	}
	if d := relDiff(cold.AdmittedPkts, warm.AdmittedPkts); d > 0.05 {
		t.Errorf("admitted diverged: cold %v warm %v (rel %v)",
			cold.AdmittedPkts, warm.AdmittedPkts, d)
	}
}

// TestWarmStartLPDeterministic pins that the warm path is itself
// deterministic: two warm runs of the same scenario must agree exactly.
func TestWarmStartLPDeterministic(t *testing.T) {
	sc := fastScenario()
	sc.WarmStartLP = true
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgEnergyCost != b.AvgEnergyCost || a.DeliveredPkts != b.DeliveredPkts ||
		a.AvgGridWh != b.AvgGridWh {
		t.Error("same warm scenario, different results")
	}
}
