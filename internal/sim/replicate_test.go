package sim

import (
	"testing"
)

func TestRunReplicated(t *testing.T) {
	sc := fastScenario()
	sc.Slots = 25
	rr, err := RunReplicated(sc, Seeds(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rr.AvgEnergyCost.N != 3 {
		t.Errorf("N = %d, want 3", rr.AvgEnergyCost.N)
	}
	if rr.AvgEnergyCost.Mean < 0 {
		t.Errorf("negative mean cost %v", rr.AvgEnergyCost.Mean)
	}
	if rr.DeliveredPkts.Mean <= 0 {
		t.Error("no traffic delivered in replications")
	}
	// Different topologies per seed should produce spread.
	if rr.AvgEnergyCost.Std == 0 && rr.DeliveredPkts.Std == 0 {
		t.Error("replications identical across seeds (suspicious)")
	}
	if len(rr.MeanCostTrace) != sc.Slots || len(rr.MeanBatteryWhUTrace) != sc.Slots {
		t.Errorf("mean traces have wrong length")
	}
}

func TestRunReplicatedNoTraces(t *testing.T) {
	sc := fastScenario()
	sc.Slots = 10
	sc.KeepTraces = false
	rr, err := RunReplicated(sc, Seeds(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rr.MeanCostTrace != nil {
		t.Error("traces retained despite KeepTraces=false")
	}
}

func TestRunReplicatedNoSeeds(t *testing.T) {
	if _, err := RunReplicated(fastScenario(), nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := BoundsReplicated(fastScenario(), 1e5, nil); err == nil {
		t.Error("empty seed list accepted by BoundsReplicated")
	}
}

func TestBoundsReplicated(t *testing.T) {
	sc := fastScenario()
	sc.Slots = 20
	rb, err := BoundsReplicated(sc, 5e5, Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rb.V != 5e5 {
		t.Errorf("V = %v", rb.V)
	}
	if rb.Lower.Mean > rb.Upper.Mean {
		t.Errorf("mean lower %v above mean upper %v", rb.Lower.Mean, rb.Upper.Mean)
	}
}

func TestSeeds(t *testing.T) {
	got := Seeds(10, 3)
	if len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Errorf("Seeds = %v", got)
	}
}
