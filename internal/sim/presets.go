package sim

import (
	"greencell/internal/energy"
	"greencell/internal/geom"
	"greencell/internal/spectrum"
)

// Urban returns a denser deployment than the paper's: a 2x2 base-station
// grid over the same area, users clustered in hotspots, log-normal
// shadowing, and Gilbert-Elliott (Markov) availability on the shared bands
// — the composition of the repository's realism extensions.
func Urban() Scenario {
	sc := Paper()
	sc.Topology.BSPositions = []geom.Point{
		{X: 500, Y: 500}, {X: 1500, Y: 500},
		{X: 500, Y: 1500}, {X: 1500, Y: 1500},
	}
	sc.Topology.NumUsers = 30
	sc.Topology.Hotspots = []geom.Point{
		{X: 700, Y: 700}, {X: 1300, Y: 700}, {X: 1000, Y: 1400},
	}
	sc.Topology.HotspotSigma = 180
	sc.Topology.ShadowingSigmaDB = 6
	sm := spectrum.Paper()
	for i := 1; i < sm.NumBands(); i++ {
		sm.Bands[i].Width = &spectrum.Markov{
			On:       spectrum.Uniform{Lo: 1e6, Hi: 2e6},
			POnToOff: 0.1,
			POffToOn: 0.4,
		}
	}
	sc.Topology.Spectrum = sm
	sc.NumSessions = 6
	return sc
}

// Rural returns a sparse deployment: one base station in a 4 km area, few
// far-flung users, diurnal (day-cycle) renewables sized up to compensate
// the longer links.
func Rural() Scenario {
	sc := Paper()
	sc.Topology.Area = geom.Square(4000)
	sc.Topology.BSPositions = []geom.Point{{X: 2000, Y: 2000}}
	sc.Topology.NumUsers = 10
	sc.Topology.MaxNeighbors = 4
	sc.Topology.BSSpec.Renewable = &energy.Diurnal{PeakWh: 1.2, PeriodSlots: 100, NoiseFrac: 0.2}
	sc.Topology.UserSpec.Renewable = &energy.Diurnal{PeakWh: 0.12, PeriodSlots: 100, NoiseFrac: 0.2}
	sc.NumSessions = 3
	return sc
}
