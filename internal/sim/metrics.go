package sim

import (
	"strings"

	"greencell/internal/core"
	"greencell/internal/machine"
	"greencell/internal/metrics"
	"greencell/internal/sched"
)

// Recorder bridges a simulation run to the metrics layer: attached to a
// Scenario it observes every SlotResult (and, through sched.Instrumented,
// every S1 solve), emits one metrics.SlotRecord per slot to a
// RecordWriter, and aggregates run-level statistics in a metrics.Registry
// that becomes the stream's closing Summary record.
//
// A Recorder is single-run, single-goroutine: it must not be shared
// across the concurrent replications of RunReplicated (give each run its
// own Recorder, or none).
type Recorder struct {
	w   metrics.RecordWriter
	reg *metrics.Registry

	// Stage timers (nanosecond histograms; their summary aggregates carry
	// the _ns marker CanonicalizeJSONL zeroes).
	tS1, tS2, tS3, tQueue, tS4, tTotal *metrics.Timer

	// Run totals (deterministic for a fixed scenario and seed).
	cGrid, cCost, cRenew, cTx, cDeficit          *metrics.Counter
	cOffered, cAdmitted, cDropped, cDelivered    *metrics.Counter
	cSchedSolves, cSchedIters, cS4Solves, cS4Its *metrics.Counter
	cSlots                                       *metrics.Counter

	// Final queue/battery state.
	gBacklogBS, gBacklogUsers, gBatteryBS, gBatteryUsers *metrics.Gauge
	gVirtualH, gAbsZ                                     *metrics.Gauge

	// hGap accumulates the S1 optimality gap (relaxation − heuristic) when
	// gap comparison is enabled; nil rows otherwise.
	hGap *metrics.Histogram

	// Degradation aggregates (docs/ROBUSTNESS.md): total degraded slots,
	// and the distribution of consecutive-degraded streak lengths — the
	// slots-to-recovery measure. streak is the currently open run of
	// degraded slots, observed into hStreak when the controller recovers
	// (or at Close if the run ends degraded). Per-cause counters
	// (degraded_cause_<cause>_total) register on demand in SlotHook.
	cDegraded *metrics.Counter
	hStreak   *metrics.Histogram
	streak    int

	// Network-fabric aggregates of a distributed run (docs/DISTRIBUTED.md).
	// They register lazily, on the first non-ideal SlotNetStats: a
	// perfect-network distributed run carries Ideal == true every slot and
	// therefore emits a summary byte-identical to the monolith's — the
	// fidelity gate extends through the metrics stream.
	cNetSent, cNetDropped, cNetDelayed, cNetDuped *metrics.Counter
	cNetData, cNetLate, cNetMissed                *metrics.Counter
	cNetStale, cNetClamps                         *metrics.Counter

	// pending is the S1 solve observed since the last slot flush; the
	// scheduler runs inside Controller.Step, before the SlotHook fires.
	pending    sched.SolveRecord
	hasPending bool

	slots int
	err   error // first write error, sticky; surfaced by Close/Err
}

// NewRecorder writes the stream header and returns a recorder feeding w.
// The writer stays owned by the caller's deferred Close chain only through
// the recorder: call Recorder.Close exactly once when the run ends.
func NewRecorder(w metrics.RecordWriter, h metrics.Header) *Recorder {
	r := &Recorder{w: w, reg: metrics.NewRegistry()}

	r.tS1 = r.reg.Timer("stage_s1_ns", "S1 link-scheduling solve wall time")
	r.tS2 = r.reg.Timer("stage_s2_ns", "S2 resource-allocation solve wall time")
	r.tS3 = r.reg.Timer("stage_s3_ns", "S3 routing solve wall time")
	r.tQueue = r.reg.Timer("stage_queue_ns", "transfer execution + queue update wall time")
	r.tS4 = r.reg.Timer("stage_s4_ns", "S4 energy-management solve wall time")
	r.tTotal = r.reg.Timer("stage_total_ns", "whole Controller.Step wall time")

	r.cSlots = r.reg.Counter("slots_total", "slots", "slots recorded")
	r.cGrid = r.reg.Counter("grid_wh_total", "Wh", "total grid draw Σ_t P(t)")
	r.cCost = r.reg.Counter("energy_cost_total", "cost", "total energy cost Σ_t f(P(t))")
	r.cRenew = r.reg.Counter("renewable_wh_total", "Wh", "total renewable output")
	r.cTx = r.reg.Counter("tx_energy_wh_total", "Wh", "total transmission+reception energy")
	r.cDeficit = r.reg.Counter("deficit_wh_total", "Wh", "total unserved energy demand")
	r.cOffered = r.reg.Counter("offered_pkts_total", "pkts", "total traffic offered for admission")
	r.cAdmitted = r.reg.Counter("admitted_pkts_total", "pkts", "total admitted traffic Σ_t Σ_s k_s(t)")
	r.cDropped = r.reg.Counter("dropped_pkts_total", "pkts", "total traffic turned away by S2")
	r.cDelivered = r.reg.Counter("delivered_pkts_total", "pkts", "total packets delivered to destinations")
	r.cSchedSolves = r.reg.Counter("s1_lp_solves_total", "solves", "S1 LP solve calls")
	r.cSchedIters = r.reg.Counter("s1_lp_iters_total", "iters", "S1 simplex iterations")
	r.cS4Solves = r.reg.Counter("s4_lp_solves_total", "solves", "S4 LP solve calls")
	r.cS4Its = r.reg.Counter("s4_lp_iters_total", "iters", "S4 simplex iterations")
	r.cDegraded = r.reg.Counter("degraded_slots_total", "slots",
		"slots that fell back to a safe action (docs/ROBUSTNESS.md)")
	r.hStreak = r.reg.Histogram("degraded_streak_slots", "slots",
		"consecutive-degraded streak lengths (slots until recovery)",
		metrics.ExpBuckets(1, 2, 16))

	r.gBacklogBS = r.reg.Gauge("final_data_backlog_bs", "pkts", "end-of-run BS data backlog")
	r.gBacklogUsers = r.reg.Gauge("final_data_backlog_users", "pkts", "end-of-run user data backlog")
	r.gBatteryBS = r.reg.Gauge("final_battery_wh_bs", "Wh", "end-of-run BS battery charge")
	r.gBatteryUsers = r.reg.Gauge("final_battery_wh_users", "Wh", "end-of-run user battery charge")
	r.gVirtualH = r.reg.Gauge("final_virtual_backlog_h", "pkts", "end-of-run Σ H_ij")
	r.gAbsZ = r.reg.Gauge("final_shifted_abs_z", "Wh", "end-of-run Σ|z_i|")

	if err := w.WriteHeader(h); err != nil {
		r.err = err
	}
	return r
}

// Registry exposes the run-level aggregates (for tests and tooling).
func (r *Recorder) Registry() *metrics.Registry { return r.reg }

// OnSolve records one S1 solve; wire it as sched.Instrumented.OnSolve.
// The record is attached to the next slot flushed by SlotHook (the
// scheduler runs earlier in the same Controller.Step).
func (r *Recorder) OnSolve(rec sched.SolveRecord) {
	r.pending = rec
	r.hasPending = true
	r.reg.Timer("sched_"+rec.Strategy+"_solve_ns", "S1 solve wall time of the "+rec.Strategy+" strategy").
		ObserveNS(rec.NS)
	if rec.HasRelaxed {
		if r.hGap == nil {
			r.hGap = r.reg.Histogram("s1_gap", "weighted-rate",
				"S1 optimality gap: LP-relaxation bound − achieved objective",
				metrics.ExpBuckets(1e-3, 2, 48))
		}
		r.hGap.Observe(rec.Gap())
	}
}

// SlotHook emits one SlotRecord; wire it as Scenario.SlotHook. Write
// errors are sticky and surfaced by Close, so a full disk cannot abort
// the simulation itself.
func (r *Recorder) SlotHook(sr *core.SlotResult) {
	rec := metrics.SlotRecord{
		Slot:             sr.Slot,
		ScheduledLinks:   sr.ScheduledLinks,
		OfferedPkts:      sr.OfferedPkts,
		AdmittedPkts:     sr.AdmittedPkts,
		DroppedPkts:      sr.DroppedPkts,
		DataBacklogBS:    sr.DataBacklogBS,
		DataBacklogUsers: sr.DataBacklogUsers,
		VirtualBacklogH:  sr.VirtualBacklogH,
		ShiftedAbsZ:      sr.ShiftedEnergyAbsZ.Wh(),
		BatteryWhBS:      sr.BatteryWhBS.Wh(),
		BatteryWhUsers:   sr.BatteryWhUsers.Wh(),
		GridWh:           sr.GridWh.Wh(),
		EnergyCost:       sr.EnergyCost.Value(),
		PenaltyObjective: sr.PenaltyObjective,
		MarginalPriceWh:  sr.MarginalPriceWh.PerWh(),
		RenewableWh:      sr.RenewableWh.Wh(),
		DemandWh:         sr.DemandWh.Wh(),
		TxEnergyWh:       sr.TxEnergyWh.Wh(),
		DeficitWh:        sr.DeficitWh.Wh(),
	}
	for _, d := range sr.DeliveredPkts {
		rec.DeliveredPkts += d
	}
	if st := sr.Stages; st != nil {
		rec.S1NS, rec.S2NS, rec.S3NS = st.S1NS, st.S2NS, st.S3NS
		rec.QueueNS, rec.S4NS, rec.TotalNS = st.QueueNS, st.S4NS, st.TotalNS
		rec.S1LPSolves, rec.S1LPIters = st.SchedLPSolves, st.SchedLPIterations
		rec.S4LPSolves, rec.S4LPIters = st.S4LPSolves, st.S4LPIterations
		rec.S1Objective = st.SchedObjective

		r.tS1.ObserveNS(st.S1NS)
		r.tS2.ObserveNS(st.S2NS)
		r.tS3.ObserveNS(st.S3NS)
		r.tQueue.ObserveNS(st.QueueNS)
		r.tS4.ObserveNS(st.S4NS)
		r.tTotal.ObserveNS(st.TotalNS)
		r.cSchedSolves.Add(float64(st.SchedLPSolves))
		r.cSchedIters.Add(float64(st.SchedLPIterations))
		r.cS4Solves.Add(float64(st.S4LPSolves))
		r.cS4Its.Add(float64(st.S4LPIterations))
		// Warm-start counters register on demand, like the per-cause
		// degradation counters: cold runs (the golden fixture among them)
		// never emit them.
		if st.LPWarmStarts > 0 {
			r.reg.Counter("lp_warm_starts_total", "solves",
				"warm-started LP solves across S1+S4 (docs/PERFORMANCE.md)").
				Add(float64(st.LPWarmStarts))
		}
		if st.LPBasisInvalidations > 0 {
			r.reg.Counter("lp_basis_invalidations_total", "solves",
				"LP bases discarded for a cold rebuild (docs/PERFORMANCE.md)").
				Add(float64(st.LPBasisInvalidations))
		}
	}
	if r.hasPending && r.pending.HasRelaxed {
		v := r.pending.RelaxedObjective
		rec.S1RelaxedObjective = &v
	}
	r.hasPending = false

	if sr.Degraded {
		rec.Degraded = 1
		rec.DegradedCauses = strings.Join(sr.DegradedCauses, ";")
		r.cDegraded.Inc()
		for _, cause := range sr.DegradedCauses {
			r.reg.Counter("degraded_cause_"+cause+"_total", "slots",
				"slots degraded with cause "+cause).Inc()
		}
		r.streak++
	} else if r.streak > 0 {
		r.hStreak.Observe(float64(r.streak))
		r.streak = 0
	}

	r.cSlots.Inc()
	r.cGrid.Add(sr.GridWh.Wh())
	r.cCost.Add(sr.EnergyCost.Value())
	r.cRenew.Add(sr.RenewableWh.Wh())
	r.cTx.Add(sr.TxEnergyWh.Wh())
	r.cDeficit.Add(sr.DeficitWh.Wh())
	r.cOffered.Add(sr.OfferedPkts)
	r.cAdmitted.Add(sr.AdmittedPkts)
	r.cDropped.Add(sr.DroppedPkts)
	r.cDelivered.Add(rec.DeliveredPkts)
	r.gBacklogBS.Set(sr.DataBacklogBS)
	r.gBacklogUsers.Set(sr.DataBacklogUsers)
	r.gBatteryBS.Set(sr.BatteryWhBS.Wh())
	r.gBatteryUsers.Set(sr.BatteryWhUsers.Wh())
	r.gVirtualH.Set(sr.VirtualBacklogH)
	r.gAbsZ.Set(sr.ShiftedEnergyAbsZ.Wh())
	r.slots++

	if r.err == nil {
		r.err = r.w.WriteSlot(&rec)
	}
}

// NetHook aggregates one slot of network-fabric statistics from a
// distributed run; wire it as Scenario.NetHook (Attach does so). Ideal
// slots — zero-valued delivery model, no offline nodes, no injected net
// faults — register nothing, so a perfect-network distributed stream
// stays byte-identical to the monolith's golden fixture.
func (r *Recorder) NetHook(st machine.SlotNetStats) {
	if st.Ideal {
		return
	}
	if r.cNetSent == nil {
		r.cNetSent = r.reg.Counter("net_msgs_sent_total", "msgs",
			"control messages handed to the simulated network")
		r.cNetDropped = r.reg.Counter("net_msgs_dropped_total", "msgs",
			"control messages lost by the delivery model")
		r.cNetDelayed = r.reg.Counter("net_msgs_delayed_total", "msgs",
			"control messages delivered at least one tick late")
		r.cNetDuped = r.reg.Counter("net_msgs_duped_total", "msgs",
			"duplicate control-message deliveries")
		r.cNetData = r.reg.Counter("net_data_msgs_total", "msgs",
			"data-plane packet transfers (reliable, next tick)")
		r.cNetLate = r.reg.Counter("net_msgs_late_total", "msgs",
			"commands discarded by nodes for arriving past their use-by round")
		r.cNetMissed = r.reg.Counter("net_missed_cmds_total", "cmds",
			"node-slots that executed without a fresh energy command")
		r.cNetStale = r.reg.Counter("net_stale_views_total", "views",
			"node views the coordinator decided on without current-slot gossip")
		r.cNetClamps = r.reg.Counter("net_node_clamps_total", "clamps",
			"command components clamped by nodes against local truth")
	}
	r.cNetSent.Add(float64(st.Sent))
	r.cNetDropped.Add(float64(st.Dropped))
	r.cNetDelayed.Add(float64(st.Delayed))
	r.cNetDuped.Add(float64(st.Duped))
	r.cNetData.Add(float64(st.DataMsgs))
	r.cNetLate.Add(float64(st.Late))
	r.cNetMissed.Add(float64(st.MissedCmds))
	r.cNetStale.Add(float64(st.StaleViews))
	r.cNetClamps.Add(float64(st.NodeClamps))
}

// Err returns the first write error seen so far (nil if none).
func (r *Recorder) Err() error { return r.err }

// Close writes the Summary record, flushes the writer, and returns the
// first error of the whole stream.
func (r *Recorder) Close() error {
	if r.streak > 0 {
		// The run ended mid-streak; flush it so the histogram covers
		// every degraded slot.
		r.hStreak.Observe(float64(r.streak))
		r.streak = 0
	}
	if r.err == nil {
		r.err = r.w.WriteSummary(metrics.Summary{
			Slots:   r.slots,
			Metrics: r.reg.Snapshot(),
		})
	}
	if err := r.w.Close(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Attach wires the recorder into a scenario: it switches on controller
// instrumentation, wraps the S1 scheduler with sched.Instrumented (with
// the optional relaxation-gap comparison), and chains SlotHook after any
// hook already present.
func (r *Recorder) Attach(sc *Scenario, compareGap bool) {
	sc.Instrument = true
	sc.Scheduler = sched.Instrumented{
		Inner:          sc.Scheduler,
		CompareRelaxed: compareGap,
		OnSolve:        r.OnSolve,
	}
	if prev := sc.SlotHook; prev != nil {
		sc.SlotHook = func(sr *core.SlotResult) {
			prev(sr)
			r.SlotHook(sr)
		}
	} else {
		sc.SlotHook = r.SlotHook
	}
	if prev := sc.NetHook; prev != nil {
		sc.NetHook = func(st machine.SlotNetStats) {
			prev(st)
			r.NetHook(st)
		}
	} else {
		sc.NetHook = r.NetHook
	}
}

// HeaderFor builds the stream header for a scenario. label is the
// free-form scenario name ("paper", "urban", …).
func HeaderFor(sc Scenario, label string) metrics.Header {
	return metrics.Header{
		Scenario:     label,
		Architecture: sc.Architecture.String(),
		Scheduler:    sched.StrategyName(sc.Scheduler),
		V:            sc.V,
		Lambda:       sc.Lambda,
		SlotSeconds:  sc.SlotSeconds,
		Slots:        sc.Slots,
		Seed:         sc.Seed,
		Sessions:     sc.NumSessions + sc.UplinkSessions,
		Users:        sc.Topology.NumUsers,
	}
}
