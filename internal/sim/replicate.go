package sim

import (
	"fmt"
	"sync"

	"greencell/internal/stats"
)

// ReplicatedResult aggregates a scenario across independent seeds. The
// paper's headline numbers are expectations over the random placement,
// spectrum, renewable, and grid processes; replication estimates them with
// confidence intervals.
type ReplicatedResult struct {
	// Summaries over the per-replication scalar metrics.
	AvgEnergyCost       stats.Summary
	AvgPenaltyObjective stats.Summary
	AvgGridWh           stats.Summary
	DeliveredPkts       stats.Summary
	AdmittedPkts        stats.Summary
	FinalDataBacklog    stats.Summary
	FinalBatteryWh      stats.Summary

	// Pointwise-mean traces (nil unless Scenario.KeepTraces).
	MeanCostTrace          []float64
	MeanDataBacklogBSTrace []float64
	MeanDataBacklogUTrace  []float64
	MeanBatteryWhBSTrace   []float64
	MeanBatteryWhUTrace    []float64
}

// RunReplicated runs the scenario once per seed (replications run
// concurrently — every run is independent and deterministic per seed, so
// results are identical to a serial sweep) and summarizes.
func RunReplicated(sc Scenario, seeds []int64) (*ReplicatedResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w: no seeds", ErrScenario)
	}
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for idx, seed := range seeds {
		wg.Add(1)
		go func(idx int, seed int64) {
			defer wg.Done()
			s := sc
			s.Seed = seed
			results[idx], errs[idx] = Run(s)
		}(idx, seed)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[idx], err)
		}
	}

	var (
		cost, pen, grid, del, adm, backlog, batt []float64
		costT, qbsT, quT, bbsT, buT              [][]float64
	)
	for _, res := range results {
		cost = append(cost, res.AvgEnergyCost)
		pen = append(pen, res.AvgPenaltyObjective)
		grid = append(grid, res.AvgGridWh)
		del = append(del, res.DeliveredPkts)
		adm = append(adm, res.AdmittedPkts)
		backlog = append(backlog, res.FinalDataBacklogBS+res.FinalDataBacklogUsers)
		batt = append(batt, res.FinalBatteryWhBS+res.FinalBatteryWhUsers)
		if sc.KeepTraces {
			costT = append(costT, res.CostTrace)
			qbsT = append(qbsT, res.DataBacklogBSTrace)
			quT = append(quT, res.DataBacklogUsersTrace)
			bbsT = append(bbsT, res.BatteryWhBSTrace)
			buT = append(buT, res.BatteryWhUsersTrace)
		}
	}
	out := &ReplicatedResult{
		AvgEnergyCost:       stats.Summarize(cost),
		AvgPenaltyObjective: stats.Summarize(pen),
		AvgGridWh:           stats.Summarize(grid),
		DeliveredPkts:       stats.Summarize(del),
		AdmittedPkts:        stats.Summarize(adm),
		FinalDataBacklog:    stats.Summarize(backlog),
		FinalBatteryWh:      stats.Summarize(batt),
	}
	if sc.KeepTraces {
		out.MeanCostTrace = stats.MeanSeries(costT)
		out.MeanDataBacklogBSTrace = stats.MeanSeries(qbsT)
		out.MeanDataBacklogUTrace = stats.MeanSeries(quT)
		out.MeanBatteryWhBSTrace = stats.MeanSeries(bbsT)
		out.MeanBatteryWhUTrace = stats.MeanSeries(buT)
	}
	return out, nil
}

// ReplicatedBounds is the seed-averaged Theorem 4/5 sandwich at one V.
type ReplicatedBounds struct {
	V     float64
	Upper stats.Summary
	Lower stats.Summary
}

// BoundsReplicated averages BoundsAt over seeds.
func BoundsReplicated(sc Scenario, v float64, seeds []int64) (ReplicatedBounds, error) {
	if len(seeds) == 0 {
		return ReplicatedBounds{}, fmt.Errorf("%w: no seeds", ErrScenario)
	}
	var uppers, lowers []float64
	for _, seed := range seeds {
		s := sc
		s.Seed = seed
		b, err := BoundsAt(s, v)
		if err != nil {
			return ReplicatedBounds{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		uppers = append(uppers, b.Upper)
		lowers = append(lowers, b.Lower)
	}
	return ReplicatedBounds{
		V:     v,
		Upper: stats.Summarize(uppers),
		Lower: stats.Summarize(lowers),
	}, nil
}

// Seeds returns n consecutive seeds starting at base — a convenience for
// replication sweeps.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
