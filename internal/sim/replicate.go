package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"greencell/internal/stats"
)

// ReplicatedResult aggregates a scenario across independent seeds. The
// paper's headline numbers are expectations over the random placement,
// spectrum, renewable, and grid processes; replication estimates them with
// confidence intervals.
type ReplicatedResult struct {
	// Summaries over the per-replication scalar metrics. When some seeds
	// failed (FailedSeeds non-empty), the summaries cover only the seeds
	// that succeeded.
	AvgEnergyCost       stats.Summary
	AvgPenaltyObjective stats.Summary
	AvgGridWh           stats.Summary
	DeliveredPkts       stats.Summary
	AdmittedPkts        stats.Summary
	FinalDataBacklog    stats.Summary
	FinalBatteryWh      stats.Summary
	// DegradedSlots summarizes the per-replication count of slots that
	// fell back to a safe action (docs/ROBUSTNESS.md).
	DegradedSlots stats.Summary

	// FailedSeeds lists the seeds whose replication failed, in seed-list
	// order; the per-seed errors are joined into RunReplicated's error.
	FailedSeeds []int64

	// Pointwise-mean traces (nil unless Scenario.KeepTraces).
	MeanCostTrace          []float64
	MeanDataBacklogBSTrace []float64
	MeanDataBacklogUTrace  []float64
	MeanBatteryWhBSTrace   []float64
	MeanBatteryWhUTrace    []float64
}

// SeedOutcome is one replication's result or error (never both non-zero).
type SeedOutcome struct {
	Seed   int64
	Result *Result
	Err    error
}

// RunSeeds runs the scenario once per seed on a worker pool capped at
// runtime.GOMAXPROCS(0) goroutines and returns one outcome per seed, in
// seed order. Every run is independent and deterministic per seed, so
// results are identical to a serial sweep. A panicking replication is
// recovered into its outcome's Err — one buggy seed cannot crash the
// batch — and cancelling ctx makes remaining seeds return promptly with
// ctx's error while already-finished outcomes are kept.
func RunSeeds(ctx context.Context, sc Scenario, seeds []int64) []SeedOutcome {
	return RunSeedsPrepared(ctx, sc, seeds, nil)
}

// RunSeedsPrepared is RunSeeds with a per-seed customization seam: when
// prepare is non-nil it runs on each replication's private Scenario copy —
// after its Seed is set, before the run starts — so callers can attach
// per-seed recorders or progress hooks without sharing mutable state
// across the pool's goroutines (the Recorder is single-run; a shared
// SlotHook would race). prepare is called concurrently for distinct seeds
// and must not retain the *Scenario past the call. Panics inside prepare
// are recovered into the seed's outcome like any other replication panic.
func RunSeedsPrepared(ctx context.Context, sc Scenario, seeds []int64, prepare func(seed int64, sc *Scenario)) []SeedOutcome {
	outs := make([]SeedOutcome, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				outs[i] = runSeed(ctx, sc, seeds[i], prepare)
			}
		}()
	}
	for i := range seeds {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return outs
}

// runSeed executes one replication, converting a panic into the outcome's
// error so the worker (and its pool) survives.
func runSeed(ctx context.Context, sc Scenario, seed int64, prepare func(seed int64, sc *Scenario)) (out SeedOutcome) {
	out.Seed = seed
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("seed %d: panic: %v", seed, r)
		}
	}()
	s := sc
	s.Seed = seed
	if prepare != nil {
		prepare(seed, &s)
	}
	out.Result, out.Err = RunCtx(ctx, s)
	if out.Err != nil {
		out.Err = fmt.Errorf("seed %d: %w", seed, out.Err)
	}
	return out
}

// RunReplicated runs the scenario once per seed (bounded-concurrency pool,
// see RunSeeds) and summarizes. On per-seed failures it degrades instead
// of aborting: the returned result summarizes the seeds that succeeded and
// lists the rest in FailedSeeds, and the error is the errors.Join of the
// per-seed errors — so a caller that only checks the error keeps the old
// fail-fast behavior, while callers wanting partial batches inspect both.
func RunReplicated(sc Scenario, seeds []int64) (*ReplicatedResult, error) {
	return RunReplicatedCtx(context.Background(), sc, seeds)
}

// RunReplicatedCtx is RunReplicated with cooperative cancellation:
// cancelling ctx fails the unfinished seeds with ctx's error and returns
// the summaries of the seeds that completed first.
func RunReplicatedCtx(ctx context.Context, sc Scenario, seeds []int64) (*ReplicatedResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w: no seeds", ErrScenario)
	}
	outs := RunSeeds(ctx, sc, seeds)

	var (
		cost, pen, grid, del, adm, backlog, batt, degr []float64
		costT, qbsT, quT, bbsT, buT                    [][]float64
		errs                                           []error
	)
	out := &ReplicatedResult{}
	for _, o := range outs {
		if o.Err != nil {
			out.FailedSeeds = append(out.FailedSeeds, o.Seed)
			errs = append(errs, o.Err)
			continue
		}
		res := o.Result
		cost = append(cost, res.AvgEnergyCost.Value())
		pen = append(pen, res.AvgPenaltyObjective)
		grid = append(grid, res.AvgGridWh.Wh())
		del = append(del, res.DeliveredPkts)
		adm = append(adm, res.AdmittedPkts)
		backlog = append(backlog, res.FinalDataBacklogBS+res.FinalDataBacklogUsers)
		batt = append(batt, (res.FinalBatteryWhBS + res.FinalBatteryWhUsers).Wh())
		degr = append(degr, float64(res.DegradedSlots))
		if sc.KeepTraces {
			costT = append(costT, res.CostTrace)
			qbsT = append(qbsT, res.DataBacklogBSTrace)
			quT = append(quT, res.DataBacklogUsersTrace)
			bbsT = append(bbsT, res.BatteryWhBSTrace)
			buT = append(buT, res.BatteryWhUsersTrace)
		}
	}
	out.AvgEnergyCost = stats.Summarize(cost)
	out.AvgPenaltyObjective = stats.Summarize(pen)
	out.AvgGridWh = stats.Summarize(grid)
	out.DeliveredPkts = stats.Summarize(del)
	out.AdmittedPkts = stats.Summarize(adm)
	out.FinalDataBacklog = stats.Summarize(backlog)
	out.FinalBatteryWh = stats.Summarize(batt)
	out.DegradedSlots = stats.Summarize(degr)
	if sc.KeepTraces {
		out.MeanCostTrace = stats.MeanSeries(costT)
		out.MeanDataBacklogBSTrace = stats.MeanSeries(qbsT)
		out.MeanDataBacklogUTrace = stats.MeanSeries(quT)
		out.MeanBatteryWhBSTrace = stats.MeanSeries(bbsT)
		out.MeanBatteryWhUTrace = stats.MeanSeries(buT)
	}
	return out, errors.Join(errs...)
}

// SeedMetrics is the compact per-replication scalar record — the unit
// cmd/sweep checkpoints to its -resume JSONL file (docs/ROBUSTNESS.md), so
// completed (scenario, seed) cells survive a crash or cancellation.
type SeedMetrics struct {
	Seed                int64   `json:"seed"`
	AvgEnergyCost       float64 `json:"avg_energy_cost"`
	AvgPenaltyObjective float64 `json:"avg_penalty_objective"`
	AvgGridWh           float64 `json:"avg_grid_wh"`
	DeliveredPkts       float64 `json:"delivered_pkts"`
	AdmittedPkts        float64 `json:"admitted_pkts"`
	FinalDataBacklog    float64 `json:"final_data_backlog"`
	FinalBatteryWh      float64 `json:"final_battery_wh"`
	DegradedSlots       int     `json:"degraded_slots"`
}

// MetricsOf extracts the checkpointable scalars of one replication.
func MetricsOf(seed int64, r *Result) SeedMetrics {
	return SeedMetrics{
		Seed:                seed,
		AvgEnergyCost:       r.AvgEnergyCost.Value(),
		AvgPenaltyObjective: r.AvgPenaltyObjective,
		AvgGridWh:           r.AvgGridWh.Wh(),
		DeliveredPkts:       r.DeliveredPkts,
		AdmittedPkts:        r.AdmittedPkts,
		FinalDataBacklog:    r.FinalDataBacklogBS + r.FinalDataBacklogUsers,
		FinalBatteryWh:      (r.FinalBatteryWhBS + r.FinalBatteryWhUsers).Wh(),
		DegradedSlots:       r.DegradedSlots,
	}
}

// SummarizeSeedMetrics folds per-seed records — fresh or reloaded from a
// checkpoint — into the replicated summaries. Traces are not checkpointed,
// so the trace fields stay nil.
func SummarizeSeedMetrics(ms []SeedMetrics) *ReplicatedResult {
	var cost, pen, grid, del, adm, backlog, batt, degr []float64
	for _, m := range ms {
		cost = append(cost, m.AvgEnergyCost)
		pen = append(pen, m.AvgPenaltyObjective)
		grid = append(grid, m.AvgGridWh)
		del = append(del, m.DeliveredPkts)
		adm = append(adm, m.AdmittedPkts)
		backlog = append(backlog, m.FinalDataBacklog)
		batt = append(batt, m.FinalBatteryWh)
		degr = append(degr, float64(m.DegradedSlots))
	}
	return &ReplicatedResult{
		AvgEnergyCost:       stats.Summarize(cost),
		AvgPenaltyObjective: stats.Summarize(pen),
		AvgGridWh:           stats.Summarize(grid),
		DeliveredPkts:       stats.Summarize(del),
		AdmittedPkts:        stats.Summarize(adm),
		FinalDataBacklog:    stats.Summarize(backlog),
		FinalBatteryWh:      stats.Summarize(batt),
		DegradedSlots:       stats.Summarize(degr),
	}
}

// ReplicatedBounds is the seed-averaged Theorem 4/5 sandwich at one V.
type ReplicatedBounds struct {
	V     float64
	Upper stats.Summary
	Lower stats.Summary
}

// BoundsReplicated averages BoundsAt over seeds.
func BoundsReplicated(sc Scenario, v float64, seeds []int64) (ReplicatedBounds, error) {
	if len(seeds) == 0 {
		return ReplicatedBounds{}, fmt.Errorf("%w: no seeds", ErrScenario)
	}
	var uppers, lowers []float64
	for _, seed := range seeds {
		s := sc
		s.Seed = seed
		b, err := BoundsAt(s, v)
		if err != nil {
			return ReplicatedBounds{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		uppers = append(uppers, b.Upper)
		lowers = append(lowers, b.Lower)
	}
	return ReplicatedBounds{
		V:     v,
		Upper: stats.Summarize(uppers),
		Lower: stats.Summarize(lowers),
	}, nil
}

// Seeds returns n consecutive seeds starting at base — a convenience for
// replication sweeps.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
