package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestSpecRoundTrip: a fully-populated spec survives encode → decode
// unchanged, and its JSON carries only set fields.
func TestSpecRoundTrip(t *testing.T) {
	six := 6
	gate := false
	spec := ScenarioSpec{
		Preset:          "urban",
		Architecture:    "onehop-r",
		Scheduler:       "greedy",
		V:               5e5,
		Lambda:          0.001,
		SlotSeconds:     30,
		Slots:           50,
		Seed:            7,
		Users:           12,
		Sessions:        3,
		UplinkSessions:  1,
		Neighbors:       &six,
		EnergyGate:      &gate,
		TrackDelay:      true,
		CheckInvariants: true,
		FaultProb:       0.01,
		Faults:          map[string]float64{"s1_infeasible": 0.5},
		BudgetIters:     2000,
		SlotDeadlineMS:  250,
	}
	data, err := EncodeSpec(spec)
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	back, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", spec, back)
	}

	// The zero spec encodes to the empty object: unset fields stay unset.
	data, err = EncodeSpec(ScenarioSpec{})
	if err != nil {
		t.Fatalf("EncodeSpec zero: %v", err)
	}
	if string(data) != "{}" {
		t.Fatalf("zero spec encodes to %s, want {}", data)
	}
}

// TestSpecScenarioMatchesHandBuilt: materializing a spec produces the same
// simulation as configuring the Scenario by hand — results are compared,
// since Scenario holds funcs that defeat DeepEqual.
func TestSpecScenarioMatchesHandBuilt(t *testing.T) {
	spec := ScenarioSpec{Preset: "paper", Slots: 8, Seed: 3, V: 2e5}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	got, err := Run(sc)
	if err != nil {
		t.Fatalf("Run(spec scenario): %v", err)
	}

	want := Paper()
	want.Slots = 8
	want.Seed = 3
	want.V = 2e5
	want.KeepTraces = false
	ref, err := Run(want)
	if err != nil {
		t.Fatalf("Run(hand-built): %v", err)
	}
	if got.AvgEnergyCost != ref.AvgEnergyCost ||
		got.DeliveredPkts != ref.DeliveredPkts ||
		got.AdmittedPkts != ref.AdmittedPkts {
		t.Fatalf("spec scenario diverges from hand-built: got %+v, want %+v", got, ref)
	}
}

// TestSpecDefaultsArePreset: the zero spec is the paper scenario (traces
// off), and unset fields keep preset values after an overlay.
func TestSpecDefaultsArePreset(t *testing.T) {
	sc, err := ScenarioSpec{}.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	ref := Paper()
	if sc.V != ref.V || sc.Lambda != ref.Lambda || sc.Slots != ref.Slots ||
		sc.Seed != ref.Seed || sc.NumSessions != ref.NumSessions ||
		sc.Topology.NumUsers != ref.Topology.NumUsers ||
		sc.Topology.MaxNeighbors != ref.Topology.MaxNeighbors {
		t.Fatalf("zero spec is not the paper preset: %+v", sc)
	}
	if sc.KeepTraces {
		t.Fatal("spec scenarios must not keep traces by default")
	}

	sc, err = ScenarioSpec{Preset: "urban", Slots: 9}.Scenario()
	if err != nil {
		t.Fatalf("urban: %v", err)
	}
	if sc.NumSessions != Urban().NumSessions || sc.Slots != 9 {
		t.Fatalf("overlay clobbered preset defaults: sessions=%d slots=%d", sc.NumSessions, sc.Slots)
	}
}

// TestSpecValidationNamesField: every rejection wraps ErrSpec and names
// the offending field.
func TestSpecValidationNamesField(t *testing.T) {
	cases := []struct {
		spec  ScenarioSpec
		field string
	}{
		{ScenarioSpec{Preset: "nope"}, "preset"},
		{ScenarioSpec{Architecture: "mesh"}, "architecture"},
		{ScenarioSpec{Scheduler: "oracle"}, "scheduler"},
		{ScenarioSpec{V: -1}, "v"},
		{ScenarioSpec{Lambda: -0.1}, "lambda"},
		{ScenarioSpec{SlotSeconds: -2}, "slot_seconds"},
		{ScenarioSpec{Slots: -1}, "slots"},
		{ScenarioSpec{Users: -1}, "users"},
		{ScenarioSpec{Sessions: -1}, "sessions"},
		{ScenarioSpec{UplinkSessions: -1}, "uplink_sessions"},
		{ScenarioSpec{FaultProb: 1.5}, "fault_prob"},
		{ScenarioSpec{Faults: map[string]float64{"bogus_site": 0.1}}, "faults"},
		{ScenarioSpec{Faults: map[string]float64{"latency": 2}}, "faults"},
		{ScenarioSpec{BudgetIters: -1}, "budget_iters"},
		{ScenarioSpec{SlotDeadlineMS: -1}, "slot_deadline_ms"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("spec %+v: expected a validation error naming %q", c.spec, c.field)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("spec %+v: error %v does not wrap ErrSpec", c.spec, err)
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("spec %+v: error %q does not name field %q", c.spec, err, c.field)
		}
	}
}

// TestDecodeSpecRejectsUnknownFields: a typoed knob fails loudly.
func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSpec([]byte(`{"slotz": 10}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !errors.Is(err, ErrSpec) {
		t.Fatalf("error %v does not wrap ErrSpec", err)
	}
	if !strings.Contains(err.Error(), "slotz") {
		t.Fatalf("error %q does not name the unknown field", err)
	}

	// Invalid values are caught at decode time too.
	if _, err := DecodeSpec([]byte(`{"slots": -3}`)); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Fatalf("decode of invalid spec: err = %v, want one naming slots", err)
	}
}

// TestSpecFaultsAndBudget: the fault and budget knobs reach the scenario.
func TestSpecFaultsAndBudget(t *testing.T) {
	spec := ScenarioSpec{
		FaultProb:      0.02,
		Faults:         map[string]float64{"latency": 0.5},
		BudgetIters:    123,
		SlotDeadlineMS: 40,
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if sc.Faults == nil {
		t.Fatal("faults not enabled")
	}
	if p := sc.Faults.Probability["latency"]; p != 0.5 {
		t.Fatalf("latency probability = %g, want the per-site override 0.5", p)
	}
	if p := sc.Faults.Probability["s2_fail"]; p != 0.02 {
		t.Fatalf("s2_fail probability = %g, want the uniform 0.02", p)
	}
	if sc.Budget.MaxLPIterations != 123 {
		t.Fatalf("MaxLPIterations = %d, want 123", sc.Budget.MaxLPIterations)
	}
	if ms := sc.Budget.SlotDeadline.Milliseconds(); ms != 40 {
		t.Fatalf("SlotDeadline = %v, want 40ms", sc.Budget.SlotDeadline)
	}
}

// TestSpecDistRoundTrip: the distributed-runner knobs survive the wire,
// materialize onto the Scenario, and are validated — net_* knobs without
// dist, out-of-range probabilities, and dist+track_delay all fail with
// the offending field named.
func TestSpecDistRoundTrip(t *testing.T) {
	spec := ScenarioSpec{
		Preset:        "paper",
		Slots:         20,
		Dist:          true,
		NetLoss:       0.05,
		NetLatency:    0.1,
		NetLatencyMax: 2,
		NetDup:        0.01,
		NetReorder:    1,
		NetPartition:  []int{3, 5},
	}
	data, err := EncodeSpec(spec)
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	back, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", spec, back)
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if !sc.Dist || sc.NetLoss != 0.05 || sc.NetLatency != 0.1 || sc.NetLatencyMax != 2 ||
		sc.NetDup != 0.01 || sc.NetReorder != 1 || !reflect.DeepEqual(sc.NetPartition, []int{3, 5}) {
		t.Errorf("spec did not materialize onto the scenario: %+v", sc)
	}

	for field, bad := range map[string]ScenarioSpec{
		"net_loss":        {Dist: true, NetLoss: 1.5},
		"net_latency":     {Dist: true, NetLatency: -0.1},
		"net_dup":         {Dist: true, NetDup: 2},
		"net_latency_max": {Dist: true, NetLatencyMax: -1},
		"net_reorder":     {Dist: true, NetReorder: -2},
		"net_partition":   {Dist: true, NetPartition: []int{-1}},
		"dist":            {NetLoss: 0.1}, // net_* without dist
	} {
		err := bad.Validate()
		if err == nil {
			t.Errorf("%s: invalid spec accepted: %+v", field, bad)
			continue
		}
		if !errors.Is(err, ErrSpec) || !strings.Contains(err.Error(), field) {
			t.Errorf("%s: error %q does not name the field", field, err)
		}
	}
	if err := (ScenarioSpec{Dist: true, TrackDelay: true}).Validate(); err == nil {
		t.Errorf("dist+track_delay accepted")
	}
}
