package sim

import (
	"math"
	"testing"

	"greencell/internal/core"
	"greencell/internal/sched"
)

// fastScenario shrinks the paper scenario for test speed.
func fastScenario() Scenario {
	sc := Paper()
	sc.Topology.NumUsers = 8
	sc.Topology.MaxNeighbors = 4
	sc.NumSessions = 2
	sc.Slots = 40
	return sc
}

func TestRunPaperScenarioSmall(t *testing.T) {
	sc := fastScenario()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgEnergyCost < 0 {
		t.Errorf("negative average cost %v", res.AvgEnergyCost)
	}
	if res.B <= 0 {
		t.Errorf("B = %v, want positive", res.B)
	}
	if res.AdmittedPkts <= 0 || res.DeliveredPkts <= 0 {
		t.Errorf("no traffic moved: admitted %v delivered %v", res.AdmittedPkts, res.DeliveredPkts)
	}
	if res.DeliveredPkts > res.AdmittedPkts+1e-6 {
		t.Errorf("delivered %v exceeds admitted %v", res.DeliveredPkts, res.AdmittedPkts)
	}
	if res.DeficitWh > 1e-6 {
		t.Errorf("energy deficit %v with gate enabled", res.DeficitWh)
	}
	for name, trace := range map[string][]float64{
		"cost":    res.CostTrace,
		"penalty": res.PenaltyTrace,
		"qbs":     res.DataBacklogBSTrace,
		"qusers":  res.DataBacklogUsersTrace,
		"bbs":     res.BatteryWhBSTrace,
		"busers":  res.BatteryWhUsersTrace,
		"virtual": res.VirtualBacklogTrace,
		"grid":    res.GridWhTrace,
	} {
		if len(trace) != sc.Slots {
			t.Errorf("trace %q has %d points, want %d", name, len(trace), sc.Slots)
		}
	}
	if res.FinalBatteryWhBS.Wh() != res.BatteryWhBSTrace[sc.Slots-1] {
		t.Error("final battery does not match trace end")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := fastScenario()
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgEnergyCost != b.AvgEnergyCost || a.DeliveredPkts != b.DeliveredPkts {
		t.Error("same scenario, different results")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	sc := fastScenario()
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 2
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgEnergyCost == b.AvgEnergyCost && a.DeliveredPkts == b.DeliveredPkts {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestNoTraces(t *testing.T) {
	sc := fastScenario()
	sc.KeepTraces = false
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostTrace != nil || res.DataBacklogBSTrace != nil {
		t.Error("traces retained despite KeepTraces=false")
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := fastScenario()
	sc.Slots = 0
	if _, err := Run(sc); err == nil {
		t.Error("zero slots accepted")
	}
	sc = fastScenario()
	sc.NumSessions = 0
	if _, err := Run(sc); err == nil {
		t.Error("zero sessions accepted")
	}
}

func TestArchitectureHelpers(t *testing.T) {
	tests := []struct {
		a         Architecture
		oneHop    bool
		renewable bool
	}{
		{Proposed, false, true},
		{MultiHopNoRenewable, false, false},
		{OneHopRenewable, true, true},
		{OneHopNoRenewable, true, false},
	}
	for _, tt := range tests {
		if tt.a.OneHop() != tt.oneHop || tt.a.Renewable() != tt.renewable {
			t.Errorf("%v: OneHop/Renewable = %v/%v, want %v/%v",
				tt.a, tt.a.OneHop(), tt.a.Renewable(), tt.oneHop, tt.renewable)
		}
		if tt.a.String() == "" {
			t.Errorf("empty String for %v", int(tt.a))
		}
	}
}

func TestBoundsSandwich(t *testing.T) {
	sc := fastScenario()
	b, err := BoundsAt(sc, 5e5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower > b.Upper {
		t.Errorf("lower bound %v above upper bound %v", b.Lower, b.Upper)
	}
	if b.V != 5e5 {
		t.Errorf("V = %v", b.V)
	}
}

func TestBoundsTightenWithV(t *testing.T) {
	sc := fastScenario()
	bounds, err := SweepV(sc, []float64{1e5, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	gapSmallV := bounds[0].Upper - bounds[0].Lower
	gapLargeV := bounds[1].Upper - bounds[1].Lower
	if gapLargeV >= gapSmallV {
		t.Errorf("bound gap did not shrink with V: %v -> %v", gapSmallV, gapLargeV)
	}
}

func TestArchitectureOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	sc := Paper()
	sc.Topology.NumUsers = 12
	sc.NumSessions = 3
	sc.Slots = 60
	sc.KeepTraces = false
	costs, err := CompareArchitectures(sc, []float64{1e5})
	if err != nil {
		t.Fatal(err)
	}
	byArch := map[Architecture]float64{}
	for _, c := range costs {
		byArch[c.Architecture] = c.AvgCost.Value()
	}
	// Renewable integration must pay off in both routing modes.
	if byArch[Proposed] >= byArch[MultiHopNoRenewable] {
		t.Errorf("renewable did not help multi-hop: %v vs %v",
			byArch[Proposed], byArch[MultiHopNoRenewable])
	}
	if byArch[OneHopRenewable] >= byArch[OneHopNoRenewable] {
		t.Errorf("renewable did not help one-hop: %v vs %v",
			byArch[OneHopRenewable], byArch[OneHopNoRenewable])
	}
	// The proposed system must beat the fully-traditional architecture by a
	// wide margin (the paper's headline comparison).
	if byArch[Proposed] >= 0.5*byArch[OneHopNoRenewable] {
		t.Errorf("proposed %v not clearly below one-hop w/o renewable %v",
			byArch[Proposed], byArch[OneHopNoRenewable])
	}
}

func TestRelaxedSchedulerRuns(t *testing.T) {
	sc := fastScenario()
	sc.Scheduler = sched.Relaxed{}
	sc.KeepTraces = false
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.AvgPenaltyObjective) {
		t.Error("NaN penalty objective")
	}
}

func TestStableDataBacklogHelper(t *testing.T) {
	r := &Result{}
	if r.StableDataBacklog(10) {
		t.Error("nil traces should not be stable")
	}
	r.DataBacklogBSTrace = make([]float64, 100)
	r.DataBacklogUsersTrace = make([]float64, 100)
	for i := range r.DataBacklogBSTrace {
		r.DataBacklogBSTrace[i] = 50   // flat
		r.DataBacklogUsersTrace[i] = 3 // flat
	}
	if !r.StableDataBacklog(10) {
		t.Error("flat traces should be stable")
	}
	for i := range r.DataBacklogBSTrace {
		r.DataBacklogBSTrace[i] = float64(i) * 100 // steep growth
	}
	if r.StableDataBacklog(1) {
		t.Error("steeply growing trace should not be stable")
	}
}

func TestUplinkScenario(t *testing.T) {
	sc := fastScenario()
	sc.UplinkSessions = 2
	sc.Slots = 20
	sc.TrackDelay = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPkts <= 0 {
		t.Error("mixed-traffic scenario delivered nothing")
	}
}

func TestBuildErrorPropagates(t *testing.T) {
	sc := fastScenario()
	sc.Topology.BSPositions = nil
	if _, err := Run(sc); err == nil {
		t.Error("broken topology accepted")
	}
	if _, err := BoundsAt(sc, 1e5); err == nil {
		t.Error("BoundsAt should propagate build errors")
	}
	if _, err := CompareArchitectures(sc, []float64{1e5}); err == nil {
		t.Error("CompareArchitectures should propagate build errors")
	}
	if _, err := SweepV(sc, []float64{1e5}); err == nil {
		t.Error("SweepV should propagate build errors")
	}
	if _, err := RunReplicated(sc, Seeds(1, 2)); err == nil {
		t.Error("RunReplicated should propagate build errors")
	}
	if _, err := BoundsReplicated(sc, 1e5, Seeds(1, 2)); err == nil {
		t.Error("BoundsReplicated should propagate build errors")
	}
}

func TestSlotHookObservesEverySlot(t *testing.T) {
	sc := fastScenario()
	sc.Slots = 12
	seen := 0
	sc.SlotHook = func(sr *core.SlotResult) {
		if sr.Slot != seen {
			t.Errorf("hook slot %d, want %d", sr.Slot, seen)
		}
		seen++
	}
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	if seen != sc.Slots {
		t.Errorf("hook saw %d slots, want %d", seen, sc.Slots)
	}
}
