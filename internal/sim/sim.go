// Package sim runs end-to-end simulations of the paper's system: it builds
// a topology and traffic from a seeded scenario, steps the drift-plus-
// penalty controller for T slots, and collects the metric series behind
// every panel of the paper's Figure 2. It also implements the baseline
// architectures of Fig. 2(f), the relaxed lower-bound run of Theorem 5
// (BoundsAt computes the ψ*_P3̄ − B/V sandwich on ψ*_P1), multi-seed
// replication with confidence intervals, and the Recorder that streams
// the per-slot metrics schema of docs/METRICS.md.
package sim

import (
	"context"
	"errors"
	"fmt"

	"greencell/internal/core"
	"greencell/internal/energy"
	"greencell/internal/faultinject"
	"greencell/internal/invariant"
	"greencell/internal/machine"
	"greencell/internal/queueing"
	"greencell/internal/rng"
	"greencell/internal/sched"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// Architecture selects one of the four network designs compared in the
// paper's Fig. 2(f).
type Architecture int

// Architectures.
const (
	// Proposed is the paper's system: multi-hop with renewable energy.
	Proposed Architecture = iota
	// MultiHopNoRenewable disables every renewable source.
	MultiHopNoRenewable
	// OneHopRenewable restricts links to base-station transmissions.
	OneHopRenewable
	// OneHopNoRenewable applies both restrictions.
	OneHopNoRenewable
)

// String implements fmt.Stringer.
func (a Architecture) String() string {
	switch a {
	case Proposed:
		return "multi-hop + renewable (proposed)"
	case MultiHopNoRenewable:
		return "multi-hop w/o renewable"
	case OneHopRenewable:
		return "one-hop w/ renewable"
	case OneHopNoRenewable:
		return "one-hop w/o renewable"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// OneHop reports whether a restricts routing to single-hop.
func (a Architecture) OneHop() bool {
	return a == OneHopRenewable || a == OneHopNoRenewable
}

// Renewable reports whether a keeps renewable sources.
func (a Architecture) Renewable() bool {
	return a == Proposed || a == OneHopRenewable
}

// Scenario fully describes one simulation run.
//
// The plain fields carry JSON tags so a scenario's knobs serialize with
// stable snake_case names, but a Scenario does not round-trip through JSON
// on its own: Topology, Cost, Scheduler, and SlotHook hold interfaces and
// closures and are excluded. The serializable wire form is ScenarioSpec
// (spec.go) — a preset name plus overrides — which greencelld jobs and
// other cross-process consumers use.
type Scenario struct {
	// Topology is the physical layout blueprint. It embeds interface-typed
	// processes (renewables, band widths) and is not serializable; wire
	// consumers reach it through a ScenarioSpec preset plus overrides.
	Topology topology.Config `json:"-"`
	// NumSessions is S; destinations are random distinct users.
	NumSessions int `json:"sessions"`
	// UplinkSessions appends this many uplink (user → any BS) sessions —
	// an extension; the paper models downlink only.
	UplinkSessions int `json:"uplink_sessions,omitempty"`
	// V is the drift-plus-penalty weight; Lambda the admission reward λ.
	V      float64 `json:"v"`
	Lambda float64 `json:"lambda"`
	// SlotSeconds is Δt; Slots is the horizon T.
	SlotSeconds float64 `json:"slot_seconds"`
	Slots       int     `json:"slots"`
	// Seed drives all randomness; equal seeds give identical topologies,
	// traffic, and environment draws across runs (common random numbers).
	Seed int64 `json:"seed"`
	// Cost is f (nil = the paper's quadratic).
	Cost energy.CostFunc `json:"-"`
	// Scheduler solves S1 (nil = the paper's sequential-fix).
	Scheduler sched.Scheduler `json:"-"`
	// EnergyGate keeps energy-starved nodes out of the schedule.
	EnergyGate bool `json:"energy_gate,omitempty"`
	// Architecture selects the Fig. 2(f) variant.
	Architecture Architecture `json:"architecture,omitempty"`
	// KeepTraces retains per-slot series for the time-series figures.
	KeepTraces bool `json:"keep_traces,omitempty"`
	// TrackDelay enables exact per-packet delivery-delay accounting.
	TrackDelay bool `json:"track_delay,omitempty"`
	// AuditDrift enables the per-slot Lemma 1 drift audit; violations are
	// counted in Result.AuditViolations.
	AuditDrift bool `json:"audit_drift,omitempty"`
	// CheckInvariants validates every slot against the paper's per-slot
	// constraints (internal/invariant, docs/ANALYSIS.md); the first
	// violation aborts the run with a *invariant.Violation naming the
	// slot, node, and equation. Tests and fuzzing turn it on.
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// Instrument fills SlotResult.Stages with per-stage wall times and LP
	// work counts each slot (see core.Config.Instrument). Recorder.Attach
	// sets it; SlotHook consumers read the breakdown.
	Instrument bool `json:"instrument,omitempty"`
	// WarmStartLP carries LP warm-start state across slots (see
	// core.Config.WarmStartLP and docs/PERFORMANCE.md): much faster on the
	// LP-heavy schedulers, but allowed to land on different degenerate
	// vertices than the cold path, so the golden fixture leaves it off.
	WarmStartLP bool `json:"warm_start_lp,omitempty"`
	// SlotHook, when non-nil, observes every slot result as the run
	// progresses (trace recording, live dashboards). The pointee must not
	// be retained past the call.
	SlotHook func(*core.SlotResult) `json:"-"`
	// Faults, when non-nil, enables deterministic fault injection at the
	// configured per-site probabilities (internal/faultinject). The
	// injector is seeded from Seed, so a faulty run reproduces
	// bit-identically. Failed stages degrade to their safe actions
	// (docs/ROBUSTNESS.md) instead of aborting the run.
	Faults *faultinject.Config `json:"faults,omitempty"`
	// Budget bounds each slot's solve work (iteration caps, wall-clock
	// deadline); see core.SolveBudget. The zero value imposes none.
	Budget core.SolveBudget `json:"budget,omitempty"`

	// Dist runs the distributed controller (internal/machine,
	// docs/DISTRIBUTED.md) instead of the monolith: per-node machines
	// exchanging typed messages over a simulated network whose delivery
	// model the Net* fields parameterize. Under the zero-valued (perfect)
	// model the run is byte-identical to the monolith — the fidelity
	// gate.
	Dist bool `json:"dist,omitempty"`
	// NetLoss is the per-message control-plane loss probability.
	NetLoss float64 `json:"net_loss,omitempty"`
	// NetLatency is the per-message delay probability; a delayed message
	// arrives 1..NetLatencyMax protocol ticks late (0 reads as 1).
	NetLatency    float64 `json:"net_latency,omitempty"`
	NetLatencyMax int     `json:"net_latency_max,omitempty"`
	// NetDup is the per-message duplication probability.
	NetDup float64 `json:"net_dup,omitempty"`
	// NetReorder jitters within-tick delivery order by up to this many
	// sequence positions.
	NetReorder int `json:"net_reorder,omitempty"`
	// NetPartition lists node IDs replaced by machine.OfflineMachine —
	// dead nodes the coordinator never hears from again.
	NetPartition []int `json:"net_partition,omitempty"`
	// NetHook, when non-nil, observes every slot's network statistics
	// (message counts, stale views, node clamps). Recorder.Attach chains
	// it to feed the net_* summary counters.
	NetHook func(machine.SlotNetStats) `json:"-"`
}

// Paper returns the scenario of the paper's Section VI: its topology and
// spectrum, 4 sessions of 100 Kbps, V = 1e5, T = 100 one-minute slots.
func Paper() Scenario {
	return Scenario{
		Topology:    topology.Paper(),
		NumSessions: 4,
		V:           1e5,
		Lambda:      0.0006,
		SlotSeconds: 60,
		Slots:       100,
		Seed:        1,
		Cost:        energy.PaperCost(),
		EnergyGate:  true,
		KeepTraces:  true,
	}
}

// Result aggregates one run.
type Result struct {
	// AvgEnergyCost is the time-averaged f(P(t)) — the headline metric.
	AvgEnergyCost units.Cost
	// AvgPenaltyObjective is the time-averaged f(P(t)) − λ·Σ k_s(t), the
	// quantity the Theorem 4/5 bounds speak about. It mixes cost units
	// with the reward term, so it stays a bare float64.
	AvgPenaltyObjective float64
	// AvgGridWh is the time-averaged total grid draw.
	AvgGridWh units.Energy
	// AvgTxEnergyWh is the time-averaged transmission+reception energy.
	AvgTxEnergyWh units.Energy
	// DeliveredPkts / AdmittedPkts are totals over the horizon.
	DeliveredPkts, AdmittedPkts float64
	// DeficitWh is the total unserved energy (0 in normal operation).
	DeficitWh units.Energy
	// AvgDelayEstSlots estimates the mean packet delay in slots via
	// Little's law: time-averaged total data backlog over the delivery
	// rate. Together with AvgEnergyCost it traces the paper's O(1/V)-cost
	// versus O(V)-delay tradeoff.
	AvgDelayEstSlots float64
	// ExactDelayMeanSlots and ExactDelayMaxSlots are the packet-weighted
	// delivery-delay statistics over all sessions (0 unless
	// Scenario.TrackDelay). ExactDelayP95Slots is the worst per-session
	// 95th-percentile delay.
	ExactDelayMeanSlots, ExactDelayMaxSlots float64
	ExactDelayP95Slots                      float64
	// AuditViolations counts slots whose Lemma 1 drift audit failed
	// (0 expected; only populated when Scenario.AuditDrift).
	AuditViolations int
	// B is the drift constant; LowerBoundCorrection is B/V.
	B float64
	// FinalDataBacklog etc. are end-of-run queue aggregates.
	FinalDataBacklogBS, FinalDataBacklogUsers float64
	FinalBatteryWhBS, FinalBatteryWhUsers     units.Energy

	// Net reports a distributed run's network statistics and ground
	// truth (nil for monolithic runs). The headline metrics above are
	// the coordinator's view — the embedded controller computes them —
	// while Net's True* fields are physical node-side truth; under a
	// perfect network the two coincide exactly.
	Net *machine.NetReport

	// DegradedSlots counts slots where at least one stage fell back to
	// its safe action (docs/ROBUSTNESS.md); DegradedByCause breaks the
	// count down per cause label (nil when no slot degraded).
	DegradedSlots   int
	DegradedByCause map[string]int
	// MaxDegradedStreak is the longest run of consecutive degraded slots.
	MaxDegradedStreak int

	// Per-slot traces (nil unless Scenario.KeepTraces).
	CostTrace, PenaltyTrace                   []float64
	DataBacklogBSTrace, DataBacklogUsersTrace []float64
	BatteryWhBSTrace, BatteryWhUsersTrace     []float64
	VirtualBacklogTrace                       []float64
	GridWhTrace                               []float64
}

// StableDataBacklog reports whether the retained backlog series look
// strongly stable: the tail slope must be far below one packet per slot of
// residual growth relative to the demand scale.
func (r *Result) StableDataBacklog(demandPktsPerSlot float64) bool {
	if r.DataBacklogBSTrace == nil {
		return false
	}
	n := len(r.DataBacklogBSTrace)
	tail := n / 2
	slopeBS := queueing.Slope(r.DataBacklogBSTrace[tail:])
	slopeU := queueing.Slope(r.DataBacklogUsersTrace[tail:])
	return slopeBS < demandPktsPerSlot && slopeU < demandPktsPerSlot
}

// ErrScenario reports an invalid scenario.
var ErrScenario = errors.New("sim: invalid scenario")

// buildConfig materializes the scenario's network, traffic model, and
// controller configuration — everything short of constructing a
// controller. Build feeds it to core.New; the distributed runner
// (dist.go) feeds it to machine.NewDeployment instead.
func buildConfig(sc Scenario) (core.Config, *topology.Network, *traffic.Model, error) {
	if sc.Slots <= 0 {
		return core.Config{}, nil, nil, fmt.Errorf("%w: Slots = %d", ErrScenario, sc.Slots)
	}
	if sc.NumSessions <= 0 {
		return core.Config{}, nil, nil, fmt.Errorf("%w: NumSessions = %d", ErrScenario, sc.NumSessions)
	}
	src := rng.New(sc.Seed)

	tcfg := sc.Topology
	tcfg.OneHopOnly = tcfg.OneHopOnly || sc.Architecture.OneHop()
	if !sc.Architecture.Renewable() {
		tcfg.UserSpec.Renewable = energy.Off{}
		tcfg.BSSpec.Renewable = energy.Off{}
	}
	net, err := topology.Build(tcfg, src.Split("topology"))
	if err != nil {
		return core.Config{}, nil, nil, err
	}
	tm := traffic.PaperSessions(sc.NumSessions, net.Users(), sc.SlotSeconds, src.Split("traffic"))
	if sc.UplinkSessions > 0 {
		tm.Sessions = append(tm.Sessions, traffic.UplinkSessions(
			sc.UplinkSessions, net.Users(), sc.SlotSeconds, len(tm.Sessions), src.Split("uplink"))...)
	}

	cost := sc.Cost
	if cost == nil {
		cost = energy.PaperCost()
	}
	// The invariant checker is stateful (cumulative (18) ledger), so each
	// controller gets its own instance.
	var check func(*core.SlotCheck) error
	if sc.CheckInvariants {
		check = invariant.New().Check
	}
	var inj *faultinject.Injector
	if sc.Faults != nil {
		inj, err = faultinject.New(rng.New(sc.Seed).Split("faults"), *sc.Faults)
		if err != nil {
			return core.Config{}, nil, nil, err
		}
	}
	return core.Config{
		Net:         net,
		Traffic:     tm,
		V:           sc.V,
		Lambda:      sc.Lambda,
		SlotSeconds: sc.SlotSeconds,
		Cost:        cost,
		Scheduler:   sc.Scheduler,
		EnergyGate:  sc.EnergyGate,
		TrackDelay:  sc.TrackDelay,
		AuditDrift:  sc.AuditDrift,
		Instrument:  sc.Instrument,
		WarmStartLP: sc.WarmStartLP,
		Check:       check,
		Faults:      inj,
		Budget:      sc.Budget,
	}, net, tm, nil
}

// Build materializes the scenario's network, traffic, and controller so
// callers (tests, benchmarks) can inspect them before running.
func Build(sc Scenario) (*core.Controller, *topology.Network, *traffic.Model, error) {
	cfg, net, tm, err := buildConfig(sc)
	if err != nil {
		return nil, nil, nil, err
	}
	ctrl, err := core.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return ctrl, net, tm, nil
}

// Run executes the scenario and aggregates its metrics.
func Run(sc Scenario) (*Result, error) {
	return RunCtx(context.Background(), sc)
}

// RunCtx is Run with cooperative cancellation: the slot loop checks ctx
// between slots and returns ctx's error (and no Result) once cancelled.
// Scenarios with Dist set run on the distributed controller (dist.go).
func RunCtx(ctx context.Context, sc Scenario) (*Result, error) {
	if sc.Dist {
		return DistRunCtx(ctx, sc)
	}
	ctrl, _, tm, err := Build(sc)
	if err != nil {
		return nil, err
	}
	slotSrc := rng.New(sc.Seed).Split("slots")
	return collect(ctx, sc, tm, ctrl, func() (*core.SlotResult, error) {
		return ctrl.Step(slotSrc)
	})
}

// collect drives the slot loop through step and aggregates the run's
// metrics — shared verbatim by the monolithic and distributed runners,
// so the two architectures are aggregated identically.
func collect(ctx context.Context, sc Scenario, tm *traffic.Model, ctrl *core.Controller,
	step func() (*core.SlotResult, error)) (*Result, error) {
	res := &Result{B: ctrl.B()}
	costT := queueing.NewTracker(sc.KeepTraces)
	penT := queueing.NewTracker(sc.KeepTraces)
	gridT := queueing.NewTracker(sc.KeepTraces)
	qbsT := queueing.NewTracker(sc.KeepTraces)
	quT := queueing.NewTracker(sc.KeepTraces)
	bbsT := queueing.NewTracker(sc.KeepTraces)
	buT := queueing.NewTracker(sc.KeepTraces)
	hT := queueing.NewTracker(sc.KeepTraces)

	var last *core.SlotResult
	txSum := 0.0
	streak := 0
	for t := 0; t < sc.Slots; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("slot %d: %w", t, err)
		}
		sr, err := step()
		if err != nil {
			return nil, err
		}
		last = sr
		if sr.Degraded {
			res.DegradedSlots++
			streak++
			if streak > res.MaxDegradedStreak {
				res.MaxDegradedStreak = streak
			}
			if res.DegradedByCause == nil {
				res.DegradedByCause = make(map[string]int)
			}
			for _, cause := range sr.DegradedCauses {
				res.DegradedByCause[cause]++
			}
		} else {
			streak = 0
		}
		if sc.SlotHook != nil {
			sc.SlotHook(sr)
		}
		txSum += sr.TxEnergyWh.Wh()
		costT.Observe(sr.EnergyCost.Value())
		penT.Observe(sr.PenaltyObjective)
		gridT.Observe(sr.GridWh.Wh())
		qbsT.Observe(sr.DataBacklogBS)
		quT.Observe(sr.DataBacklogUsers)
		bbsT.Observe(sr.BatteryWhBS.Wh())
		buT.Observe(sr.BatteryWhUsers.Wh())
		hT.Observe(sr.VirtualBacklogH)
		for _, d := range sr.DeliveredPkts {
			res.DeliveredPkts += d
		}
		res.AdmittedPkts += sr.AdmittedPkts
		res.DeficitWh += sr.DeficitWh
		if sr.Audit != nil && !sr.Audit.Holds() {
			res.AuditViolations++
		}
	}

	res.AvgEnergyCost = units.CostOf(costT.TimeAverage())
	res.AvgPenaltyObjective = penT.TimeAverage()
	res.AvgGridWh = units.Wh(gridT.TimeAverage())
	res.AvgTxEnergyWh = units.Wh(txSum / float64(sc.Slots))
	if rate := res.DeliveredPkts / float64(sc.Slots); rate > 0 {
		res.AvgDelayEstSlots = (qbsT.TimeAverage() + quT.TimeAverage()) / rate
	}
	if sc.TrackDelay {
		var sumWeighted, count, maxD, maxP95 float64
		// Iterate the materialized sessions, not the requested counts:
		// PaperSessions caps the session count at the number of users.
		for s := 0; s < len(tm.Sessions); s++ {
			mean, max, delivered := ctrl.SessionDelay(s)
			sumWeighted += mean * delivered
			count += delivered
			if max > maxD {
				maxD = max
			}
			if p95 := ctrl.SessionDelayQuantile(s, 0.95); p95 > maxP95 {
				maxP95 = p95
			}
		}
		if count > 0 {
			res.ExactDelayMeanSlots = sumWeighted / count
		}
		res.ExactDelayMaxSlots = maxD
		res.ExactDelayP95Slots = maxP95
	}
	res.FinalDataBacklogBS = last.DataBacklogBS
	res.FinalDataBacklogUsers = last.DataBacklogUsers
	res.FinalBatteryWhBS = last.BatteryWhBS
	res.FinalBatteryWhUsers = last.BatteryWhUsers
	if sc.KeepTraces {
		res.CostTrace = costT.Trace()
		res.PenaltyTrace = penT.Trace()
		res.GridWhTrace = gridT.Trace()
		res.DataBacklogBSTrace = qbsT.Trace()
		res.DataBacklogUsersTrace = quT.Trace()
		res.BatteryWhBSTrace = bbsT.Trace()
		res.BatteryWhUsersTrace = buT.Trace()
		res.VirtualBacklogTrace = hT.Trace()
	}
	return res, nil
}

// Bounds holds the Theorem 4/5 sandwich for one V.
type Bounds struct {
	V float64
	// Upper is ψ_P3: the proposed algorithm's time-averaged penalty
	// objective (Theorem 4 upper-bounds ψ*_P1 by it).
	Upper float64
	// Lower is ψ*_P3̄ − B/V from the relaxed run (Theorem 5).
	Lower float64
	// UpperEnergyCost / LowerEnergyCost are the raw f(P) averages of the
	// two runs, for reporting.
	UpperEnergyCost, LowerEnergyCost units.Cost
}

// BoundsAt runs the proposed controller and the relaxed lower-bound
// controller with common random numbers and returns the bound pair.
func BoundsAt(sc Scenario, v float64) (Bounds, error) {
	sc.V = v

	upper := sc
	upper.KeepTraces = false
	ur, err := Run(upper)
	if err != nil {
		return Bounds{}, fmt.Errorf("upper bound run: %w", err)
	}

	lower := sc
	lower.KeepTraces = false
	lower.Scheduler = sched.Relaxed{}
	lr, err := Run(lower)
	if err != nil {
		return Bounds{}, fmt.Errorf("lower bound run: %w", err)
	}

	return Bounds{
		V:               v,
		Upper:           ur.AvgPenaltyObjective,
		Lower:           lr.AvgPenaltyObjective - lr.B/v,
		UpperEnergyCost: ur.AvgEnergyCost,
		LowerEnergyCost: lr.AvgEnergyCost,
	}, nil
}

// SweepV computes the bound pair for each V — the series of Fig. 2(a).
func SweepV(sc Scenario, vs []float64) ([]Bounds, error) {
	out := make([]Bounds, 0, len(vs))
	for _, v := range vs {
		b, err := BoundsAt(sc, v)
		if err != nil {
			return nil, fmt.Errorf("V=%g: %w", v, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// ArchitectureCost is one point of Fig. 2(f).
type ArchitectureCost struct {
	Architecture Architecture
	V            float64
	AvgCost      units.Cost
}

// CompareArchitectures runs every architecture at every V with common
// random numbers — the series of Fig. 2(f).
func CompareArchitectures(sc Scenario, vs []float64) ([]ArchitectureCost, error) {
	archs := []Architecture{Proposed, MultiHopNoRenewable, OneHopRenewable, OneHopNoRenewable}
	var out []ArchitectureCost
	for _, a := range archs {
		for _, v := range vs {
			s := sc
			s.Architecture = a
			s.V = v
			s.KeepTraces = false
			r, err := Run(s)
			if err != nil {
				return nil, fmt.Errorf("%v V=%g: %w", a, v, err)
			}
			out = append(out, ArchitectureCost{Architecture: a, V: v, AvgCost: r.AvgEnergyCost})
		}
	}
	return out, nil
}
