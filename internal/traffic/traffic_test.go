package traffic

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func TestDemandPktsPerSlot(t *testing.T) {
	// 150 KB frames at 500 Kbps over a 60 s slot: 25 packets.
	got := DemandPktsPerSlot(DefaultDemandBitsPerSec, 60, DefaultPacketBits)
	if math.Abs(got-25) > 1e-9 {
		t.Errorf("DemandPktsPerSlot = %v, want 25", got)
	}
}

func TestPaperSessions(t *testing.T) {
	users := []int{2, 3, 4, 5, 6, 7}
	m := PaperSessions(4, users, 60, rng.New(1))
	if m.NumSessions() != 4 {
		t.Fatalf("NumSessions = %d, want 4", m.NumSessions())
	}
	if m.PacketBits != DefaultPacketBits {
		t.Errorf("PacketBits = %v", m.PacketBits)
	}
	seen := map[int]bool{}
	valid := map[int]bool{}
	for _, u := range users {
		valid[u] = true
	}
	for _, s := range m.Sessions {
		if !valid[s.Dest] {
			t.Errorf("session %d destination %d not a user", s.ID, s.Dest)
		}
		if seen[s.Dest] {
			t.Errorf("duplicate destination %d", s.Dest)
		}
		seen[s.Dest] = true
		if s.MaxAdmission < s.DemandPkts {
			t.Errorf("session %d cannot sustain demand", s.ID)
		}
	}
	if err := m.Validate(10); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPaperSessionsClampsCount(t *testing.T) {
	m := PaperSessions(10, []int{1, 2}, 60, rng.New(1))
	if m.NumSessions() != 2 {
		t.Fatalf("NumSessions = %d, want clamped 2", m.NumSessions())
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       Model
		nodes   int
		wantErr bool
	}{
		{"ok", Model{PacketBits: 100, Sessions: []Session{{Dest: 1, DemandPkts: 2, MaxAdmission: 2}}}, 3, false},
		{"zero packet bits", Model{Sessions: nil}, 3, true},
		{"dest out of range", Model{PacketBits: 100, Sessions: []Session{{Dest: 9}}}, 3, true},
		{"negative demand", Model{PacketBits: 100, Sessions: []Session{{Dest: 1, DemandPkts: -1}}}, 3, true},
		{"admission below demand", Model{PacketBits: 100, Sessions: []Session{{Dest: 1, DemandPkts: 5, MaxAdmission: 4}}}, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(tt.nodes); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}
