package traffic

import (
	"math"
	"testing"
)

func TestSinusoidFactor(t *testing.T) {
	p := Sinusoid{Amplitude: 0.5, PeriodSlots: 100}
	if got := p.Factor(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Factor(0) = %v, want 1", got)
	}
	if got := p.Factor(25); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Factor(quarter) = %v, want 1.5", got)
	}
	if got := p.Factor(75); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Factor(three-quarter) = %v, want 0.5", got)
	}
	if p.MaxFactor() != 1.5 {
		t.Errorf("MaxFactor = %v", p.MaxFactor())
	}
}

func TestSinusoidClampsAtZero(t *testing.T) {
	p := Sinusoid{Amplitude: 2, PeriodSlots: 4}
	for slot := 0; slot < 8; slot++ {
		if p.Factor(slot) < 0 {
			t.Fatalf("negative factor at slot %d", slot)
		}
	}
}

func TestSinusoidZeroPeriod(t *testing.T) {
	p := Sinusoid{Amplitude: 0.5}
	if got := p.Factor(7); math.Abs(got-1) > 1e-12 {
		t.Errorf("degenerate period Factor = %v, want 1", got)
	}
}

func TestSessionDemandAt(t *testing.T) {
	s := Session{DemandPkts: 10}
	if s.DemandAt(5) != 10 || s.PeakDemand() != 10 {
		t.Error("constant session demand wrong")
	}
	s.Pattern = Sinusoid{Amplitude: 0.4, PeriodSlots: 8}
	if got := s.DemandAt(2); math.Abs(got-14) > 1e-9 {
		t.Errorf("DemandAt(peak) = %v, want 14", got)
	}
	if got := s.PeakDemand(); math.Abs(got-14) > 1e-9 {
		t.Errorf("PeakDemand = %v, want 14", got)
	}
}

func TestBurstPattern(t *testing.T) {
	b := Burst{PeriodSlots: 10, DutyFrac: 0.3, OnFactor: 2}
	on, off := 0, 0
	for slot := 0; slot < 100; slot++ {
		switch b.Factor(slot) {
		case 2:
			on++
		case 0:
			off++
		default:
			t.Fatalf("unexpected factor %v", b.Factor(slot))
		}
	}
	if on != 30 || off != 70 {
		t.Errorf("on/off = %d/%d, want 30/70", on, off)
	}
	if b.MaxFactor() != 2 {
		t.Errorf("MaxFactor = %v", b.MaxFactor())
	}
	if (Burst{DutyFrac: 1, OnFactor: 1}).Factor(5) != 1 {
		t.Error("degenerate period should be always-on")
	}
}
