// Package traffic models the downlink Internet service sessions of the
// paper's Section II-A: each session s is a tuple {d_s, v_s(t), s_s(t)}
// with destination d_s, per-slot required throughput v_s(t) in packets, and
// a source base station s_s(t) chosen dynamically by the controller's
// resource-allocation subproblem S2.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/rng"
)

// DefaultPacketBits is δ, the number of bits per packet, when a Model does
// not override it (150 KB frames — the value that puts the paper's
// Lyapunov constant B on the same relative scale against the cost axis as
// in its Fig. 2(a); see EXPERIMENTS.md).
const DefaultPacketBits = 1.2e6

// DefaultDemandBitsPerSec is the per-session demand used by PaperSessions.
// The paper states 100 Kbps; we use 500 Kbps so the offered load is a
// meaningful fraction (~25%) of a link's 2 Mbps capacity — at 5% duty the
// transmission-energy differences between architectures that Fig. 2(f)
// plots are lost in the fixed-power noise (see EXPERIMENTS.md).
const DefaultDemandBitsPerSec = 500e3

// DemandPattern shapes a session's demand over time; Factor multiplies the
// base demand at each slot. It extends the paper's constant v_s(t) with
// time-varying load (e.g. diurnal traffic).
type DemandPattern interface {
	// Factor returns the demand multiplier at the given slot (>= 0).
	Factor(slot int) float64
	// MaxFactor bounds Factor over all slots; it sizes admission caps.
	MaxFactor() float64
}

// Sinusoid is a demand pattern 1 + Amplitude·sin(2π·slot/PeriodSlots),
// clamped at zero.
type Sinusoid struct {
	// Amplitude is the relative swing (0.5 = ±50%).
	Amplitude float64
	// PeriodSlots is the cycle length in slots.
	PeriodSlots int
}

// Factor implements DemandPattern.
func (s Sinusoid) Factor(slot int) float64 {
	period := s.PeriodSlots
	if period <= 0 {
		period = 1
	}
	f := 1 + s.Amplitude*math.Sin(2*math.Pi*float64(slot%period)/float64(period))
	if f < 0 {
		return 0
	}
	return f
}

// MaxFactor implements DemandPattern.
func (s Sinusoid) MaxFactor() float64 { return 1 + math.Abs(s.Amplitude) }

// Burst is a square-wave demand pattern: OnFactor for the first
// DutyFrac·PeriodSlots slots of each period, zero for the rest — bursty
// traffic such as periodic bulk transfers.
type Burst struct {
	// PeriodSlots is the cycle length.
	PeriodSlots int
	// DutyFrac is the ON fraction of each cycle, in (0, 1].
	DutyFrac float64
	// OnFactor is the demand multiplier while ON.
	OnFactor float64
}

// Factor implements DemandPattern.
func (b Burst) Factor(slot int) float64 {
	period := b.PeriodSlots
	if period <= 0 {
		period = 1
	}
	if float64(slot%period) < b.DutyFrac*float64(period) {
		return b.OnFactor
	}
	return 0
}

// MaxFactor implements DemandPattern.
func (b Burst) MaxFactor() float64 { return b.OnFactor }

var (
	_ DemandPattern = Sinusoid{}
	_ DemandPattern = Burst{}
)

// Session is one service session. The paper models downlink only
// (Internet → base station → user); the Uplink extension reverses the
// direction: packets originate at a fixed user and count as delivered on
// reaching *any* base station (anycast), mirroring how uplink traffic
// exits through whichever BS is closest in queue terms.
type Session struct {
	ID int
	// Dest is d_s, the destination node (ignored for uplink sessions).
	Dest int
	// Uplink marks a user-to-infrastructure session; Source is then the
	// fixed originating user.
	Uplink bool
	// Source is the originating user of an uplink session.
	Source int
	// DemandPkts is the base per-slot required throughput v_s in packets
	// (constant in the paper's simulation).
	DemandPkts float64
	// MaxAdmission is K_s^max, the cap on packets the source base station
	// may admit from the Internet per slot.
	MaxAdmission float64
	// Pattern optionally modulates the demand over time (nil = constant).
	Pattern DemandPattern
}

// DemandAt returns v_s(t) for the given slot.
func (s Session) DemandAt(slot int) float64 {
	if s.Pattern == nil {
		return s.DemandPkts
	}
	return s.DemandPkts * s.Pattern.Factor(slot)
}

// PeakDemand returns the largest possible v_s(t).
func (s Session) PeakDemand() float64 {
	if s.Pattern == nil {
		return s.DemandPkts
	}
	return s.DemandPkts * s.Pattern.MaxFactor()
}

// Model is the set of sessions plus shared packet parameters.
type Model struct {
	Sessions []Session
	// PacketBits is δ, bits per packet.
	PacketBits float64
}

// ErrTraffic reports an invalid traffic model.
var ErrTraffic = errors.New("traffic: invalid model")

// Validate checks internal consistency.
func (m *Model) Validate(numNodes int) error {
	if m.PacketBits <= 0 {
		return fmt.Errorf("%w: PacketBits = %v", ErrTraffic, m.PacketBits)
	}
	for _, s := range m.Sessions {
		if !s.Uplink && (s.Dest < 0 || s.Dest >= numNodes) {
			return fmt.Errorf("%w: session %d destination %d out of range", ErrTraffic, s.ID, s.Dest)
		}
		if s.Uplink && (s.Source < 0 || s.Source >= numNodes) {
			return fmt.Errorf("%w: uplink session %d source %d out of range", ErrTraffic, s.ID, s.Source)
		}
		if s.DemandPkts < 0 || s.MaxAdmission < 0 {
			return fmt.Errorf("%w: session %d has negative demand or admission", ErrTraffic, s.ID)
		}
		if s.MaxAdmission < s.DemandPkts {
			return fmt.Errorf("%w: session %d admission cap %v below demand %v (cannot sustain)",
				ErrTraffic, s.ID, s.MaxAdmission, s.DemandPkts)
		}
	}
	return nil
}

// NumSessions returns the session count.
func (m *Model) NumSessions() int { return len(m.Sessions) }

// DemandPktsPerSlot converts a bit-rate demand into packets per slot.
func DemandPktsPerSlot(bitsPerSec, slotSeconds, packetBits float64) float64 {
	return bitsPerSec * slotSeconds / packetBits
}

// UplinkSessions builds n uplink sessions (user → any base station) with
// DefaultDemandBitsPerSec demand, originating at distinct random users.
// IDs start at firstID so the model can mix uplink and downlink sessions.
func UplinkSessions(n int, users []int, slotSeconds float64, firstID int, src *rng.Source) []Session {
	if n > len(users) {
		n = len(users)
	}
	demand := DemandPktsPerSlot(DefaultDemandBitsPerSec, slotSeconds, DefaultPacketBits)
	var out []Session
	for i, k := range src.Subset(len(users), n) {
		out = append(out, Session{
			ID:           firstID + i,
			Uplink:       true,
			Source:       users[k],
			DemandPkts:   demand,
			MaxAdmission: demand,
		})
	}
	return out
}

// PaperSessions builds n sessions with DefaultDemandBitsPerSec demand, each
// destined to a distinct uniformly random user drawn from users. slotSeconds
// is the slot duration. The admission cap K_s^max equals the demand: the
// bang-bang admission rule of S2 then injects exactly the sustainable load
// whenever the source backlog is below λV.
func PaperSessions(n int, users []int, slotSeconds float64, src *rng.Source) *Model {
	if n > len(users) {
		n = len(users)
	}
	demand := DemandPktsPerSlot(DefaultDemandBitsPerSec, slotSeconds, DefaultPacketBits)
	m := &Model{PacketBits: DefaultPacketBits}
	for i, k := range src.Subset(len(users), n) {
		m.Sessions = append(m.Sessions, Session{
			ID:           i,
			Dest:         users[k],
			DemandPkts:   demand,
			MaxAdmission: demand,
		})
	}
	return m
}
