// Package queueing provides the discrete-time queue dynamics and stability
// statistics used throughout the controller: the single-server queueing law
// of the paper's Theorem 1, signed (shifted) queues, and trace/time-average
// trackers matching Definitions 1–2 (rate stability and strong stability).
package queueing

// Queue is a non-negative backlog evolving by the law of Theorem 1:
//
//	Q(t+1) = max{Q(t) − b(t), 0} + a(t).
//
// The zero value is an empty queue ready to use.
type Queue struct {
	backlog float64
}

// Backlog returns the current queue length Q(t).
func (q *Queue) Backlog() float64 { return q.backlog }

// Set overwrites the backlog with an externally observed value —
// the distributed coordinator's view import (docs/DISTRIBUTED.md).
// Negative or NaN values clamp to zero, matching the queueing law's
// domain.
func (q *Queue) Set(backlog float64) {
	if !(backlog > 0) { // catches negatives and NaN
		backlog = 0
	}
	q.backlog = backlog
}

// Step applies one slot of the queueing law with service b(t) and arrival
// a(t), returning the amount actually drained, min(Q(t), b(t)) — useful for
// throughput accounting. Negative inputs are treated as zero.
func (q *Queue) Step(arrival, service float64) (drained float64) {
	if arrival < 0 {
		arrival = 0
	}
	if service < 0 {
		service = 0
	}
	drained = service
	if drained > q.backlog {
		drained = q.backlog
	}
	q.backlog -= service
	if q.backlog < 0 {
		q.backlog = 0
	}
	q.backlog += arrival
	return drained
}

// SignedQueue is a real-valued state evolving by z(t+1) = z(t) + c − d,
// the shifted battery queue of the paper's eq. (31). The zero value starts
// at level 0; use Reset to move it.
type SignedQueue struct {
	level float64
}

// Level returns z(t).
func (z *SignedQueue) Level() float64 { return z.level }

// Reset sets z(t) to v.
func (z *SignedQueue) Reset(v float64) { z.level = v }

// Step applies z(t+1) = z(t) + up − down.
func (z *SignedQueue) Step(up, down float64) { z.level += up - down }

// Tracker accumulates a scalar time series and its stability statistics.
type Tracker struct {
	sum       float64
	absSum    float64
	max       float64
	n         int
	keepTrace bool
	trace     []float64
}

// NewTracker creates a Tracker. If keepTrace, every observation is retained
// and available via Trace (needed for the time-series figures).
func NewTracker(keepTrace bool) *Tracker {
	return &Tracker{keepTrace: keepTrace}
}

// Observe records one per-slot value.
func (t *Tracker) Observe(v float64) {
	t.sum += v
	av := v
	if av < 0 {
		av = -av
	}
	t.absSum += av
	if t.n == 0 || v > t.max {
		t.max = v
	}
	t.n++
	if t.keepTrace {
		t.trace = append(t.trace, v)
	}
}

// Count returns the number of observations.
func (t *Tracker) Count() int { return t.n }

// TimeAverage returns (1/T)·Σ v(t) — Definition 1's empirical counterpart.
func (t *Tracker) TimeAverage() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// TimeAverageAbs returns (1/T)·Σ |v(t)|, the quantity whose boundedness
// defines strong stability (Definition 2).
func (t *Tracker) TimeAverageAbs() float64 {
	if t.n == 0 {
		return 0
	}
	return t.absSum / float64(t.n)
}

// Max returns the largest observation (0 if none).
func (t *Tracker) Max() float64 {
	if t.n == 0 {
		return 0
	}
	return t.max
}

// Last returns the most recent observation (0 if none or trace disabled).
func (t *Tracker) Last() float64 {
	if len(t.trace) == 0 {
		return 0
	}
	return t.trace[len(t.trace)-1]
}

// Trace returns the retained series (nil when tracing is disabled). The
// returned slice is owned by the Tracker; callers must not modify it.
func (t *Tracker) Trace() []float64 { return t.trace }

// Slope returns the least-squares slope of series against slot index. A
// near-zero slope over the latter part of a backlog series is the empirical
// signature of strong stability; a positive slope proportional to the
// arrival excess signals instability.
func Slope(series []float64) float64 {
	n := len(series)
	if n < 2 {
		return 0
	}
	// Slope of ordinary least squares y = a + b·x with x = 0..n-1.
	meanX := float64(n-1) / 2
	meanY := 0.0
	for _, v := range series {
		meanY += v
	}
	meanY /= float64(n)
	num, den := 0.0, 0.0
	for i, v := range series {
		dx := float64(i) - meanX
		num += dx * (v - meanY)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TailAverage returns the mean of the final frac portion of series
// (frac in (0,1]); it estimates the steady-state level of a stabilizing
// backlog while ignoring the transient.
func TailAverage(series []float64, frac float64) float64 {
	if len(series) == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	start := int(float64(len(series)) * (1 - frac))
	if start >= len(series) {
		start = len(series) - 1
	}
	sum := 0.0
	for _, v := range series[start:] {
		sum += v
	}
	return sum / float64(len(series)-start)
}
