package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"greencell/internal/rng"
)

func TestQueueLaw(t *testing.T) {
	tests := []struct {
		name             string
		initial          float64
		arrival, service float64
		want             float64
		wantDrained      float64
	}{
		{"arrivals only", 0, 5, 0, 5, 0},
		{"partial service", 10, 2, 4, 8, 4},
		{"over-service clamps at zero", 3, 1, 10, 1, 3},
		{"exact drain", 7, 0, 7, 0, 7},
		{"negative inputs treated as zero", 5, -2, -3, 5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var q Queue
			q.Step(tt.initial, 0) // load initial backlog
			drained := q.Step(tt.arrival, tt.service)
			if q.Backlog() != tt.want {
				t.Errorf("backlog = %v, want %v", q.Backlog(), tt.want)
			}
			if drained != tt.wantDrained {
				t.Errorf("drained = %v, want %v", drained, tt.wantDrained)
			}
		})
	}
}

// TestQueueNonNegativeProperty: the queueing law can never produce a
// negative backlog, whatever the inputs.
func TestQueueNonNegativeProperty(t *testing.T) {
	f := func(ops [20][2]float64) bool {
		var q Queue
		for _, op := range ops {
			q.Step(math.Abs(op[0]), math.Abs(op[1]))
			if q.Backlog() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQueueRateStability is Theorem 1 empirically: with mean arrival rate
// below mean service rate, Q(T)/T -> 0; with arrivals above service, it
// stays bounded away from zero.
func TestQueueRateStability(t *testing.T) {
	src := rng.New(12)
	const T = 50000

	var stable Queue
	for i := 0; i < T; i++ {
		stable.Step(src.Uniform(0, 2), src.Uniform(0, 3)) // mean 1 < 1.5
	}
	if ratio := stable.Backlog() / T; ratio > 0.01 {
		t.Errorf("subcritical queue: Q(T)/T = %v, want ~0", ratio)
	}

	var unstable Queue
	for i := 0; i < T; i++ {
		unstable.Step(src.Uniform(0, 3), src.Uniform(0, 2)) // mean 1.5 > 1
	}
	if ratio := unstable.Backlog() / T; ratio < 0.3 {
		t.Errorf("supercritical queue: Q(T)/T = %v, want ~0.5", ratio)
	}
}

func TestSignedQueue(t *testing.T) {
	var z SignedQueue
	z.Reset(-10)
	z.Step(4, 1)
	if z.Level() != -7 {
		t.Fatalf("level = %v, want -7", z.Level())
	}
	z.Step(0, 10)
	if z.Level() != -17 {
		t.Fatalf("level = %v, want -17", z.Level())
	}
}

func TestTrackerStatistics(t *testing.T) {
	tr := NewTracker(true)
	for _, v := range []float64{1, -3, 2} {
		tr.Observe(v)
	}
	if tr.Count() != 3 {
		t.Errorf("Count = %d", tr.Count())
	}
	if got := tr.TimeAverage(); math.Abs(got-0) > 1e-12 {
		t.Errorf("TimeAverage = %v, want 0", got)
	}
	if got := tr.TimeAverageAbs(); math.Abs(got-2) > 1e-12 {
		t.Errorf("TimeAverageAbs = %v, want 2", got)
	}
	if tr.Max() != 2 {
		t.Errorf("Max = %v, want 2", tr.Max())
	}
	if tr.Last() != 2 {
		t.Errorf("Last = %v, want 2", tr.Last())
	}
	if len(tr.Trace()) != 3 {
		t.Errorf("Trace length = %d, want 3", len(tr.Trace()))
	}
}

func TestTrackerNoTrace(t *testing.T) {
	tr := NewTracker(false)
	tr.Observe(5)
	if tr.Trace() != nil {
		t.Error("trace retained despite keepTrace=false")
	}
	if tr.Last() != 0 {
		t.Error("Last should be 0 without trace")
	}
	if tr.TimeAverage() != 5 {
		t.Error("TimeAverage should still work without trace")
	}
}

func TestTrackerEmpty(t *testing.T) {
	tr := NewTracker(false)
	if tr.TimeAverage() != 0 || tr.Max() != 0 || tr.TimeAverageAbs() != 0 {
		t.Error("empty tracker statistics should be zero")
	}
}

func TestTrackerMaxWithAllNegative(t *testing.T) {
	tr := NewTracker(false)
	tr.Observe(-5)
	tr.Observe(-2)
	if tr.Max() != -2 {
		t.Errorf("Max = %v, want -2", tr.Max())
	}
}

func TestSlope(t *testing.T) {
	tests := []struct {
		name   string
		series []float64
		want   float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 0},
		{"flat", []float64{2, 2, 2, 2}, 0},
		{"unit ramp", []float64{0, 1, 2, 3, 4}, 1},
		{"down ramp", []float64{4, 2, 0}, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Slope(tt.series); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Slope = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSlopeDetectsBoundedVsGrowing(t *testing.T) {
	src := rng.New(9)
	bounded := make([]float64, 1000)
	growing := make([]float64, 1000)
	for i := range bounded {
		bounded[i] = 50 + src.Uniform(-5, 5)
		growing[i] = 0.5*float64(i) + src.Uniform(-5, 5)
	}
	if s := Slope(bounded); math.Abs(s) > 0.05 {
		t.Errorf("bounded series slope = %v, want ~0", s)
	}
	if s := Slope(growing); math.Abs(s-0.5) > 0.05 {
		t.Errorf("growing series slope = %v, want ~0.5", s)
	}
}

func TestTailAverage(t *testing.T) {
	series := []float64{100, 100, 2, 4}
	if got := TailAverage(series, 0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("TailAverage(0.5) = %v, want 3", got)
	}
	if got := TailAverage(series, 1); math.Abs(got-51.5) > 1e-12 {
		t.Errorf("TailAverage(1) = %v, want 51.5", got)
	}
	if got := TailAverage(nil, 0.5); got != 0 {
		t.Errorf("TailAverage(nil) = %v, want 0", got)
	}
	if got := TailAverage(series, 0); got != 0 {
		t.Errorf("TailAverage(frac=0) = %v, want 0", got)
	}
	if got := TailAverage(series, 2); math.Abs(got-51.5) > 1e-12 {
		t.Errorf("TailAverage(frac>1) = %v, want full mean", got)
	}
}
