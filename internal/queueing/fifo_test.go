package queueing

import (
	"math"
	"testing"

	"greencell/internal/rng"
)

func TestPacketFIFOPushPop(t *testing.T) {
	var f PacketFIFO
	f.Push(5, 0)
	f.Push(3, 2)
	if f.Total() != 8 {
		t.Fatalf("Total = %v, want 8", f.Total())
	}
	got := f.Pop(6)
	// FIFO: 5 born@0, then 1 born@2.
	if len(got) != 2 || got[0].Count != 5 || got[0].Born != 0 || got[1].Count != 1 || got[1].Born != 2 {
		t.Fatalf("Pop = %+v", got)
	}
	if math.Abs(f.Total()-2) > 1e-12 {
		t.Fatalf("Total after pop = %v, want 2", f.Total())
	}
}

func TestPacketFIFOPopMoreThanHeld(t *testing.T) {
	var f PacketFIFO
	f.Push(2, 1)
	got := f.Pop(10)
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("Pop = %+v", got)
	}
	if f.Total() != 0 {
		t.Fatalf("Total = %v, want 0", f.Total())
	}
	if more := f.Pop(1); len(more) != 0 {
		t.Fatalf("empty FIFO popped %+v", more)
	}
}

func TestPacketFIFOMergesSameBorn(t *testing.T) {
	var f PacketFIFO
	f.Push(1, 4)
	f.Push(2, 4)
	if len(f.batches) != 1 || f.batches[0].Count != 3 {
		t.Fatalf("batches = %+v, want merged", f.batches)
	}
}

func TestPacketFIFOIgnoresNonPositive(t *testing.T) {
	var f PacketFIFO
	f.Push(0, 1)
	f.Push(-3, 1)
	if f.Total() != 0 || len(f.batches) != 0 {
		t.Fatal("non-positive pushes should be ignored")
	}
}

func TestPushBatchesPreservesAges(t *testing.T) {
	var a, b PacketFIFO
	a.Push(4, 7)
	bs := a.Pop(4)
	b.PushBatches(bs)
	out := b.Pop(4)
	if len(out) != 1 || out[0].Born != 7 || out[0].Count != 4 {
		t.Fatalf("ages not preserved: %+v", out)
	}
}

// TestPacketFIFOConservationProperty: random pushes and pops conserve
// totals and never emit more than requested or held.
func TestPacketFIFOConservationProperty(t *testing.T) {
	src := rng.New(5)
	var f PacketFIFO
	pushed, popped := 0.0, 0.0
	for step := 0; step < 5000; step++ {
		if src.Bernoulli(0.6) {
			c := src.Uniform(0, 5)
			f.Push(c, step)
			pushed += c
		} else {
			want := src.Uniform(0, 6)
			got := 0.0
			for _, b := range f.Pop(want) {
				got += b.Count
				if b.Born > step {
					t.Fatal("batch born in the future")
				}
			}
			if got > want+1e-9 {
				t.Fatalf("popped %v > requested %v", got, want)
			}
			popped += got
		}
		if math.Abs(f.Total()-(pushed-popped)) > 1e-6 {
			t.Fatalf("conservation broken: total %v vs pushed−popped %v",
				f.Total(), pushed-popped)
		}
	}
}

func TestDelayStats(t *testing.T) {
	var d DelayStats
	d.Record(10, []Batch{{Count: 2, Born: 4}, {Count: 1, Born: 10}})
	// Delays: 6 (x2 packets), 0 (x1): mean = 12/3 = 4, max = 6.
	if d.Count() != 3 {
		t.Errorf("Count = %v", d.Count())
	}
	if math.Abs(d.Mean()-4) > 1e-12 {
		t.Errorf("Mean = %v, want 4", d.Mean())
	}
	if d.Max() != 6 {
		t.Errorf("Max = %v, want 6", d.Max())
	}
	var empty DelayStats
	if empty.Mean() != 0 {
		t.Error("empty stats mean should be 0")
	}
}

func TestDelayStatsClampsNegative(t *testing.T) {
	var d DelayStats
	d.Record(1, []Batch{{Count: 1, Born: 5}}) // born after delivery: clamp
	if d.Mean() != 0 || d.Max() != 0 {
		t.Error("negative delay should clamp to 0")
	}
}

func TestDelayQuantiles(t *testing.T) {
	var d DelayStats
	// 10 packets with delay 2, 10 with delay 8.
	d.Record(2, []Batch{{Count: 10, Born: 0}})
	d.Record(8, []Batch{{Count: 10, Born: 0}})
	if got := d.Quantile(0.25); got != 2 {
		t.Errorf("Q25 = %v, want 2", got)
	}
	if got := d.Quantile(0.75); got != 8 {
		t.Errorf("Q75 = %v, want 8", got)
	}
	if got := d.Quantile(1); got != 8 {
		t.Errorf("Q100 = %v, want 8", got)
	}
	if got := d.Quantile(-1); got != 2 {
		t.Errorf("clamped Q = %v, want 2", got)
	}
	var empty DelayStats
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}
