package queueing

// Batch is a group of packets that entered the system in the same slot.
type Batch struct {
	// Count is the (possibly fractional) number of packets.
	Count float64
	// Born is the slot the packets were admitted from the Internet.
	Born int
}

// PacketFIFO tracks packet ages through a queue in FIFO order. It shadows a
// Queue's backlog so the controller can attribute an exact admission-to-
// delivery delay to every delivered packet (the paper's queue laws only
// carry counts). The zero value is an empty FIFO ready to use.
type PacketFIFO struct {
	batches []Batch
	head    int
	total   float64
}

// Total returns the number of packets in the FIFO.
func (f *PacketFIFO) Total() float64 { return f.total }

// Push appends count packets born in the given slot.
func (f *PacketFIFO) Push(count float64, born int) {
	if count <= 0 {
		return
	}
	// Merge with the tail when the born slot matches (admissions and
	// arrivals within a slot commonly share it).
	if n := len(f.batches); n > f.head && f.batches[n-1].Born == born {
		f.batches[n-1].Count += count
	} else {
		f.batches = append(f.batches, Batch{Count: count, Born: born})
	}
	f.total += count
}

// PushBatches appends previously-popped batches, preserving their ages.
func (f *PacketFIFO) PushBatches(bs []Batch) {
	for _, b := range bs {
		f.Push(b.Count, b.Born)
	}
}

// Pop removes up to count packets from the head and returns them as
// batches (oldest first). It returns fewer packets when the FIFO holds
// fewer than count.
func (f *PacketFIFO) Pop(count float64) []Batch {
	var out []Batch
	for count > 1e-12 && f.head < len(f.batches) {
		b := &f.batches[f.head]
		take := b.Count
		if take > count {
			take = count
		}
		out = append(out, Batch{Count: take, Born: b.Born})
		b.Count -= take
		f.total -= take
		count -= take
		if b.Count <= 1e-12 {
			f.total -= b.Count // absorb roundoff residue
			b.Count = 0
			f.head++
		}
	}
	if f.total < 0 {
		f.total = 0
	}
	// Compact occasionally so memory stays bounded on long runs.
	if f.head > 64 && f.head*2 > len(f.batches) {
		f.batches = append(f.batches[:0], f.batches[f.head:]...)
		f.head = 0
	}
	return out
}

// DelayStats accumulates delivery-delay statistics, including an exact
// integer-slot histogram for quantiles (delays are whole slot counts, so
// the histogram is lossless).
type DelayStats struct {
	count    float64
	sumDelay float64
	maxDelay float64
	hist     map[int]float64
}

// Record accounts delivered batches at the given slot.
func (d *DelayStats) Record(now int, bs []Batch) {
	for _, b := range bs {
		delay := now - b.Born
		if delay < 0 {
			delay = 0
		}
		d.count += b.Count
		d.sumDelay += float64(delay) * b.Count
		if float64(delay) > d.maxDelay {
			d.maxDelay = float64(delay)
		}
		if d.hist == nil {
			d.hist = make(map[int]float64)
		}
		d.hist[delay] += b.Count
	}
}

// Quantile returns the q-quantile of the delivered-packet delay
// distribution (0 ≤ q ≤ 1), in slots. It returns 0 when nothing was
// delivered.
func (d *DelayStats) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * d.count
	// Walk delays in increasing order; delays are small ints.
	acc := 0.0
	for delay := 0; delay <= int(d.maxDelay); delay++ {
		c, ok := d.hist[delay]
		if !ok {
			continue
		}
		acc += c
		if acc >= target {
			return float64(delay)
		}
	}
	return d.maxDelay
}

// Count returns the delivered packet count.
func (d *DelayStats) Count() float64 { return d.count }

// Mean returns the packet-weighted mean delivery delay in slots.
func (d *DelayStats) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sumDelay / d.count
}

// Max returns the largest observed delivery delay in slots.
func (d *DelayStats) Max() float64 { return d.maxDelay }
