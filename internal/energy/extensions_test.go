package energy

import (
	"math"
	"testing"

	"greencell/internal/rng"
	"greencell/internal/units"
)

func TestDiurnalCycle(t *testing.T) {
	d := &Diurnal{PeakWh: 10, PeriodSlots: 100, NoiseFrac: 0}
	src := rng.New(1)
	var samples []units.Energy
	for i := 0; i < 100; i++ {
		samples = append(samples, d.Sample(src))
	}
	// First half of the cycle (sin > 0) produces energy; second half none.
	if samples[25] <= 9.9 {
		t.Errorf("midday output %v, want ~peak 10", samples[25])
	}
	for i := 51; i < 100; i++ {
		if samples[i] != 0 {
			t.Fatalf("night slot %d produced %v", i, samples[i])
		}
	}
	if d.Max() != 10 {
		t.Errorf("Max = %v", d.Max())
	}
}

func TestDiurnalNoiseBounded(t *testing.T) {
	d := &Diurnal{PeakWh: 5, PeriodSlots: 40, NoiseFrac: 0.2}
	src := rng.New(2)
	for i := 0; i < 400; i++ {
		v := d.Sample(src)
		if v < 0 || v > d.Max() {
			t.Fatalf("sample %v outside [0, %v]", v, d.Max())
		}
	}
}

func TestDiurnalPhase(t *testing.T) {
	base := &Diurnal{PeakWh: 10, PeriodSlots: 100}
	shifted := &Diurnal{PeakWh: 10, PeriodSlots: 100, PhaseSlots: 50}
	src := rng.New(3)
	// The shifted cycle starts at "night".
	if base.Sample(src) == 0 {
		t.Skip("first base sample at phase 0 boundary")
	}
	if v := shifted.Sample(src); v != 0 {
		t.Errorf("phase-shifted first sample = %v, want 0", v)
	}
}

func TestBatteryEfficiencyValidate(t *testing.T) {
	bad := BatterySpec{CapacityWh: 10, MaxChargeWh: 1, MaxDischargeWh: 1, ChargeEfficiency: 1.5}
	if bad.Validate() == nil {
		t.Error("efficiency > 1 accepted")
	}
	bad.ChargeEfficiency = -0.1
	if bad.Validate() == nil {
		t.Error("negative efficiency accepted")
	}
	ok := BatterySpec{CapacityWh: 10, MaxChargeWh: 1, MaxDischargeWh: 1, ChargeEfficiency: 0.9, DischargeEfficiency: 0.95}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid efficiencies rejected: %v", err)
	}
}

func TestBatteryChargeLosses(t *testing.T) {
	spec := BatterySpec{CapacityWh: 100, MaxChargeWh: 20, MaxDischargeWh: 20, ChargeEfficiency: 0.5}
	b, err := NewBattery(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Step(10, 0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Level().Wh()-5) > 1e-12 {
		t.Errorf("level = %v, want 5 (50%% charge efficiency)", b.Level())
	}
}

func TestBatteryDischargeLosses(t *testing.T) {
	spec := BatterySpec{CapacityWh: 100, MaxDischargeWh: 20, MaxChargeWh: 20, DischargeEfficiency: 0.5}
	b, err := NewBattery(spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Delivering 10 Wh drains 20 Wh of storage.
	if err := b.Step(0, 10); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Level().Wh()-30) > 1e-12 {
		t.Errorf("level = %v, want 30", b.Level())
	}
	// Headroom: only 30·0.5 = 15 deliverable, below the 20 Wh rate cap.
	if got := b.DischargeHeadroom(); math.Abs(got.Wh()-15) > 1e-12 {
		t.Errorf("DischargeHeadroom = %v, want 15", got)
	}
}

func TestBatteryEfficiencyHeadroomConsistent(t *testing.T) {
	// Property: charging exactly ChargeHeadroom never overfills, and
	// discharging exactly DischargeHeadroom never underflows.
	src := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		spec := BatterySpec{
			CapacityWh:          100,
			MaxChargeWh:         30,
			MaxDischargeWh:      30,
			ChargeEfficiency:    src.Uniform(0.5, 1),
			DischargeEfficiency: src.Uniform(0.5, 1),
		}
		b, err := NewBattery(spec, units.Wh(src.Uniform(0, 100)))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			if src.Bernoulli(0.5) {
				if err := b.Step(b.ChargeHeadroom(), 0); err != nil {
					t.Fatalf("full charge rejected: %v", err)
				}
			} else {
				if err := b.Step(0, b.DischargeHeadroom()); err != nil {
					t.Fatalf("full discharge rejected: %v", err)
				}
			}
			if b.Level() < 0 || b.Level() > spec.CapacityWh+1e-9 {
				t.Fatalf("level %v escaped [0, %v]", b.Level(), spec.CapacityWh)
			}
		}
	}
}
