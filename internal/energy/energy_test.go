package energy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"greencell/internal/rng"
	"greencell/internal/units"
)

func TestBatterySpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    BatterySpec
		wantErr bool
	}{
		{"valid", BatterySpec{CapacityWh: 100, MaxChargeWh: 40, MaxDischargeWh: 60}, false},
		{"paper user", BatterySpec{CapacityWh: 120, MaxChargeWh: 60, MaxDischargeWh: 60}, false},
		{"violates (13)", BatterySpec{CapacityWh: 100, MaxChargeWh: 60, MaxDischargeWh: 60}, true},
		{"negative", BatterySpec{CapacityWh: -1}, true},
		{"zero", BatterySpec{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBatterySpec) {
				t.Fatalf("error %v should wrap ErrBatterySpec", err)
			}
		})
	}
}

func TestNewBatteryRejectsBadInitial(t *testing.T) {
	spec := BatterySpec{CapacityWh: 100, MaxChargeWh: 40, MaxDischargeWh: 60}
	if _, err := NewBattery(spec, -1); err == nil {
		t.Error("negative initial level accepted")
	}
	if _, err := NewBattery(spec, 101); err == nil {
		t.Error("initial level above capacity accepted")
	}
	if _, err := NewBattery(spec, 50); err != nil {
		t.Errorf("valid initial level rejected: %v", err)
	}
}

func TestBatteryHeadrooms(t *testing.T) {
	spec := BatterySpec{CapacityWh: 100, MaxChargeWh: 40, MaxDischargeWh: 60}
	b, err := NewBattery(spec, 90)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.ChargeHeadroom(); got != 10 {
		t.Errorf("ChargeHeadroom = %v, want 10 (capacity-limited)", got)
	}
	if got := b.DischargeHeadroom(); got != 60 {
		t.Errorf("DischargeHeadroom = %v, want 60 (rate-limited)", got)
	}
	b2, _ := NewBattery(spec, 5)
	if got := b2.ChargeHeadroom(); got != 40 {
		t.Errorf("ChargeHeadroom = %v, want 40 (rate-limited)", got)
	}
	if got := b2.DischargeHeadroom(); got != 5 {
		t.Errorf("DischargeHeadroom = %v, want 5 (level-limited)", got)
	}
}

func TestBatteryStepLaw(t *testing.T) {
	spec := BatterySpec{CapacityWh: 100, MaxChargeWh: 40, MaxDischargeWh: 60}
	b, _ := NewBattery(spec, 50)
	if err := b.Step(20, 0); err != nil {
		t.Fatal(err)
	}
	if b.Level() != 70 {
		t.Fatalf("level = %v, want 70", b.Level())
	}
	if err := b.Step(0, 30); err != nil {
		t.Fatal(err)
	}
	if b.Level() != 40 {
		t.Fatalf("level = %v, want 40", b.Level())
	}
}

func TestBatteryStepRejections(t *testing.T) {
	spec := BatterySpec{CapacityWh: 100, MaxChargeWh: 40, MaxDischargeWh: 60}
	b, _ := NewBattery(spec, 50)
	if err := b.Step(10, 10); err == nil {
		t.Error("simultaneous charge and discharge accepted (violates eq. (9))")
	}
	if err := b.Step(41, 0); err == nil {
		t.Error("charge above c_max accepted (violates eq. (11))")
	}
	if err := b.Step(0, 61); err == nil {
		t.Error("discharge above d_max accepted (violates eq. (12))")
	}
	if err := b.Step(-5, 0); err == nil {
		t.Error("negative charge accepted")
	}
	b2, _ := NewBattery(spec, 5)
	if err := b2.Step(0, 10); err == nil {
		t.Error("discharge below empty accepted (violates eq. (12))")
	}
}

// TestBatteryInvariantProperty drives a battery with random admissible
// actions and checks 0 <= x <= capacity always holds — the paper's (10).
func TestBatteryInvariantProperty(t *testing.T) {
	src := rng.New(17)
	f := func(seedByte uint8) bool {
		spec := BatterySpec{CapacityWh: 100, MaxChargeWh: 40, MaxDischargeWh: 60}
		b, err := NewBattery(spec, units.Wh(src.Uniform(0, 100)))
		if err != nil {
			return false
		}
		for step := 0; step < 50; step++ {
			var c, d units.Energy
			if src.Bernoulli(0.5) {
				c = units.Wh(src.Uniform(0, b.ChargeHeadroom().Wh()))
			} else {
				d = units.Wh(src.Uniform(0, b.DischargeHeadroom().Wh()))
			}
			if err := b.Step(c, d); err != nil {
				return false
			}
			if b.Level() < 0 || b.Level() > spec.CapacityWh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProcesses(t *testing.T) {
	src := rng.New(5)
	tests := []struct {
		name string
		p    Process
		max  float64
	}{
		{"uniform", UniformPower{MaxWh: 15}, 15},
		{"constant", ConstantPower(3), 3},
		{"off", Off{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.p.Max().Wh() != tt.max {
				t.Fatalf("Max = %v, want %v", tt.p.Max(), tt.max)
			}
			for i := 0; i < 100; i++ {
				v := tt.p.Sample(src).Wh()
				if v < 0 || v > tt.max {
					t.Fatalf("sample %v outside [0,%v]", v, tt.max)
				}
			}
		})
	}
}

func TestGridConnection(t *testing.T) {
	src := rng.New(6)
	bs := GridConnection{MaxDrawWh: 200, AlwaysOn: true}
	for i := 0; i < 20; i++ {
		if !bs.SampleConnected(src) {
			t.Fatal("always-on connection sampled off")
		}
	}
	none := GridConnection{MaxDrawWh: 0, AlwaysOn: true}
	if none.SampleConnected(src) {
		t.Fatal("zero-capacity connection sampled on")
	}
	user := GridConnection{MaxDrawWh: 200, OnProb: 0.4}
	on := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if user.SampleConnected(src) {
			on++
		}
	}
	freq := float64(on) / n
	if freq < 0.37 || freq > 0.43 {
		t.Fatalf("ξ frequency = %v, want ~0.4", freq)
	}
}

func TestQuadraticCost(t *testing.T) {
	q := Quadratic{A: 0.8, B: 0.2} // the paper's f on joule arguments
	if got := q.Eval(0); got != 0 {
		t.Errorf("f(0) = %v, want 0", got)
	}
	if got := q.Eval(10); math.Abs(got.Value()-82) > 1e-12 {
		t.Errorf("f(10) = %v, want 82", got)
	}
	if got := q.Deriv(10); math.Abs(got.PerWh()-16.2) > 1e-12 {
		t.Errorf("f'(10) = %v, want 16.2", got)
	}
	if got := q.MaxDeriv(10); math.Abs(got.PerWh()-16.2) > 1e-12 {
		t.Errorf("MaxDeriv(10) = %v, want 16.2", got)
	}
}

func TestScaledCost(t *testing.T) {
	s := Scaled{Inner: Quadratic{A: 1}, ArgScale: 2}
	if got := s.Eval(3); math.Abs(got.Value()-36) > 1e-12 { // (2·3)²
		t.Errorf("Eval(3) = %v, want 36", got)
	}
	if got := s.Deriv(3); math.Abs(got.PerWh()-24) > 1e-12 { // 2 · 2·(2·3)
		t.Errorf("Deriv(3) = %v, want 24", got)
	}
	if got := s.MaxDeriv(3); math.Abs(got.PerWh()-24) > 1e-12 {
		t.Errorf("MaxDeriv(3) = %v, want 24", got)
	}
}

func TestPaperCostIsJouleScaled(t *testing.T) {
	// PaperCost evaluates f(P) = 0.8P² + 0.2P on joules: 1 Wh = 3600 J.
	f := PaperCost()
	want := 0.8*3600*3600 + 0.2*3600
	if got := f.Eval(1); math.Abs(got.Value()-want)/want > 1e-12 {
		t.Errorf("PaperCost.Eval(1 Wh) = %v, want %v", got, want)
	}
	if f.Deriv(1) <= 0 || f.MaxDeriv(2) < f.Deriv(1) {
		t.Error("PaperCost derivative inconsistent")
	}
}

func TestCostConvexityProperty(t *testing.T) {
	q := PaperCost()
	src := rng.New(7)
	for i := 0; i < 500; i++ {
		a := src.Uniform(0, 100)
		b := src.Uniform(0, 100)
		lam := src.Float64()
		mid := q.Eval(units.Wh(lam*a + (1-lam)*b)).Value()
		chord := lam*q.Eval(units.Wh(a)).Value() + (1-lam)*q.Eval(units.Wh(b)).Value()
		if mid > chord+1e-9 {
			t.Fatalf("convexity violated at a=%v b=%v λ=%v", a, b, lam)
		}
	}
}

func TestLinearCost(t *testing.T) {
	l := Linear{Rate: 2}
	if l.Eval(5) != 10 || l.Deriv(3) != 2 || l.MaxDeriv(100) != 2 {
		t.Error("linear cost arithmetic wrong")
	}
}
