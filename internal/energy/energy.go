// Package energy models the paper's Section II-C/D/E: per-node energy
// consumption, renewable generation, energy storage (battery) queues with
// charge/discharge limits and the no-simultaneous-charge-discharge rule,
// grid connections, and the provider's convex energy generation cost.
//
// Units: all energies are units.Energy (watt-hours per slot); cost values
// are units.Cost and marginal prices units.Price (cost per Wh). See
// internal/units for the quantity ↔ paper-symbol table.
package energy

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/rng"
	"greencell/internal/units"
)

// Process is the random renewable output R_i(t), expressed directly as
// energy per slot — the unit every other energy quantity uses.
type Process interface {
	// Sample draws the output for one slot.
	Sample(src *rng.Source) units.Energy
	// Max returns the largest possible output (R_i^max).
	Max() units.Energy
}

// UniformPower is i.i.d. uniform output in [0, MaxWh] per slot — the
// paper's model for both solar panels and wind turbines.
type UniformPower struct {
	MaxWh units.Energy
}

// Sample implements Process.
func (u UniformPower) Sample(src *rng.Source) units.Energy {
	return units.Wh(src.Uniform(0, u.MaxWh.Wh()))
}

// Max implements Process.
func (u UniformPower) Max() units.Energy { return u.MaxWh }

// ConstantPower is a fixed output every slot, in Wh.
type ConstantPower float64

// Sample implements Process.
func (c ConstantPower) Sample(*rng.Source) units.Energy { return units.Wh(float64(c)) }

// Max implements Process.
func (c ConstantPower) Max() units.Energy { return units.Wh(float64(c)) }

// Off is a renewable source that produces nothing — used by the
// "without renewable energy" baseline architectures.
type Off struct{}

// Sample implements Process.
func (Off) Sample(*rng.Source) units.Energy { return 0 }

// Max implements Process.
func (Off) Max() units.Energy { return 0 }

// BatterySpec describes an energy storage unit.
type BatterySpec struct {
	// CapacityWh is x_i^max, the maximum stored energy.
	CapacityWh units.Energy
	// MaxChargeWh is c_i^max, the per-slot charging limit.
	MaxChargeWh units.Energy
	// MaxDischargeWh is d_i^max, the per-slot discharging limit.
	MaxDischargeWh units.Energy
	// ChargeEfficiency and DischargeEfficiency extend the paper's lossless
	// storage with conversion losses: of c Wh sent to the battery,
	// η_c·c Wh are stored; delivering d Wh drains d/η_d Wh. Zero means 1
	// (lossless, the paper's model).
	ChargeEfficiency, DischargeEfficiency float64
}

// chargeEff returns the effective charging efficiency.
func (s BatterySpec) chargeEff() float64 {
	if s.ChargeEfficiency == 0 {
		return 1
	}
	return s.ChargeEfficiency
}

// dischargeEff returns the effective discharging efficiency.
func (s BatterySpec) dischargeEff() float64 {
	if s.DischargeEfficiency == 0 {
		return 1
	}
	return s.DischargeEfficiency
}

// ErrBatterySpec reports an invalid battery specification.
var ErrBatterySpec = errors.New("energy: invalid battery spec")

// Validate checks non-negativity and the paper's constraint (13):
// c_max + d_max <= x_max.
func (s BatterySpec) Validate() error {
	if s.CapacityWh < 0 || s.MaxChargeWh < 0 || s.MaxDischargeWh < 0 {
		return fmt.Errorf("%w: negative field in %+v", ErrBatterySpec, s)
	}
	if s.MaxChargeWh+s.MaxDischargeWh > s.CapacityWh+1e-9 {
		return fmt.Errorf("%w: c_max (%v) + d_max (%v) exceeds capacity (%v)",
			ErrBatterySpec, s.MaxChargeWh, s.MaxDischargeWh, s.CapacityWh)
	}
	for _, eff := range []float64{s.ChargeEfficiency, s.DischargeEfficiency} {
		if eff < 0 || eff > 1 {
			return fmt.Errorf("%w: efficiency %v outside (0,1]", ErrBatterySpec, eff)
		}
	}
	return nil
}

// Battery is the energy queue x_i(t) of eq. (4), enforcing constraints
// (9)–(12) on every step.
type Battery struct {
	spec  BatterySpec
	level units.Energy
}

// NewBattery creates a battery with the given initial level.
func NewBattery(spec BatterySpec, initialWh units.Energy) (*Battery, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if initialWh < 0 || initialWh > spec.CapacityWh {
		return nil, fmt.Errorf("%w: initial level %v outside [0,%v]",
			ErrBatterySpec, initialWh, spec.CapacityWh)
	}
	return &Battery{spec: spec, level: initialWh}, nil
}

// Spec returns the battery's specification.
func (b *Battery) Spec() BatterySpec { return b.spec }

// Level returns the current stored energy x_i(t).
func (b *Battery) Level() units.Energy { return b.level }

// Reset overwrites the stored level with an externally observed value,
// clamped into [0, CapacityWh] (NaN reads as empty) — the distributed
// coordinator's view import (docs/DISTRIBUTED.md), where a gossiped
// battery reading replaces the coordinator's prediction.
func (b *Battery) Reset(levelWh units.Energy) {
	if !(levelWh > 0) { // catches negatives and NaN
		levelWh = 0
	}
	if levelWh > b.spec.CapacityWh {
		levelWh = b.spec.CapacityWh
	}
	b.level = levelWh
}

// ChargeHeadroom returns the largest admissible charge this slot:
// min(c_max, (x_max − x)/η_c) — paper eq. (11), with losses the stored
// amount is η_c·c so more input fits.
func (b *Battery) ChargeHeadroom() units.Energy {
	room := units.Wh((b.spec.CapacityWh - b.level).Wh() / b.spec.chargeEff())
	if room < 0 {
		room = 0
	}
	if b.spec.MaxChargeWh < room {
		return b.spec.MaxChargeWh
	}
	return room
}

// DischargeHeadroom returns the largest admissible delivered discharge this
// slot: min(d_max, x·η_d) — paper eq. (12) with losses.
func (b *Battery) DischargeHeadroom() units.Energy {
	avail := b.level.Scale(b.spec.dischargeEff())
	if b.spec.MaxDischargeWh < avail {
		return b.spec.MaxDischargeWh
	}
	return avail
}

// ErrBatteryStep reports an inadmissible charge/discharge pair.
var ErrBatteryStep = errors.New("energy: inadmissible battery step")

// Step applies x(t+1) = x(t) + c − d (eq. (4)). It rejects simultaneous
// charge and discharge (eq. (9)) and violations of the headroom limits
// (eqs. (11)–(12)), with a small tolerance for solver roundoff; admissible
// values are clamped exactly onto [0, capacity].
func (b *Battery) Step(chargeWh, dischargeWh units.Energy) error {
	const tol = 1e-6
	if chargeWh < -tol || dischargeWh < -tol {
		return fmt.Errorf("%w: negative charge %v or discharge %v", ErrBatteryStep, chargeWh, dischargeWh)
	}
	if chargeWh > tol && dischargeWh > tol {
		return fmt.Errorf("%w: simultaneous charge %v and discharge %v", ErrBatteryStep, chargeWh, dischargeWh)
	}
	if chargeWh > b.ChargeHeadroom()+tol {
		return fmt.Errorf("%w: charge %v exceeds headroom %v", ErrBatteryStep, chargeWh, b.ChargeHeadroom())
	}
	if dischargeWh > b.DischargeHeadroom()+tol {
		return fmt.Errorf("%w: discharge %v exceeds headroom %v", ErrBatteryStep, dischargeWh, b.DischargeHeadroom())
	}
	b.level += units.Wh(b.spec.chargeEff()*chargeWh.Wh() - dischargeWh.Wh()/b.spec.dischargeEff())
	if b.level < 0 {
		b.level = 0
	}
	if b.level > b.spec.CapacityWh {
		b.level = b.spec.CapacityWh
	}
	return nil
}

// GridConnection describes a node's link to the power grid (paper eq. (6)
// and (14)).
type GridConnection struct {
	// MaxDrawWh is p_i^max, the per-slot cap on drawn energy. Zero means no
	// grid access at all.
	MaxDrawWh units.Energy
	// AlwaysOn marks base stations, which are permanently connected.
	AlwaysOn bool
	// OnProb is the per-slot connection probability ξ_i for mobile users
	// (ignored when AlwaysOn).
	OnProb float64
}

// SampleConnected draws ω_i(t) for one slot.
func (g GridConnection) SampleConnected(src *rng.Source) bool {
	if g.MaxDrawWh <= 0 {
		return false
	}
	if g.AlwaysOn {
		return true
	}
	return src.Bernoulli(g.OnProb)
}

// CostFunc is the provider's energy generation cost f(P): non-negative,
// non-decreasing, convex (paper Section II-E).
type CostFunc interface {
	// Eval returns f(p) for total grid energy p.
	Eval(p units.Energy) units.Cost
	// Deriv returns f'(p).
	Deriv(p units.Energy) units.Price
	// MaxDeriv returns γ_max = max f'(p) over p in [0, pMax]; it sizes the
	// shifted battery queue z_i(t) = x_i(t) − V γ_max − d_i^max.
	MaxDeriv(pMax units.Energy) units.Price
}

// Quadratic is f(P) = A·P² + B·P + C, the paper's simulated cost
// (A=0.8, B=0.2, C=0), with P taken in Wh.
type Quadratic struct {
	A, B, C float64
}

// Eval implements CostFunc.
func (q Quadratic) Eval(p units.Energy) units.Cost {
	pw := p.Wh()
	return units.CostOf(q.A*pw*pw + q.B*pw + q.C)
}

// Deriv implements CostFunc.
func (q Quadratic) Deriv(p units.Energy) units.Price {
	return units.PricePerWh(2*q.A*p.Wh() + q.B)
}

// MaxDeriv implements CostFunc. For a convex quadratic (A >= 0) the maximum
// derivative on [0, pMax] is at pMax.
func (q Quadratic) MaxDeriv(pMax units.Energy) units.Price {
	d0 := q.Deriv(0)
	d1 := q.Deriv(pMax)
	if d0 > d1 {
		return d0
	}
	return d1
}

// Scaled adapts a cost function to a different argument unit:
// Eval(p) = Inner.Eval(ArgScale·p). The simulator keeps energy in Wh while
// the paper's f(P) = 0.8P² + 0.2P operates on joules, so PaperCost wraps
// the quadratic with ArgScale = 3600.
type Scaled struct {
	Inner    CostFunc
	ArgScale float64
}

// Eval implements CostFunc.
func (s Scaled) Eval(p units.Energy) units.Cost {
	return s.Inner.Eval(p.Scale(s.ArgScale))
}

// Deriv implements CostFunc.
func (s Scaled) Deriv(p units.Energy) units.Price {
	return s.Inner.Deriv(p.Scale(s.ArgScale)).Scale(s.ArgScale)
}

// MaxDeriv implements CostFunc.
func (s Scaled) MaxDeriv(pMax units.Energy) units.Price {
	return s.Inner.MaxDeriv(pMax.Scale(s.ArgScale)).Scale(s.ArgScale)
}

// PaperCost returns the cost function used in the paper's simulations:
// f(P) = 0.8P² + 0.2P with P in joules (the scale that reproduces the
// ~1e12 cost magnitudes of the paper's Fig. 2), evaluated on Wh arguments.
func PaperCost() CostFunc {
	return Scaled{Inner: Quadratic{A: 0.8, B: 0.2, C: 0}, ArgScale: 3600}
}

// Linear is f(P) = Rate·P, a simple alternative cost for ablations.
type Linear struct {
	Rate float64
}

// Eval implements CostFunc.
func (l Linear) Eval(p units.Energy) units.Cost { return units.CostOf(l.Rate * p.Wh()) }

// Deriv implements CostFunc.
func (l Linear) Deriv(units.Energy) units.Price { return units.PricePerWh(l.Rate) }

// MaxDeriv implements CostFunc.
func (l Linear) MaxDeriv(units.Energy) units.Price { return units.PricePerWh(l.Rate) }

// Interface-compliance checks.
var (
	_ Process  = UniformPower{}
	_ Process  = ConstantPower(0)
	_ Process  = Off{}
	_ CostFunc = Quadratic{}
	_ CostFunc = Linear{}
	_ CostFunc = Scaled{}
)

// Cloner is implemented by stateful processes that must not be shared
// between nodes; topology construction clones them per node.
type Cloner interface {
	// CloneProcess returns an independent copy with fresh state.
	CloneProcess() Process
}

// Diurnal is a renewable output following a day cycle: the mean output
// traces a clipped sinusoid over PeriodSlots slots (solar panels peak at
// midday, produce nothing at night) with multiplicative uniform noise.
// It extends the paper's i.i.d. uniform processes with the temporal
// structure real renewable generation has.
//
// Diurnal is stateful (it tracks the slot phase); do not share one value
// across nodes or concurrent simulations.
type Diurnal struct {
	// PeakWh is the maximum mean output, reached mid-cycle.
	PeakWh units.Energy
	// PeriodSlots is the cycle length (e.g. 1440 one-minute slots per day).
	PeriodSlots int
	// NoiseFrac scales multiplicative noise: output is mean·U[1−f, 1+f],
	// clamped at [0, Max].
	NoiseFrac float64
	// PhaseSlots offsets the cycle start.
	PhaseSlots int

	slot int
}

// Sample implements Process.
func (d *Diurnal) Sample(src *rng.Source) units.Energy {
	period := d.PeriodSlots
	if period <= 0 {
		period = 1
	}
	phase := 2 * math.Pi * float64((d.slot+d.PhaseSlots)%period) / float64(period)
	d.slot++
	mean := d.PeakWh.Wh() * math.Sin(phase)
	if mean <= 0 {
		return 0 // night
	}
	out := mean * src.Uniform(1-d.NoiseFrac, 1+d.NoiseFrac)
	if out < 0 {
		out = 0
	}
	if out > d.PeakWh.Wh()*(1+d.NoiseFrac) {
		out = d.PeakWh.Wh() * (1 + d.NoiseFrac)
	}
	return units.Wh(out)
}

// Max implements Process.
func (d *Diurnal) Max() units.Energy { return d.PeakWh.Scale(1 + d.NoiseFrac) }

// CloneProcess implements Cloner: each node gets its own phase counter.
func (d *Diurnal) CloneProcess() Process {
	cp := *d
	cp.slot = 0
	return &cp
}

var (
	_ Process = (*Diurnal)(nil)
	_ Cloner  = (*Diurnal)(nil)
)
