package energymgmt

import (
	"math"
	"testing"

	"greencell/internal/energy"
	"greencell/internal/rng"
	"greencell/internal/units"
)

func cheapCost() energy.CostFunc { return energy.Quadratic{A: 0.01, B: 0.1} }

// checkFeasible validates every per-node constraint of S4 on a decision.
func checkFeasible(t *testing.T, req *Request, dec *Decision) {
	t.Helper()
	const tol = 1e-6
	for i, n := range req.Nodes {
		nd := dec.Nodes[i]
		if nd.RenewToDemand < -tol || nd.RenewToBattery < -tol || nd.GridToDemand < -tol ||
			nd.GridToBattery < -tol || nd.DischargeWh < -tol || nd.DeficitWh < -tol {
			t.Fatalf("node %d: negative flow: %+v", i, nd)
		}
		// (3) with spill: r + c^r <= R.
		if nd.RenewToDemand+nd.RenewToBattery > n.RenewableWh+tol {
			t.Fatalf("node %d: renewable overdrawn: %+v vs R=%v", i, nd, n.RenewableWh)
		}
		// (9): no simultaneous charge and discharge.
		if nd.ChargeWh() > tol && nd.DischargeWh > tol {
			t.Fatalf("node %d: simultaneous charge %v and discharge %v", i, nd.ChargeWh(), nd.DischargeWh)
		}
		// (11)/(12): headrooms.
		if nd.ChargeWh() > n.ChargeHeadroomWh+tol {
			t.Fatalf("node %d: charge %v exceeds headroom %v", i, nd.ChargeWh(), n.ChargeHeadroomWh)
		}
		if nd.DischargeWh > n.DischargeHeadroomWh+tol {
			t.Fatalf("node %d: discharge %v exceeds headroom %v", i, nd.DischargeWh, n.DischargeHeadroomWh)
		}
		// (14): grid cap (and no grid when disconnected).
		gridCap := units.Energy(0)
		if n.GridConnected {
			gridCap = n.GridCapWh
		}
		if nd.GridDrawWh() > gridCap+tol {
			t.Fatalf("node %d: grid draw %v exceeds cap %v", i, nd.GridDrawWh(), gridCap)
		}
		// Demand balance: g + r + d + deficit = E.
		served := nd.GridToDemand + nd.RenewToDemand + nd.DischargeWh + nd.DeficitWh
		if math.Abs((served - n.DemandWh).Wh()) > tol {
			t.Fatalf("node %d: demand balance %v != %v", i, served, n.DemandWh)
		}
	}
}

// objective evaluates the penalized S4 objective of an arbitrary decision.
func objective(req *Request, nodes []NodeDecision, pen float64) float64 {
	obj := 0.0
	p := units.Energy(0)
	for i, n := range req.Nodes {
		nd := nodes[i]
		obj += n.Z.Wh()*(nd.ChargeWh()-nd.DischargeWh).Wh() + pen*nd.DeficitWh.Wh()
		if n.IsBS {
			p += nd.GridDrawWh()
		}
	}
	return obj + req.V*req.Cost.Eval(p).Value()
}

func TestServesDemandFromRenewableFirst(t *testing.T) {
	req := &Request{
		Nodes: []NodeInput{{
			Z: 0, DemandWh: 3, RenewableWh: 10,
			ChargeHeadroomWh: 5, DischargeHeadroomWh: 2,
			GridConnected: true, GridCapWh: 10, IsBS: true,
		}},
		V:    1,
		Cost: cheapCost(),
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, req, dec)
	nd := dec.Nodes[0]
	if math.Abs(nd.RenewToDemand.Wh()-3) > 1e-6 {
		t.Errorf("renewable to demand = %v, want 3 (free beats grid)", nd.RenewToDemand)
	}
	if nd.GridToDemand > 1e-6 || nd.DeficitWh > 1e-6 {
		t.Errorf("grid/deficit used despite ample renewable: %+v", nd)
	}
}

func TestChargesWhenShiftedLevelNegative(t *testing.T) {
	// Very negative z: charging is worth far more than grid energy costs.
	req := &Request{
		Nodes: []NodeInput{{
			Z: -1e6, DemandWh: 1, RenewableWh: 0,
			ChargeHeadroomWh: 4, DischargeHeadroomWh: 2,
			GridConnected: true, GridCapWh: 100, IsBS: true,
		}},
		V:    1,
		Cost: cheapCost(),
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, req, dec)
	nd := dec.Nodes[0]
	if math.Abs(nd.GridToBattery.Wh()-4) > 1e-6 {
		t.Errorf("grid to battery = %v, want full headroom 4", nd.GridToBattery)
	}
	if nd.DischargeWh > 1e-9 {
		t.Errorf("discharge = %v, want 0 (complementarity with charging)", nd.DischargeWh)
	}
}

func TestDischargesWhenShiftedLevelPositive(t *testing.T) {
	// Positive z: draining the battery both serves demand and improves the
	// objective; grid should stay untouched.
	req := &Request{
		Nodes: []NodeInput{{
			Z: 5, DemandWh: 2, RenewableWh: 0,
			ChargeHeadroomWh: 4, DischargeHeadroomWh: 10,
			GridConnected: true, GridCapWh: 100, IsBS: true,
		}},
		V:    1,
		Cost: cheapCost(),
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, req, dec)
	nd := dec.Nodes[0]
	if math.Abs(nd.DischargeWh.Wh()-2) > 1e-6 {
		t.Errorf("discharge = %v, want demand 2", nd.DischargeWh)
	}
	if nd.GridDrawWh() > 1e-9 || nd.ChargeWh() > 1e-9 {
		t.Errorf("grid or charge used despite positive z: %+v", nd)
	}
}

func TestDeficitWhenNothingAvailable(t *testing.T) {
	req := &Request{
		Nodes: []NodeInput{{
			Z: -1, DemandWh: 5, RenewableWh: 1,
			ChargeHeadroomWh: 0, DischargeHeadroomWh: 2,
			GridConnected: false, GridCapWh: 100, IsBS: false,
		}},
		V:    1,
		Cost: cheapCost(),
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, req, dec)
	nd := dec.Nodes[0]
	// 1 renewable + 2 discharge leaves 2 unserved.
	if math.Abs(nd.DeficitWh.Wh()-2) > 1e-6 {
		t.Errorf("deficit = %v, want 2", nd.DeficitWh)
	}
	if math.Abs(dec.TotalDeficitWh.Wh()-2) > 1e-6 {
		t.Errorf("total deficit = %v, want 2", dec.TotalDeficitWh)
	}
}

func TestUserGridDrawOutsideCost(t *testing.T) {
	// A connected user with huge demand draws grid freely: P stays 0.
	req := &Request{
		Nodes: []NodeInput{{
			Z: 0, DemandWh: 50, RenewableWh: 0,
			ChargeHeadroomWh: 0, DischargeHeadroomWh: 0,
			GridConnected: true, GridCapWh: 100, IsBS: false,
		}},
		V:    1e6,
		Cost: energy.PaperCost(),
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, req, dec)
	if dec.GridTotalWh != 0 {
		t.Errorf("P = %v, want 0 (users are outside f)", dec.GridTotalWh)
	}
	if math.Abs(dec.Nodes[0].GridToDemand.Wh()-50) > 1e-6 {
		t.Errorf("user grid draw = %v, want 50", dec.Nodes[0].GridToDemand)
	}
	if dec.EnergyCost != 0 {
		t.Errorf("cost = %v, want 0", dec.EnergyCost)
	}
}

func TestQuadraticCostSpreadsAcrossStations(t *testing.T) {
	// Two identical BSs with demand: the convex f makes any split cost the
	// same only through total P; verify the total draw equals total demand
	// (z=0: no charging incentive) and the reported cost matches f(P).
	cost := energy.Quadratic{A: 1}
	req := &Request{
		Nodes: []NodeInput{
			{DemandWh: 3, GridConnected: true, GridCapWh: 10, IsBS: true},
			{DemandWh: 5, GridConnected: true, GridCapWh: 10, IsBS: true},
		},
		V:    2,
		Cost: cost,
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, req, dec)
	if math.Abs(dec.GridTotalWh.Wh()-8) > 1e-6 {
		t.Errorf("P = %v, want 8", dec.GridTotalWh)
	}
	if math.Abs((dec.EnergyCost - cost.Eval(dec.GridTotalWh)).Value()) > 1e-9 {
		t.Errorf("EnergyCost %v != f(P) %v", dec.EnergyCost, cost.Eval(dec.GridTotalWh))
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Request{V: 1}); err == nil {
		t.Error("nil cost accepted")
	}
	if _, err := Solve(&Request{V: -1, Cost: cheapCost()}); err == nil {
		t.Error("negative V accepted")
	}
	if _, err := Solve(&Request{
		V: 1, Cost: cheapCost(),
		Nodes: []NodeInput{{DemandWh: -1}},
	}); err == nil {
		t.Error("negative demand accepted")
	}
}

// randomRequest builds a random S4 instance.
func randomRequest(src *rng.Source, nodes int) *Request {
	req := &Request{
		V:    math.Pow(10, src.Uniform(0, 5)),
		Cost: energy.Quadratic{A: src.Uniform(0.01, 1), B: src.Uniform(0, 1)},
	}
	for i := 0; i < nodes; i++ {
		req.Nodes = append(req.Nodes, NodeInput{
			Z:                   units.Wh(src.Uniform(-20, 5) * req.V),
			DemandWh:            units.Wh(src.Uniform(0, 5)),
			RenewableWh:         units.Wh(src.Uniform(0, 4)),
			ChargeHeadroomWh:    units.Wh(src.Uniform(0, 3)),
			DischargeHeadroomWh: units.Wh(src.Uniform(0, 3)),
			GridConnected:       src.Bernoulli(0.8),
			GridCapWh:           units.Wh(src.Uniform(0, 6)),
			IsBS:                src.Bernoulli(0.6),
		})
	}
	return req
}

// randomFeasible samples a random feasible decision for req.
func randomFeasible(src *rng.Source, req *Request) []NodeDecision {
	out := make([]NodeDecision, len(req.Nodes))
	for i, n := range req.Nodes {
		var nd NodeDecision
		gridCap := units.Energy(0)
		if n.GridConnected {
			gridCap = n.GridCapWh
		}
		if src.Bernoulli(0.5) { // charge mode
			nd.RenewToBattery = units.Wh(src.Uniform(0, math.Min(n.RenewableWh.Wh(), n.ChargeHeadroomWh.Wh())))
			nd.GridToBattery = units.Wh(src.Uniform(0, math.Min(gridCap.Wh(), (n.ChargeHeadroomWh-nd.RenewToBattery).Wh())))
		} else {
			nd.DischargeWh = units.Wh(src.Uniform(0, math.Min(n.DischargeHeadroomWh.Wh(), n.DemandWh.Wh())))
		}
		// Serve demand: renewable, then grid, then deficit.
		need := n.DemandWh - nd.DischargeWh
		nd.RenewToDemand = units.Wh(math.Min(need.Wh(), (n.RenewableWh - nd.RenewToBattery).Wh()))
		need -= nd.RenewToDemand
		nd.GridToDemand = units.Wh(math.Min(need.Wh(), (gridCap - nd.GridToBattery).Wh()))
		need -= nd.GridToDemand
		nd.DeficitWh = need
		out[i] = nd
	}
	return out
}

// TestDominatesRandomFeasible checks on random instances that the solver's
// decision is at least as good as hundreds of random feasible decisions —
// the optimality spot-check that replaces CPLEX.
func TestDominatesRandomFeasible(t *testing.T) {
	src := rng.New(404)
	for trial := 0; trial < 60; trial++ {
		req := randomRequest(src, 1+src.Intn(4))
		dec, err := Solve(req)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFeasible(t, req, dec)

		// Recover the penalty the solver used.
		pMax := units.Energy(0)
		maxAbsZ := 0.0
		for _, n := range req.Nodes {
			if n.IsBS && n.GridConnected {
				pMax += n.GridCapWh
			}
			if a := math.Abs(n.Z.Wh()); a > maxAbsZ {
				maxAbsZ = a
			}
		}
		pen := 10*(maxAbsZ+req.V*req.Cost.MaxDeriv(pMax).PerWh()) + 1e6

		ours := objective(req, dec.Nodes, pen)
		for probe := 0; probe < 300; probe++ {
			cand := randomFeasible(src, req)
			if obj := objective(req, cand, pen); obj < ours-1e-6*(1+math.Abs(ours)) {
				t.Fatalf("trial %d probe %d: random feasible %v beats solver %v",
					trial, probe, obj, ours)
			}
		}
	}
}

// TestObjectiveFieldsConsistent verifies the Decision aggregates match the
// per-node rows.
func TestObjectiveFieldsConsistent(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		req := randomRequest(src, 1+src.Intn(5))
		dec, err := Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		p := units.Energy(0)
		deficit := units.Energy(0)
		zsum := 0.0
		for i, n := range req.Nodes {
			nd := dec.Nodes[i]
			if n.IsBS {
				p += nd.GridDrawWh()
			}
			deficit += nd.DeficitWh
			zsum += n.Z.Wh() * (nd.ChargeWh() - nd.DischargeWh).Wh()
		}
		if math.Abs((p - dec.GridTotalWh).Wh()) > 1e-9 {
			t.Fatalf("GridTotalWh %v != recomputed %v", dec.GridTotalWh, p)
		}
		if math.Abs((deficit - dec.TotalDeficitWh).Wh()) > 1e-9 {
			t.Fatalf("TotalDeficitWh %v != recomputed %v", dec.TotalDeficitWh, deficit)
		}
		want := zsum + req.V*req.Cost.Eval(p).Value()
		if math.Abs(want-dec.Objective) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("Objective %v != recomputed %v", dec.Objective, want)
		}
	}
}

func TestMarginalPrice(t *testing.T) {
	cost := energy.Quadratic{A: 1, B: 0.5}
	req := &Request{
		Nodes: []NodeInput{{DemandWh: 3, GridConnected: true, GridCapWh: 10, IsBS: true}},
		V:     2,
		Cost:  cost,
	}
	dec, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	want := cost.Deriv(dec.GridTotalWh).Scale(2)
	if math.Abs((dec.MarginalPriceWh - want).PerWh()) > 1e-9 {
		t.Errorf("MarginalPriceWh = %v, want %v", dec.MarginalPriceWh, want)
	}
}
