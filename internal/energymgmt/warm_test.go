package energymgmt

import (
	"errors"
	"math"
	"testing"

	"greencell/internal/rng"
	"greencell/internal/units"
)

// randNodes draws a random node population; the first half are base
// stations so the joint budgeted program and the independent per-node
// programs are both exercised.
func randNodes(src *rng.Source, n int) []NodeInput {
	nodes := make([]NodeInput, n)
	for i := range nodes {
		nodes[i] = NodeInput{
			Z:                   units.Wh(src.Uniform(-50, 50)),
			DemandWh:            units.Wh(src.Uniform(0, 20)),
			RenewableWh:         units.Wh(src.Uniform(0, 15)),
			ChargeHeadroomWh:    units.Wh(src.Uniform(0, 10)),
			DischargeHeadroomWh: units.Wh(src.Uniform(0, 10)),
			GridConnected:       !src.Bernoulli(0.1),
			GridCapWh:           units.Wh(src.Uniform(5, 30)),
			IsBS:                i < n/2,
		}
	}
	return nodes
}

// TestWarmMatchesColdAcrossSlots drives S4 through a sequence of randomly
// evolving slots twice — once cold, once through a persistent WarmState —
// and requires matching objectives, matching deficits, feasible decisions,
// and a strictly positive warm-start count (the golden-section probes are
// RHS-only edits, so the joint program must warm-start regardless of how
// the node states move between slots).
func TestWarmMatchesColdAcrossSlots(t *testing.T) {
	src := rng.New(640)
	warm := &WarmState{}
	warmed := 0
	for slot := 0; slot < 25; slot++ {
		nodes := randNodes(src, 6)
		coldReq := &Request{Nodes: nodes, V: 100, Cost: cheapCost()}
		cold, err := Solve(coldReq)
		if err != nil {
			t.Fatal(err)
		}
		warmReq := &Request{Nodes: nodes, V: 100, Cost: cheapCost(), Warm: warm}
		hot, err := Solve(warmReq)
		if err != nil {
			t.Fatal(err)
		}
		checkFeasible(t, warmReq, hot)
		if tol := 1e-5 * (1 + math.Abs(cold.Objective)); math.Abs(cold.Objective-hot.Objective) > tol {
			t.Fatalf("slot %d: objective cold=%v warm=%v", slot, cold.Objective, hot.Objective)
		}
		if d := (cold.TotalDeficitWh - hot.TotalDeficitWh).Wh(); math.Abs(d) > 1e-5 {
			t.Fatalf("slot %d: deficit cold=%v warm=%v", slot, cold.TotalDeficitWh, hot.TotalDeficitWh)
		}
		if cold.WarmStarts != 0 || cold.BasisInvalidations != 0 {
			t.Fatalf("slot %d: cold path reported warm counters: %+v", slot, cold)
		}
		if hot.WarmStarts == 0 {
			t.Fatalf("slot %d: no warm starts despite budget probes", slot)
		}
		warmed += hot.WarmStarts
	}
	if warmed == 0 {
		t.Fatal("no warm starts across 25 slots")
	}
}

// TestWarmSurvivesShapeChange grows the node population and flips
// base-station membership mid-sequence: the warm state must rebuild its
// programs silently and keep matching the cold solver.
func TestWarmSurvivesShapeChange(t *testing.T) {
	src := rng.New(641)
	warm := &WarmState{}
	for slot := 0; slot < 12; slot++ {
		n := 4 + slot%3 // node count cycles 4,5,6
		nodes := randNodes(src, n)
		if slot%4 == 3 {
			nodes[0].IsBS = !nodes[0].IsBS
		}
		coldReq := &Request{Nodes: nodes, V: 50, Cost: cheapCost()}
		cold, err := Solve(coldReq)
		if err != nil {
			t.Fatal(err)
		}
		warmReq := &Request{Nodes: nodes, V: 50, Cost: cheapCost(), Warm: warm}
		hot, err := Solve(warmReq)
		if err != nil {
			t.Fatal(err)
		}
		checkFeasible(t, warmReq, hot)
		if tol := 1e-5 * (1 + math.Abs(cold.Objective)); math.Abs(cold.Objective-hot.Objective) > tol {
			t.Fatalf("slot %d (n=%d): objective cold=%v warm=%v", slot, n, cold.Objective, hot.Objective)
		}
	}
}

// TestWarmIterationLimitSemantics checks that an exhausted per-solve
// budget surfaces as ErrIterationLimit through the warm path exactly like
// the cold one, and that the warm state remains usable afterwards.
func TestWarmIterationLimitSemantics(t *testing.T) {
	src := rng.New(642)
	nodes := randNodes(src, 6)
	warm := &WarmState{}

	limited := &Request{Nodes: nodes, V: 100, Cost: cheapCost(), MaxLPIterations: 1, Warm: warm}
	if _, err := Solve(limited); !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("warm limited solve: got %v, want ErrIterationLimit", err)
	}

	free := &Request{Nodes: nodes, V: 100, Cost: cheapCost(), Warm: warm}
	hot, err := Solve(free)
	if err != nil {
		t.Fatalf("warm state unusable after budget error: %v", err)
	}
	checkFeasible(t, free, hot)
	cold, err := Solve(&Request{Nodes: nodes, V: 100, Cost: cheapCost()})
	if err != nil {
		t.Fatal(err)
	}
	if tol := 1e-5 * (1 + math.Abs(cold.Objective)); math.Abs(cold.Objective-hot.Objective) > tol {
		t.Fatalf("objective cold=%v warm=%v", cold.Objective, hot.Objective)
	}
}
