// Package energymgmt solves the paper's per-slot energy-management
// subproblem S4:
//
//	min  Σ_i z_i(t)·(c_i − d_i) + V·f(P)
//	s.t. constraints (9)–(14), with P = Σ_{i∈B} (g_i + c_i^g)
//
// The paper hands S4 to CPLEX as a convex program. Here it is solved
// exactly by structure instead:
//
//   - The no-simultaneous-charge-and-discharge constraint (9) is without
//     loss of generality: any solution with c_i > 0 and d_i > 0 converts to
//     an equal-objective complementary one by lowering both by min(c_i,d_i)
//     and redirecting the freed charging source (grid or renewable) to the
//     demand d_i was serving. Total grid draw, net battery change, and every
//     constraint are preserved. S4 is therefore jointly convex.
//   - With (9) relaxed, each node's decision is linear; the only coupling
//     is the convex f on the total base-station draw P. The solver runs a
//     golden-section search over the draw budget T, evaluating an inner LP
//     (on the in-repo simplex) that optimizes all base stations under
//     Σ(g_i + c_i^g) ≤ T; inner(T) + V·f(T) is convex in T.
//   - Non-base-station nodes do not appear in f (the paper prices only
//     base-station energy) and are solved independently.
//
// A non-negative "deficit" slack with a dominating penalty keeps the
// program feasible when a node's battery+renewable+grid cannot cover its
// demand; deficits are surfaced so the simulator can report them.
package energymgmt

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/energy"
	"greencell/internal/lp"
	"greencell/internal/units"
)

// NodeInput is one node's state for S4.
type NodeInput struct {
	// Z is z_i(t) = x_i(t) − V·γmax − d_i^max, the shifted battery level.
	Z units.Energy
	// DemandWh is E_i(t), fixed once the slot's schedule is known (eq. (2)).
	DemandWh units.Energy
	// RenewableWh is R_i(t) expressed as energy for this slot.
	RenewableWh units.Energy
	// ChargeHeadroomWh is min(c_i^max, x_i^max − x_i) — eq. (11).
	ChargeHeadroomWh units.Energy
	// DischargeHeadroomWh is min(d_i^max, x_i) — eq. (12).
	DischargeHeadroomWh units.Energy
	// GridConnected is ω_i(t).
	GridConnected bool
	// GridCapWh is p_i^max — eq. (14).
	GridCapWh units.Energy
	// IsBS marks base stations, whose grid draw is priced by f (Section II-E).
	IsBS bool
}

// NodeDecision is one node's S4 outcome.
type NodeDecision struct {
	// RenewToDemand is r_i; RenewToBattery is c_i^r (eq. (3)).
	RenewToDemand, RenewToBattery units.Energy
	// GridToDemand is g_i; GridToBattery is c_i^g (eqs. (5), (14)).
	GridToDemand, GridToBattery units.Energy
	// DischargeWh is d_i.
	DischargeWh units.Energy
	// DeficitWh is unserved demand (0 in normally-parameterized scenarios).
	DeficitWh units.Energy
}

// ChargeWh returns c_i = c_i^r + c_i^g (grid flows are zero when the node
// is disconnected, so the ω_i gating is already applied).
func (n NodeDecision) ChargeWh() units.Energy { return n.RenewToBattery + n.GridToBattery }

// GridDrawWh returns g_i + c_i^g.
func (n NodeDecision) GridDrawWh() units.Energy { return n.GridToDemand + n.GridToBattery }

// Decision is the S4 outcome for all nodes.
type Decision struct {
	Nodes []NodeDecision
	// GridTotalWh is P(t), the total base-station grid draw.
	GridTotalWh units.Energy
	// EnergyCost is f(P(t)).
	EnergyCost units.Cost
	// Objective is Σ z_i(c_i−d_i) + V·f(P) (without deficit penalties).
	// It mixes Wh² drift terms with cost units, so it deliberately stays a
	// bare float64.
	Objective float64
	// TotalDeficitWh sums unserved demand across nodes.
	TotalDeficitWh units.Energy
	// MarginalPriceWh is V·f'(P), the shadow price of one more Wh of grid
	// energy at the optimum — the signal the decomposition prices nodes
	// against.
	MarginalPriceWh units.Price
	// LPSolves / LPIterations report the optimization work behind this
	// decision (per-node LPs plus every golden-section probe), for the
	// metrics layer (docs/METRICS.md).
	LPSolves     int
	LPIterations int
	// WarmStarts / BasisInvalidations count warm-started inner solves and
	// reused bases discarded for a cold rebuild. Both stay zero unless the
	// request carried a WarmState; they feed the lp_warm_starts_total and
	// lp_basis_invalidations_total metrics (docs/METRICS.md).
	WarmStarts         int
	BasisInvalidations int
}

// Request is one slot's energy-management problem.
type Request struct {
	Nodes []NodeInput
	// V is the drift-plus-penalty weight.
	V float64
	// Cost is f.
	Cost energy.CostFunc
	// DeficitPenalty is the per-Wh cost of unserved demand; 0 means an
	// automatic value that dominates every legitimate marginal cost.
	DeficitPenalty float64
	// MaxLPIterations, when positive, caps the total simplex iterations of
	// each inner LP solve (lp.Problem.SetIterationLimit). An exhausted
	// budget surfaces as an error wrapping ErrIterationLimit, on which the
	// controller falls back to the greedy safe-action energy split
	// (docs/ROBUSTNESS.md).
	MaxLPIterations int
	// Warm, when non-nil, carries LP warm-start state across Solve calls
	// (docs/PERFORMANCE.md): the per-node and joint base-station programs
	// stay alive with their factorized bases, are refreshed in place each
	// slot, and the golden-section budget probes re-solve by dual simplex
	// instead of from scratch. nil keeps the cold, golden-pinned path.
	Warm *WarmState
}

// ErrRequest reports an invalid request.
var ErrRequest = errors.New("energymgmt: invalid request")

// Typed solver-outcome sentinels, mirroring package sched: they classify
// how a structurally valid solve failed so the controller's degradation
// path can branch with errors.Is. ErrRequest remains a caller bug and is
// not a degradation trigger.
var (
	// ErrInfeasible reports that an inner LP ended infeasible (or
	// otherwise failed to reach an optimum). The deficit slack makes
	// every S4 program feasible, so organically this indicates numerical
	// trouble.
	ErrInfeasible = errors.New("energymgmt: infeasible")
	// ErrIterationLimit reports that an inner LP exhausted its iteration
	// budget (Request.MaxLPIterations or the engine safety cap).
	ErrIterationLimit = errors.New("energymgmt: iteration limit")
)

// Solve computes the S4 decision.
func Solve(req *Request) (*Decision, error) {
	if req.Cost == nil {
		return nil, fmt.Errorf("%w: nil cost function", ErrRequest)
	}
	if req.V < 0 {
		return nil, fmt.Errorf("%w: negative V", ErrRequest)
	}
	for i, n := range req.Nodes {
		if n.DemandWh < 0 || n.RenewableWh < 0 || n.ChargeHeadroomWh < 0 ||
			n.DischargeHeadroomWh < 0 || n.GridCapWh < 0 {
			return nil, fmt.Errorf("%w: node %d has negative field: %+v", ErrRequest, i, n)
		}
	}

	pMax := units.Energy(0)
	maxAbsZ := 0.0
	for _, n := range req.Nodes {
		if n.IsBS && n.GridConnected {
			pMax += n.GridCapWh
		}
		if a := math.Abs(n.Z.Wh()); a > maxAbsZ {
			maxAbsZ = a
		}
	}
	pen := req.DeficitPenalty
	if pen == 0 {
		pen = 10*(maxAbsZ+req.V*req.Cost.MaxDeriv(pMax).PerWh()) + 1e6
	}

	dec := &Decision{Nodes: make([]NodeDecision, len(req.Nodes))}
	bs := make([]int, 0, len(req.Nodes))
	for i, n := range req.Nodes {
		if n.IsBS {
			bs = append(bs, i)
		}
	}

	if req.Warm != nil {
		if err := req.Warm.solveInto(req, dec, bs, pen, pMax.Wh()); err != nil {
			return nil, err
		}
	} else if err := solveCold(req, dec, bs, pen, pMax); err != nil {
		return nil, err
	}

	// Restore complementarity (9) — objective-preserving (see package doc).
	for i := range dec.Nodes {
		enforceComplementarity(&dec.Nodes[i])
	}

	p := units.Energy(0)
	obj := 0.0
	deficit := units.Energy(0)
	for i, n := range req.Nodes {
		nd := dec.Nodes[i]
		if n.IsBS {
			p += nd.GridDrawWh()
		}
		obj += n.Z.Wh() * (nd.ChargeWh() - nd.DischargeWh).Wh()
		deficit += nd.DeficitWh
	}
	dec.GridTotalWh = p
	dec.EnergyCost = req.Cost.Eval(p)
	dec.Objective = obj + req.V*dec.EnergyCost.Value()
	dec.TotalDeficitWh = deficit
	dec.MarginalPriceWh = req.Cost.Deriv(p).Scale(req.V)
	return dec, nil
}

// SafeDecision returns the documented safe-action energy split used when
// the S4 solve fails or exceeds its budget (docs/ROBUSTNESS.md): per node,
// serve demand greedily from renewable first, then grid (when connected, up
// to the cap), then battery discharge (up to headroom); never charge; count
// any remainder as deficit. Eqs. (3), (11), (12), (14) and the demand
// balance (2) hold by construction — renewable use never exceeds R_i, grid
// draw never exceeds ω_i·p_i^max, discharge never exceeds the headroom, and
// charge is zero — so the invariant checker passes on degraded slots. The
// split is deliberately myopic: it ignores z_i and V·f, trading optimality
// for unconditional feasibility, and never errors.
func SafeDecision(req *Request) *Decision {
	dec := &Decision{Nodes: make([]NodeDecision, len(req.Nodes))}
	p := units.Energy(0)
	obj := 0.0
	deficit := units.Energy(0)
	for i, n := range req.Nodes {
		need := n.DemandWh
		r := units.Wh(math.Min(n.RenewableWh.Wh(), need.Wh()))
		need -= r
		g := units.Energy(0)
		if n.GridConnected {
			g = units.Wh(math.Min(n.GridCapWh.Wh(), need.Wh()))
		}
		need -= g
		d := units.Wh(math.Min(n.DischargeHeadroomWh.Wh(), need.Wh()))
		need -= d
		dec.Nodes[i] = NodeDecision{
			RenewToDemand: r,
			GridToDemand:  g,
			DischargeWh:   d,
			DeficitWh:     need,
		}
		if n.IsBS {
			p += g
		}
		obj -= n.Z.Wh() * d.Wh()
		deficit += need
	}
	dec.GridTotalWh = p
	dec.EnergyCost = req.Cost.Eval(p)
	dec.Objective = obj + req.V*dec.EnergyCost.Value()
	dec.TotalDeficitWh = deficit
	dec.MarginalPriceWh = req.Cost.Deriv(p).Scale(req.V)
	return dec
}

// solveCold runs the one-shot S4 path: independent per-node LPs plus the
// golden-section search over the base-station draw budget, each inner
// problem built fresh. Two per-call presolve caches absorb the reduction
// rebuild across the probes — lp.PresolveCache is bit-identical to a fresh
// presolve by construction, which is what keeps this path safe under the
// golden metrics fixture.
func solveCold(req *Request, dec *Decision, bs []int, pen float64, pMax units.Energy) error {
	var nodeCache, bsCache lp.PresolveCache

	// Non-base-station nodes: independent LPs (their grid is outside f).
	for i, n := range req.Nodes {
		if n.IsBS {
			continue
		}
		//lint:allow hotalloc -- the one-element node set is keyed into the presolve cache; reusing a buffer would alias cache entries
		nd, _, iters, err := solveNodes(req, []int{i}, math.Inf(1), pen, false, &nodeCache)
		if err != nil {
			return err
		}
		dec.LPSolves++
		dec.LPIterations += iters
		dec.Nodes[i] = nd[i]
	}

	// Base stations: golden-section over the total-draw budget T; the inner
	// LP value is convex non-increasing in T and V·f(T) convex increasing.
	if len(bs) == 0 {
		return nil
	}
	value := func(T float64) (float64, error) {
		_, inner, iters, err := solveNodes(req, bs, T, pen, true, &bsCache)
		if err != nil {
			return 0, err
		}
		dec.LPSolves++
		dec.LPIterations += iters
		return inner + req.V*req.Cost.Eval(units.Wh(T)).Value(), nil
	}
	tStar, err := goldenSection(value, 0, pMax.Wh())
	if err != nil {
		return err
	}
	nds, _, iters, err := solveNodes(req, bs, tStar, pen, true, &bsCache)
	if err != nil {
		return err
	}
	dec.LPSolves++
	dec.LPIterations += iters
	for _, i := range bs {
		dec.Nodes[i] = nds[i]
	}
	return nil
}

// nodeVars holds one node's LP variable handles, in the order buildNodesLP
// adds them.
type nodeVars struct{ r, cr, g, cg, d, u lp.VarID }

// buildNodesLP constructs the relaxed joint LP over the given nodes, with
// the total-grid-draw budget row appended last (when budgeted is true and
// budget is finite). The row layout is fixed: four constraints per node in
// nodes order — renew, chargecap, gridcap, demand — so row 4k+j addresses
// node k's j-th constraint; the warm path relies on this to refresh
// right-hand sides in place.
func buildNodesLP(req *Request, nodes []int, budget, pen float64, budgeted bool) (*lp.Problem, map[int]nodeVars) {
	p := lp.NewProblem(lp.Minimize)
	p.SetIterationLimit(req.MaxLPIterations)
	inf := math.Inf(1)
	vs := make(map[int]nodeVars, len(nodes))

	budgetTerms := make([]lp.Term, 0, 2*len(nodes))
	for _, i := range nodes {
		n := req.Nodes[i]
		gridCap := 0.0
		if n.GridConnected {
			gridCap = n.GridCapWh.Wh()
		}
		z := n.Z.Wh()
		v := nodeVars{
			r:  p.AddVar("r", 0, inf, 0),
			cr: p.AddVar("cr", 0, inf, z),
			g:  p.AddVar("g", 0, inf, 0),
			cg: p.AddVar("cg", 0, inf, z),
			d:  p.AddVar("d", 0, n.DischargeHeadroomWh.Wh(), -z),
			u:  p.AddVar("u", 0, inf, pen),
		}
		vs[i] = v
		// (3) with spill allowed: r + c^r ≤ R.
		p.AddConstraint("renew", lp.LE, n.RenewableWh.Wh(),
			lp.Term{Var: v.r, Coef: 1}, lp.Term{Var: v.cr, Coef: 1})
		// (11): c^r + c^g ≤ charge headroom.
		p.AddConstraint("chargecap", lp.LE, n.ChargeHeadroomWh.Wh(),
			lp.Term{Var: v.cr, Coef: 1}, lp.Term{Var: v.cg, Coef: 1})
		// (14): g + c^g ≤ p^max (zero when disconnected).
		p.AddConstraint("gridcap", lp.LE, gridCap,
			lp.Term{Var: v.g, Coef: 1}, lp.Term{Var: v.cg, Coef: 1})
		// Demand balance: g + r + d + u = E.
		p.AddConstraint("demand", lp.EQ, n.DemandWh.Wh(),
			lp.Term{Var: v.g, Coef: 1}, lp.Term{Var: v.r, Coef: 1},
			lp.Term{Var: v.d, Coef: 1}, lp.Term{Var: v.u, Coef: 1})
		if budgeted {
			budgetTerms = append(budgetTerms,
				lp.Term{Var: v.g, Coef: 1}, lp.Term{Var: v.cg, Coef: 1})
		}
	}
	if budgeted && !math.IsInf(budget, 1) {
		p.AddConstraint("budget", lp.LE, budget, budgetTerms...)
	}
	return p, vs
}

// solveNodes optimizes the relaxed per-node decisions of the given nodes
// jointly under an optional total-grid-draw budget (applied when budgeted is
// true and budget is finite). It returns the decisions (indexed like
// req.Nodes; untouched entries are zero), the LP objective value, and the
// simplex iterations spent. A non-nil cache memoizes the presolve analysis
// across calls of identical structure without changing any result.
func solveNodes(req *Request, nodes []int, budget, pen float64, budgeted bool, cache *lp.PresolveCache) ([]NodeDecision, float64, int, error) {
	p, vs := buildNodesLP(req, nodes, budget, pen, budgeted)
	sol, err := mapOutcome(p.SolveCached(cache))
	if err != nil {
		iters := 0
		if sol != nil {
			iters = sol.Iterations
		}
		return nil, 0, iters, err
	}
	out := make([]NodeDecision, len(req.Nodes))
	for _, i := range nodes {
		out[i] = decisionFrom(sol, vs[i])
	}
	return out, sol.Objective, sol.Iterations, nil
}

// mapOutcome translates an inner-LP result onto the package's error
// vocabulary: hard solve errors pass through wrapped, non-optimal statuses
// become the typed ErrIterationLimit / ErrInfeasible sentinels the
// controller's degradation path branches on. The solution (when any) is
// returned alongside the error so callers can still report iterations.
func mapOutcome(sol *lp.Solution, err error) (*lp.Solution, error) {
	if err != nil {
		return nil, fmt.Errorf("energymgmt: node LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		if sol.Status == lp.IterationLimit {
			return sol, fmt.Errorf("node LP: %w", ErrIterationLimit)
		}
		return sol, fmt.Errorf(
			"node LP: %w (status %v; deficit slack should make it feasible)", ErrInfeasible, sol.Status)
	}
	return sol, nil
}

// decisionFrom reads one node's decision out of a solved LP.
func decisionFrom(sol *lp.Solution, v nodeVars) NodeDecision {
	return NodeDecision{
		RenewToDemand:  units.Wh(sol.Value(v.r)),
		RenewToBattery: units.Wh(sol.Value(v.cr)),
		GridToDemand:   units.Wh(sol.Value(v.g)),
		GridToBattery:  units.Wh(sol.Value(v.cg)),
		DischargeWh:    units.Wh(sol.Value(v.d)),
		DeficitWh:      units.Wh(sol.Value(v.u)),
	}
}

// enforceComplementarity converts a relaxed decision (possibly charging and
// discharging at once) into the equal-objective complementary form: reduce
// charge and discharge by m = min(c, d), redirecting the freed grid
// charging to grid-to-demand and freed renewable charging to
// renewable-to-demand.
func enforceComplementarity(nd *NodeDecision) {
	m := nd.ChargeWh()
	if nd.DischargeWh < m {
		m = nd.DischargeWh
	}
	if m <= 0 {
		return
	}
	fromGrid := units.Wh(math.Min(nd.GridToBattery.Wh(), m.Wh()))
	nd.GridToBattery -= fromGrid
	nd.GridToDemand += fromGrid
	fromRenew := m - fromGrid
	nd.RenewToBattery -= fromRenew
	nd.RenewToDemand += fromRenew
	nd.DischargeWh -= m
	if nd.DischargeWh < 1e-12 {
		nd.DischargeWh = 0
	}
	if nd.RenewToBattery < 1e-12 {
		nd.RenewToBattery = 0
	}
	if nd.GridToBattery < 1e-12 {
		nd.GridToBattery = 0
	}
}

// goldenSection minimizes a convex function on [lo, hi] to ~1e-10 relative
// interval width and returns the best point (including the endpoints).
func goldenSection(f func(float64) (float64, error), lo, hi float64) (float64, error) {
	if hi <= lo {
		return lo, nil
	}
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, err := f(x1)
	if err != nil {
		return 0, err
	}
	f2, err := f(x2)
	if err != nil {
		return 0, err
	}
	for it := 0; it < 80 && b-a > 1e-10*(1+hi-lo); it++ {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			if f1, err = f(x1); err != nil {
				return 0, err
			}
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			if f2, err = f(x2); err != nil {
				return 0, err
			}
		}
	}
	// Candidate: interval midpoint and the original endpoints.
	best := (a + b) / 2
	fBest, err := f(best)
	if err != nil {
		return 0, err
	}
	for _, c := range []float64{lo, hi} {
		fc, err := f(c)
		if err != nil {
			return 0, err
		}
		if fc < fBest {
			best, fBest = c, fc
		}
	}
	return best, nil
}
