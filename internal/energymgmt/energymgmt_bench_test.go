package energymgmt

import (
	"testing"

	"greencell/internal/energy"
	"greencell/internal/rng"
	"greencell/internal/units"
)

// benchRequest mirrors the paper scenario's S4 instance: 2 base stations
// and 20 users.
func benchRequest() *Request {
	src := rng.New(7)
	req := &Request{V: 1e5, Cost: energy.PaperCost()}
	for i := 0; i < 22; i++ {
		isBS := i < 2
		req.Nodes = append(req.Nodes, NodeInput{
			Z:                   units.Wh(-1e5 * src.Uniform(1e3, 1e4)),
			DemandWh:            units.Wh(src.Uniform(0, 0.3)),
			RenewableWh:         units.Wh(src.Uniform(0, 1.5)),
			ChargeHeadroomWh:    units.Wh(src.Uniform(0, 0.4)),
			DischargeHeadroomWh: units.Wh(src.Uniform(0, 0.4)),
			GridConnected:       isBS || src.Bernoulli(0.5),
			GridCapWh:           200,
			IsBS:                isBS,
		})
	}
	return req
}

// BenchmarkSolveS4 measures the per-slot energy-management solve: the
// golden-section search over the grid budget with inner LPs.
func BenchmarkSolveS4(b *testing.B) {
	req := benchRequest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(req); err != nil {
			b.Fatal(err)
		}
	}
}
