package energymgmt

import (
	"math"

	"greencell/internal/lp"
	"greencell/internal/units"
)

// WarmState carries S4's LP warm-start state across Solve calls on behalf
// of a controller that solves the same network slot after slot. Instead of
// rebuilding every inner problem from scratch, the state keeps one live
// lp.WarmSolver per non-base-station node plus one for the joint
// base-station program, and each slot refreshes their bounds, costs, and
// right-hand sides in place:
//
//   - the joint base-station program always carries the total-draw budget
//     row, so every golden-section probe is an RHS-only edit re-solved by
//     dual simplex on the factorized basis — the dominant win, since the
//     search makes ~85 probes per slot;
//   - per-node programs change only in z-driven costs and headroom bounds,
//     which the warm solver classifies per slot (reusing the basis when it
//     stays primal or dual feasible, falling back cold otherwise).
//
// A change in the node count or base-station membership rebuilds the
// programs (the basis layout is frozen per structure); toggling grid
// connectivity is an RHS edit and keeps them. The warm path can land on a
// different vertex of a degenerate optimum than the cold path, so it is
// opt-in and never used on the golden-pinned fixture run.
//
// The zero value is ready to use. A WarmState is not safe for concurrent
// use; use one per controller.
type WarmState struct {
	nNodes  int
	isBS    []bool
	perNode []*warmProg
	bs      *warmProg
}

// warmProg is one persistent inner program: the mutable problem, the warm
// solver holding its live engine, the node set and variable handles for
// refresh/extraction, and counter snapshots so each slot's Decision gets
// per-call deltas out of the solver's cumulative stats.
type warmProg struct {
	prob      *lp.Problem
	ws        *lp.WarmSolver
	nodes     []int
	vs        map[int]nodeVars
	budgetRow int // index of the total-draw budget row; -1 when absent

	seenWarm, seenInv int
}

// refresh re-points the program at this slot's node states: per node, the
// z-driven costs, the discharge-headroom bound, the deficit penalty, and
// the four per-node right-hand sides (buildNodesLP's fixed row layout).
func (pr *warmProg) refresh(req *Request, pen float64) {
	p := pr.prob
	p.SetIterationLimit(req.MaxLPIterations)
	for k, i := range pr.nodes {
		n := req.Nodes[i]
		gridCap := 0.0
		if n.GridConnected {
			gridCap = n.GridCapWh.Wh()
		}
		z := n.Z.Wh()
		v := pr.vs[i]
		p.SetVarCost(v.cr, z)
		p.SetVarCost(v.cg, z)
		p.SetVarCost(v.d, -z)
		p.SetVarBounds(v.d, 0, n.DischargeHeadroomWh.Wh())
		p.SetVarCost(v.u, pen)
		base := 4 * k
		p.SetConstraintRHS(base, n.RenewableWh.Wh())
		p.SetConstraintRHS(base+1, n.ChargeHeadroomWh.Wh())
		p.SetConstraintRHS(base+2, gridCap)
		p.SetConstraintRHS(base+3, n.DemandWh.Wh())
	}
}

// harvest folds the solver's counter deltas since the last harvest into
// the decision.
func (pr *warmProg) harvest(dec *Decision) {
	warm, inv := pr.ws.Stats()
	dec.WarmStarts += warm - pr.seenWarm
	dec.BasisInvalidations += inv - pr.seenInv
	pr.seenWarm, pr.seenInv = warm, inv
}

// shapeMatches reports whether the persistent programs still fit the
// request's node set.
func (w *WarmState) shapeMatches(req *Request) bool {
	if w.nNodes != len(req.Nodes) {
		return false
	}
	for i, n := range req.Nodes {
		if w.isBS[i] != n.IsBS {
			return false
		}
	}
	return true
}

// rebuild constructs fresh programs for the request's node set: one
// single-node program per non-base-station node, and one joint program
// over all base stations with the budget row appended (its RHS is reset
// before every solve, so the initial value is immaterial).
func (w *WarmState) rebuild(req *Request, bs []int, pen, pMax float64) {
	w.nNodes = len(req.Nodes)
	w.isBS = make([]bool, len(req.Nodes))
	w.perNode = make([]*warmProg, len(req.Nodes))
	w.bs = nil
	for i, n := range req.Nodes {
		w.isBS[i] = n.IsBS
		if n.IsBS {
			continue
		}
		//lint:allow hotalloc -- rebuild is a rare shape-change path and both slices are retained by the warmProg
		prob, vs := buildNodesLP(req, []int{i}, math.Inf(1), pen, false)
		w.perNode[i] = &warmProg{
			prob: prob, ws: lp.NewWarmSolver(prob),
			//lint:allow hotalloc -- retained: warmProg keeps its node set for the lifetime of the warm state
			nodes: []int{i}, vs: vs, budgetRow: -1,
		}
	}
	if len(bs) > 0 {
		prob, vs := buildNodesLP(req, bs, pMax, pen, true)
		w.bs = &warmProg{
			prob: prob, ws: lp.NewWarmSolver(prob),
			nodes: bs, vs: vs, budgetRow: 4 * len(bs),
		}
	}
}

// solveInto is the warm counterpart of solveCold: same decomposition
// (independent non-BS nodes, then golden-section over the base-station
// draw budget), same probe sequence and error vocabulary, but every inner
// solve goes through the persistent warm solvers.
func (w *WarmState) solveInto(req *Request, dec *Decision, bs []int, pen, pMax float64) error {
	if !w.shapeMatches(req) {
		w.rebuild(req, bs, pen, pMax)
	}

	for i, n := range req.Nodes {
		if n.IsBS {
			continue
		}
		pr := w.perNode[i]
		pr.refresh(req, pen)
		sol, err := mapOutcome(pr.ws.Solve())
		pr.harvest(dec)
		if err != nil {
			return err
		}
		dec.LPSolves++
		dec.LPIterations += sol.Iterations
		dec.Nodes[i] = decisionFrom(sol, pr.vs[i])
	}

	if w.bs == nil {
		return nil
	}
	pr := w.bs
	pr.refresh(req, pen)
	value := func(T float64) (float64, error) {
		pr.prob.SetConstraintRHS(pr.budgetRow, T)
		sol, err := mapOutcome(pr.ws.Solve())
		if err != nil {
			return 0, err
		}
		dec.LPSolves++
		dec.LPIterations += sol.Iterations
		return sol.Objective + req.V*req.Cost.Eval(units.Wh(T)).Value(), nil
	}
	tStar, err := goldenSection(value, 0, pMax)
	if err != nil {
		pr.harvest(dec)
		return err
	}
	pr.prob.SetConstraintRHS(pr.budgetRow, tStar)
	sol, err := mapOutcome(pr.ws.Solve())
	pr.harvest(dec)
	if err != nil {
		return err
	}
	dec.LPSolves++
	dec.LPIterations += sol.Iterations
	for _, i := range pr.nodes {
		dec.Nodes[i] = decisionFrom(sol, pr.vs[i])
	}
	return nil
}
