package stats

import (
	"math"
	"testing"
	"testing/quick"

	"greencell/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample std with n-1: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Error("empty sample should be zero")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.StdErr() != 0 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical coverage of the normal CI on uniform samples.
	src := rng.New(12)
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 50)
		for j := range xs {
			xs[j] = src.Uniform(0, 1)
		}
		lo, hi := Summarize(xs).CI95()
		if lo <= 0.5 && 0.5 <= hi {
			covered++
		}
	}
	if f := float64(covered) / trials; f < 0.9 || f > 0.99 {
		t.Errorf("CI95 coverage = %v, want ~0.95", f)
	}
}

func TestMeanSeries(t *testing.T) {
	got := MeanSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MeanSeries = %v, want %v", got, want)
		}
	}
	if MeanSeries(nil) != nil {
		t.Error("empty input should give nil")
	}
}

func TestMeanSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MeanSeries([][]float64{{1, 2}, {1}})
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input unmodified.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2, 3}).String(); s == "" {
		t.Error("empty String")
	}
}

// Property: min <= mean <= max and non-negative std for any sample.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter non-finite inputs; Summarize is specified on finite data.
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean) &&
			s.Mean <= s.Max+1e-9*math.Abs(s.Mean) && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone non-decreasing in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Uniform(-10, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				t.Fatalf("quantile decreased: q=%v v=%v prev=%v", q, v, prev)
			}
			prev = v
		}
	}
}
