// Package stats provides the small estimation toolkit the experiment
// harness uses to report *expected* values: the paper's metrics are
// expectations over the random spectrum, renewable, placement, and traffic
// processes, so headline numbers are means over independent replications
// with confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Summary holds the moments of a sample.
type Summary struct {
	N    int
	Mean float64
	// Std is the sample standard deviation (n−1 denominator).
	Std      float64
	Min, Max float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Std / math.Sqrt(float64(s.N))
}

// CI95 returns a normal-approximation 95% confidence interval for the mean.
func (s Summary) CI95() (lo, hi float64) {
	half := 1.96 * s.StdErr()
	return s.Mean - half, s.Mean + half
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	lo, hi := s.CI95()
	return fmt.Sprintf("%.6g ±%.3g (95%% CI [%.6g, %.6g], n=%d)",
		s.Mean, 1.96*s.StdErr(), lo, hi, s.N)
}

// MeanSeries returns the pointwise mean of equally-long series; shorter
// series are an error surfaced by panicking early in tests — the harness
// always passes equal-length traces.
func MeanSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	out := make([]float64, n)
	for _, s := range series {
		if len(s) != n {
			panic(fmt.Sprintf("stats: MeanSeries length mismatch: %d vs %d", len(s), n))
		}
		for i, v := range s {
			out[i] += v
		}
	}
	inv := 1.0 / float64(len(series))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	insertionSort(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
