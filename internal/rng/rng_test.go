package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIsStable(t *testing.T) {
	a := New(9).Split("renewable")
	b := New(9).Split("renewable")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same split name produced different streams")
		}
	}
}

func TestSplitNamesDiffer(t *testing.T) {
	parent := New(9)
	a := parent.Split("bands")
	b := parent.Split("traffic")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/100 equal draws", same)
	}
}

func TestSplitOrderIndependent(t *testing.T) {
	p1 := New(5)
	_ = p1.Split("first")
	a := p1.Split("second")

	p2 := New(5)
	b := p2.Split("second")
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("split stream depends on sibling split order")
		}
	}
}

func TestUniformRange(t *testing.T) {
	src := New(1)
	f := func(seed int64) bool {
		v := src.Uniform(2, 5)
		return v >= 2 && v < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	src := New(1)
	for i := 0; i < 10; i++ {
		if src.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !src.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	src := New(77)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if freq < 0.27 || freq > 0.33 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestSubset(t *testing.T) {
	src := New(3)
	for trial := 0; trial < 100; trial++ {
		n := 1 + src.Intn(10)
		k := src.Intn(n + 1)
		sub := src.Subset(n, k)
		if len(sub) != k {
			t.Fatalf("Subset(%d,%d) returned %d elements", n, k, len(sub))
		}
		seen := map[int]bool{}
		for _, v := range sub {
			if v < 0 || v >= n {
				t.Fatalf("Subset element %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("Subset returned duplicate %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSubsetPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).Subset(3, 4)
}

func TestSubsetAtLeastOne(t *testing.T) {
	src := New(4)
	for trial := 0; trial < 200; trial++ {
		sub := src.SubsetAtLeastOne(5)
		if len(sub) < 1 || len(sub) > 5 {
			t.Fatalf("size %d out of [1,5]", len(sub))
		}
	}
	if got := src.SubsetAtLeastOne(0); got != nil {
		t.Fatalf("SubsetAtLeastOne(0) = %v, want nil", got)
	}
}
