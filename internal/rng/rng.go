// Package rng provides deterministic, splittable random number generation
// for the simulator.
//
// Every stochastic process in the system (band widths, renewable outputs,
// grid connectivity, user placement, traffic) draws from its own sub-stream
// derived from a single scenario seed, so that simulations are exactly
// reproducible and adding a new consumer of randomness does not perturb the
// draws seen by existing ones.
package rng

import (
	"math/rand"
)

// Source is a deterministic random source with convenience helpers.
// The zero value is not usable; construct with New or Split.
type Source struct {
	r *rand.Rand

	// cachedSeed backs baseSeed; zero means "not yet drawn".
	cachedSeed uint64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent sub-stream identified by name. Two Sources
// split from the same parent with different names produce uncorrelated
// streams; splitting with the same name twice yields identical streams.
func (s *Source) Split(name string) *Source {
	// Mix the name into the parent seed with FNV-1a so sub-streams are
	// stable across runs and independent of call order.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	// Fold in the parent's base seed (drawn lazily once per parent).
	h ^= s.baseSeed()
	return New(int64(h))
}

// baseSeed returns a stable per-Source value without consuming stream state.
func (s *Source) baseSeed() uint64 {
	// Peek by cloning: rand.Rand cannot be cloned cheaply, so instead we
	// keep a dedicated first draw cached per Source.
	if s.cachedSeed == 0 {
		s.cachedSeed = s.r.Uint64() | 1 // never zero
	}
	return s.cachedSeed
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return s.r.Float64() < p
	}
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Subset returns a uniformly random subset of {0..n-1} of size k.
// It panics if k < 0 or k > n.
func (s *Source) Subset(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Subset size out of range")
	}
	p := s.r.Perm(n)
	out := make([]int, k)
	copy(out, p[:k])
	return out
}

// SubsetAtLeastOne returns a uniformly random non-empty subset of {0..n-1}:
// the size is uniform in [1, n] and membership uniform given the size.
func (s *Source) SubsetAtLeastOne(n int) []int {
	if n <= 0 {
		return nil
	}
	k := 1 + s.r.Intn(n)
	return s.Subset(n, k)
}
