package export

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greencell/internal/rng"
	"greencell/internal/topology"
)

func TestTSV(t *testing.T) {
	var b strings.Builder
	err := TSV(&b, []string{"a", "b"}, [][]float64{{1, 2.5}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a\tb\n1\t2.5\n3\t4\n"
	if b.String() != want {
		t.Errorf("TSV = %q, want %q", b.String(), want)
	}
}

func TestWriteTSVFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsv")
	if err := WriteTSVFile(path, []string{"v"}, [][]float64{{7}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v\n7\n" {
		t.Errorf("file content %q", data)
	}
}

func TestTopologyDOT(t *testing.T) {
	cfg := topology.Paper()
	cfg.NumUsers = 3
	net, err := topology.Build(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := TopologyDOT(&b, net); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph greencell {") || !strings.HasSuffix(out, "}\n") {
		t.Error("malformed DOT envelope")
	}
	if !strings.Contains(out, "BS0") || !strings.Contains(out, "shape=box") {
		t.Error("base stations missing")
	}
	if !strings.Contains(out, "shape=circle") {
		t.Error("users missing")
	}
	if strings.Count(out, "->") != len(net.Links) {
		t.Errorf("edge count %d, want %d", strings.Count(out, "->"), len(net.Links))
	}
}
