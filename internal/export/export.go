// Package export writes simulation artifacts in interchange formats:
// TSV tables for the figure pipelines and Graphviz DOT for topology
// inspection.
package export

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"greencell/internal/topology"
)

// TSV writes a header row and numeric rows, tab-separated.
func TSV(w io.Writer, header []string, rows [][]float64) error {
	var b strings.Builder
	b.WriteString(strings.Join(header, "\t"))
	b.WriteByte('\n')
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTSVFile writes a TSV table to path.
func WriteTSVFile(path string, header []string, rows [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := TSV(f, header, rows); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// TopologyDOT renders the network as a Graphviz digraph: base stations as
// boxes, users as circles, candidate links as edges labeled with their
// length. Positions are embedded (pos attributes, graphviz -Kneato -n
// renders to scale).
func TopologyDOT(w io.Writer, net *topology.Network) error {
	var b strings.Builder
	b.WriteString("digraph greencell {\n")
	b.WriteString("  graph [overlap=true splines=line];\n")
	b.WriteString("  node [fontsize=10];\n")
	for _, nd := range net.Nodes {
		shape := "circle"
		label := fmt.Sprintf("u%d", nd.ID)
		if nd.Kind == topology.BaseStation {
			shape = "box"
			label = fmt.Sprintf("BS%d", nd.ID)
		}
		// Graphviz points: scale meters down so the canvas stays sane.
		fmt.Fprintf(&b, "  n%d [shape=%s label=%q pos=\"%.1f,%.1f!\"];\n",
			nd.ID, shape, label, nd.Pos.X/10, nd.Pos.Y/10)
	}
	for _, l := range net.Links {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.0fm/%db\" fontsize=8];\n",
			l.From, l.To, l.Dist, len(l.Bands))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
