package cluster_test

// The cluster-smoke gate (make cluster-smoke): an end-to-end exercise of
// the real binaries. It builds greencelld, greencell-coord, and
// greencellsim, starts a coordinator over a fleet of three daemons, and
// proves the ISSUE-8 acceptance criteria across real process boundaries:
//
//  1. `greencellsim -submit` against the coordinator streams metrics
//     byte-identical to the committed golden fixture;
//  2. a worker SIGKILLed while holding a lease is evicted, its cell
//     re-dispatched, and the multi-seed merged stream still matches the
//     locally computed golden byte-for-byte;
//  3. resubmitting the same job is served entirely from the
//     content-addressed cache — coord_dispatches_total unchanged, one
//     cache hit per seed, and the exact same merged bytes.
//
// Gated behind GREENCELL_CLUSTER_SMOKE=1 because it builds binaries and
// forks processes — too heavy for the default `go test ./...` sweep.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"greencell/internal/metrics"
	"greencell/internal/server"
	"greencell/internal/sim"
)

func TestClusterSmoke(t *testing.T) {
	if os.Getenv("GREENCELL_CLUSTER_SMOKE") != "1" {
		t.Skip("set GREENCELL_CLUSTER_SMOKE=1 (or run `make cluster-smoke`) to run the cluster smoke")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, pkg)
		cmd.Dir = "../.." // module root
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, b)
		}
		return out
	}
	daemon := build("greencelld", "./cmd/greencelld")
	coordBin := build("greencell-coord", "./cmd/greencell-coord")
	client := build("greencellsim", "./cmd/greencellsim")

	work := t.TempDir()

	waitAddr := func(addrFile string, what string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			data, err := os.ReadFile(addrFile)
			if err == nil && len(bytes.TrimSpace(data)) > 0 {
				return "http://" + strings.TrimSpace(string(data))
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never wrote its address file", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	startProc := func(name string, args ...string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(name, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.ProcessState == nil {
				if err := cmd.Process.Kill(); err == nil {
					if werr := cmd.Wait(); werr != nil {
						t.Logf("%s wait after kill: %v", name, werr)
					}
				}
			}
		})
		return cmd
	}

	// Three workers, then the coordinator over them.
	var fleet []string
	var workers []*exec.Cmd
	for i := 0; i < 3; i++ {
		addrFile := filepath.Join(work, fmt.Sprintf("w%d.addr", i))
		cmd := startProc(daemon,
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-journal", filepath.Join(work, fmt.Sprintf("w%d.journal.jsonl", i)),
			"-drain-grace", "200ms")
		workers = append(workers, cmd)
		fleet = append(fleet, waitAddr(addrFile, fmt.Sprintf("worker %d", i)))
	}
	coordAddr := filepath.Join(work, "coord.addr")
	startProc(coordBin,
		"-addr", "127.0.0.1:0",
		"-addr-file", coordAddr,
		"-fleet", strings.Join(fleet, ","),
		"-journal", filepath.Join(work, "coord.journal.jsonl"),
		"-cache-dir", filepath.Join(work, "cache"),
		"-poll-interval", "50ms",
		"-heartbeat-interval", "100ms",
		"-breaker-cooldown", "500ms",
		"-max-attempts", "8",
		"-drain-grace", "200ms")
	base := waitAddr(coordAddr, "coordinator")

	// Phase 1: the golden scenario through the real client, against the
	// coordinator, diffed against the committed fixture.
	streamFile := filepath.Join(work, "stream.jsonl")
	sub := exec.Command(client,
		"-preset", "paper", "-slots", "12", "-seed", "1",
		"-submit", base, "-metrics", streamFile)
	if b, err := sub.CombinedOutput(); err != nil {
		t.Fatalf("greencellsim -submit: %v\n%s", err, b)
	}
	streamed, err := os.ReadFile(streamFile)
	if err != nil {
		t.Fatalf("reading streamed metrics: %v", err)
	}
	got, err := metrics.CanonicalizeJSONL(streamed)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	golden, err := os.ReadFile("../sim/testdata/golden_metrics.jsonl")
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("coordinator stream differs from the golden fixture (%d vs %d bytes)", len(got), len(golden))
	}

	// Phase 2: SIGKILL a leased worker mid-job; the merged multi-seed
	// stream must still match the local golden.
	spec := sim.ScenarioSpec{Slots: 400, Seed: 9}
	body, err := json.Marshal(server.JobRequest{Spec: spec, Replications: 3})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST job: %v", err)
	}
	var st server.JobStatus
	smokeDecode(t, resp, &st)
	jobID := st.ID

	// Find a worker holding a lease (inflight > 0) and SIGKILL it.
	type workerView struct {
		Workers []struct {
			ID       int    `json:"id"`
			BaseURL  string `json:"base_url"`
			Inflight int    `json:"inflight"`
		} `json:"workers"`
	}
	victim := -1
	deadline := time.Now().Add(30 * time.Second)
	for victim < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker ever held a lease")
		}
		r, err := http.Get(base + "/v1/workers")
		if err != nil {
			t.Fatalf("GET workers: %v", err)
		}
		var wv workerView
		smokeDecode(t, r, &wv)
		for _, w := range wv.Workers {
			if w.Inflight > 0 {
				victim = w.ID
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := workers[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker %d: %v", victim, err)
	}
	t.Logf("cluster-smoke: SIGKILLed worker %d mid-job", victim)

	for !st.State.Terminal() {
		if time.Now().After(deadline.Add(90 * time.Second)) {
			t.Fatalf("job never finished after the worker kill: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		smokeDecode(t, r, &st)
	}
	if st.State != server.JobDone {
		t.Fatalf("job ended %s (%s), want done despite the killed worker", st.State, st.Error)
	}

	merged := smokeStream(t, base, jobID)
	localGolden := smokeGolden(t, spec, st.Seeds)
	if !bytes.Equal(merged, localGolden) {
		t.Fatalf("merged stream after SIGKILL differs from local golden (%d vs %d bytes)", len(merged), len(localGolden))
	}
	if v := promCounter(t, base, "coord_worker_evictions_total"); v < 1 {
		t.Fatalf("coord_worker_evictions_total = %v, want ≥ 1", v)
	}
	if v := promCounter(t, base, "coord_redispatches_total"); v < 1 {
		t.Fatalf("coord_redispatches_total = %v, want ≥ 1 after the kill", v)
	}

	// Phase 3: resubmit — all cache, zero new dispatches.
	dispatchesBefore := promCounter(t, base, "coord_dispatches_total")
	hitsBefore := promCounter(t, base, "coord_cache_hits_total")
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST resubmit: %v", err)
	}
	var st2 server.JobStatus
	smokeDecode(t, resp, &st2)
	for !st2.State.Terminal() {
		time.Sleep(50 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st2.ID)
		if err != nil {
			t.Fatalf("GET resubmit: %v", err)
		}
		smokeDecode(t, r, &st2)
	}
	if st2.State != server.JobDone {
		t.Fatalf("resubmit ended %s (%s)", st2.State, st2.Error)
	}
	if v := promCounter(t, base, "coord_dispatches_total"); v != dispatchesBefore {
		t.Fatalf("resubmit dispatched: %v → %v, want unchanged", dispatchesBefore, v)
	}
	if v := promCounter(t, base, "coord_cache_hits_total"); v != hitsBefore+3 {
		t.Fatalf("resubmit cache hits: %v → %v, want +3", hitsBefore, v)
	}
	if again := smokeStream(t, base, st2.ID); !bytes.Equal(again, merged) {
		t.Fatal("cached resubmit stream differs from the original merged stream")
	}
	fmt.Printf("cluster-smoke: golden byte-identical; worker %d killed and repaired; resubmit 100%% cache\n", victim)
}

// smokeGolden computes the local multi-seed golden: canonicalized
// per-seed Recorder streams concatenated in ascending seed order.
func smokeGolden(t *testing.T, spec sim.ScenarioSpec, seeds []int64) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, seed := range seeds {
		sc, err := spec.Scenario()
		if err != nil {
			t.Fatalf("Scenario: %v", err)
		}
		sc.Seed = seed
		var buf bytes.Buffer
		rec := sim.NewRecorder(metrics.NewJSONLWriter(&buf), sim.HeaderFor(sc, spec.Label()))
		rec.Attach(&sc, false)
		if _, err := sim.Run(sc); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("Recorder.Close: %v", err)
		}
		c, err := metrics.CanonicalizeJSONL(buf.Bytes())
		if err != nil {
			t.Fatalf("canonicalize: %v", err)
		}
		out.Write(c)
	}
	return out.Bytes()
}

// smokeStream fetches and canonicalizes a job's merged metrics stream.
func smokeStream(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	c, err := metrics.CanonicalizeJSONL(data)
	if err != nil {
		t.Fatalf("canonicalize stream: %v", err)
	}
	return c
}

// promCounter scrapes one counter off the coordinator's /metrics.
func promCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("counter %s absent from /metrics:\n%s", name, data)
	return 0
}

func smokeDecode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("HTTP %s: %s", resp.Status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}
