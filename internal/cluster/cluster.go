// Package cluster is the fault-tolerant coordinator over a fleet of
// greencelld workers: the "wide sweeps at cluster throughput with
// exactly-once semantics" serving layer (ROADMAP item 3, docs/CLUSTER.md).
//
// A job — the same JobRequest the daemon accepts — is sharded seed-by-seed
// across the worker pool: every (spec, seed) cell becomes one single-seed
// daemon job held under a lease with a deadline. The coordinator heartbeats
// each worker's /readyz, circuit-breaks flapping ones, retries every worker
// RPC with jittered exponential backoff and per-attempt timeouts, and
// re-dispatches the cells of expired leases and lost workers to healthy
// peers. Completed cells land in a content-addressed cache keyed by
// sha256(canonical spec, seed), so re-dispatched or resubmitted cells are
// exactly-once and free, and a coordinator-side JSONL journal (torn-line
// tolerant, like the daemon's) lets a restarted coordinator resume
// in-flight jobs from their last finished seed.
//
// Determinism is inherited from the daemon contract: a cell's stream is a
// pure function of (spec, seed), so the coordinator's merged, seed-ordered
// stream is byte-identical (after timing canonicalization) to a local
// sim.RunSeeds run — no matter which workers ran which cells, how many
// leases expired, or how often the chaos transport dropped an RPC. The
// chaos tests and the cluster-smoke gate enforce exactly this.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"greencell/internal/metrics"
	"greencell/internal/server"
	"greencell/internal/sim"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers are the base URLs of the greencelld fleet
	// (e.g. http://127.0.0.1:8081). The pool may be empty — jobs then
	// complete only from cache — but is normally ≥ 1.
	Workers []string
	// JournalPath is the coordinator's JSONL lifecycle journal; empty
	// disables journalling (jobs and the cache index then do not survive a
	// restart).
	JournalPath string
	// CacheDir is the content-addressed stream store. Empty keeps blobs in
	// memory: the cache then serves resubmits within this process only.
	CacheDir string
	// CacheMaxBytes caps the total blob bytes the cache holds; inserting
	// past the cap evicts least-recently-used cells (blob and index), which
	// then simply re-run on their next lookup. 0 leaves the store uncapped.
	CacheMaxBytes int64
	// QueueDepth bounds concurrently tracked non-terminal jobs; submits
	// beyond it get 503 with a Retry-After. Default 256.
	QueueDepth int
	// LeaseTimeout bounds one cell from dispatch to completion; an expired
	// lease is cancelled and its seed re-dispatched. It is also installed
	// as the worker-side job deadline, so an orphaned cell self-aborts.
	// Default 2m.
	LeaseTimeout time.Duration
	// PollInterval paces the dispatcher: lease status polls and dispatch
	// scans. Default 100ms.
	PollInterval time.Duration
	// HeartbeatInterval paces the per-worker /readyz probes; Timeout
	// bounds each probe. Defaults 1s / 1s.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// BreakerThreshold consecutive failures (probes or RPCs) evict a
	// worker for BreakerCooldown. Defaults 3 / 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxAttempts bounds the leases placed for one cell before it is
	// declared failed. Default 4.
	MaxAttempts int
	// PerWorkerInflight bounds the leases simultaneously placed on one
	// worker (one running + the rest queued there). Default 2.
	PerWorkerInflight int
	// RPC is the worker RPC retry policy; nil uses defaults with a 10s
	// per-attempt timeout.
	RPC *RetryPolicy
	// Transport overrides the HTTP transport for worker calls — the chaos
	// harness injects FaultTransport here. Nil uses the default transport.
	Transport http.RoundTripper
}

func (cfg Config) defaulted() Config {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.PerWorkerInflight <= 0 {
		cfg.PerWorkerInflight = 2
	}
	if cfg.RPC == nil {
		cfg.RPC = &RetryPolicy{AttemptTimeout: 10 * time.Second}
	}
	return cfg
}

// cellState is one seed's lifecycle inside a job:
//
//	pending → leased → done | failed
//	            ↑________|           (lease expiry / worker loss re-queues)
type cellState string

const (
	cellPending cellState = "pending"
	cellLeased  cellState = "leased"
	cellDone    cellState = "done"
	cellFailed  cellState = "failed"
)

// cell is one (spec, seed) replication: the unit of dispatch, recovery,
// and caching. Guarded by the coordinator mutex.
type cell struct {
	seed int64
	key  string

	state    cellState
	attempts int       // leases placed so far
	workerID int       // current/last worker, -1 = none
	wjob     string    // worker-side job ID while leased
	deadline time.Time // lease expiry
	nextPoll time.Time

	metrics   sim.SeedMetrics
	fromCache bool
	errMsg    string
}

// Job is one coordinated experiment. Guarded by the coordinator mutex
// except done (closed once) and merge (internally locked).
type Job struct {
	ID    string
	Req   server.JobRequest
	Seeds []int64

	state      server.JobState
	errMsg     string
	recovered  bool
	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time
	totalSlots int

	cells map[int64]*cell
	merge *mergeLog

	result *server.JobResult

	cancel       context.CancelFunc
	cancelReason string
	done         chan struct{}
}

// cancel reasons, mirroring the daemon: a user DELETE journals a terminal
// event; a drain does not, leaving the job recoverable.
const (
	cancelUser  = "user"
	cancelDrain = "drain"
)

// Coordinator owns the worker pool, the job table, the journal, and the
// content-addressed cache. Create with New, serve Handler, stop with Drain
// (graceful) or Close.
type Coordinator struct {
	cfg     Config
	hc      *http.Client
	workers []*worker
	cache   *cache

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextID  int
	journal *journal

	draining bool

	reg            *metrics.Registry
	cSubmitted     *metrics.Counter
	cDone          *metrics.Counter
	cFailed        *metrics.Counter
	cCancelled     *metrics.Counter
	cRecovered     *metrics.Counter
	cCellsDone     *metrics.Counter
	cCellsFailed   *metrics.Counter
	cDispatches    *metrics.Counter
	cRedispatches  *metrics.Counter
	cLeaseExpiries *metrics.Counter
	cCacheHits     *metrics.Counter
	cCacheEvicts   *metrics.Counter
	cRPCRetries    *metrics.Counter
	cEvictions     *metrics.Counter
	gActive        *metrics.Gauge

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
}

// New builds a coordinator, replays its journal (admitting completed cells
// into the cache index and re-running every job whose last lifecycle event
// was non-terminal), and starts the worker heartbeat loops.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.defaulted()
	cch, err := newCache(cfg.CacheDir, cfg.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:       cfg,
		hc:        &http.Client{Transport: cfg.Transport},
		cache:     cch,
		jobs:      make(map[string]*Job),
		reg:       metrics.NewRegistry(),
		runCtx:    ctx,
		runCancel: cancel,
	}
	for i, base := range cfg.Workers {
		c.workers = append(c.workers, newWorker(i, base))
	}

	c.cSubmitted = c.reg.Counter("coord_jobs_submitted_total", "jobs", "jobs accepted over the API or recovered from the journal")
	c.cDone = c.reg.Counter("coord_jobs_done_total", "jobs", "jobs finished with every seed successful")
	c.cFailed = c.reg.Counter("coord_jobs_failed_total", "jobs", "jobs finished with at least one failed seed")
	c.cCancelled = c.reg.Counter("coord_jobs_cancelled_total", "jobs", "jobs cancelled by DELETE")
	c.cRecovered = c.reg.Counter("coord_jobs_recovered_total", "jobs", "interrupted jobs resumed at startup from the journal")
	c.cCellsDone = c.reg.Counter("coord_cells_done_total", "cells", "completed (spec, seed) cells, cache hits included")
	c.cCellsFailed = c.reg.Counter("coord_cells_failed_total", "cells", "cells failed after exhausting their lease attempts")
	c.cDispatches = c.reg.Counter("coord_dispatches_total", "leases", "leases placed on workers (single-seed daemon jobs)")
	c.cRedispatches = c.reg.Counter("coord_redispatches_total", "leases", "leases re-placed after a lease expiry, worker loss, or worker-side interruption")
	c.cLeaseExpiries = c.reg.Counter("coord_lease_expiries_total", "leases", "leases that hit their deadline before the cell completed")
	c.cCacheHits = c.reg.Counter("coord_cache_hits_total", "cells", "cells served from the content-addressed result cache")
	c.cCacheEvicts = c.reg.Counter("coord_cache_evictions_total", "cells", "cells evicted from the result cache by the size cap (LRU)")
	c.cRPCRetries = c.reg.Counter("coord_rpc_retries_total", "calls", "worker RPC attempts retried after a transient failure")
	c.cEvictions = c.reg.Counter("coord_worker_evictions_total", "evictions", "circuit-breaker evictions of unhealthy workers")
	c.gActive = c.reg.Gauge("coord_jobs_active", "jobs", "jobs currently tracked and non-terminal")

	var resume []*Job
	if cfg.JournalPath != "" {
		resume, err = c.recover(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		j, err := openJournal(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		c.journal = j
	}

	for _, w := range c.workers {
		c.wg.Add(1)
		go c.heartbeatLoop(w)
	}
	for _, j := range resume {
		c.startJob(j)
	}
	return c, nil
}

// recover replays the journal: completed cells of every job are admitted
// into the cache index, terminal jobs become read-only history (their
// merged streams rebuilt from whatever blobs the cache still holds), and
// jobs whose last lifecycle event was non-terminal are returned for
// re-running — the cache makes their finished seeds free.
func (c *Coordinator) recover(path string) ([]*Job, error) {
	entries, err := loadJournal(path)
	if err != nil {
		return nil, err
	}
	type folded struct {
		req   *server.JobRequest
		last  string
		errS  string
		cells []journalEntry
	}
	byID := make(map[string]*folded)
	var ids []string
	for _, e := range entries {
		f := byID[e.ID]
		if f == nil {
			f = &folded{}
			byID[e.ID] = f
			ids = append(ids, e.ID)
		}
		if e.Req != nil {
			f.req = e.Req
		}
		if e.Event == "cell" {
			if e.Metrics != nil && e.Key != "" {
				f.cells = append(f.cells, e)
			}
			continue // cells do not advance the lifecycle
		}
		f.last = e.Event
		f.errS = e.Error
		if n := jobIDNum(e.ID); n > c.nextID {
			c.nextID = n
		}
	}
	sort.Slice(ids, func(i, j int) bool { return jobIDNum(ids[i]) < jobIDNum(ids[j]) })

	var resume []*Job
	for _, id := range ids {
		f := byID[id]
		// Cells feed the cache index regardless of the job's fate.
		for _, ce := range f.cells {
			if n := c.cache.admit(ce.Key, *ce.Metrics); n > 0 {
				c.cCacheEvicts.Add(float64(n))
			}
		}
		if f.req == nil {
			fmt.Fprintf(os.Stderr, "greencell-coord: journal: job %s has no submitted event; skipping\n", id)
			continue
		}
		seeds, err := f.req.Normalize()
		if err != nil {
			fmt.Fprintf(os.Stderr, "greencell-coord: journal: job %s no longer validates (%v); skipping\n", id, err)
			continue
		}
		sc, err := f.req.Spec.Scenario()
		if err != nil {
			fmt.Fprintf(os.Stderr, "greencell-coord: journal: job %s spec no longer materializes (%v); skipping\n", id, err)
			continue
		}
		j, err := c.newJob(id, *f.req, seeds, sc.Slots)
		if err != nil {
			return nil, err
		}
		j.recovered = true
		switch f.last {
		case "submitted", "started":
			c.jobs[id] = j
			c.order = append(c.order, id)
			c.cSubmitted.Inc()
			c.cRecovered.Inc()
			resume = append(resume, j)
		case "done", "failed", "cancelled":
			j.state = server.JobState(f.last)
			j.errMsg = f.errS
			// History: rebuild what the cache still serves, then close the
			// merged stream so followers terminate.
			for _, seed := range j.Seeds {
				cl := j.cells[seed]
				if m, blob, ok := c.cache.get(cl.key); ok {
					cl.state, cl.metrics, cl.fromCache = cellDone, m, true
					j.merge.put(seed, blob)
				}
			}
			j.result = c.buildResult(j)
			j.merge.close()
			close(j.done)
			c.jobs[id] = j
			c.order = append(c.order, id)
		default:
			fmt.Fprintf(os.Stderr, "greencell-coord: journal: job %s has unknown event %q; skipping\n", id, f.last)
		}
	}
	return resume, nil
}

// newJob builds a job with one cell per seed, keys precomputed.
func (c *Coordinator) newJob(id string, req server.JobRequest, seeds []int64, totalSlots int) (*Job, error) {
	j := &Job{
		ID:         id,
		Req:        req,
		Seeds:      seeds,
		state:      server.JobQueued,
		createdAt:  now(),
		totalSlots: totalSlots,
		cells:      make(map[int64]*cell, len(seeds)),
		merge:      newMergeLog(seeds),
		done:       make(chan struct{}),
	}
	for _, s := range seeds {
		key, err := CellKey(req.Spec, s)
		if err != nil {
			return nil, err
		}
		j.cells[s] = &cell{seed: s, key: key, state: cellPending, workerID: -1}
	}
	return j, nil
}

// apiError mirrors the daemon's HTTP error shape; retryAfter > 0 adds a
// Retry-After header (503 queue-full).
type apiError struct {
	code       int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

// Submit validates, journals, and launches a job.
func (c *Coordinator) Submit(req server.JobRequest) (server.JobStatus, error) {
	seeds, err := req.Normalize()
	if err != nil {
		return server.JobStatus{}, &apiError{code: 400, msg: err.Error()}
	}
	sc, err := req.Spec.Scenario()
	if err != nil {
		return server.JobStatus{}, &apiError{code: 400, msg: err.Error()}
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return server.JobStatus{}, &apiError{code: 503, msg: "coordinator is draining; not accepting jobs"}
	}
	active := 0
	for _, id := range c.order {
		if !c.jobs[id].state.Terminal() {
			active++
		}
	}
	if active >= c.cfg.QueueDepth {
		c.mu.Unlock()
		return server.JobStatus{}, &apiError{code: 503, msg: "job table is full", retryAfter: 1}
	}
	c.nextID++
	id := jobID(c.nextID)
	j, err := c.newJob(id, req, seeds, sc.Slots)
	if err != nil {
		c.mu.Unlock()
		return server.JobStatus{}, err
	}
	if err := c.journal.append(journalEntry{Event: "submitted", ID: id, Req: &req}); err != nil {
		c.mu.Unlock()
		return server.JobStatus{}, fmt.Errorf("journal: %w", err)
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.cSubmitted.Inc()
	st := c.jobStatus(j)
	c.mu.Unlock()

	c.startJob(j)
	return st, nil
}

// startJob journals the start and launches the job's dispatcher.
func (c *Coordinator) startJob(j *Job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if j.Req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(c.runCtx, time.Duration(j.Req.DeadlineMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(c.runCtx)
	}
	c.mu.Lock()
	j.state = server.JobRunning
	j.startedAt = now()
	j.cancel = cancel
	err := c.journal.append(journalEntry{Event: "started", ID: j.ID})
	c.gActive.Set(c.gActive.Value() + 1)
	c.mu.Unlock()
	if err != nil {
		fmt.Fprintf(os.Stderr, "greencell-coord: journal: %v\n", err)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer cancel()
		c.runJob(ctx, j)
	}()
}

// Job returns one job's status.
func (c *Coordinator) Job(id string) (server.JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return server.JobStatus{}, &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)}
	}
	return c.jobStatus(j), nil
}

// Jobs returns every job's status in submission order.
func (c *Coordinator) Jobs() []server.JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]server.JobStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobStatus(c.jobs[id]))
	}
	return out
}

// WorkerStatuses reports the pool, in registration order.
func (c *Coordinator) WorkerStatuses() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w.status())
	}
	return out
}

// CacheLen reports the number of indexed cache cells.
func (c *Coordinator) CacheLen() int { return c.cache.Len() }

// Registry exposes the serving counters (tests and the Prometheus
// endpoint).
func (c *Coordinator) Registry() *metrics.Registry { return c.reg }

// CounterValues snapshots every counter under the coordinator mutex
// (metrics.Counter itself is not thread-safe), so tests can read them
// race-free while the dispatcher runs.
func (c *Coordinator) CounterValues() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.CounterValues()
}

// Cancel stops a running job on behalf of a user DELETE; idempotent on
// terminal jobs.
func (c *Coordinator) Cancel(id string) (server.JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return server.JobStatus{}, &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)}
	}
	if j.state.Terminal() {
		st := c.jobStatus(j)
		c.mu.Unlock()
		return st, nil
	}
	j.cancelReason = cancelUser
	cancel, done := j.cancel, j.done
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	<-done
	c.mu.Lock()
	defer c.mu.Unlock()
	if !j.state.Terminal() {
		// The dispatcher already exited without a terminal event — a drain
		// (or bare interruption) re-queued the job for the next restart. The
		// user's DELETE must still stick: journal the terminal event and
		// finalize here, or the job would silently resume after a restart.
		j.state = server.JobCancelled
		j.errMsg = "cancelled"
		j.finishedAt = now()
		j.result = c.buildResult(j)
		c.cCancelled.Inc()
		if err := c.journal.append(journalEntry{Event: "cancelled", ID: j.ID, Error: j.errMsg}); err != nil {
			fmt.Fprintf(os.Stderr, "greencell-coord: journal: %v\n", err)
		}
	}
	return c.jobStatus(j), nil
}

// Stream writes the job's merged, seed-ordered metrics stream into w,
// following live completions until the job ends or ctx is cancelled.
func (c *Coordinator) Stream(ctx context.Context, id string, w io.Writer) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)}
	}
	return j.merge.stream(ctx, w)
}

// WriteMetrics renders the coordinator registry in Prometheus text format.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return metrics.WritePrometheus(w, c.reg)
}

// Draining reports whether a drain has begun (the /readyz signal).
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain gracefully stops the coordinator: new submissions get 503 and
// running jobs are interrupted without a terminal journal event, so a
// restarted coordinator resumes them — completed cells from the cache,
// the rest re-dispatched. Running jobs get until ctx is done to finish on
// their own first.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return errors.New("cluster: already draining")
	}
	c.draining = true
	var running []*Job
	for _, id := range c.order {
		if j := c.jobs[id]; !j.state.Terminal() {
			running = append(running, j)
		}
	}
	c.mu.Unlock()

	for _, j := range running {
		select {
		case <-j.done:
		case <-ctx.Done():
		}
	}

	c.mu.Lock()
	var cancels []func()
	var waits []chan struct{}
	for _, j := range running {
		if !j.state.Terminal() {
			if j.cancelReason == "" {
				j.cancelReason = cancelDrain
			}
			if j.cancel != nil {
				cancels = append(cancels, j.cancel)
			}
			waits = append(waits, j.done)
		}
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	// Each job was just cancelled, so these waits are bounded by the jobs'
	// own unwinding; cutting them short on ctx expiry would return while
	// finishJob is still journaling. The ctx bounds the grace period above,
	// not the teardown.
	//lint:allow ctxflow -- bounded post-cancel teardown; abandoning it would race the journal
	for _, d := range waits {
		<-d
	}

	c.runCancel()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journal.Close()
}

// Close stops the coordinator immediately: Drain with no grace period.
func (c *Coordinator) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return c.Drain(ctx)
}

// jobStatus renders a job; the caller holds c.mu.
func (c *Coordinator) jobStatus(j *Job) server.JobStatus {
	st := server.JobStatus{
		ID:         j.ID,
		State:      j.state,
		Error:      j.errMsg,
		Recovered:  j.recovered,
		Spec:       j.Req.Spec,
		Seeds:      j.Seeds,
		DeadlineMS: j.Req.DeadlineMS,
		TotalSlots: j.totalSlots,
		Result:     j.result,
	}
	if !j.createdAt.IsZero() {
		st.CreatedAt = j.createdAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.startedAt.IsZero() {
		st.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
	}
	for _, seed := range j.Seeds {
		cl := j.cells[seed]
		ss := server.SeedStatus{Seed: seed}
		switch cl.state {
		case cellDone:
			ss.State = "done"
			ss.SlotsDone = int64(j.totalSlots)
		case cellFailed:
			ss.State, ss.Error = "failed", cl.errMsg
		case cellLeased:
			ss.State = "running"
		default:
			if j.state.Terminal() {
				ss.State = string(j.state)
			} else {
				ss.State = "pending"
			}
		}
		st.Progress = append(st.Progress, ss)
	}
	return st
}

// buildResult folds the job's cells into the daemon-shaped result; the
// caller holds c.mu (or owns the job exclusively during recovery).
func (c *Coordinator) buildResult(j *Job) *server.JobResult {
	res := &server.JobResult{}
	for _, seed := range j.Seeds {
		cl := j.cells[seed]
		switch cl.state {
		case cellDone:
			res.Seeds = append(res.Seeds, cl.metrics)
		case cellFailed:
			res.FailedSeeds = append(res.FailedSeeds, seed)
			msg := cl.errMsg
			if msg == "" {
				msg = "failed"
			}
			res.Errors = append(res.Errors, msg)
		default:
			// Non-terminal cell in a finalized job: interrupted.
			res.FailedSeeds = append(res.FailedSeeds, seed)
			res.Errors = append(res.Errors, "interrupted")
		}
	}
	sort.Slice(res.Seeds, func(a, b int) bool { return res.Seeds[a].Seed < res.Seeds[b].Seed })
	if len(res.Seeds) > 0 {
		res.Summary = sim.SummarizeSeedMetrics(res.Seeds)
	}
	return res
}
