package cluster

// The coordinator journal is the same crash-consistency design as the
// daemon's (internal/server/journal.go): an append-only JSON-Lines file of
// lifecycle events, flushed per event, tolerant of a torn final line — the
// signature of a crash mid-append. It adds one event the daemon does not
// need: "cell", recording a completed (seed, cache key, metrics) cell, so
// a restarted coordinator resumes a job from its last finished seed (the
// cell's stream bytes live in the content-addressed cache under the key).
//
// Journal events:
//
//	{"event":"submitted","id":"cjob-000001","req":{...}}
//	{"event":"started","id":"cjob-000001"}
//	{"event":"cell","id":"cjob-000001","seed":3,"key":"ab12…","metrics":{...}}
//	{"event":"done","id":"cjob-000001"}
//	{"event":"failed","id":"cjob-000001","error":"..."}
//	{"event":"cancelled","id":"cjob-000001"}
//
// A job is recoverable exactly when its last lifecycle event is
// non-terminal; its journaled cells are admitted into the cache index so
// only the unfinished seeds re-dispatch.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"greencell/internal/server"
	"greencell/internal/sim"
)

type journalEntry struct {
	Event   string             `json:"event"`
	ID      string             `json:"id"`
	Req     *server.JobRequest `json:"req,omitempty"`
	Seed    int64              `json:"seed,omitempty"`
	Key     string             `json:"key,omitempty"`
	Metrics *sim.SeedMetrics   `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// journal appends lifecycle events; a nil *journal records nothing.
type journal struct {
	f *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

// append writes one event unbuffered, so a crash loses at most the event
// being written (a torn final line, tolerated on load).
func (j *journal) append(e journalEntry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = j.f.Write(append(b, '\n'))
	return err
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// loadJournal replays a journal file. A missing file is an empty journal;
// a torn final line is dropped with a warning; a torn line anywhere else is
// corruption and an error.
func loadJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out []journalEntry
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
	torn := ""
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" {
			continue
		}
		if torn != "" {
			return nil, fmt.Errorf("journal %s: corrupt record at line %s", path, torn)
		}
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			torn = strconv.Itoa(lineNo) // tolerated only as the final line
			continue
		}
		out = append(out, e)
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if torn != "" {
		fmt.Fprintf(os.Stderr, "greencell-coord: journal %s: dropping torn final line %s (interrupted write); its event is lost\n", path, torn)
	}
	return out, nil
}

// jobIDNum parses the numeric suffix of "cjob-000123" IDs (0 if foreign).
func jobIDNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "cjob-"))
	if err != nil {
		return 0
	}
	return n
}

// jobID renders the canonical ID for coordinator job number n. The prefix
// differs from the daemon's "job-" so logs from a mixed fleet read
// unambiguously.
func jobID(n int) string {
	return fmt.Sprintf("cjob-%06d", n)
}
