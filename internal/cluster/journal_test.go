package cluster

// Journal replay robustness: a coordinator journal cut at EVERY byte
// offset — the full space of crash-mid-append outcomes — must replay
// without panicking, resume exactly the jobs whose last complete lifecycle
// event is non-terminal, keep terminal jobs as history, and admit exactly
// the complete cell records into the cache index.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greencell/internal/server"
	"greencell/internal/sim"
)

// buildJournal renders entries as the coordinator writes them: one JSON
// line per event.
func buildJournal(t *testing.T, entries []journalEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range entries {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		buf.Write(append(b, '\n'))
	}
	return buf.Bytes()
}

func TestLoadJournalTornFinalLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	data := buildJournal(t, []journalEntry{
		{Event: "submitted", ID: "cjob-000001"},
		{Event: "started", ID: "cjob-000001"},
	})
	data = append(data, []byte(`{"event":"do`)...) // crash mid-append
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	entries, err := loadJournal(path)
	if err != nil {
		t.Fatalf("loadJournal: %v", err)
	}
	if len(entries) != 2 || entries[1].Event != "started" {
		t.Fatalf("entries = %+v, want the two complete events", entries)
	}
}

func TestLoadJournalTornMidFileIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	data := []byte(`{"event":"sub` + "\n" + `{"event":"started","id":"cjob-000001"}` + "\n")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := loadJournal(path); err == nil {
		t.Fatal("a torn line followed by more records loaded without error")
	}
}

// TestCoordinatorJournalTruncationEveryByte is the crash-replay sweep. The
// fixture journal holds one job in every lifecycle state — done with a
// cell, running, cancelled, failed — and the test re-opens a coordinator
// on every prefix of it.
func TestCoordinatorJournalTruncationEveryByte(t *testing.T) {
	req := server.JobRequest{Spec: sim.ScenarioSpec{Slots: 2, Seed: 3}}
	m := sim.SeedMetrics{Seed: 3}
	key, err := CellKey(req.Spec, 3)
	if err != nil {
		t.Fatalf("CellKey: %v", err)
	}
	full := buildJournal(t, []journalEntry{
		{Event: "submitted", ID: "cjob-000001", Req: &req},
		{Event: "started", ID: "cjob-000001"},
		{Event: "cell", ID: "cjob-000001", Seed: 3, Key: key, Metrics: &m},
		{Event: "done", ID: "cjob-000001"},
		{Event: "submitted", ID: "cjob-000002", Req: &req},
		{Event: "started", ID: "cjob-000002"},
		{Event: "submitted", ID: "cjob-000003", Req: &req},
		{Event: "started", ID: "cjob-000003"},
		{Event: "cancelled", ID: "cjob-000003"},
		{Event: "submitted", ID: "cjob-000004", Req: &req},
		{Event: "started", ID: "cjob-000004"},
		{Event: "failed", ID: "cjob-000004", Error: "boom"},
	})

	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.jsonl")
	for cut := 0; cut <= len(full); cut++ {
		prefix := full[:cut]
		if err := os.WriteFile(path, prefix, 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}

		// Expected replay outcome from the complete lines of the prefix
		// (the torn final fragment is dropped, like the loader does).
		type expect struct {
			last  string
			cells int
		}
		exp := map[string]*expect{}
		for _, line := range strings.Split(string(prefix), "\n") {
			var e journalEntry
			if json.Unmarshal([]byte(line), &e) != nil {
				continue
			}
			x := exp[e.ID]
			if x == nil {
				x = &expect{}
				exp[e.ID] = x
			}
			if e.Event == "cell" {
				x.cells++
				continue
			}
			x.last = e.Event
		}

		// No workers: resumed jobs sit pending until Close, which is all
		// this sweep needs — replay must never panic or mis-classify.
		c, err := New(Config{JournalPath: path, PollInterval: time.Millisecond})
		if err != nil {
			t.Fatalf("cut %d: New: %v", cut, err)
		}
		cells := 0
		for id, x := range exp {
			st, err := c.Job(id)
			switch x.last {
			case "submitted", "started":
				if err != nil {
					t.Fatalf("cut %d: recoverable job %s not resumed: %v", cut, id, err)
				}
				if st.State.Terminal() || !st.Recovered {
					t.Fatalf("cut %d: resumed job %s state %s recovered %v", cut, id, st.State, st.Recovered)
				}
			case "done", "failed", "cancelled":
				if err != nil {
					t.Fatalf("cut %d: terminal job %s lost: %v", cut, id, err)
				}
				if string(st.State) != x.last {
					t.Fatalf("cut %d: job %s replayed as %s, want %s", cut, id, st.State, x.last)
				}
			case "":
				// A submitted event whose req made it but no lifecycle yet is
				// impossible here (submitted IS the lifecycle event), so an
				// empty last means only cell fragments — job skipped.
				if err == nil {
					t.Fatalf("cut %d: job %s materialized from cell events alone", cut, id)
				}
			}
			cells += x.cells
		}
		if got := c.CacheLen(); got != cells {
			t.Fatalf("cut %d: cache admitted %d cells, want %d", cut, got, cells)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
	}
}
