package cluster

// FaultTransport is the deterministic chaos harness: an http.RoundTripper
// that injects worker failures underneath the coordinator's retry/breaker
// machinery. Faults draw from internal/rng sub-streams — one per
// "METHOD /path" shape, split from a single seed — so the fault schedule
// for a given RPC shape is a reproducible sequence regardless of how the
// dispatcher interleaves different calls. Two modes:
//
//   - drop: the exchange fails with a synthetic connection error (the
//     request may or may not have reached the worker — both sides of that
//     ambiguity occur, which is exactly what the content-addressed cache
//     has to absorb for exactly-once results);
//   - 500: the worker answers with a synthetic internal error, exercising
//     the HTTP-status branch of Transient.
//
// The chaos tests run a full cluster job through a faulty transport and
// assert the merged stream is still byte-identical to the fault-free run.

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"

	"greencell/internal/rng"
)

// ErrChaosDrop is the synthetic connection failure injected by a drop.
var ErrChaosDrop = errors.New("chaos: connection dropped")

// FaultTransport injects deterministic faults into worker RPCs.
type FaultTransport struct {
	base     http.RoundTripper
	dropProb float64
	errProb  float64

	mu      sync.Mutex
	root    *rng.Source
	streams map[string]*rng.Source

	drops int
	errs  int
}

// NewFaultTransport wraps base (nil = http.DefaultTransport) with faults:
// each exchange is dropped with probability dropProb and answered with a
// synthetic 500 with probability errProb, drawn from sub-streams of seed.
func NewFaultTransport(base http.RoundTripper, seed int64, dropProb, errProb float64) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultTransport{
		base:     base,
		dropProb: dropProb,
		errProb:  errProb,
		root:     rng.New(seed),
		streams:  make(map[string]*rng.Source),
	}
}

// decide draws this exchange's fate from the request shape's sub-stream.
func (t *FaultTransport) decide(req *http.Request) (drop, fail bool) {
	shape := req.Method + " " + req.URL.Path
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.streams[shape]
	if s == nil {
		s = t.root.Split(shape)
		t.streams[shape] = s
	}
	if t.dropProb > 0 && s.Bernoulli(t.dropProb) {
		t.drops++
		return true, false
	}
	if t.errProb > 0 && s.Bernoulli(t.errProb) {
		t.errs++
		return false, true
	}
	return false, false
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, fail := t.decide(req)
	if drop {
		if req.Body != nil {
			//lint:allow droppederr -- RoundTripper contract requires closing the body; the injected drop is the outcome under test
			req.Body.Close()
		}
		return nil, ErrChaosDrop
	}
	if fail {
		if req.Body != nil {
			//lint:allow droppederr -- RoundTripper contract requires closing the body; the injected 500 is the outcome under test
			req.Body.Close()
		}
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos: synthetic worker error\n")),
			Request:    req,
		}, nil
	}
	return t.base.RoundTrip(req)
}

// Faults reports the injected (drops, synthetic 500s) so tests can assert
// the chaos actually fired.
func (t *FaultTransport) Faults() (drops, errs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.errs
}
