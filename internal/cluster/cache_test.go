package cluster

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"greencell/internal/sim"
)

func TestCellKeyCanonicalization(t *testing.T) {
	base := sim.ScenarioSpec{Slots: 8, Seed: 0}
	k0, err := CellKey(base, 5)
	if err != nil {
		t.Fatalf("CellKey: %v", err)
	}

	// The empty preset and its effective label collide — they materialize
	// the same scenario.
	paper := base
	paper.Preset = "paper"
	if k, _ := CellKey(paper, 5); k != k0 {
		t.Fatalf("preset \"\" and %q keys differ: %s vs %s", paper.Label(), k0, k)
	}

	// The spec's own Seed field is zeroed: the cell's seed is keyed
	// separately and overrides it.
	reseeded := base
	reseeded.Seed = 99
	if k, _ := CellKey(reseeded, 5); k != k0 {
		t.Fatal("spec.Seed leaked into the cache key")
	}

	// Different cell seeds and different specs must not collide.
	if k, _ := CellKey(base, 6); k == k0 {
		t.Fatal("distinct seeds share a key")
	}
	wider := base
	wider.Slots = 9
	if k, _ := CellKey(wider, 5); k == k0 {
		t.Fatal("distinct specs share a key")
	}
}

func TestCacheMemoryPutGet(t *testing.T) {
	c, err := newCache("", 0)
	if err != nil {
		t.Fatalf("newCache: %v", err)
	}
	m := sim.SeedMetrics{Seed: 5}
	blob := []byte("header\nslot\nsummary\n")
	if _, err := c.put("k1", m, blob); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, b, ok := c.get("k1")
	if !ok || got.Seed != 5 || !bytes.Equal(b, blob) {
		t.Fatalf("get: ok=%v metrics=%+v blob=%q", ok, got, b)
	}
	if _, _, ok := c.get("k2"); ok {
		t.Fatal("get of a missing key hit")
	}

	// An admitted index entry without a blob is a miss, not a lie.
	c.admit("k3", m)
	if _, _, ok := c.get("k3"); ok {
		t.Fatal("admit without a blob served a hit")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheDiskSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := newCache(dir, 0)
	if err != nil {
		t.Fatalf("newCache: %v", err)
	}
	m := sim.SeedMetrics{Seed: 7}
	blob := []byte("stream bytes\n")
	if _, err := c.put("k1", m, blob); err != nil {
		t.Fatalf("put: %v", err)
	}

	// A fresh cache over the same dir has no index until the journal
	// re-admits the key; then the blob on disk makes it a hit.
	c2, err := newCache(dir, 0)
	if err != nil {
		t.Fatalf("newCache: %v", err)
	}
	if _, _, ok := c2.get("k1"); ok {
		t.Fatal("unadmitted key hit after restart")
	}
	c2.admit("k1", m)
	got, b, ok := c2.get("k1")
	if !ok || got.Seed != 7 || !bytes.Equal(b, blob) {
		t.Fatalf("re-admitted get: ok=%v metrics=%+v blob=%q", ok, got, b)
	}

	// An admitted key whose blob file is gone degrades to a miss.
	c2.admit("k-gone", m)
	if _, _, ok := c2.get("k-gone"); ok {
		t.Fatal("admitted key with no blob file served a hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := newCache("", 25)
	if err != nil {
		t.Fatalf("newCache: %v", err)
	}
	m := sim.SeedMetrics{}
	ten := []byte("0123456789")
	for _, k := range []string{"k1", "k2"} {
		n, err := c.put(k, m, ten)
		if err != nil || n != 0 {
			t.Fatalf("put %s: evicted %d, err %v; want 0, nil", k, n, err)
		}
	}

	// A hit refreshes recency: k1 becomes most recent, so the third put
	// pushes out k2, not k1.
	if _, _, ok := c.get("k1"); !ok {
		t.Fatal("k1 missing before eviction")
	}
	n, err := c.put("k3", m, ten)
	if err != nil {
		t.Fatalf("put k3: %v", err)
	}
	if n != 1 {
		t.Fatalf("put k3 evicted %d, want 1", n)
	}
	if _, _, ok := c.get("k2"); ok {
		t.Fatal("k2 should have been evicted (least recently used)")
	}
	if _, _, ok := c.get("k1"); !ok {
		t.Fatal("k1 was refreshed by the hit and must survive")
	}
	if _, _, ok := c.get("k3"); !ok {
		t.Fatal("k3 was just inserted and must survive")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// A single blob over the cap is still admitted (evicting everything
	// else): the newest entry is never its own victim.
	n, err = c.put("big", m, []byte("this blob is way over the twenty-five byte cap"))
	if err != nil {
		t.Fatalf("put big: %v", err)
	}
	if n != 2 {
		t.Fatalf("put big evicted %d, want 2", n)
	}
	if _, _, ok := c.get("big"); !ok {
		t.Fatal("oversized newest entry must survive")
	}
}

func TestCacheLRUEvictionDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := newCache(dir, 15)
	if err != nil {
		t.Fatalf("newCache: %v", err)
	}
	m := sim.SeedMetrics{}
	ten := []byte("0123456789")
	if _, err := c.put("k1", m, ten); err != nil {
		t.Fatalf("put k1: %v", err)
	}
	if n, err := c.put("k2", m, ten); err != nil || n != 1 {
		t.Fatalf("put k2: evicted %d, err %v; want 1, nil", n, err)
	}
	// The evicted blob file is deleted with its index entry, so a journal
	// re-admit later degrades to a miss and the cell re-runs.
	if _, statErr := os.Stat(c.blobPath("k1")); !errors.Is(statErr, fs.ErrNotExist) {
		t.Fatalf("evicted blob still on disk: %v", statErr)
	}
	if got := c.admit("k1", m); got != 0 {
		t.Fatalf("re-admit of a gone blob evicted %d, want 0 (it weighs nothing)", got)
	}
	if _, _, ok := c.get("k1"); ok {
		t.Fatal("re-admitted evicted key served a hit without its blob")
	}
}
