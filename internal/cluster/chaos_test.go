package cluster

import (
	"net/http/httptest"
	"testing"
)

// TestFaultTransportDeterministic: two transports with the same seed and
// probabilities produce identical fault schedules, per request shape,
// regardless of how the shapes interleave — the property that makes chaos
// runs reproducible.
func TestFaultTransportDeterministic(t *testing.T) {
	shapes := []struct{ method, path string }{
		{"POST", "/v1/jobs"},
		{"GET", "/v1/jobs/job-000001"},
		{"GET", "/readyz"},
	}
	draw := func(ft *FaultTransport, order []int) [][2]bool {
		var out [][2]bool
		for _, i := range order {
			req := httptest.NewRequest(shapes[i].method, "http://w"+shapes[i].path, nil)
			drop, fail := ft.decide(req)
			out = append(out, [2]bool{drop, fail})
		}
		return out
	}

	// Same interleaving: schedules identical.
	order := []int{0, 1, 2, 1, 0, 2, 2, 1, 0, 0, 1, 2, 0, 1, 2, 1, 1, 0}
	a := draw(NewFaultTransport(nil, 42, 0.3, 0.3), order)
	b := draw(NewFaultTransport(nil, 42, 0.3, 0.3), order)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically seeded transports: %v vs %v", i, a[i], b[i])
		}
	}

	// Different interleaving: each shape's own sequence is unchanged,
	// because every shape draws from its own sub-stream.
	perShape := func(res [][2]bool, ord []int, shape int) [][2]bool {
		var out [][2]bool
		for i, s := range ord {
			if s == shape {
				out = append(out, res[i])
			}
		}
		return out
	}
	// The same per-shape draw counts as order (6×0, 7×1, 5×2), grouped
	// instead of interleaved.
	order2 := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2}
	c := draw(NewFaultTransport(nil, 42, 0.3, 0.3), order2)
	for shape := range shapes {
		sa, sc := perShape(a, order, shape), perShape(c, order2, shape)
		if len(sa) != len(sc) {
			t.Fatalf("shape %d drawn %d vs %d times", shape, len(sa), len(sc))
		}
		for i := range sa {
			if sa[i] != sc[i] {
				t.Fatalf("shape %d draw %d depends on interleaving: %v vs %v", shape, i, sa[i], sc[i])
			}
		}
	}

	// A different seed produces a different schedule (over enough draws).
	d := draw(NewFaultTransport(nil, 43, 0.3, 0.3), order)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}

	drops, errs := 0, 0
	for _, r := range a {
		if r[0] {
			drops++
		}
		if r[1] {
			errs++
		}
	}
	gd, ge := func() (int, int) {
		ft := NewFaultTransport(nil, 42, 0.3, 0.3)
		draw(ft, order)
		return ft.Faults()
	}()
	if gd != drops || ge != errs {
		t.Fatalf("Faults() = (%d, %d), want (%d, %d)", gd, ge, drops, errs)
	}
}
