package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"greencell/internal/rng"
)

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"context canceled", context.Canceled, false},
		{"context deadline", context.DeadlineExceeded, false},
		{"wrapped cancel", fmt.Errorf("poll: %w", context.Canceled), false},
		{"connection error", errors.New("connection refused"), true},
		{"HTTP 400", &HTTPError{Status: 400}, false},
		{"HTTP 404", &HTTPError{Status: 404}, false},
		{"HTTP 429", &HTTPError{Status: http.StatusTooManyRequests}, true},
		{"HTTP 500", &HTTPError{Status: 500}, true},
		{"HTTP 503", &HTTPError{Status: 503}, true},
		{"wrapped 503", fmt.Errorf("submit: %w", &HTTPError{Status: 503}), true},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDelayGrowthAndBounds(t *testing.T) {
	// No Rand: deterministic midpoints — base, base·2, … capped at MaxDelay.
	p := (&RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2}).Defaulted()
	for n, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 40 * time.Millisecond, // capped
	} {
		if got := p.Delay(n); got != want {
			t.Errorf("Delay(%d) = %v, want %v", n, got, want)
		}
	}

	// With Rand: jittered into [d(1−j), d(1+j)], still capped.
	pj := (&RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.2, Rand: rng.New(1).Split("jitter-test")}).Defaulted()
	for i := 0; i < 100; i++ {
		d := pj.Delay(1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered Delay(1) = %v outside [80ms, 120ms]", d)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	calls, retries := 0, 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return &HTTPError{Status: 503}
		}
		return nil
	}, func(error) { retries++ })
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls %d retries %d, want 3 / 2", calls, retries)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return &HTTPError{Status: 400, Msg: "bad spec"}
	}, nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 400 {
		t.Fatalf("err = %v, want the HTTP 400 through unchanged", err)
	}
	if calls != 1 {
		t.Fatalf("a permanent error was retried %d times", calls)
	}
}

func TestDoExhaustsMaxAttempts(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return errors.New("connection refused")
	}, nil)
	if err == nil || calls != 3 {
		t.Fatalf("err %v after %d calls, want failure after exactly 3", err, calls)
	}
}

// TestDoAttemptTimeoutIsTransient: an op that blows its per-attempt
// deadline is retried (the parent is still alive), and each attempt gets a
// fresh deadline.
func TestDoAttemptTimeoutIsTransient(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, AttemptTimeout: 20 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if calls != 3 {
		t.Fatalf("attempt timeouts drove %d calls, want 3", calls)
	}
}

// TestDoParentCancelStopsRetrying: once the caller's context dies, Do
// returns instead of burning the remaining attempts.
func TestDoParentCancelStopsRetrying(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 100, BaseDelay: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := p.Do(ctx, func(ctx context.Context) error {
		calls++
		cancel()
		return errors.New("connection refused")
	}, nil)
	if err == nil {
		t.Fatal("Do succeeded after parent cancel")
	}
	if calls != 1 {
		t.Fatalf("Do kept calling (%d) after the parent context died", calls)
	}
}

// TestDoSharedJitteredPolicyConcurrent drives one jittered policy from many
// goroutines — the coordinator installs a single policy used by every job
// dispatcher, so concurrent jitter draws must serialize on the shared
// instance's mutex. The race detector is the assertion.
func TestDoSharedJitteredPolicyConcurrent(t *testing.T) {
	p := &RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Jitter:      0.2,
		Rand:        rng.New(1).Split("shared-jitter"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				err := p.Do(context.Background(), func(ctx context.Context) error {
					return &HTTPError{Status: 503}
				}, nil)
				if err == nil {
					t.Error("Do succeeded on an always-503 op")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDoHonorsRetryAfter: a 503 carrying Retry-After stretches the backoff
// to at least the server's hint instead of the (much shorter) base delay.
func TestDoHonorsRetryAfter(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second}
	start := time.Now()
	err := p.Do(context.Background(), func(ctx context.Context) error {
		return &HTTPError{Status: 503, Msg: "queue full", RetryAfter: 1}
	}, nil)
	if err == nil {
		t.Fatal("Do succeeded")
	}
	if took := time.Since(start); took < time.Second {
		t.Fatalf("retry waited only %v; the Retry-After second was ignored", took)
	}
}
