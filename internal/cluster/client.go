package cluster

// Exported client-side helpers: the greencellsim -submit and sweep -coord
// clients speak to a daemon or coordinator through the same HTTP/JSON
// exchange the coordinator uses against its workers, so they share one
// implementation (and with it the HTTPError → Transient classification the
// retry policy keys on).

import (
	"context"
	"net/http"
)

// DoJSON performs one JSON API exchange: non-wantCode responses become
// *HTTPError (carrying the status and any Retry-After hint) so
// RetryPolicy.Do retries exactly the transient ones. hc nil uses
// http.DefaultClient.
func DoJSON(ctx context.Context, hc *http.Client, method, url string, body []byte, wantCode int, out any) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	return rpcJSON(ctx, hc, method, url, body, wantCode, out)
}

// GetBytes performs one GET returning the raw body (a metrics stream),
// with the same error classification as DoJSON.
func GetBytes(ctx context.Context, hc *http.Client, url string) ([]byte, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	return rpcBytes(ctx, hc, url)
}
