package cluster

// Coordinator end-to-end tests against real in-process greencelld workers
// (httptest servers over internal/server handlers). The load-bearing
// assertions are the ISSUE-8 acceptance criteria: the merged stream is
// byte-identical to a local run no matter which workers ran which cells,
// a killed worker's leases re-dispatch and the stream still matches, a
// drained coordinator resumes from its journal, and a resubmitted job is
// served entirely from the content-addressed cache with zero dispatches.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greencell/internal/metrics"
	"greencell/internal/server"
	"greencell/internal/sim"
)

// tinySpec is the fast test scenario: the paper preset cut to 8 slots.
func tinySpec(seed int64) sim.ScenarioSpec {
	return sim.ScenarioSpec{Slots: 8, Seed: seed}
}

// slowishSpec runs long enough per seed that a test can reliably observe
// a lease in flight and interrupt it.
func slowishSpec(seed int64) sim.ScenarioSpec {
	return sim.ScenarioSpec{Slots: 120, Seed: seed}
}

// startWorkers launches n in-process greencelld workers and returns their
// base URLs plus the test servers (for mid-test kills).
func startWorkers(t *testing.T, n int) ([]string, []*httptest.Server) {
	t.Helper()
	var urls []string
	var tss []*httptest.Server
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{Workers: 2})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			if err := srv.Close(); err != nil {
				t.Logf("worker close: %v", err)
			}
		})
		urls = append(urls, ts.URL)
		tss = append(tss, ts)
	}
	return urls, tss
}

// fastCfg is the test coordinator configuration: tight intervals so
// failures are detected in milliseconds, generous attempt budgets so
// injected faults never exhaust a cell.
func fastCfg(workers []string) Config {
	return Config{
		Workers:           workers,
		PollInterval:      10 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		BreakerThreshold:  3,
		BreakerCooldown:   250 * time.Millisecond,
		// Generous: these tests never want a lease to expire on its own —
		// the race detector makes worker-side sims ~10x slower, and an
		// expiring lease turns into an interrupted-job requeue loop.
		LeaseTimeout:      10 * time.Minute,
		MaxAttempts:       8,
		PerWorkerInflight: 2,
		RPC: &RetryPolicy{
			MaxAttempts:    4,
			BaseDelay:      10 * time.Millisecond,
			MaxDelay:       100 * time.Millisecond,
			AttemptTimeout: 5 * time.Second,
		},
	}
}

func newTestCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// waitCoord polls a job until pred holds (or the deadline passes).
func waitCoord(t *testing.T, c *Coordinator, id string, pred func(server.JobStatus) bool, what string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for {
		st, err := c.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last status: %+v", id, what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceStream runs (spec, seed) locally with an attached Recorder —
// the exact bytes a worker streams for a single-seed job.
func referenceStream(t *testing.T, spec sim.ScenarioSpec, seed int64) []byte {
	t.Helper()
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	sc.Seed = seed
	var buf bytes.Buffer
	rec := sim.NewRecorder(metrics.NewJSONLWriter(&buf), sim.HeaderFor(sc, spec.Label()))
	rec.Attach(&sc, false)
	if _, err := sim.Run(sc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Recorder.Close: %v", err)
	}
	return buf.Bytes()
}

// goldenMerged is the local-run golden for a multi-seed job: each seed's
// reference stream, canonicalized, concatenated in ascending seed order —
// exactly what the coordinator's merged stream must canonicalize to.
func goldenMerged(t *testing.T, spec sim.ScenarioSpec, seeds []int64) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, seed := range seeds {
		c, err := metrics.CanonicalizeJSONL(referenceStream(t, spec, seed))
		if err != nil {
			t.Fatalf("canonicalize reference seed %d: %v", seed, err)
		}
		out.Write(c)
	}
	return out.Bytes()
}

// mergedStream fetches and canonicalizes a job's merged metrics stream.
func mergedStream(t *testing.T, c *Coordinator, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Stream(context.Background(), id, &buf); err != nil {
		t.Fatalf("Stream(%s): %v", id, err)
	}
	canon, err := metrics.CanonicalizeJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("canonicalize merged: %v", err)
	}
	return canon
}

// TestClusterMergesByteIdenticalAndCachesResubmit is the determinism and
// exactly-once contract: a sharded job's merged stream matches the local
// golden byte-for-byte; a resubmit completes entirely from the
// content-addressed cache (zero new dispatches, one hit per seed); and a
// restarted coordinator serves both the history and the cache from its
// journal.
func TestClusterMergesByteIdenticalAndCachesResubmit(t *testing.T) {
	urls, _ := startWorkers(t, 3)
	dir := t.TempDir()
	cfg := fastCfg(urls)
	cfg.JournalPath = filepath.Join(dir, "coord.journal.jsonl")
	cfg.CacheDir = filepath.Join(dir, "cache")
	c := newTestCoord(t, cfg)

	req := server.JobRequest{Spec: tinySpec(5), Replications: 3}
	st, err := c.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(st.Seeds) != 3 || st.Seeds[0] != 5 || st.Seeds[2] != 7 {
		t.Fatalf("seeds = %v, want [5 6 7]", st.Seeds)
	}
	st = waitCoord(t, c, st.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st.State != server.JobDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Seeds) != 3 || st.Result.Summary == nil {
		t.Fatalf("result incomplete: %+v", st.Result)
	}
	if st.Result.Summary.AvgEnergyCost.N != 3 {
		t.Fatalf("summary over %d seeds, want 3", st.Result.Summary.AvgEnergyCost.N)
	}

	golden := goldenMerged(t, req.Spec, st.Seeds)
	if got := mergedStream(t, c, st.ID); !bytes.Equal(got, golden) {
		t.Fatalf("merged stream differs from local golden (%d vs %d bytes)", len(got), len(golden))
	}

	cv := c.CounterValues()
	if cv["coord_dispatches_total"] != 3 || cv["coord_cache_hits_total"] != 0 {
		t.Fatalf("first run: dispatches %v cache hits %v, want 3 / 0", cv["coord_dispatches_total"], cv["coord_cache_hits_total"])
	}

	// Resubmit: same (spec, seeds) → same keys → served from cache with
	// zero dispatches.
	st2, err := c.Submit(req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st2 = waitCoord(t, c, st2.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st2.State != server.JobDone {
		t.Fatalf("resubmit ended %s (%s)", st2.State, st2.Error)
	}
	cv = c.CounterValues()
	if cv["coord_dispatches_total"] != 3 {
		t.Fatalf("resubmit dispatched: %v dispatches, want still 3", cv["coord_dispatches_total"])
	}
	if cv["coord_cache_hits_total"] != 3 {
		t.Fatalf("resubmit cache hits %v, want 3", cv["coord_cache_hits_total"])
	}
	if got := mergedStream(t, c, st2.ID); !bytes.Equal(got, golden) {
		t.Fatalf("cached merged stream differs from golden")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: the journal rebuilds both jobs as history and re-admits the
	// cells; a third submit is again all cache, zero dispatches.
	c2 := newTestCoord(t, cfg)
	defer func() {
		if err := c2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	hist, err := c2.Job(st.ID)
	if err != nil {
		t.Fatalf("history job missing after restart: %v", err)
	}
	if hist.State != server.JobDone || !hist.Recovered {
		t.Fatalf("history job after restart: %+v", hist)
	}
	if got := mergedStream(t, c2, st.ID); !bytes.Equal(got, golden) {
		t.Fatalf("restarted history stream differs from golden")
	}
	st3, err := c2.Submit(req)
	if err != nil {
		t.Fatalf("post-restart submit: %v", err)
	}
	st3 = waitCoord(t, c2, st3.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st3.State != server.JobDone {
		t.Fatalf("post-restart job ended %s (%s)", st3.State, st3.Error)
	}
	cv = c2.CounterValues()
	if cv["coord_dispatches_total"] != 0 || cv["coord_cache_hits_total"] != 3 {
		t.Fatalf("post-restart: dispatches %v cache hits %v, want 0 / 3", cv["coord_dispatches_total"], cv["coord_cache_hits_total"])
	}
}

// TestClusterKillWorkerMidJob kills a worker that holds a lease and checks
// the full repair path: the breaker evicts it, its cell re-dispatches to a
// healthy peer, the job still finishes, and the merged stream is still
// byte-identical to the local golden.
func TestClusterKillWorkerMidJob(t *testing.T) {
	urls, tss := startWorkers(t, 3)
	c := newTestCoord(t, fastCfg(urls))
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	req := server.JobRequest{Spec: slowishSpec(1), Replications: 4}
	st, err := c.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Wait for a committed lease, then kill exactly that worker.
	victim := -1
	deadline := time.Now().Add(30 * time.Second)
	for victim < 0 {
		c.mu.Lock()
		j := c.jobs[st.ID]
		for _, seed := range j.Seeds {
			if cl := j.cells[seed]; cl.state == cellLeased {
				victim = cl.workerID
				break
			}
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("no cell was ever leased")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tss[victim].Close()

	st = waitCoord(t, c, st.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st.State != server.JobDone {
		t.Fatalf("job ended %s (%s), want done despite the killed worker", st.State, st.Error)
	}
	cv := c.CounterValues()
	if cv["coord_redispatches_total"] < 1 {
		t.Fatalf("no re-dispatch recorded after killing a leased worker: %v", cv)
	}
	if cv["coord_worker_evictions_total"] < 1 {
		t.Fatalf("the killed worker was never evicted: %v", cv)
	}
	ws := c.WorkerStatuses()
	if ws[victim].State == WorkerReady {
		t.Fatalf("killed worker still reported ready: %+v", ws[victim])
	}

	golden := goldenMerged(t, req.Spec, st.Seeds)
	if got := mergedStream(t, c, st.ID); !bytes.Equal(got, golden) {
		t.Fatalf("merged stream after worker kill differs from golden (%d vs %d bytes)", len(got), len(golden))
	}
}

// TestClusterDrainResumesFromJournal drains a coordinator mid-job and
// checks a successor picks the job up from the journal: finished cells
// come from the cache (counted as hits), only the remainder re-dispatches,
// and the final merged stream still matches the golden.
func TestClusterDrainResumesFromJournal(t *testing.T) {
	urls, _ := startWorkers(t, 2)
	dir := t.TempDir()
	cfg := fastCfg(urls)
	cfg.JournalPath = filepath.Join(dir, "coord.journal.jsonl")
	cfg.CacheDir = filepath.Join(dir, "cache")
	c := newTestCoord(t, cfg)

	req := server.JobRequest{Spec: slowishSpec(2), Replications: 3}
	st, err := c.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCoord(t, c, st.ID, func(st server.JobStatus) bool {
		for _, p := range st.Progress {
			if p.State == "done" {
				return true
			}
		}
		return false
	}, "first cell done")

	// Zero-grace drain: interrupt immediately, no terminal journal event.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := c.Submit(req); err == nil {
		t.Fatal("Submit after drain succeeded")
	}
	entries, err := loadJournal(cfg.JournalPath)
	if err != nil {
		t.Fatalf("loadJournal: %v", err)
	}
	last, cells := "", 0
	for _, e := range entries {
		if e.ID != st.ID {
			continue
		}
		if e.Event == "cell" {
			cells++
			continue
		}
		last = e.Event
	}
	if last != "started" {
		t.Fatalf("journal's last lifecycle event is %q, want started (recoverable)", last)
	}
	if cells == 0 {
		t.Fatal("no cell events journaled before the drain")
	}

	// The successor resumes the job: cached cells are hits, the rest run.
	c2 := newTestCoord(t, cfg)
	defer func() {
		if err := c2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	st2, err := c2.Job(st.ID)
	if err != nil {
		t.Fatalf("resumed job missing: %v", err)
	}
	if !st2.Recovered {
		t.Fatal("resumed job not flagged recovered")
	}
	st2 = waitCoord(t, c2, st.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st2.State != server.JobDone {
		t.Fatalf("resumed job ended %s (%s), want done", st2.State, st2.Error)
	}
	cv := c2.CounterValues()
	if cv["coord_jobs_recovered_total"] != 1 {
		t.Fatalf("recovered counter %v, want 1", cv["coord_jobs_recovered_total"])
	}
	if int(cv["coord_cache_hits_total"]) < cells {
		t.Fatalf("cache hits %v < %d journaled cells", cv["coord_cache_hits_total"], cells)
	}
	golden := goldenMerged(t, req.Spec, st2.Seeds)
	if got := mergedStream(t, c2, st.ID); !bytes.Equal(got, golden) {
		t.Fatalf("resumed merged stream differs from golden (%d vs %d bytes)", len(got), len(golden))
	}
}

// TestCancelAfterDrainRequeue: a zero-grace drain re-queues an interrupted
// job with its dispatcher gone (done already closed). A user DELETE landing
// on that job must still be a real cancel — terminal state, counted — not a
// silent no-op that reports 200 with the job still queued for resumption.
func TestCancelAfterDrainRequeue(t *testing.T) {
	urls, _ := startWorkers(t, 2)
	c := newTestCoord(t, fastCfg(urls))

	req := server.JobRequest{Spec: slowishSpec(3), Replications: 2}
	st, err := c.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	drained, err := c.Job(st.ID)
	if err != nil {
		t.Fatalf("Job after drain: %v", err)
	}
	if drained.State != server.JobQueued {
		t.Fatalf("after drain the job is %s, want queued (the re-queue precondition)", drained.State)
	}

	got, err := c.Cancel(st.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != server.JobCancelled {
		t.Fatalf("Cancel returned state %s, want cancelled", got.State)
	}
	if after, err := c.Job(st.ID); err != nil || after.State != server.JobCancelled {
		t.Fatalf("job after cancel: %+v, %v — the DELETE did not stick", after, err)
	}
	if cv := c.CounterValues(); cv["coord_jobs_cancelled_total"] != 1 {
		t.Fatalf("cancelled counter %v, want 1", cv["coord_jobs_cancelled_total"])
	}
}

// TestClusterChaosByteIdentity runs a job through the fault-injecting
// transport — every worker RPC, heartbeat included, subject to
// deterministic drops and synthetic 500s — and asserts the retry/breaker
// machinery still converges to the exact golden stream.
func TestClusterChaosByteIdentity(t *testing.T) {
	urls, _ := startWorkers(t, 3)
	ft := NewFaultTransport(nil, 7, 0.15, 0.15)
	cfg := fastCfg(urls)
	cfg.Transport = ft
	c := newTestCoord(t, cfg)
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	req := server.JobRequest{Spec: tinySpec(11), Replications: 3}
	st, err := c.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitCoord(t, c, st.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st.State != server.JobDone {
		t.Fatalf("chaos job ended %s (%s), want done", st.State, st.Error)
	}
	drops, errs := ft.Faults()
	if drops+errs == 0 {
		t.Fatal("the chaos transport injected no faults; the test exercised nothing")
	}
	golden := goldenMerged(t, req.Spec, st.Seeds)
	if got := mergedStream(t, c, st.ID); !bytes.Equal(got, golden) {
		t.Fatalf("chaos merged stream differs from golden (%d vs %d bytes); faults: %d drops, %d errs",
			len(got), len(golden), drops, errs)
	}
	t.Logf("chaos run survived %d drops and %d synthetic 500s; retries: %v",
		drops, errs, c.CounterValues()["coord_rpc_retries_total"])
}

// TestCoordinatorHTTPAPI exercises the wire surface: submit/status/cancel,
// queue-full 503 with Retry-After, the workers endpoint, the Prometheus
// counters, and the healthz/readyz liveness-readiness split across a drain.
func TestCoordinatorHTTPAPI(t *testing.T) {
	// No workers: submitted jobs stay pending, which makes queue-full and
	// cancel deterministic to stage.
	c := newTestCoord(t, Config{QueueDepth: 1, PollInterval: 10 * time.Millisecond})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("closing %s: %v", path, err)
		}
		return resp, buf.String()
	}

	// Liveness and readiness both green before any drain.
	if resp, body := get("/healthz"); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/readyz"); resp.StatusCode != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("readyz: %d %s", resp.StatusCode, body)
	}

	// Invalid spec → 400.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"spec":{"preset":"nope"}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing body: %v", err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("invalid spec: status %d", resp.StatusCode)
	}

	// First job fills the table (QueueDepth 1, no workers → stays active).
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"spec":{"slots":8,"seed":1}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading submit: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing body: %v", err)
	}
	if resp.StatusCode != 202 {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, buf.String())
	}
	id := strings.TrimPrefix(resp.Header.Get("Location"), "/v1/jobs/")
	if !strings.HasPrefix(id, "cjob-") {
		t.Fatalf("job ID %q lacks the coordinator prefix", id)
	}

	// Second submit → 503 with the Retry-After hint.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"spec":{"slots":8,"seed":2}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing body: %v", err)
	}
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("queue-full: status %d Retry-After %q, want 503 / 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Workers endpoint: empty pool, empty cache.
	if resp, body := get("/v1/workers"); resp.StatusCode != 200 || !strings.Contains(body, `"cache_cells":0`) {
		t.Fatalf("workers: %d %s", resp.StatusCode, body)
	}

	// Cancel the pending job over the wire.
	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatalf("DELETE request: %v", err)
	}
	resp, err = http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing body: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	st, err := c.Job(id)
	if err != nil || st.State != server.JobCancelled {
		t.Fatalf("after cancel: %+v, %v", st, err)
	}

	// Prometheus exposition carries the coord_* schema-v4 counters.
	if resp, body := get("/metrics"); resp.StatusCode != 200 ||
		!strings.Contains(body, "coord_jobs_submitted_total 1") ||
		!strings.Contains(body, "coord_redispatches_total 0") ||
		!strings.Contains(body, "coord_cache_hits_total 0") ||
		!strings.Contains(body, "coord_worker_evictions_total 0") {
		t.Fatalf("prometheus exposition incomplete: %d\n%s", resp.StatusCode, body)
	}

	// A drain flips readiness, not liveness.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if resp, body := get("/readyz"); resp.StatusCode != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("readyz after drain: %d %s", resp.StatusCode, body)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz after drain: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestClusterCacheEvictionRecompute caps the result cache to a single
// byte: every completed cell immediately evicts its predecessors, so a
// resubmit of the same job cannot be served from cache and must re-run
// (re-dispatch) the evicted cells — and the recomputed merged stream is
// still byte-identical, because a cell is a pure function of its key.
func TestClusterCacheEvictionRecompute(t *testing.T) {
	urls, _ := startWorkers(t, 2)
	cfg := fastCfg(urls)
	cfg.CacheMaxBytes = 1
	c := newTestCoord(t, cfg)
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	req := server.JobRequest{Spec: tinySpec(5), Replications: 3}
	st, err := c.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitCoord(t, c, st.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st.State != server.JobDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	golden := goldenMerged(t, req.Spec, st.Seeds)
	if got := mergedStream(t, c, st.ID); !bytes.Equal(got, golden) {
		t.Fatalf("merged stream differs from local golden")
	}

	cv := c.CounterValues()
	if cv["coord_dispatches_total"] != 3 {
		t.Fatalf("first run dispatched %v cells, want 3", cv["coord_dispatches_total"])
	}
	// Each completed cell's put evicts the previous cell: at least two
	// evictions for three cells, and at most one survivor.
	if cv["coord_cache_evictions_total"] < 2 {
		t.Fatalf("evictions = %v, want >= 2 under a 1-byte cap", cv["coord_cache_evictions_total"])
	}
	if n := c.CacheLen(); n > 1 {
		t.Fatalf("CacheLen = %d, want <= 1 under a 1-byte cap", n)
	}

	// Resubmit: the evicted cells miss and recompute — at least two new
	// dispatches — and the stream still matches the golden byte-for-byte.
	st2, err := c.Submit(req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st2 = waitCoord(t, c, st2.ID, func(st server.JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st2.State != server.JobDone {
		t.Fatalf("resubmit ended %s (%s)", st2.State, st2.Error)
	}
	cv = c.CounterValues()
	if cv["coord_dispatches_total"] < 5 {
		t.Fatalf("resubmit was served from a cache that should have evicted: %v total dispatches, want >= 5", cv["coord_dispatches_total"])
	}
	if cv["coord_cache_hits_total"] > 1 {
		t.Fatalf("cache hits = %v, want <= 1 (at most the lone survivor)", cv["coord_cache_hits_total"])
	}
	if got := mergedStream(t, c, st2.ID); !bytes.Equal(got, golden) {
		t.Fatalf("recomputed merged stream differs from golden")
	}
}
