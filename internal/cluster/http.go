package cluster

// The coordinator's HTTP API deliberately mirrors the daemon's
// (internal/server/http.go): the same POST/GET/DELETE /v1/jobs shapes and
// the same NDJSON metrics stream, so greencellsim -submit and sweep -coord
// point at either a single daemon or a whole cluster without changing
// anything but the URL. On top of the daemon surface it adds GET
// /v1/workers (the pool's health) and the /healthz-vs-/readyz split:
// liveness is always 200, readiness goes 503 once a drain begins.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"greencell/internal/server"
)

// maxRequestBody bounds POST bodies; a job request is a small spec.
const maxRequestBody = 1 << 20

// Handler returns the coordinator's HTTP API:
//
//	POST   /v1/jobs              submit a job (server.JobRequest) → 202 JobStatus
//	GET    /v1/jobs              list jobs in submission order
//	GET    /v1/jobs/{id}         one job's status, per-seed progress, result
//	DELETE /v1/jobs/{id}         cancel a running job
//	GET    /v1/jobs/{id}/metrics merged seed-ordered NDJSON metrics stream
//	GET    /v1/workers           worker pool health (breaker state, inflight)
//	GET    /healthz              liveness: always 200 while the process serves
//	GET    /readyz               readiness: 503 once draining
//	GET    /metrics              Prometheus text exposition (coord_* counters)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", c.handleStream)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(data, '\n')); err != nil {
		return // client went away; nothing useful to do
	}
}

func writeErr(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
		}
		writeJSON(w, ae.code, map[string]string{"error": ae.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeErr(w, &apiError{code: 400, msg: fmt.Sprintf("reading body: %v", err)})
		return
	}
	if len(body) > maxRequestBody {
		writeErr(w, &apiError{code: 413, msg: "request body exceeds 1 MiB"})
		return
	}
	var req server.JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, &apiError{code: 400, msg: fmt.Sprintf("decoding job request: %v", err)})
		return
	}
	st, err := c.Submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": c.Jobs()})
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := c.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := c.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	_, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeErr(w, &apiError{code: 404, msg: fmt.Sprintf("no such job %q", id)})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	if err := c.Stream(r.Context(), id, w); err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			writeErr(w, err)
		}
		return // mid-stream failures (client gone, ctx done) just end it
	}
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":     c.WorkerStatuses(),
		"cache_cells": c.CacheLen(),
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := c.WriteMetrics(w); err != nil {
		return // client went away mid-write
	}
}
