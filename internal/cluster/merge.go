package cluster

// mergeLog assembles a job's merged metrics stream: one complete per-seed
// NDJSON blob (header, slot records, summary — exactly the bytes the worker
// streamed) per cell, emitted strictly in ascending seed order regardless
// of the order cells finish in. The merged stream of seeds s₁<s₂<…<sₙ is
// therefore byte-identical (after timing canonicalization) to running each
// seed locally with a Recorder and concatenating the outputs — the cluster
// determinism contract the chaos tests and cluster-smoke gate enforce.
//
// Readers follow the log live, recordLog-style (internal/server/stream.go):
// they park on a wake channel that is closed and replaced on every put.

import (
	"context"
	"io"
	"net/http"
	"sync"
)

type mergeLog struct {
	seeds []int64 // ascending emission order, fixed at creation

	mu     sync.Mutex
	wake   chan struct{}
	blobs  map[int64][]byte
	closed bool
}

func newMergeLog(seeds []int64) *mergeLog {
	ordered := make([]int64, len(seeds))
	copy(ordered, seeds)
	// Seeds arrive validated-unique from JobRequest.Normalize; sort them
	// here so the emission order never depends on request order.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	return &mergeLog{
		seeds: ordered,
		wake:  make(chan struct{}),
		blobs: make(map[int64][]byte),
	}
}

// put stores one completed cell's stream bytes and wakes followers.
// Idempotent: a re-dispatched cell that races its predecessor keeps the
// first blob (both are byte-identical by determinism anyway).
func (l *mergeLog) put(seed int64, blob []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.blobs[seed]; ok || l.closed {
		return
	}
	l.blobs[seed] = blob
	close(l.wake)
	l.wake = make(chan struct{})
}

// close ends the stream: followers emit what is available (in order,
// skipping seeds that never produced a blob — failed cells) and return.
func (l *mergeLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.wake)
	}
}

// stream writes the merged stream into w: each seed's blob in ascending
// seed order, blocking on not-yet-finished cells until the log closes.
func (l *mergeLog) stream(ctx context.Context, w io.Writer) error {
	flusher, _ := w.(http.Flusher)
	for _, seed := range l.seeds {
		for {
			l.mu.Lock()
			blob, ok := l.blobs[seed]
			closed := l.closed
			wake := l.wake
			l.mu.Unlock()
			if ok {
				if _, err := w.Write(blob); err != nil {
					return err
				}
				if flusher != nil {
					flusher.Flush()
				}
				break
			}
			if closed {
				// Terminal without a blob: the cell failed (or the job was
				// cancelled); its seed is absent from the merged stream,
				// matching a local run whose seed errored.
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-wake:
			}
		}
	}
	return nil
}
