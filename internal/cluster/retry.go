package cluster

// Shared RPC retry machinery: jittered exponential backoff with capped
// attempts and a per-attempt timeout. The coordinator wraps every worker
// RPC in a RetryPolicy, and the greencellsim/sweep clients reuse the same
// helper for their submit/poll calls (the ISSUE-8 "share the retry helper"
// contract). Retries fire only for transient failures — connection errors
// and 5xx/429 responses — so a 400 from a bad spec still fails immediately.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"greencell/internal/rng"
)

// HTTPError is a non-2xx response surfaced as an error, keeping the status
// code so Transient can classify it. RetryAfter carries the server's
// Retry-After hint in seconds (0 = none): Do stretches its backoff to at
// least that long, so a 503 queue-full submit waits the server-suggested
// second instead of hammering at the base delay.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter int
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Msg)
}

// Transient reports whether err is worth retrying: anything that is not an
// HTTP response (connection refused, reset, timeout, …) plus the retryable
// statuses — 5xx (worker restarting, queue full → 503) and 429. Context
// cancellation is never transient: the caller gave up.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500 || he.Status == http.StatusTooManyRequests
	}
	return true
}

// RetryPolicy is a jittered exponential backoff schedule. The zero value is
// usable: Defaulted() fills every unset knob.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries (first call included). Default 4.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure; each
	// further failure multiplies it by Multiplier up to MaxDelay.
	// Defaults: 50ms base, 2s cap, ×2.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter widens each delay uniformly into [d·(1−Jitter), d·(1+Jitter)]
	// so a fleet of clients retrying the same dead worker decorrelates.
	// Default 0.2. Jitter draws from Rand; with Rand nil the delay is the
	// deterministic midpoint (no jitter), which tests rely on.
	Jitter float64
	// Rand is the jitter source (internal/rng keeps it seedable and
	// deterministic under test). Guarded internally; nil disables jitter.
	Rand *rng.Source
	// AttemptTimeout bounds each individual attempt with a context
	// deadline; 0 leaves the parent context's deadline in charge.
	AttemptTimeout time.Duration

	// randMu guards Rand: one policy is shared across the coordinator's
	// per-job dispatcher goroutines, so every jitter draw must lock the
	// shared instance's mutex — never a copy's.
	randMu sync.Mutex
}

// retryKnobs is a snapshot of a policy's plain parameters with defaults
// applied. Do works from a snapshot instead of a policy copy so that the
// jitter draw always goes through the original policy's mutex: copying the
// policy would pair a fresh mutex with the still-shared Rand and race.
type retryKnobs struct {
	maxAttempts    int
	baseDelay      time.Duration
	maxDelay       time.Duration
	multiplier     float64
	jitter         float64
	attemptTimeout time.Duration
}

func (p *RetryPolicy) knobs() retryKnobs {
	k := retryKnobs{
		maxAttempts:    p.MaxAttempts,
		baseDelay:      p.BaseDelay,
		maxDelay:       p.MaxDelay,
		multiplier:     p.Multiplier,
		jitter:         p.Jitter,
		attemptTimeout: p.AttemptTimeout,
	}
	if k.maxAttempts <= 0 {
		k.maxAttempts = 4
	}
	if k.baseDelay <= 0 {
		k.baseDelay = 50 * time.Millisecond
	}
	if k.maxDelay <= 0 {
		k.maxDelay = 2 * time.Second
	}
	if k.multiplier < 1 {
		k.multiplier = 2
	}
	if k.jitter == 0 {
		k.jitter = 0.2
	}
	return k
}

// Defaulted returns a copy with every unset field at its default. The copy
// has its own jitter mutex while sharing Rand, so use either the copy or
// the original across goroutines — not both.
func (p *RetryPolicy) Defaulted() *RetryPolicy {
	k := p.knobs()
	return &RetryPolicy{
		MaxAttempts:    k.maxAttempts,
		BaseDelay:      k.baseDelay,
		MaxDelay:       k.maxDelay,
		Multiplier:     k.multiplier,
		Jitter:         k.jitter,
		Rand:           p.Rand,
		AttemptTimeout: k.attemptTimeout,
	}
}

// Delay returns the backoff before attempt n+1 (n = completed attempts,
// n ≥ 1), jittered when a Rand is set. Safe for concurrent use: the jitter
// draw locks the receiver's mutex.
func (p *RetryPolicy) Delay(n int) time.Duration {
	return p.delay(retryKnobs{
		baseDelay:  p.BaseDelay,
		maxDelay:   p.MaxDelay,
		multiplier: p.Multiplier,
		jitter:     p.Jitter,
	}, n)
}

// delay computes the backoff from the given knobs, drawing jitter from the
// receiver's Rand under its mutex.
func (p *RetryPolicy) delay(k retryKnobs, n int) time.Duration {
	d := float64(k.baseDelay)
	for i := 1; i < n; i++ {
		d *= k.multiplier
		if d >= float64(k.maxDelay) {
			d = float64(k.maxDelay)
			break
		}
	}
	if p.Rand != nil && k.jitter > 0 {
		p.randMu.Lock()
		u := p.Rand.Float64()
		p.randMu.Unlock()
		d *= 1 - k.jitter + 2*k.jitter*u
	}
	if d > float64(k.maxDelay) {
		d = float64(k.maxDelay)
	}
	return time.Duration(d)
}

// Do runs op with retries: transient failures back off and try again until
// MaxAttempts or ctx is done; the final error is returned annotated with
// the attempt count. onRetry (optional) observes each retry — the
// coordinator counts them into coord_rpc_retries_total.
func (p *RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error, onRetry func(err error)) error {
	k := p.knobs()
	var last error
	for attempt := 1; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if k.attemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, k.attemptTimeout)
		}
		last = op(actx)
		if cancel != nil {
			cancel()
		}
		if last == nil {
			return nil
		}
		// A per-attempt timeout surfaces as context.DeadlineExceeded from
		// inside the op; that is transient as long as the parent lives.
		attemptTimedOut := ctx.Err() == nil &&
			(errors.Is(last, context.DeadlineExceeded) || errors.Is(last, context.Canceled))
		if !Transient(last) && !attemptTimedOut {
			return last
		}
		if ctx.Err() != nil {
			return fmt.Errorf("after %d attempt(s): %w", attempt, last)
		}
		if attempt >= k.maxAttempts {
			return fmt.Errorf("after %d attempt(s): %w", attempt, last)
		}
		if onRetry != nil {
			onRetry(last)
		}
		d := p.delay(k, attempt)
		var he *HTTPError
		if errors.As(last, &he) && he.RetryAfter > 0 {
			if ra := time.Duration(he.RetryAfter) * time.Second; ra > d {
				d = ra
			}
		}
		if err := sleepCtx(ctx, d); err != nil {
			return fmt.Errorf("after %d attempt(s): %w", attempt, last)
		}
	}
}

// sleepCtx sleeps d or returns ctx's error early, never holding a timer
// past its use.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
