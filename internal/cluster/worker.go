package cluster

// Worker pool state: each registered greencelld daemon is tracked with a
// readiness flag (fed by the /readyz heartbeat loop), a consecutive-failure
// count shared between heartbeats and job RPCs, and a circuit breaker —
// after BreakerThreshold straight failures the worker is evicted for
// BreakerCooldown, during which no leases are placed on it and its leases
// expire onto healthy workers. A successful probe after the cooldown
// re-admits it, so a flapping worker oscillates between short eviction
// windows instead of absorbing and losing leases.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"context"
)

// WorkerState is a worker's scheduling eligibility.
type WorkerState string

// Worker states: ready (schedulable), down (failing probes/RPCs but circuit
// still closed), evicted (circuit open, cooling down).
const (
	WorkerReady   WorkerState = "ready"
	WorkerDown    WorkerState = "down"
	WorkerEvicted WorkerState = "evicted"
)

// WorkerStatus is the API rendering of one worker.
type WorkerStatus struct {
	ID       int         `json:"id"`
	BaseURL  string      `json:"base_url"`
	State    WorkerState `json:"state"`
	Inflight int         `json:"inflight"`
	LastErr  string      `json:"last_error,omitempty"`
}

type worker struct {
	id   int
	base string // normalized base URL, no trailing slash

	mu          sync.Mutex
	ready       bool
	consecFails int
	openUntil   time.Time
	inflight    int
	lastErr     string
}

func newWorker(id int, base string) *worker {
	return &worker{id: id, base: strings.TrimSuffix(base, "/")}
}

// schedulable reports whether new leases may be placed on the worker.
func (w *worker) schedulable(t time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ready && (w.openUntil.IsZero() || !t.Before(w.openUntil))
}

// probeDue reports whether the circuit allows contacting the worker at all
// (closed, or open but past its cooldown — the half-open probe).
func (w *worker) probeDue(t time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.openUntil.IsZero() || !t.Before(w.openUntil)
}

// succeed records a successful probe or RPC: failures reset, circuit
// closes, readiness set.
func (w *worker) succeed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.consecFails = 0
	w.openUntil = time.Time{}
	w.ready = true
	w.lastErr = ""
}

// fail records a failed probe or RPC; it reports whether this failure
// tripped the breaker (so the caller counts the eviction exactly once per
// open). threshold ≥ 1.
func (w *worker) fail(err error, threshold int, cooldown time.Duration, t time.Time) (evicted bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ready = false
	w.consecFails++
	if err != nil {
		w.lastErr = err.Error()
	}
	if w.consecFails >= threshold && w.openUntil.IsZero() {
		w.openUntil = t.Add(cooldown)
		return true
	}
	if !w.openUntil.IsZero() && !t.Before(w.openUntil) {
		// Half-open probe failed: re-open for another cooldown.
		w.openUntil = t.Add(cooldown)
	}
	return false
}

func (w *worker) status() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WorkerStatus{ID: w.id, BaseURL: w.base, Inflight: w.inflight, LastErr: w.lastErr}
	switch {
	case !w.openUntil.IsZero():
		st.State = WorkerEvicted
	case w.ready:
		st.State = WorkerReady
	default:
		st.State = WorkerDown
	}
	return st
}

func (w *worker) addInflight(d int) {
	w.mu.Lock()
	w.inflight += d
	w.mu.Unlock()
}

func (w *worker) inflightNow() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight
}

// rpcJSON performs one HTTP exchange against a worker: non-wantCode
// responses become *HTTPError (so Transient can classify), transport
// failures pass through as-is.
func rpcJSON(ctx context.Context, hc *http.Client, method, url string, body []byte, wantCode int, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantCode {
		return &HTTPError{
			Status:     resp.StatusCode,
			Msg:        fmt.Sprintf("%s %s: %s", method, url, strings.TrimSpace(string(data))),
			RetryAfter: retryAfterSeconds(resp),
		}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// maxStreamBytes caps one cell's metrics stream fetch. A stream past the
// cap must fail loudly: a silently truncated blob would be cached,
// journaled, and merged as a complete cell, corrupting the merged stream
// for that key permanently.
const maxStreamBytes = 256 << 20

// rpcBytes performs one GET returning the raw body (the metrics stream).
func rpcBytes(ctx context.Context, hc *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxStreamBytes+1))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &HTTPError{
			Status:     resp.StatusCode,
			Msg:        fmt.Sprintf("GET %s: %s", url, strings.TrimSpace(string(data))),
			RetryAfter: retryAfterSeconds(resp),
		}
	}
	if len(data) > maxStreamBytes {
		return nil, fmt.Errorf("GET %s: stream exceeds the %d MiB cap", url, maxStreamBytes>>20)
	}
	return data, nil
}

// retryAfterSeconds parses a response's Retry-After header (seconds form
// only; HTTP-date values are ignored as no server here emits them).
func retryAfterSeconds(resp *http.Response) int {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
