package cluster

// The per-job dispatcher. Each running job owns one goroutine that drives
// its cells through the lease state machine:
//
//  1. resolve: cells whose key is already in the content-addressed cache
//     complete immediately (coord_cache_hits_total) — zero dispatches.
//  2. dispatch: each pending cell is leased to a healthy worker as a
//     single-seed daemon job carrying the lease timeout as its worker-side
//     deadline. Worker choice is (seed index + attempts) mod pool, skipping
//     evicted/down/saturated workers, so a re-dispatch naturally lands on a
//     different worker than the one that just lost the lease.
//  3. poll: leased cells are polled at PollInterval. A finished worker job
//     yields the cell's metrics and its full NDJSON stream, which are
//     cached, journaled, and merged. A lease that outlives LeaseTimeout is
//     cancelled best-effort and its cell re-queued.
//
// The coordinator mutex is never held across a worker RPC (every exchange
// is planned under the lock, executed outside it, and committed back under
// it), so slow or black-holed workers cannot wedge status handlers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"greencell/internal/server"
)

// heartbeatLoop probes one worker's /readyz until shutdown, feeding the
// shared breaker state. While the circuit is open the worker is left alone
// for its cooldown; the first probe after it is the half-open trial.
func (c *Coordinator) heartbeatLoop(w *worker) {
	defer c.wg.Done()
	for {
		if w.probeDue(now()) {
			pctx, cancel := context.WithTimeout(c.runCtx, c.cfg.HeartbeatTimeout)
			err := rpcJSON(pctx, c.hc, http.MethodGet, w.base+"/readyz", nil, http.StatusOK, nil)
			cancel()
			if c.runCtx.Err() != nil {
				return
			}
			if err != nil {
				c.workerFailed(w, err)
			} else {
				w.succeed()
			}
		}
		if sleepCtx(c.runCtx, c.cfg.HeartbeatInterval) != nil {
			return
		}
	}
}

// workerFailed records a probe/RPC failure against the worker and counts
// the eviction if this failure tripped the breaker.
func (c *Coordinator) workerFailed(w *worker, err error) {
	if w.fail(err, c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, now()) {
		c.mu.Lock()
		c.cEvictions.Inc()
		c.mu.Unlock()
	}
}

// workerRPC runs op against w under the retry policy, charging the
// worker's breaker on final failure (unless the caller's ctx was the thing
// that gave up) and crediting it on success.
func (c *Coordinator) workerRPC(ctx context.Context, w *worker, op func(ctx context.Context) error) error {
	err := c.cfg.RPC.Do(ctx, op, func(error) {
		c.mu.Lock()
		c.cRPCRetries.Inc()
		c.mu.Unlock()
	})
	switch {
	case err == nil:
		w.succeed()
	case ctx.Err() != nil:
		// The job was cancelled or timed out as a whole; no verdict on the
		// worker.
	default:
		c.workerFailed(w, err)
	}
	return err
}

// runJob drives one job to a terminal state (or to interruption by ctx).
func (c *Coordinator) runJob(ctx context.Context, j *Job) {
	c.resolveFromCache(j)
	for {
		if c.stepJob(ctx, j) {
			break
		}
		if sleepCtx(ctx, c.cfg.PollInterval) != nil {
			break
		}
	}
	c.finishJob(ctx, j)
}

// resolveFromCache completes every cell whose key the content-addressed
// cache already serves. This is the exactly-once path: a resubmitted job
// finishes here with zero dispatches.
func (c *Coordinator) resolveFromCache(j *Job) {
	for _, seed := range j.Seeds {
		c.mu.Lock()
		cl := j.cells[seed]
		key := cl.key
		pending := cl.state == cellPending
		c.mu.Unlock()
		if !pending {
			continue
		}
		m, blob, ok := c.cache.get(key)
		if !ok {
			continue
		}
		c.mu.Lock()
		if cl.state == cellPending {
			cl.state = cellDone
			cl.metrics = m
			cl.fromCache = true
			c.cCacheHits.Inc()
			c.cCellsDone.Inc()
			if err := c.journal.append(journalEntry{Event: "cell", ID: j.ID, Seed: seed, Key: key, Metrics: &m}); err != nil {
				fmt.Fprintf(os.Stderr, "greencell-coord: journal: %v\n", err)
			}
			j.merge.put(seed, blob)
		}
		c.mu.Unlock()
	}
}

// actKind is one planned dispatcher exchange.
type actKind int

const (
	actDispatch actKind = iota
	actPoll
	actExpire
)

type action struct {
	kind actKind
	cl   *cell
	w    *worker
	wjob string
}

// stepJob runs one dispatcher tick and reports whether every cell is
// terminal. Planning happens under the coordinator mutex; the RPCs and
// their commits follow outside/under it respectively.
func (c *Coordinator) stepJob(ctx context.Context, j *Job) bool {
	t := now()
	var acts []action

	c.mu.Lock()
	allDone := true
	for i, seed := range j.Seeds {
		cl := j.cells[seed]
		if cl.state == cellDone || cl.state == cellFailed {
			continue
		}
		allDone = false
		switch cl.state {
		case cellPending:
			if cl.attempts >= c.cfg.MaxAttempts {
				cl.state = cellFailed
				cl.errMsg = fmt.Sprintf("exhausted %d lease attempts (last: %s)", cl.attempts, orUnknown(cl.errMsg))
				c.cCellsFailed.Inc()
				continue
			}
			if w := c.pickWorker(i, cl.attempts, t); w != nil {
				// Reserve the slot now so this tick cannot overcommit the
				// worker while the RPCs are still in flight.
				w.addInflight(1)
				acts = append(acts, action{kind: actDispatch, cl: cl, w: w})
			}
		case cellLeased:
			w := c.workers[cl.workerID]
			if t.After(cl.deadline) {
				acts = append(acts, action{kind: actExpire, cl: cl, w: w, wjob: cl.wjob})
			} else if !t.Before(cl.nextPoll) {
				acts = append(acts, action{kind: actPoll, cl: cl, w: w, wjob: cl.wjob})
			}
		}
	}
	c.mu.Unlock()

	for _, a := range acts {
		if ctx.Err() != nil {
			// Interrupted mid-tick: release reservations never dispatched.
			if a.kind == actDispatch {
				a.w.addInflight(-1)
			}
			continue
		}
		switch a.kind {
		case actDispatch:
			c.dispatchCell(ctx, j, a)
		case actPoll:
			c.pollCell(ctx, j, a)
		case actExpire:
			c.expireLease(ctx, j, a)
		}
	}
	return allDone
}

// pickWorker chooses the lease target for a cell: start at
// (seed index + attempts) mod pool — deterministic sharding that rotates
// on every re-dispatch — and take the first ready worker with lease
// capacity. The caller holds the coordinator mutex (worker state has its
// own lock).
func (c *Coordinator) pickWorker(seedIdx, attempts int, t time.Time) *worker {
	n := len(c.workers)
	if n == 0 {
		return nil
	}
	start := (seedIdx + attempts) % n
	for k := 0; k < n; k++ {
		w := c.workers[(start+k)%n]
		if w.schedulable(t) && w.inflightNow() < c.cfg.PerWorkerInflight {
			return w
		}
	}
	return nil
}

// dispatchCell places one lease: a single-seed daemon job whose worker-side
// deadline is the lease timeout, so an orphaned cell self-aborts even if
// this coordinator never returns for it.
func (c *Coordinator) dispatchCell(ctx context.Context, j *Job, a action) {
	wreq := server.JobRequest{
		Spec:       j.Req.Spec,
		Seeds:      []int64{a.cl.seed},
		DeadlineMS: c.cfg.LeaseTimeout.Milliseconds(),
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		a.w.addInflight(-1)
		c.mu.Lock()
		a.cl.state = cellFailed
		a.cl.errMsg = fmt.Sprintf("encoding worker request: %v", err)
		c.cCellsFailed.Inc()
		c.mu.Unlock()
		return
	}
	var st server.JobStatus
	err = c.workerRPC(ctx, a.w, func(ctx context.Context) error {
		return rpcJSON(ctx, c.hc, http.MethodPost, a.w.base+"/v1/jobs", body, http.StatusAccepted, &st)
	})

	c.mu.Lock()
	defer c.mu.Unlock()
	if a.cl.state != cellPending {
		a.w.addInflight(-1)
		return
	}
	if err != nil {
		a.w.addInflight(-1)
		a.cl.errMsg = err.Error()
		var he *HTTPError
		if errors.As(err, &he) && he.Status >= 400 && he.Status < 500 && he.Status != http.StatusTooManyRequests {
			// The fleet rejected the request itself (validation/version
			// skew): no worker will ever accept it, so fail fast instead of
			// burning lease attempts.
			a.cl.state = cellFailed
			c.cCellsFailed.Inc()
		}
		return
	}
	t := now()
	redispatch := a.cl.attempts > 0
	a.cl.attempts++
	a.cl.state = cellLeased
	a.cl.workerID = a.w.id
	a.cl.wjob = st.ID
	a.cl.deadline = t.Add(c.cfg.LeaseTimeout)
	a.cl.nextPoll = t.Add(c.cfg.PollInterval)
	c.cDispatches.Inc()
	if redispatch {
		c.cRedispatches.Inc()
	}
}

// pollCell checks one lease's worker job and, when it is done, collects the
// cell: metrics from the job result, stream bytes from the worker's metrics
// endpoint, then cache → journal → merge.
func (c *Coordinator) pollCell(ctx context.Context, j *Job, a action) {
	var st server.JobStatus
	err := c.workerRPC(ctx, a.w, func(ctx context.Context) error {
		return rpcJSON(ctx, c.hc, http.MethodGet, a.w.base+"/v1/jobs/"+a.wjob, nil, http.StatusOK, &st)
	})
	if err != nil {
		var he *HTTPError
		lost := errors.As(err, &he) && he.Status == http.StatusNotFound
		c.mu.Lock()
		defer c.mu.Unlock()
		if a.cl.state != cellLeased || a.cl.wjob != a.wjob {
			return
		}
		if lost || !a.w.schedulable(now()) {
			// The worker forgot the job (crash + lost journal) or has been
			// evicted: stop waiting out the lease and re-queue now.
			c.requeueLocked(a)
		} else {
			a.cl.nextPoll = now().Add(c.cfg.PollInterval)
		}
		return
	}

	switch st.State {
	case server.JobDone:
		c.collectCell(ctx, j, a, st)
	case server.JobFailed:
		c.mu.Lock()
		defer c.mu.Unlock()
		if a.cl.state != cellLeased || a.cl.wjob != a.wjob {
			return
		}
		if strings.Contains(st.Error, "interrupted") {
			// The worker-side deadline (= lease timeout) or a worker drain
			// killed the run, not the simulation: the cell is re-dispatchable.
			a.cl.errMsg = st.Error
			c.requeueLocked(a)
			return
		}
		// Deterministic simulation failure: every re-run would fail the
		// same way, so the cell fails permanently.
		a.cl.state = cellFailed
		a.cl.errMsg = st.Error
		a.w.addInflight(-1)
		c.cCellsFailed.Inc()
	case server.JobCancelled:
		c.mu.Lock()
		defer c.mu.Unlock()
		if a.cl.state != cellLeased || a.cl.wjob != a.wjob {
			return
		}
		a.cl.errMsg = "worker job cancelled: " + orUnknown(st.Error)
		c.requeueLocked(a)
	default:
		c.mu.Lock()
		if a.cl.state == cellLeased && a.cl.wjob == a.wjob {
			a.cl.nextPoll = now().Add(c.cfg.PollInterval)
		}
		c.mu.Unlock()
	}
}

// collectCell fetches a finished worker job's stream and commits the cell.
func (c *Coordinator) collectCell(ctx context.Context, j *Job, a action, st server.JobStatus) {
	if st.Result == nil || len(st.Result.Seeds) != 1 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if a.cl.state == cellLeased && a.cl.wjob == a.wjob {
			a.cl.errMsg = "worker job done without a single-seed result"
			c.requeueLocked(a)
		}
		return
	}
	m := st.Result.Seeds[0]
	var blob []byte
	err := c.workerRPC(ctx, a.w, func(ctx context.Context) error {
		b, err := rpcBytes(ctx, c.hc, a.w.base+"/v1/jobs/"+a.wjob+"/metrics")
		if err == nil {
			blob = b
		}
		return err
	})
	if err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		if a.cl.state == cellLeased && a.cl.wjob == a.wjob {
			// Result seen but stream unreachable: the lease stands; a later
			// poll retries the collection (or the lease expires onto another
			// worker).
			a.cl.errMsg = fmt.Sprintf("fetching stream: %v", err)
			a.cl.nextPoll = now().Add(c.cfg.PollInterval)
		}
		return
	}

	key := a.cl.key
	evicted, perr := c.cache.put(key, m, blob)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "greencell-coord: cache: %v\n", perr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if evicted > 0 {
		c.cCacheEvicts.Add(float64(evicted))
	}
	if a.cl.state != cellLeased || a.cl.wjob != a.wjob {
		return
	}
	a.cl.state = cellDone
	a.cl.metrics = m
	a.w.addInflight(-1)
	c.cCellsDone.Inc()
	if err := c.journal.append(journalEntry{Event: "cell", ID: j.ID, Seed: a.cl.seed, Key: key, Metrics: &m}); err != nil {
		fmt.Fprintf(os.Stderr, "greencell-coord: journal: %v\n", err)
	}
	j.merge.put(a.cl.seed, blob)
}

// expireLease cancels an overdue worker job best-effort and re-queues the
// cell.
func (c *Coordinator) expireLease(ctx context.Context, j *Job, a action) {
	dctx, cancel := context.WithTimeout(ctx, c.rpcTimeout())
	// Best-effort, single attempt: the worker-side deadline reaps the job
	// anyway if this DELETE never lands.
	//lint:allow droppederr -- best-effort lease cancel; the worker-side job deadline is the backstop
	_ = rpcJSON(dctx, c.hc, http.MethodDelete, a.w.base+"/v1/jobs/"+a.wjob, nil, http.StatusOK, nil)
	cancel()

	c.mu.Lock()
	defer c.mu.Unlock()
	if a.cl.state != cellLeased || a.cl.wjob != a.wjob {
		return
	}
	a.cl.errMsg = fmt.Sprintf("lease expired after %s on worker %d", c.cfg.LeaseTimeout, a.w.id)
	c.cLeaseExpiries.Inc()
	c.requeueLocked(a)
}

// requeueLocked returns a leased cell to pending (the next tick
// re-dispatches it, counting against its attempts). Caller holds c.mu.
func (c *Coordinator) requeueLocked(a action) {
	a.cl.state = cellPending
	a.cl.wjob = ""
	a.cl.workerID = -1
	a.w.addInflight(-1)
}

// finishJob finalizes the job once its loop exits: all-terminal → done or
// failed; interrupted → cancelled (user), failed (job deadline), or back to
// queued with no terminal journal event (drain — the recoverable state).
func (c *Coordinator) finishJob(ctx context.Context, j *Job) {
	c.mu.Lock()
	var leased []action
	failed, unfinished := 0, 0
	for _, seed := range j.Seeds {
		cl := j.cells[seed]
		switch cl.state {
		case cellFailed:
			failed++
		case cellDone:
		default:
			unfinished++
			if cl.state == cellLeased {
				leased = append(leased, action{cl: cl, w: c.workers[cl.workerID], wjob: cl.wjob})
			}
		}
	}

	event := ""
	switch {
	case unfinished == 0 && failed == 0:
		j.state = server.JobDone
		event = "done"
		c.cDone.Inc()
	case unfinished == 0:
		j.state = server.JobFailed
		j.errMsg = fmt.Sprintf("%d of %d seeds failed", failed, len(j.Seeds))
		event = "failed"
		c.cFailed.Inc()
	case j.cancelReason == cancelUser:
		j.state = server.JobCancelled
		j.errMsg = "cancelled"
		event = "cancelled"
		c.cCancelled.Inc()
	case j.cancelReason == cancelDrain:
		// No terminal journal event: the last journaled lifecycle event
		// stays "started", so the next coordinator resumes the job — its
		// finished cells from the cache, the rest re-dispatched.
		j.state = server.JobQueued
		j.errMsg = "interrupted by shutdown drain; will resume on restart"
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		j.state = server.JobFailed
		j.errMsg = fmt.Sprintf("deadline exceeded with %d of %d seeds unfinished", unfinished, len(j.Seeds))
		event = "failed"
		c.cFailed.Inc()
	default:
		// Interrupted without a recorded reason (e.g. Close without drain
		// bookkeeping): stay recoverable, like a drain.
		j.state = server.JobQueued
		j.errMsg = "interrupted; will resume on restart"
	}
	j.finishedAt = now()
	if j.state.Terminal() {
		j.result = c.buildResult(j)
	}
	if event != "" {
		if err := c.journal.append(journalEntry{Event: event, ID: j.ID, Error: j.errMsg}); err != nil {
			fmt.Fprintf(os.Stderr, "greencell-coord: journal: %v\n", err)
		}
	}
	c.gActive.Set(c.gActive.Value() - 1)
	c.mu.Unlock()

	// Release outstanding leases best-effort; the worker-side deadline is
	// the backstop when these DELETEs cannot land.
	for _, a := range leased {
		// The job ctx is already cancelled/expired by the time we get here —
		// deriving from it would kill the very DELETE that releases the
		// lease. A fresh bounded context is the point.
		//lint:allow ctxflow -- post-cancel best-effort lease release; the job ctx is already dead
		dctx, cancel := context.WithTimeout(context.Background(), c.rpcTimeout())
		//lint:allow droppederr -- best-effort lease release; the worker-side job deadline is the backstop
		_ = rpcJSON(dctx, c.hc, http.MethodDelete, a.w.base+"/v1/jobs/"+a.wjob, nil, http.StatusOK, nil)
		cancel()
		a.w.addInflight(-1)
	}
	j.merge.close()
	close(j.done)
}

// rpcTimeout bounds single-shot best-effort calls (lease cancels): the
// policy's per-attempt timeout, or 10s when the policy leaves the parent
// deadline in charge.
func (c *Coordinator) rpcTimeout() time.Duration {
	if d := c.cfg.RPC.AttemptTimeout; d > 0 {
		return d
	}
	return 10 * time.Second
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
