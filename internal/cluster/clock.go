package cluster

// This file owns the package's only wall-clock reads and is on
// analysis.WallClockAllowedFiles (the same arrangement as
// internal/server/job.go). Wall time drives lease deadlines, circuit
// cooldowns, and API status timestamps — operational state only. It never
// enters the metrics stream, the journal, or the content-addressed cache,
// all of which stay pure functions of (spec, seed).

import "time"

// now is the package's single wall-clock read.
func now() time.Time { return time.Now() }
