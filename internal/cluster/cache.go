package cluster

// The content-addressed result cache. A cell — one (ScenarioSpec, seed)
// replication — is a pure function of its key, so its result can be stored
// and replayed forever: resubmitted sweeps, re-dispatched leases, and
// restarted coordinators all hit the cache instead of re-running work.
//
// Key derivation (documented in docs/CLUSTER.md): the spec is canonicalized
// — Preset normalized to its effective label (so "" and "paper" collide as
// they must) and Seed zeroed (the seed is keyed separately; the per-cell
// run overrides it anyway) — then compact-JSON encoded (map fields marshal
// with sorted keys), and the key is
//
//	sha256(decimal metrics.SchemaVersion || 0x00 || canonicalSpecJSON || 0x00 || decimal seed)
//
// rendered as lowercase hex. The schema version leads the payload because
// the cache outlives binary upgrades: a schema bump changes a cell's stream
// byte-for-byte, so entries written under the old schema must miss and
// re-run instead of being merged into new-schema streams.
// The encoding is conservative: two specs that
// materialize identical scenarios through different knobs (say an explicit
// neighbors override equal to the preset default) get distinct keys and
// simply miss — correctness never depends on spec equivalence reasoning.
//
// The cache holds each cell's scalar SeedMetrics plus the cell's full
// NDJSON metrics stream, because serving a cached cell must be
// byte-identical to running it. With Dir set, blobs live on disk as
// <dir>/<key>.jsonl (written atomically via rename) and the index is
// rebuilt from the coordinator journal on restart; without a dir the blobs
// stay in memory and die with the process.
//
// The store is size-capped: with maxBytes > 0, inserting past the cap
// evicts least-recently-used cells (hits refresh recency) until the total
// blob size fits again. The newest entry is never evicted — a single blob
// larger than the cap is admitted and the cache simply runs over budget
// until the next insert — because evicting what was just computed would
// guarantee a recompute on the very next resubmit. Evicted cells are
// deleted blob-and-index and later lookups simply miss and re-run; the
// coordinator surfaces the churn as coord_cache_evictions_total.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"greencell/internal/metrics"
	"greencell/internal/sim"
)

// CellKey derives the content address of one (spec, seed) cell.
func CellKey(spec sim.ScenarioSpec, seed int64) (string, error) {
	c := spec
	c.Preset = c.Label()
	c.Seed = 0
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("cluster: encoding spec for cache key: %w", err)
	}
	payload := make([]byte, 0, len(b)+16)
	payload = append(payload, strconv.Itoa(metrics.SchemaVersion)...)
	payload = append(payload, 0)
	payload = append(payload, b...)
	payload = append(payload, 0)
	payload = append(payload, strconv.FormatInt(seed, 10)...)
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// cache is the in-process index over the content-addressed store.
type cache struct {
	dir      string
	maxBytes int64 // 0 = uncapped

	mu      sync.Mutex
	metrics map[string]sim.SeedMetrics
	blobs   map[string][]byte // memory store when dir == ""
	sizes   map[string]int64  // per-key blob bytes
	total   int64             // sum of sizes
	lru     *list.List        // front = most recently used; values are keys
	elems   map[string]*list.Element
}

func newCache(dir string, maxBytes int64) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: cache dir: %w", err)
		}
	}
	return &cache{
		dir:      dir,
		maxBytes: maxBytes,
		metrics:  make(map[string]sim.SeedMetrics),
		blobs:    make(map[string][]byte),
		sizes:    make(map[string]int64),
		lru:      list.New(),
		elems:    make(map[string]*list.Element),
	}, nil
}

func (c *cache) blobPath(key string) string {
	return filepath.Join(c.dir, key+".jsonl")
}

// put stores a completed cell and returns how many older cells were
// evicted to fit it under the byte cap. The blob is written first
// (atomically, via a same-directory rename) and the index entry only
// after, so a crash between the two leaves a harmless orphan blob, never
// an index entry without its bytes.
func (c *cache) put(key string, m sim.SeedMetrics, blob []byte) (int, error) {
	if c.dir != "" {
		tmp, err := os.CreateTemp(c.dir, "put-*")
		if err != nil {
			return 0, err
		}
		if _, err := tmp.Write(blob); err != nil {
			return 0, errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
		}
		if err := tmp.Close(); err != nil {
			return 0, errors.Join(err, os.Remove(tmp.Name()))
		}
		if err := os.Rename(tmp.Name(), c.blobPath(key)); err != nil {
			return 0, errors.Join(err, os.Remove(tmp.Name()))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics[key] = m
	if c.dir == "" {
		c.blobs[key] = blob
	}
	c.track(key, int64(len(blob)))
	return c.evictOver(), nil
}

// admit registers a key→metrics pair recovered from the journal, returning
// eviction count like put. The entry becomes servable only if its blob
// survives (checked by get), so a journal that outlived its cache
// directory degrades to a miss, not a lie. Disk-mode sizes come from the
// surviving blob file; an entry with no blob weighs nothing.
func (c *cache) admit(key string, m sim.SeedMetrics) int {
	var size int64
	if c.dir != "" {
		if fi, err := os.Stat(c.blobPath(key)); err == nil {
			size = fi.Size()
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.metrics[key]; ok {
		return 0
	}
	c.metrics[key] = m
	c.track(key, size)
	return c.evictOver()
}

// get returns the cell's metrics and stream bytes, refreshing the key's
// recency. It reports a hit only when both are available — a recovered
// index entry whose blob is gone is a miss and the cell re-runs.
func (c *cache) get(key string) (sim.SeedMetrics, []byte, bool) {
	c.mu.Lock()
	m, ok := c.metrics[key]
	blob, haveBlob := c.blobs[key]
	if e := c.elems[key]; e != nil {
		c.lru.MoveToFront(e)
	}
	c.mu.Unlock()
	if !ok {
		return sim.SeedMetrics{}, nil, false
	}
	if c.dir == "" {
		if !haveBlob {
			return sim.SeedMetrics{}, nil, false
		}
		return m, blob, true
	}
	data, err := os.ReadFile(c.blobPath(key))
	if err != nil {
		return sim.SeedMetrics{}, nil, false
	}
	return m, data, true
}

// track records (or refreshes) a key's size and recency. Callers hold c.mu.
func (c *cache) track(key string, size int64) {
	if e, ok := c.elems[key]; ok {
		c.total += size - c.sizes[key]
		c.sizes[key] = size
		c.lru.MoveToFront(e)
		return
	}
	c.sizes[key] = size
	c.total += size
	c.elems[key] = c.lru.PushFront(key)
}

// evictOver drops least-recently-used cells until the store fits the byte
// cap again, never touching the most recent entry. Callers hold c.mu.
func (c *cache) evictOver() int {
	if c.maxBytes <= 0 {
		return 0
	}
	evicted := 0
	for c.total > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		key := back.Value.(string)
		c.lru.Remove(back)
		delete(c.elems, key)
		c.total -= c.sizes[key]
		delete(c.sizes, key)
		delete(c.metrics, key)
		delete(c.blobs, key)
		if c.dir != "" {
			if err := os.Remove(c.blobPath(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "greencell-coord: cache: evicting %s: %v\n", key, err)
			}
		}
		evicted++
	}
	return evicted
}

// Len reports the number of indexed cells (for status endpoints).
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.metrics)
}
