package cluster

// The content-addressed result cache. A cell — one (ScenarioSpec, seed)
// replication — is a pure function of its key, so its result can be stored
// and replayed forever: resubmitted sweeps, re-dispatched leases, and
// restarted coordinators all hit the cache instead of re-running work.
//
// Key derivation (documented in docs/CLUSTER.md): the spec is canonicalized
// — Preset normalized to its effective label (so "" and "paper" collide as
// they must) and Seed zeroed (the seed is keyed separately; the per-cell
// run overrides it anyway) — then compact-JSON encoded (map fields marshal
// with sorted keys), and the key is
//
//	sha256(decimal metrics.SchemaVersion || 0x00 || canonicalSpecJSON || 0x00 || decimal seed)
//
// rendered as lowercase hex. The schema version leads the payload because
// the cache outlives binary upgrades: a schema bump changes a cell's stream
// byte-for-byte, so entries written under the old schema must miss and
// re-run instead of being merged into new-schema streams.
// The encoding is conservative: two specs that
// materialize identical scenarios through different knobs (say an explicit
// neighbors override equal to the preset default) get distinct keys and
// simply miss — correctness never depends on spec equivalence reasoning.
//
// The cache holds each cell's scalar SeedMetrics plus the cell's full
// NDJSON metrics stream, because serving a cached cell must be
// byte-identical to running it. With Dir set, blobs live on disk as
// <dir>/<key>.jsonl (written atomically via rename) and the index is
// rebuilt from the coordinator journal on restart; without a dir the blobs
// stay in memory and die with the process.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"greencell/internal/metrics"
	"greencell/internal/sim"
)

// CellKey derives the content address of one (spec, seed) cell.
func CellKey(spec sim.ScenarioSpec, seed int64) (string, error) {
	c := spec
	c.Preset = c.Label()
	c.Seed = 0
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("cluster: encoding spec for cache key: %w", err)
	}
	payload := make([]byte, 0, len(b)+16)
	payload = append(payload, strconv.Itoa(metrics.SchemaVersion)...)
	payload = append(payload, 0)
	payload = append(payload, b...)
	payload = append(payload, 0)
	payload = append(payload, strconv.FormatInt(seed, 10)...)
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// cache is the in-process index over the content-addressed store.
type cache struct {
	dir string

	mu      sync.Mutex
	metrics map[string]sim.SeedMetrics
	blobs   map[string][]byte // memory store when dir == ""
}

func newCache(dir string) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: cache dir: %w", err)
		}
	}
	return &cache{
		dir:     dir,
		metrics: make(map[string]sim.SeedMetrics),
		blobs:   make(map[string][]byte),
	}, nil
}

func (c *cache) blobPath(key string) string {
	return filepath.Join(c.dir, key+".jsonl")
}

// put stores a completed cell. The blob is written first (atomically, via a
// same-directory rename) and the index entry only after, so a crash between
// the two leaves a harmless orphan blob, never an index entry without its
// bytes.
func (c *cache) put(key string, m sim.SeedMetrics, blob []byte) error {
	if c.dir != "" {
		tmp, err := os.CreateTemp(c.dir, "put-*")
		if err != nil {
			return err
		}
		if _, err := tmp.Write(blob); err != nil {
			return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
		}
		if err := tmp.Close(); err != nil {
			return errors.Join(err, os.Remove(tmp.Name()))
		}
		if err := os.Rename(tmp.Name(), c.blobPath(key)); err != nil {
			return errors.Join(err, os.Remove(tmp.Name()))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics[key] = m
	if c.dir == "" {
		c.blobs[key] = blob
	}
	return nil
}

// admit registers a key→metrics pair recovered from the journal. The entry
// becomes servable only if its blob survives (checked by get), so a journal
// that outlived its cache directory degrades to a miss, not a lie.
func (c *cache) admit(key string, m sim.SeedMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.metrics[key]; !ok {
		c.metrics[key] = m
	}
}

// get returns the cell's metrics and stream bytes. It reports a hit only
// when both are available — a recovered index entry whose blob is gone is
// a miss and the cell re-runs.
func (c *cache) get(key string) (sim.SeedMetrics, []byte, bool) {
	c.mu.Lock()
	m, ok := c.metrics[key]
	blob, haveBlob := c.blobs[key]
	c.mu.Unlock()
	if !ok {
		return sim.SeedMetrics{}, nil, false
	}
	if c.dir == "" {
		if !haveBlob {
			return sim.SeedMetrics{}, nil, false
		}
		return m, blob, true
	}
	data, err := os.ReadFile(c.blobPath(key))
	if err != nil {
		return sim.SeedMetrics{}, nil, false
	}
	return m, data, true
}

// Len reports the number of indexed cells (for status endpoints).
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.metrics)
}
