// Package machine restructures the paper's controller as per-node
// message-passing state machines over a deterministic simulated network
// (ROADMAP item 4, docs/DISTRIBUTED.md). Where core.Controller is a
// global per-slot function with perfect state visibility, this package
// gives every node its own NodeMachine — carrying the node's real queues
// Q_i^s and battery x_i — and a CoordinatorMachine that re-derives the
// S1–S4 decisions from received (and possibly stale) state gossip. The
// two controller architectures are tied together by a fidelity gate:
// under a perfect network (zero loss, zero latency) a distributed run
// produces slot decisions and metrics byte-identical to the monolithic
// controller, so every deviation measured under a lossy network is
// attributable to imperfect information alone.
//
// The Machine interface follows the mpcutil machine/network-runner
// pattern: a machine exposes its identity, an optional set of bootstrap
// messages, and a Handle transition that consumes one message and emits
// the messages it causes. Machines never share memory and never see a
// clock; all interaction flows through the Network runner, whose
// per-edge delivery draws are sub-streamed from the run seed so that
// loss, latency, duplication, and reordering are pure functions of
// (seed, edge, slot).
package machine

// NodeID identifies a machine on the simulated network. Node machines
// use their topology node index; the coordinator uses NumNodes (one past
// the last node).
type NodeID int

// Message is one unit of traffic between machines. Concrete message
// types (messages.go) are immutable once sent: a sender must not retain
// or mutate slices it has handed to the network, because delivery may be
// delayed or duplicated arbitrarily far into the future.
type Message interface {
	// From is the sending machine.
	From() NodeID
	// To is the destination machine.
	To() NodeID
}

// Machine is one participant of the distributed controller: it has an
// identity, may emit bootstrap messages, and reacts to each delivered
// message with follow-up messages. Handle must be deterministic — the
// network runner's delivery schedule is the only source of variation in
// a run.
type Machine interface {
	// ID returns the machine's network identity.
	ID() NodeID
	// InitialMessages returns the messages the machine sends before the
	// first slot begins (nil for the built-in machines, which are driven
	// entirely by runner-injected observations and phase marks).
	InitialMessages() []Message
	// Handle consumes one delivered message and returns the messages it
	// triggers (nil when none).
	Handle(msg Message) []Message
}

// OfflineMachine stands in for a dead or partitioned node: it swallows
// every message and emits nothing, so the rest of the system experiences
// the node exactly as a total, permanent communication failure. The
// coordinator keeps deciding from its last gossip (or the initial
// state), and every such slot counts as a stale view.
type OfflineMachine struct {
	// Node is the identity the offline machine occupies.
	Node NodeID
}

// ID implements Machine.
func (m OfflineMachine) ID() NodeID { return m.Node }

// InitialMessages implements Machine.
func (OfflineMachine) InitialMessages() []Message { return nil }

// Handle implements Machine.
func (OfflineMachine) Handle(Message) []Message { return nil }

// CauseNetStale is the degradation cause recorded on slots the
// coordinator decided with at least one stale node view (no gossip with
// the current slot's stamp had arrived by decide time). It joins the
// core.Cause* vocabulary in SlotResult.DegradedCauses and the
// degraded_cause_net_stale_total summary counter.
const CauseNetStale = "net_stale"
