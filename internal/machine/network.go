package machine

import (
	"fmt"
	"sort"

	"greencell/internal/faultinject"
	"greencell/internal/rng"
)

// ticksPerSlot is the protocol depth of one slot: observe, decide,
// execute, settle. A message sent during one round is due the next round
// at the earliest, so a zero-latency network still has the causal
// structure of a real one — gossip sent at observe arrives for decide,
// commands sent at decide arrive for execute.
const ticksPerSlot = 4

// DeliveryModel parameterizes one directed edge's control-plane delivery
// behavior. The zero value is the perfect network.
type DeliveryModel struct {
	// LossProb drops a message entirely.
	LossProb float64
	// DelayProb holds a message back by extra ticks drawn uniformly from
	// [1, MaxDelayTicks] (MaxDelayTicks < 1 reads as 1).
	DelayProb float64
	// MaxDelayTicks bounds the extra delay of a delayed message.
	MaxDelayTicks int
	// DupProb delivers a second copy one tick after the first.
	DupProb float64
	// ReorderWindow jitters the within-tick delivery order: each message
	// gets a sort-key offset drawn from [0, ReorderWindow].
	ReorderWindow int
}

// Ideal reports whether the model can never perturb a delivery.
func (m DeliveryModel) Ideal() bool {
	return m.LossProb <= 0 && m.DelayProb <= 0 && m.DupProb <= 0 && m.ReorderWindow <= 0
}

// Validate rejects out-of-range parameters.
func (m DeliveryModel) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"LossProb", m.LossProb}, {"DelayProb", m.DelayProb}, {"DupProb", m.DupProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("machine: DeliveryModel.%s = %v outside [0,1]", p.name, p.v)
		}
	}
	if m.MaxDelayTicks < 0 {
		return fmt.Errorf("machine: DeliveryModel.MaxDelayTicks = %d negative", m.MaxDelayTicks)
	}
	if m.ReorderWindow < 0 {
		return fmt.Errorf("machine: DeliveryModel.ReorderWindow = %d negative", m.ReorderWindow)
	}
	return nil
}

// NetSlotCounters are the fabric's per-slot message counters.
type NetSlotCounters struct {
	// Sent counts control-plane sends (before any loss).
	Sent int
	// Dropped, Delayed, Duped count the model's and the injector's
	// perturbations of control-plane messages.
	Dropped, Delayed, Duped int
	// DataMsgs counts reliable data-plane transfers.
	DataMsgs int
}

// envelope is one scheduled delivery.
type envelope struct {
	seq    int
	jitter int
	msg    Message
}

// edgeKey identifies a directed edge's per-slot delivery stream.
type edgeKey struct {
	from, to NodeID
}

// Network is the deterministic simulated message fabric. It owns the
// machines, advances in ticks (ticksPerSlot per slot), and applies the
// delivery model to every control-plane send: the draws for a message on
// edge (i→j) during slot t come from the sub-stream Split("e%d>%d#%d"),
// so the firing pattern is a pure function of (seed, edge, slot) — two
// runs with the same seed and model replay the identical schedule, and
// perturbing one edge's traffic cannot shift another edge's draws.
type Network struct {
	model     DeliveryModel
	edgeModel func(from, to NodeID) DeliveryModel
	inj       *faultinject.Injector
	root      *rng.Source
	machines  []Machine

	tick    int
	slot    int
	seq     int
	pending map[int][]envelope
	streams map[edgeKey]*rng.Source
	stats   NetSlotCounters

	// Per-slot injector overlay (slot-wide outages; faultinject.NetDrop
	// and friends).
	dropAll  bool
	delayAll int
	dupAll   bool

	err error
}

// NewNetwork builds the fabric over the given machines, indexed by their
// NodeID (machines[i].ID() must equal i). edgeModel, when non-nil,
// overrides the base model per directed edge. inj may be nil.
func NewNetwork(model DeliveryModel, edgeModel func(from, to NodeID) DeliveryModel,
	inj *faultinject.Injector, src *rng.Source, machines []Machine) (*Network, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	for i, m := range machines {
		if m == nil {
			return nil, fmt.Errorf("machine: nil machine at index %d", i)
		}
		if m.ID() != NodeID(i) {
			return nil, fmt.Errorf("machine: machine at index %d has ID %d", i, m.ID())
		}
	}
	return &Network{
		model:     model,
		edgeModel: edgeModel,
		inj:       inj,
		root:      src,
		machines:  machines,
		pending:   make(map[int][]envelope),
		streams:   make(map[edgeKey]*rng.Source),
	}, nil
}

// Start routes every machine's bootstrap messages, in machine order.
// Call it once, after the first BeginSlot.
func (n *Network) Start() {
	for _, m := range n.machines {
		n.route(m.InitialMessages())
	}
}

// BeginSlot opens a slot: it aligns the tick counter, resets the slot's
// delivery streams and counters, and samples the injector's slot-wide
// network outages.
func (n *Network) BeginSlot(slot int) {
	n.slot = slot
	n.tick = slot * ticksPerSlot
	clear(n.streams)
	n.stats = NetSlotCounters{}
	n.dropAll = n.inj.Fires(faultinject.NetDrop, slot)
	n.delayAll = 0
	if n.inj.Fires(faultinject.NetDelay, slot) {
		max := n.model.MaxDelayTicks
		if max < 1 {
			max = 1
		}
		n.delayAll = 1 + n.inj.Index(faultinject.NetDelay, slot, max)
	}
	n.dupAll = n.inj.Fires(faultinject.NetDup, slot)
}

// Deliver dispatches every message due at the current tick, in
// deterministic order: receivers ascending, then send sequence perturbed
// by the model's reorder jitter. Messages a handler emits are routed
// immediately (and so are due at a strictly later tick).
func (n *Network) Deliver() {
	due := n.pending[n.tick]
	if len(due) == 0 {
		return
	}
	delete(n.pending, n.tick)
	sort.SliceStable(due, func(a, b int) bool {
		ea, eb := due[a], due[b]
		if ea.msg.To() != eb.msg.To() {
			return ea.msg.To() < eb.msg.To()
		}
		return ea.seq+ea.jitter < eb.seq+eb.jitter
	})
	for _, e := range due {
		n.dispatch(e.msg)
	}
}

// Advance moves to the next tick and delivers what is due there.
func (n *Network) Advance() {
	n.tick++
	n.Deliver()
}

// Inject dispatches a runner-originated message synchronously — phase
// marks and physical observations never ride the lossy fabric.
func (n *Network) Inject(msg Message) {
	n.dispatch(msg)
}

// Stats returns the slot's counters so far.
func (n *Network) Stats() NetSlotCounters { return n.stats }

// Err returns the first routing error (a message addressed outside the
// machine set — always a programming error, never a network condition).
func (n *Network) Err() error { return n.err }

// dispatch hands one message to its destination machine and routes the
// response messages.
func (n *Network) dispatch(msg Message) {
	to := msg.To()
	if to < 0 || int(to) >= len(n.machines) {
		if n.err == nil {
			n.err = fmt.Errorf("machine: message %T addressed to unknown machine %d", msg, to)
		}
		return
	}
	n.route(n.machines[to].Handle(msg))
}

// route schedules machine-emitted messages in emission order.
func (n *Network) route(msgs []Message) {
	for _, msg := range msgs {
		n.send(msg)
	}
}

// send schedules one machine-emitted message. Data-plane transfers are
// reliable and due next tick; control-plane messages run the delivery
// gauntlet. The draw order per message is fixed — loss, delay, delay
// magnitude, reorder jitter, duplication — and each draw happens only
// when its probability is positive, so an ideal edge consumes no
// randomness at all.
func (n *Network) send(msg Message) {
	if _, ok := msg.(PacketTransfer); ok {
		n.stats.DataMsgs++
		n.enqueue(n.tick+1, 0, msg)
		return
	}
	n.stats.Sent++
	if n.dropAll {
		n.stats.Dropped++
		return
	}
	m := n.modelFor(msg.From(), msg.To())
	ideal := m.Ideal()
	if ideal && n.delayAll == 0 && !n.dupAll {
		n.enqueue(n.tick+1, 0, msg)
		return
	}
	var src *rng.Source
	if !ideal {
		src = n.edgeStream(msg.From(), msg.To())
	}
	if m.LossProb > 0 && src.Bernoulli(m.LossProb) {
		n.stats.Dropped++
		return
	}
	at := n.tick + 1
	delayed := false
	if m.DelayProb > 0 && src.Bernoulli(m.DelayProb) {
		max := m.MaxDelayTicks
		if max < 1 {
			max = 1
		}
		at += 1 + src.Intn(max)
		delayed = true
	}
	if n.delayAll > 0 {
		at += n.delayAll
		delayed = true
	}
	if delayed {
		n.stats.Delayed++
	}
	jitter := 0
	if m.ReorderWindow > 0 {
		jitter = src.Intn(m.ReorderWindow + 1)
	}
	n.enqueue(at, jitter, msg)
	if n.dupAll || (m.DupProb > 0 && src.Bernoulli(m.DupProb)) {
		n.stats.Duped++
		n.enqueue(at+1, jitter, msg)
	}
}

// enqueue schedules a delivery.
func (n *Network) enqueue(at, jitter int, msg Message) {
	e := envelope{seq: n.seq, jitter: jitter, msg: msg}
	n.seq++
	n.pending[at] = append(n.pending[at], e)
}

// modelFor resolves the delivery model of a directed edge.
func (n *Network) modelFor(from, to NodeID) DeliveryModel {
	if n.edgeModel != nil {
		return n.edgeModel(from, to)
	}
	return n.model
}

// edgeStream returns the (edge, slot) delivery sub-stream, created on
// first use within the slot. The map is keyed access only — never
// iterated — so delivery determinism cannot depend on map order.
func (n *Network) edgeStream(from, to NodeID) *rng.Source {
	key := edgeKey{from: from, to: to}
	s, ok := n.streams[key]
	if !ok {
		s = n.root.Split(fmt.Sprintf("e%d>%d#%d", from, to, n.slot))
		n.streams[key] = s
	}
	return s
}
