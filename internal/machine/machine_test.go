package machine

import (
	"fmt"
	"reflect"
	"testing"

	"greencell/internal/rng"
)

// testMsg is a minimal control-plane message for fabric tests.
type testMsg struct {
	header
	n int
}

// sender emits a burst of testMsgs at Start and nothing after.
type sender struct {
	id    NodeID
	to    NodeID
	burst int
}

func (s *sender) ID() NodeID { return s.id }

func (s *sender) InitialMessages() []Message {
	out := make([]Message, 0, s.burst)
	for i := 0; i < s.burst; i++ {
		out = append(out, testMsg{header: header{from: s.id, to: s.to}, n: i})
	}
	return out
}

func (s *sender) Handle(Message) []Message { return nil }

// receiver logs every delivery in arrival order.
type receiver struct {
	id  NodeID
	got []string
}

func (r *receiver) ID() NodeID                 { return r.id }
func (r *receiver) InitialMessages() []Message { return nil }

func (r *receiver) Handle(msg Message) []Message {
	m := msg.(testMsg)
	r.got = append(r.got, fmt.Sprintf("%d:%d", m.From(), m.n))
	return nil
}

// runBurst drives one slot of the fabric: two senders feeding one
// receiver under the given model, returning the receiver's arrival log.
func runBurst(t *testing.T, model DeliveryModel, seed int64, bursts [2]int) []string {
	t.Helper()
	rcv := &receiver{id: 0}
	machines := []Machine{
		rcv,
		&sender{id: 1, to: 0, burst: bursts[0]},
		&sender{id: 2, to: 0, burst: bursts[1]},
	}
	net, err := NewNetwork(model, nil, nil, rng.New(seed).Split("net"), machines)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.BeginSlot(0)
	net.Start()
	for i := 0; i < 12; i++ { // generous horizon for max delays
		net.Advance()
	}
	if err := net.Err(); err != nil {
		t.Fatalf("fabric error: %v", err)
	}
	return rcv.got
}

// TestDeliverySchedulePure checks the core determinism contract: for a
// fixed (seed, model), the delivery schedule — who arrives, in what
// order — is identical across runs, and a different seed perturbs it.
func TestDeliverySchedulePure(t *testing.T) {
	model := DeliveryModel{LossProb: 0.3, DelayProb: 0.3, MaxDelayTicks: 3, DupProb: 0.2, ReorderWindow: 2}
	a := runBurst(t, model, 42, [2]int{20, 20})
	b := runBurst(t, model, 42, [2]int{20, 20})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedule:\n a: %v\n b: %v", a, b)
	}
	if len(a) == 0 || len(a) == 40 {
		t.Errorf("model at 30%% loss delivered %d/40 — drew nothing?", len(a))
	}
	c := runBurst(t, model, 43, [2]int{20, 20})
	if reflect.DeepEqual(a, c) {
		t.Errorf("seeds 42 and 43 produced the identical lossy schedule")
	}
}

// TestEdgeStreamIsolation checks the per-edge sub-streaming claim: the
// fate of edge 1→0's messages cannot depend on how much traffic edge
// 2→0 carries, because each edge draws from its own Split stream.
func TestEdgeStreamIsolation(t *testing.T) {
	model := DeliveryModel{LossProb: 0.4}
	keep := func(log []string) []string {
		var out []string
		for _, s := range log {
			if s[0] == '1' {
				out = append(out, s)
			}
		}
		return out
	}
	quiet := keep(runBurst(t, model, 7, [2]int{15, 0}))
	busy := keep(runBurst(t, model, 7, [2]int{15, 30}))
	if !reflect.DeepEqual(quiet, busy) {
		t.Errorf("edge 2>0 traffic shifted edge 1>0 deliveries:\nquiet: %v\n busy: %v", quiet, busy)
	}
}

// TestIdealModelDrawsNothing checks the fast path: a perfect network
// delivers everything, in send order, next tick.
func TestIdealModelDrawsNothing(t *testing.T) {
	got := runBurst(t, DeliveryModel{}, 1, [2]int{3, 2})
	want := []string{"1:0", "1:1", "1:2", "2:0", "2:1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ideal delivery = %v, want %v", got, want)
	}
}

// TestDeliveryModelValidate rejects out-of-range parameters.
func TestDeliveryModelValidate(t *testing.T) {
	for _, m := range []DeliveryModel{
		{LossProb: -0.1},
		{LossProb: 1.1},
		{DelayProb: 2},
		{DupProb: -1},
		{MaxDelayTicks: -1},
		{ReorderWindow: -1},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid model", m)
		}
	}
	if err := (DeliveryModel{LossProb: 1, DelayProb: 1, MaxDelayTicks: 5, DupProb: 1, ReorderWindow: 3}).Validate(); err != nil {
		t.Errorf("Validate rejected a legal model: %v", err)
	}
}

// TestOfflineMachineSwallows checks a dead node neither speaks nor
// answers.
func TestOfflineMachineSwallows(t *testing.T) {
	om := OfflineMachine{Node: 3}
	if om.ID() != 3 {
		t.Errorf("ID = %d", om.ID())
	}
	if msgs := om.InitialMessages(); msgs != nil {
		t.Errorf("offline machine speaks at start: %v", msgs)
	}
	if out := om.Handle(testMsg{header: header{from: 0, to: 3}}); out != nil {
		t.Errorf("offline machine answered: %v", out)
	}
}

// TestNetworkRejectsBadWiring checks constructor and routing errors.
func TestNetworkRejectsBadWiring(t *testing.T) {
	src := rng.New(1)
	if _, err := NewNetwork(DeliveryModel{LossProb: 2}, nil, nil, src, nil); err == nil {
		t.Errorf("invalid model accepted")
	}
	if _, err := NewNetwork(DeliveryModel{}, nil, nil, src, []Machine{&receiver{id: 5}}); err == nil {
		t.Errorf("mis-indexed machine accepted")
	}
	if _, err := NewNetwork(DeliveryModel{}, nil, nil, src, []Machine{nil}); err == nil {
		t.Errorf("nil machine accepted")
	}
	net, err := NewNetwork(DeliveryModel{}, nil, nil, src, []Machine{
		&sender{id: 0, to: 9, burst: 1},
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.BeginSlot(0)
	net.Start()
	net.Advance()
	if net.Err() == nil {
		t.Errorf("message to unknown machine went unnoticed")
	}
}
