package machine

import "greencell/internal/units"

// header carries the routing pair shared by every message type. The
// fields are unexported so only this package constructs messages, which
// keeps the From/To pair consistent with how the runner routed them.
type header struct {
	from, to NodeID
}

// From implements Message.
func (h header) From() NodeID { return h.from }

// To implements Message.
func (h header) To() NodeID { return h.to }

// phase orders the four protocol rounds of one slot. A node advances its
// phase when it handles the matching mark, and uses it to reject
// commands that arrive after their point of use (counted as late).
type phase int

const (
	phaseObserve phase = iota
	phaseDecide
	phaseExecute
	phaseSettle
)

// phaseMark is the runner's synchronization pulse: it is injected
// directly (never through the lossy fabric) and tells a machine which
// protocol round of the slot has begun.
type phaseMark struct {
	header
	Slot  int
	Phase phase
}

// LocalObs is the runner's physical observation for one node at the
// start of a slot: the node's renewable harvest R_i(t) and grid
// connectivity ω_i(t). It is injected directly — a node always knows its
// own environment — and triggers the node's StateGossip.
type LocalObs struct {
	header
	Slot      int
	RenewWh   units.Energy
	Connected bool
}

// SpectrumObs is the runner's sensed band widths W_m(t) for the slot,
// injected directly to the coordinator (centralized spectrum sensing).
type SpectrumObs struct {
	header
	Slot   int
	Widths []units.Bandwidth
}

// StateGossip is a node's state report entering a slot, sent over the
// lossy fabric to the coordinator: per-session data backlogs, battery
// level, the slot's local observation, and monotone cumulative counters
// (delivery, clamps, deficit) that survive loss because any later gossip
// subsumes earlier ones. Slot stamps order gossip: the coordinator
// applies only reports newer than what it has already imported.
type StateGossip struct {
	header
	Slot             int
	Q                []float64
	BatteryWh        units.Energy
	RenewWh          units.Energy
	Connected        bool
	CumDeliveredPkts float64
	CumDeficitWh     units.Energy
	CumClamps        int
	CumMissedCmds    int
}

// ScheduleGrant carries the slot's S1 decision restricted to one node's
// out-links: which band each link won and its activity α. It is
// informational at the node (transmission energy is commanded through
// EnergyCommand); nodes record it for reporting.
type ScheduleGrant struct {
	header
	Slot     int
	Links    []int
	Bands    []int
	Activity []float64
}

// AdmissionOffer carries the slot's S2 admissions k_s(t) for the
// sessions sourced at the destination node this slot.
type AdmissionOffer struct {
	header
	Slot      int
	Sessions  []int
	AdmitPkts []float64
}

// FlowUpdate carries the slot's S3 routed flows μ_ij^s(t) on one node's
// out-links, in the node's out-link order. The node executes them
// clamped against its true backlogs, reproducing the monolith's
// grant-loop arithmetic exactly (node.go documents the ordering
// contract).
type FlowUpdate struct {
	header
	Slot     int
	Links    []int
	FlowPkts [][]float64
}

// EnergyCommand carries one node's S4 energy split for the slot, plus
// the commanded demand E_i(t) so the node can account its true deficit.
// Nodes apply it through the physical clamps of node.go: a command
// computed from a stale view may exceed the node's real renewable,
// battery headroom, or grid connectivity.
type EnergyCommand struct {
	header
	Slot           int
	RenewToDemand  units.Energy
	RenewToBattery units.Energy
	GridToDemand   units.Energy
	GridToBattery  units.Energy
	DischargeWh    units.Energy
	DeficitWh      units.Energy
	DemandWh       units.Energy
}

// EnergyPrice broadcasts the slot's marginal grid price V·f'(P) — the
// price signal a real deployment would publish for demand response.
type EnergyPrice struct {
	header
	Slot    int
	PriceWh units.Price
}

// PacketTransfer ships the executed per-session packets of one link from
// its transmitter to its receiver. It is data-plane traffic: the
// simulated radio either delivers a slot's transmission or it does not,
// and the S1 schedule already models the link, so transfers ride the
// fabric reliably (next tick, no loss) — only control-plane messages see
// the delivery model.
type PacketTransfer struct {
	header
	Slot int
	Link int
	Pkts []float64
}
