package machine

import (
	"fmt"
	"sort"

	"greencell/internal/energy"
	"greencell/internal/invariant"
	"greencell/internal/queueing"
	"greencell/internal/topology"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// cmdTol mirrors energy.Battery.Step's feasibility tolerance: commands
// within it of a physical limit pass through unclamped, so a perfect-
// network run never perturbs the monolith's float values (the LP's
// solutions are feasible only up to the same tolerance).
const cmdTol = units.Energy(1e-6)

// NodeMachine is one node's slice of the physical system: its real
// per-session data queues Q_i^s and battery x_i. It observes only its
// own environment (LocalObs), gossips its state to the coordinator, and
// executes the commands that reach it — clamped against its true state,
// because a command computed from a stale view may be infeasible here.
//
// Fidelity contract (docs/DISTRIBUTED.md): the node reproduces the
// monolith's floating-point arithmetic exactly when commands match the
// monolith's decisions. Three orderings are load-bearing:
//
//   - flow clamping walks the node's out-links twice per session —
//     sink-destined links first, then the rest, ascending link ID both
//     times — mirroring the monolith's grant loop restricted to one
//     transmitter (the per-node `remaining` accumulator sees the same
//     subtraction sequence);
//   - service totals re-accumulate per session over out-links ascending,
//     matching the monolith's services[From] accumulation order;
//   - arrivals accumulate over in-link transfers ascending by link ID,
//     then the session's admission — the monolith's arrivals[To] order.
type NodeMachine struct {
	id       NodeID
	coord    NodeID
	net      *topology.Network
	sessions []traffic.Session
	checks   bool

	queues  []queueing.Queue
	battery *energy.Battery

	slot      int
	phase     phase
	renewWh   units.Energy
	connected bool

	grant *ScheduleGrant
	flows *FlowUpdate
	offer *AdmissionOffer
	cmd   *EnergyCommand
	price units.Price

	svc   []float64
	arr   []float64
	inbox []PacketTransfer

	cumDelivered  float64
	cumDeficitWh  units.Energy
	cumClamps     int
	cumMissedCmds int
	clampsSlot    int
	lateSlot      int
	missedSlot    int

	err error
}

// NewNodeMachine builds node id's machine from the shared immutable
// network and traffic model. checks enables the node-local invariant
// validation of every executed slot (the per-node-view counterpart of
// internal/invariant's eq. (2)/(9)–(14) checks).
func NewNodeMachine(id NodeID, coord NodeID, net *topology.Network, tm *traffic.Model, checks bool) (*NodeMachine, error) {
	if int(id) < 0 || int(id) >= net.NumNodes() {
		return nil, fmt.Errorf("machine: node id %d outside [0,%d)", id, net.NumNodes())
	}
	spec := net.Nodes[id].Spec
	bat, err := energy.NewBattery(spec.Battery, spec.BatteryInitWh)
	if err != nil {
		return nil, fmt.Errorf("machine: node %d battery: %w", id, err)
	}
	S := tm.NumSessions()
	return &NodeMachine{
		id:       id,
		coord:    coord,
		net:      net,
		sessions: tm.Sessions,
		checks:   checks,
		queues:   make([]queueing.Queue, S),
		battery:  bat,
		slot:     -1,
		svc:      make([]float64, S),
		arr:      make([]float64, S),
	}, nil
}

// ID implements Machine.
func (m *NodeMachine) ID() NodeID { return m.id }

// InitialMessages implements Machine.
func (m *NodeMachine) InitialMessages() []Message { return nil }

// Err returns the first fatal condition the node hit (a command the
// clamps could not repair, or a failed node-local invariant).
func (m *NodeMachine) Err() error { return m.err }

// Handle implements Machine.
func (m *NodeMachine) Handle(msg Message) []Message {
	switch v := msg.(type) {
	case LocalObs:
		return m.beginSlot(v)
	case ScheduleGrant:
		m.storeCommand(v.Slot, phaseExecute, func() { m.grant = &v })
	case FlowUpdate:
		m.storeCommand(v.Slot, phaseExecute, func() { m.flows = &v })
	case AdmissionOffer:
		m.storeCommand(v.Slot, phaseSettle, func() { m.offer = &v })
	case EnergyCommand:
		m.storeCommand(v.Slot, phaseSettle, func() { m.cmd = &v })
	case EnergyPrice:
		m.storeCommand(v.Slot, phaseSettle, func() { m.price = v.PriceWh })
	case PacketTransfer:
		// Data-plane delivery is next-tick reliable, so a transfer is
		// always for the current slot; guard anyway.
		if v.Slot == m.slot {
			m.inbox = append(m.inbox, v)
		}
	case phaseMark:
		switch v.Phase {
		case phaseExecute:
			m.phase = phaseExecute
			return m.execute()
		case phaseSettle:
			m.phase = phaseSettle
			m.settle()
		}
	}
	return nil
}

// storeCommand files a coordinator command if it is still usable:
// commands for past slots, or arriving after the phase that consumes
// them, are discarded and counted late.
func (m *NodeMachine) storeCommand(slot int, useBy phase, set func()) {
	if slot != m.slot || m.phase >= useBy {
		m.lateSlot++
		return
	}
	set()
}

// beginSlot resets the node's slot state from its local observation and
// gossips the state it is entering the slot with. The gossip's slot
// stamp t tells the coordinator "this was node i at the start of slot t"
// — exactly the state the monolith's Step(t) would read.
func (m *NodeMachine) beginSlot(obs LocalObs) []Message {
	m.slot = obs.Slot
	m.phase = phaseObserve
	m.renewWh = obs.RenewWh
	m.connected = obs.Connected
	m.grant, m.flows, m.offer, m.cmd = nil, nil, nil, nil
	m.inbox = m.inbox[:0]
	m.clampsSlot, m.lateSlot, m.missedSlot = 0, 0, 0
	for s := range m.svc {
		m.svc[s] = 0
		m.arr[s] = 0
	}
	q := make([]float64, len(m.queues))
	for s := range m.queues {
		q[s] = m.queues[s].Backlog()
	}
	return []Message{StateGossip{
		header:           header{from: m.id, to: m.coord},
		Slot:             obs.Slot,
		Q:                q,
		BatteryWh:        m.battery.Level(),
		RenewWh:          obs.RenewWh,
		Connected:        obs.Connected,
		CumDeliveredPkts: m.cumDelivered,
		CumDeficitWh:     m.cumDeficitWh,
		CumClamps:        m.cumClamps,
		CumMissedCmds:    m.cumMissedCmds,
	}}
}

// isSink reports whether this node is a delivery point of session s —
// the session's destination for downlink, any base station for uplink —
// matching the monolith's sink rule.
func (m *NodeMachine) isSinkNode(s int, node int) bool {
	sess := m.sessions[s]
	if sess.Uplink {
		return m.net.IsBS(node)
	}
	return node == sess.Dest
}

// execute runs the slot's transmissions: the routed flows of FlowUpdate
// clamped against the node's true backlogs, emitted as PacketTransfers.
// With no (or a late) FlowUpdate the node stays silent this slot.
func (m *NodeMachine) execute() []Message {
	if m.flows == nil {
		return nil
	}
	out := m.net.OutLinks(int(m.id))
	if len(m.flows.Links) != len(out) {
		m.fail(fmt.Errorf("machine: node %d slot %d: FlowUpdate covers %d links, want %d",
			m.id, m.slot, len(m.flows.Links), len(out)))
		return nil
	}
	S := len(m.sessions)
	actual := make([][]float64, len(out))
	for k, l := range out {
		if m.flows.Links[k] != l {
			m.fail(fmt.Errorf("machine: node %d slot %d: FlowUpdate link %d at position %d, want %d",
				m.id, m.slot, m.flows.Links[k], k, l))
			return nil
		}
		actual[k] = make([]float64, S)
	}
	for s := 0; s < S; s++ {
		remaining := m.queues[s].Backlog()
		// Sink-destined grants first, then the rest — both passes in
		// ascending link order (the monolith's grant-loop order seen
		// from one transmitter).
		for pass := 0; pass < 2; pass++ {
			for k, l := range out {
				toSink := m.isSinkNode(s, m.net.Links[l].To)
				if (pass == 0) != toSink {
					continue
				}
				f := m.flows.FlowPkts[k][s]
				if f <= 0 {
					continue
				}
				if f > remaining {
					f = remaining
				}
				actual[k][s] = f
				remaining -= f
			}
		}
	}
	// Service totals re-accumulate per session over out-links ascending
	// — the monolith's services[From] += a order.
	for s := 0; s < S; s++ {
		for k := range out {
			if a := actual[k][s]; a != 0 {
				m.svc[s] += a
			}
		}
	}
	var msgs []Message
	for k, l := range out {
		shipped := false
		for s := 0; s < S; s++ {
			if actual[k][s] > 0 {
				shipped = true
				break
			}
		}
		if !shipped {
			continue
		}
		msgs = append(msgs, PacketTransfer{
			header: header{from: m.id, to: NodeID(m.net.Links[l].To)},
			Slot:   m.slot,
			Link:   l,
			Pkts:   actual[k],
		})
	}
	return msgs
}

// settle closes the slot: arrivals (in-link transfers, then admission)
// are folded into the queues against the executed services, and the
// energy command is applied to the real battery through the physical
// clamps.
func (m *NodeMachine) settle() {
	// Arrivals in ascending in-link order — the monolith's
	// arrivals[To] += a accumulation order.
	sort.Slice(m.inbox, func(a, b int) bool { return m.inbox[a].Link < m.inbox[b].Link })
	for _, tr := range m.inbox {
		for s, a := range tr.Pkts {
			if a == 0 {
				continue
			}
			if m.isSinkNode(s, int(m.id)) {
				m.cumDelivered += a
			} else {
				m.arr[s] += a
			}
		}
	}
	if m.offer != nil {
		for k, s := range m.offer.Sessions {
			if s < 0 || s >= len(m.arr) {
				m.fail(fmt.Errorf("machine: node %d slot %d: AdmissionOffer session %d", m.id, m.slot, s))
				return
			}
			m.arr[s] += m.offer.AdmitPkts[k]
		}
	}
	for s := range m.queues {
		if m.isSinkNode(s, int(m.id)) {
			continue
		}
		m.queues[s].Step(m.arr[s], m.svc[s])
	}
	m.applyEnergy()
}

// applyEnergy executes the slot's EnergyCommand against the real
// battery. Commands computed from stale views may be infeasible here, so
// each physical constraint is enforced in turn — but only beyond the
// solver's own tolerance, so feasible commands pass through bit-exact.
// A missing command leaves the battery idle (the node cannot know its
// commanded split) and is counted, not guessed.
func (m *NodeMachine) applyEnergy() {
	if m.cmd == nil {
		m.missedSlot++
		m.cumMissedCmds++
		return
	}
	r2d, r2b := m.cmd.RenewToDemand, m.cmd.RenewToBattery
	g2d, g2b := m.cmd.GridToDemand, m.cmd.GridToBattery
	disc := m.cmd.DischargeWh

	clamped := false
	clampNeg := func(e *units.Energy) {
		if *e < 0 {
			if *e < -cmdTol {
				clamped = true
			}
			*e = 0
		}
	}
	clampNeg(&r2d)
	clampNeg(&r2b)
	clampNeg(&g2d)
	clampNeg(&g2b)
	clampNeg(&disc)

	// (14): no grid flow while disconnected from the grid.
	if !m.connected && g2d+g2b > cmdTol {
		g2d, g2b = 0, 0
		clamped = true
	}
	// (3): renewable use cannot exceed the true harvest; shed the
	// battery charge share first, then the demand share.
	if excess := (r2d + r2b) - m.renewWh; excess > cmdTol {
		if r2b >= excess {
			r2b -= excess
		} else {
			excess -= r2b
			r2b = 0
			if r2d > excess {
				r2d -= excess
			} else {
				r2d = 0
			}
		}
		clamped = true
	}
	// (9): charge and discharge are exclusive; keep the larger side.
	charge := r2b + g2b
	if charge > cmdTol && disc > cmdTol {
		if charge >= disc {
			disc = 0
		} else {
			r2b, g2b = 0, 0
			charge = 0
		}
		clamped = true
	}
	// (11)/(12): battery headrooms against the true level.
	if head := m.battery.ChargeHeadroom(); charge > head+cmdTol {
		// Shed grid charge first, then renewable charge.
		over := charge - head
		if g2b >= over {
			g2b -= over
		} else {
			over -= g2b
			g2b = 0
			if r2b > over {
				r2b -= over
			} else {
				r2b = 0
			}
		}
		charge = r2b + g2b
		clamped = true
	}
	if head := m.battery.DischargeHeadroom(); disc > head+cmdTol {
		disc = head
		clamped = true
	}
	if clamped {
		m.clampsSlot++
		m.cumClamps++
	}

	// True deficit: commanded demand not covered by the executed split.
	if short := m.cmd.DemandWh - (r2d + g2d + disc); short > 0 {
		m.cumDeficitWh += short
	}

	if m.checks {
		if err := m.checkEnergy(r2d, r2b, g2d, g2b, disc, clamped); err != nil {
			m.fail(err)
			return
		}
	}
	if err := m.battery.Step(charge, disc); err != nil {
		m.fail(fmt.Errorf("machine: node %d slot %d: battery after clamps: %w", m.id, m.slot, err))
	}
}

// checkEnergy validates the executed (post-clamp) energy split against
// the node's true physical state — the per-node-view variants of the
// invariant checker's eq. (2)/(9)–(14) constraints. A violation here is
// a clamping bug, never a network condition.
func (m *NodeMachine) checkEnergy(r2d, r2b, g2d, g2b, disc units.Energy, clamped bool) error {
	viol := func(eq, msg string, args ...any) error {
		return &invariant.Violation{Slot: m.slot, Node: int(m.id), Eq: eq,
			Msg: "node-view: " + fmt.Sprintf(msg, args...)}
	}
	if r2d+r2b > m.renewWh+cmdTol {
		return viol("(3)", "renewable use %v exceeds true harvest %v", r2d+r2b, m.renewWh)
	}
	if g2d < 0 || g2b < 0 || r2d < 0 || r2b < 0 || disc < 0 {
		return viol("(5)", "negative energy split after clamps")
	}
	charge := r2b + g2b
	if charge > cmdTol && disc > cmdTol {
		return viol("(9)", "simultaneous charge %v and discharge %v", charge, disc)
	}
	if head := m.battery.ChargeHeadroom(); charge > head+cmdTol {
		return viol("(11)", "charge %v exceeds true headroom %v", charge, head)
	}
	if head := m.battery.DischargeHeadroom(); disc > head+cmdTol {
		return viol("(12)", "discharge %v exceeds true headroom %v", disc, head)
	}
	if draw := g2d + g2b; draw > cmdTol {
		if !m.connected {
			return viol("(14)", "grid draw %v while disconnected", draw)
		}
		if cap := m.net.Nodes[m.id].Spec.Grid.MaxDrawWh; draw > cap+cmdTol {
			return viol("(14)", "grid draw %v exceeds cap %v", draw, cap)
		}
	}
	// (2): an unclamped command must balance its own demand claim.
	if !clamped {
		if short := m.cmd.DemandWh - (r2d + g2d + disc + m.cmd.DeficitWh); short > cmdTol {
			return viol("(2)", "unclamped command leaves demand %v short by %v", m.cmd.DemandWh, short)
		}
	}
	return nil
}

// fail records the node's first fatal error.
func (m *NodeMachine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}
