package machine

import (
	"fmt"

	"greencell/internal/core"
	"greencell/internal/rng"
	"greencell/internal/topology"
	"greencell/internal/units"
)

// viewEnv is the coordinator's core.Environment: instead of sampling the
// physical processes it replays the coordinator's current belief — band
// widths from SpectrumObs, per-node renewables and grid connectivity
// from the latest gossip. It ignores the randomness stream entirely; the
// physical truth is drawn once per slot by the Deployment.
type viewEnv struct {
	widths []units.Bandwidth
	renew  []units.Energy
	conn   []bool
}

// Observe implements core.Environment.
func (e *viewEnv) Observe(int, *rng.Source, *topology.Network) core.Observation {
	return core.Observation{
		Widths:    append([]units.Bandwidth(nil), e.widths...),
		RenewWh:   append([]units.Energy(nil), e.renew...),
		Connected: append([]bool(nil), e.conn...),
	}
}

// gossipView is the coordinator's record of one node's freshest gossip.
type gossipView struct {
	slot      int
	q         []float64
	batteryWh units.Energy
	renewWh   units.Energy
	connected bool
	delivered float64
	deficitWh units.Energy
	clamps    int
	missed    int
}

// CoordinatorMachine re-derives the monolith's S1–S4 decisions from
// received node state. It embeds a full core.Controller operating on the
// coordinator's VIEW of the system: before each decide it overwrites the
// view with every unapplied gossip (freshest stamp wins, node order,
// never re-importing older stamps — re-imports would erase newer
// predictions), then runs the embedded Step, whose own queue/battery
// updates serve as the view's forward prediction for nodes whose gossip
// is lost. Under a perfect network the view equals the truth bitwise
// every slot, so the embedded Step IS the monolith computation — the
// fidelity gate's mechanism.
type CoordinatorMachine struct {
	id   NodeID
	ctrl *core.Controller
	env  *viewEnv
	net  *topology.Network

	slotSrc   *rng.Source
	userCheck func(*core.SlotCheck) error

	latest  []gossipView
	applied []int

	widths     []units.Bandwidth
	widthsSlot int

	outbox    []Message
	lastRes   *core.SlotResult
	staleSlot int

	err error
}

// newCoordinator builds the coordinator and its embedded view
// controller. cfg is the monolith configuration; its Env and Check are
// replaced by the coordinator's view environment and command-capture
// hook (the original Check chains behind the capture).
func newCoordinator(cfg core.Config, seed int64) (*CoordinatorMachine, error) {
	net := cfg.Net
	n := net.NumNodes()
	env := &viewEnv{
		renew: make([]units.Energy, n),
		conn:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		// Initial connectivity guess before any gossip: the spec's
		// deterministic part. Irrelevant for fidelity — slot 0 gossip
		// overwrites it under a perfect network.
		g := net.Nodes[i].Spec.Grid
		env.conn[i] = g.MaxDrawWh > 0 && g.AlwaysOn
	}
	c := &CoordinatorMachine{
		id:         NodeID(n),
		env:        env,
		net:        net,
		slotSrc:    rng.New(seed).Split("slots"),
		userCheck:  cfg.Check,
		latest:     make([]gossipView, n),
		applied:    make([]int, n),
		widthsSlot: -1,
	}
	for i := range c.latest {
		c.latest[i] = gossipView{
			slot:      -1,
			q:         nil, // nothing to import until first gossip
			batteryWh: net.Nodes[i].Spec.BatteryInitWh,
		}
		c.applied[i] = -1
	}
	ecfg := cfg
	ecfg.Env = env
	ecfg.Check = c.capture
	ctrl, err := core.New(ecfg)
	if err != nil {
		return nil, err
	}
	c.ctrl = ctrl
	return c, nil
}

// ID implements Machine.
func (c *CoordinatorMachine) ID() NodeID { return c.id }

// InitialMessages implements Machine.
func (c *CoordinatorMachine) InitialMessages() []Message { return nil }

// Err returns the first fatal coordinator condition (an embedded Step
// error — including invariant violations — or a protocol error).
func (c *CoordinatorMachine) Err() error { return c.err }

// Controller exposes the embedded view controller (drift constants,
// backlog accessors) to the runner and to sim's aggregation loop.
func (c *CoordinatorMachine) Controller() *core.Controller { return c.ctrl }

// Handle implements Machine.
func (c *CoordinatorMachine) Handle(msg Message) []Message {
	switch v := msg.(type) {
	case StateGossip:
		i := int(v.From())
		if i < 0 || i >= len(c.latest) {
			c.fail(fmt.Errorf("machine: gossip from unknown node %d", i))
			return nil
		}
		if v.Slot > c.latest[i].slot {
			c.latest[i] = gossipView{
				slot:      v.Slot,
				q:         v.Q,
				batteryWh: v.BatteryWh,
				renewWh:   v.RenewWh,
				connected: v.Connected,
				delivered: v.CumDeliveredPkts,
				deficitWh: v.CumDeficitWh,
				clamps:    v.CumClamps,
				missed:    v.CumMissedCmds,
			}
		}
	case SpectrumObs:
		if v.Slot >= c.widthsSlot {
			c.widths = v.Widths
			c.widthsSlot = v.Slot
		}
	case phaseMark:
		if v.Phase == phaseDecide {
			return c.decide(v.Slot)
		}
	}
	return nil
}

// decide imports every unapplied gossip into the view (node order,
// freshest stamp wins), counts stale views, and runs the embedded
// controller's Step. The slot's commands are built inside the Step by
// the capture hook and returned here.
func (c *CoordinatorMachine) decide(slot int) []Message {
	if c.err != nil {
		return nil
	}
	c.staleSlot = 0
	for i := range c.latest {
		g := &c.latest[i]
		if g.slot != slot {
			c.staleSlot++
		}
		if g.slot > c.applied[i] {
			if err := c.ctrl.ImportNodeView(i, g.q, g.batteryWh); err != nil {
				c.fail(err)
				return nil
			}
			c.env.renew[i] = g.renewWh
			c.env.conn[i] = g.connected
			c.applied[i] = g.slot
		}
	}
	if c.widthsSlot != slot {
		c.fail(fmt.Errorf("machine: coordinator missing spectrum observation for slot %d", slot))
		return nil
	}
	c.env.widths = c.widths

	c.outbox = nil
	res, err := c.ctrl.Step(c.slotSrc)
	if err != nil {
		c.fail(err)
		return nil
	}
	if c.staleSlot > 0 {
		res.Degraded = true
		res.DegradedCauses = append(res.DegradedCauses, CauseNetStale)
	}
	c.lastRes = res
	out := c.outbox
	c.outbox = nil
	return out
}

// capture is the embedded controller's Check hook: it runs at the end of
// every Step with the slot's full decision snapshot, from which it
// builds the outgoing command messages (copying everything it keeps —
// the snapshot's slices are only valid during the callback). The
// original invariant checker, when configured, chains behind it.
func (c *CoordinatorMachine) capture(chk *core.SlotCheck) error {
	c.buildCommands(chk)
	if c.userCheck != nil {
		return c.userCheck(chk)
	}
	return nil
}

// buildCommands turns a slot snapshot into the per-node command fan-out:
// for each node ascending, its schedule grant, flow update, admission
// offer (when it sources sessions this slot), energy command, and the
// price broadcast. Deterministic order keeps the per-edge delivery draws
// aligned across runs.
func (c *CoordinatorMachine) buildCommands(chk *core.SlotCheck) {
	n := c.net.NumNodes()
	S := len(chk.Admit)

	// Group admissions by the slot's source node.
	srcSessions := make([][]int, n)
	for s := 0; s < S; s++ {
		src := chk.Source[s]
		if src >= 0 && src < n {
			srcSessions[src] = append(srcSessions[src], s)
		}
	}

	for i := 0; i < n; i++ {
		to := header{from: c.id, to: NodeID(i)}
		out := c.net.OutLinks(i)

		if chk.Assignment != nil {
			grant := ScheduleGrant{
				header:   to,
				Slot:     chk.Slot,
				Links:    append([]int(nil), out...),
				Bands:    make([]int, len(out)),
				Activity: make([]float64, len(out)),
			}
			for k, l := range out {
				grant.Bands[k] = chk.Assignment.LinkBand[l]
				grant.Activity[k] = chk.Assignment.Activity[l]
			}
			c.outbox = append(c.outbox, grant)
		}

		if chk.Flow != nil {
			fu := FlowUpdate{
				header:   to,
				Slot:     chk.Slot,
				Links:    append([]int(nil), out...),
				FlowPkts: make([][]float64, len(out)),
			}
			for k, l := range out {
				fu.FlowPkts[k] = append([]float64(nil), chk.Flow[l]...)
			}
			c.outbox = append(c.outbox, fu)
		}

		if len(srcSessions[i]) > 0 {
			offer := AdmissionOffer{
				header:   to,
				Slot:     chk.Slot,
				Sessions: append([]int(nil), srcSessions[i]...),
			}
			offer.AdmitPkts = make([]float64, len(offer.Sessions))
			for k, s := range offer.Sessions {
				offer.AdmitPkts[k] = chk.Admit[s]
			}
			c.outbox = append(c.outbox, offer)
		}

		if chk.Energy != nil && i < len(chk.Energy.Nodes) {
			nd := chk.Energy.Nodes[i]
			c.outbox = append(c.outbox, EnergyCommand{
				header:         to,
				Slot:           chk.Slot,
				RenewToDemand:  nd.RenewToDemand,
				RenewToBattery: nd.RenewToBattery,
				GridToDemand:   nd.GridToDemand,
				GridToBattery:  nd.GridToBattery,
				DischargeWh:    nd.DischargeWh,
				DeficitWh:      nd.DeficitWh,
				DemandWh:       chk.DemandWh[i],
			})
			c.outbox = append(c.outbox, EnergyPrice{
				header:  to,
				Slot:    chk.Slot,
				PriceWh: chk.Energy.MarginalPriceWh,
			})
		}
	}
}

// fail records the coordinator's first fatal error.
func (c *CoordinatorMachine) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}
