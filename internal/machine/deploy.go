package machine

import (
	"fmt"

	"greencell/internal/core"
	"greencell/internal/faultinject"
	"greencell/internal/rng"
	"greencell/internal/traffic"
	"greencell/internal/units"
)

// Config assembles a distributed deployment.
type Config struct {
	// Core is the monolith controller configuration the deployment
	// distributes. Its Env (nil = DefaultEnvironment) samples the
	// physical truth; its Check (when set) runs both inside the
	// coordinator's embedded controller and as node-local checks.
	Core core.Config
	// Traffic duplicates Core.Traffic for the node machines (kept
	// explicit so a caller can't accidentally desynchronize them).
	Traffic *traffic.Model
	// Seed seeds the truth observation stream ("slots", identical to the
	// monolith's), the coordinator's embedded stream, and the network
	// fabric ("net").
	Seed int64
	// Model is the control-plane delivery model for every edge.
	Model DeliveryModel
	// EdgeModel, when non-nil, overrides Model per directed edge.
	EdgeModel func(from, to NodeID) DeliveryModel
	// Offline lists node IDs replaced by OfflineMachine (dead or
	// partitioned nodes).
	Offline []int
	// Hook, when non-nil, observes every slot's network statistics.
	Hook func(SlotNetStats)
}

// SlotNetStats is one slot's network-and-staleness report, delivered to
// Config.Hook after the slot settles.
type SlotNetStats struct {
	Slot int
	// Ideal marks a deployment that can never deviate from the perfect
	// network (zero-perturbation model, no offline nodes, no net fault
	// sites armed). The metrics layer uses it to keep ideal distributed
	// streams byte-identical to the monolith's.
	Ideal bool
	// Control-plane fabric counters.
	Sent, Dropped, Delayed, Duped int
	// DataMsgs counts reliable data-plane transfers.
	DataMsgs int
	// Late counts commands discarded at nodes for arriving after their
	// point of use; MissedCmds counts slots a node settled without any
	// energy command.
	Late, MissedCmds int
	// StaleViews is how many node views the coordinator decided this
	// slot without current-slot gossip for.
	StaleViews int
	// NodeClamps is how many nodes had to clamp an infeasible command
	// against their true physical state.
	NodeClamps int
}

// NetReport aggregates a whole distributed run. Unlike the metrics
// stream — which reports the coordinator's belief, since the embedded
// controller computes it — the True* fields are physical ground truth
// collected directly from the node machines.
type NetReport struct {
	MsgsSent, MsgsDropped, MsgsDelayed, MsgsDuped int
	DataMsgs                                      int
	MsgsLate, MissedCmds                          int
	// StaleViews sums per-slot stale node views; StaleSlots counts slots
	// with at least one (the slots marked CauseNetStale).
	StaleViews, StaleSlots int
	// NodeClamps counts infeasible commands repaired at nodes.
	NodeClamps int
	// TrueDeliveredPkts is the packets that actually reached session
	// sinks; TrueDeficitWh the commanded demand nodes could not cover.
	TrueDeliveredPkts float64
	TrueDeficitWh     units.Energy
}

// Deployment wires the machines to the network fabric and drives the
// four-round slot protocol:
//
//	observe — stragglers delivered; the runner injects each node's
//	          LocalObs and the coordinator's SpectrumObs; nodes gossip.
//	decide  — fresh gossip delivered; the coordinator imports views,
//	          runs the embedded S1–S4 Step, and fans out commands.
//	execute — commands delivered; nodes transmit their clamped flows.
//	settle  — transfers (and straggling energy commands) delivered;
//	          nodes fold arrivals into queues and step their batteries.
//
// Every message sent in one round is due the next round at the
// earliest, so the perfect network is simply the schedule where nothing
// is ever late — and the slot decisions coincide with the monolith's.
type Deployment struct {
	cfg      core.Config
	env      core.Environment
	net      *Network
	coord    *CoordinatorMachine
	nodes    []*NodeMachine // nil at offline indices
	truthSrc *rng.Source
	hook     func(SlotNetStats)

	slot    int
	ideal   bool
	started bool
	report  NetReport
}

// NewDeployment validates the configuration and builds the machines.
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.Core.Net == nil || cfg.Traffic == nil {
		return nil, fmt.Errorf("machine: deployment needs a network and traffic model")
	}
	if cfg.Core.TrackDelay {
		// Exact per-packet delay FIFOs live inside the embedded
		// controller and cannot be overwritten consistently by view
		// imports under loss.
		return nil, fmt.Errorf("machine: TrackDelay is unsupported in distributed runs")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Core.Net.NumNodes()
	offline := make(map[int]bool, len(cfg.Offline))
	for _, id := range cfg.Offline {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("machine: offline node %d outside [0,%d)", id, n)
		}
		if offline[id] {
			return nil, fmt.Errorf("machine: offline node %d listed twice", id)
		}
		offline[id] = true
	}

	coord, err := newCoordinator(cfg.Core, cfg.Seed)
	if err != nil {
		return nil, err
	}
	checks := cfg.Core.Check != nil
	machines := make([]Machine, n+1)
	nodes := make([]*NodeMachine, n)
	for i := 0; i < n; i++ {
		if offline[i] {
			machines[i] = OfflineMachine{Node: NodeID(i)}
			continue
		}
		nm, err := NewNodeMachine(NodeID(i), coord.ID(), cfg.Core.Net, cfg.Traffic, checks)
		if err != nil {
			return nil, err
		}
		nodes[i] = nm
		machines[i] = nm
	}
	machines[n] = coord

	fabric, err := NewNetwork(cfg.Model, cfg.EdgeModel, cfg.Core.Faults,
		rng.New(cfg.Seed).Split("net"), machines)
	if err != nil {
		return nil, err
	}

	env := cfg.Core.Env
	if env == nil {
		env = core.DefaultEnvironment{}
	}
	inj := cfg.Core.Faults
	ideal := cfg.Model.Ideal() && cfg.EdgeModel == nil && len(cfg.Offline) == 0 &&
		!inj.Active(faultinject.NetDrop) && !inj.Active(faultinject.NetDelay) &&
		!inj.Active(faultinject.NetDup)

	return &Deployment{
		cfg:      cfg.Core,
		env:      env,
		net:      fabric,
		coord:    coord,
		nodes:    nodes,
		truthSrc: rng.New(cfg.Seed).Split("slots"),
		hook:     cfg.Hook,
		ideal:    ideal,
	}, nil
}

// Controller exposes the coordinator's embedded view controller.
func (d *Deployment) Controller() *core.Controller { return d.coord.Controller() }

// Ideal reports whether the deployment can never deviate from the
// perfect network.
func (d *Deployment) Ideal() bool { return d.ideal }

// Step runs one slot of the protocol and returns the coordinator's slot
// result (its view decision, with CauseNetStale appended when it decided
// on stale state).
func (d *Deployment) Step() (*core.SlotResult, error) {
	t := d.slot
	d.net.BeginSlot(t)
	if !d.started {
		d.started = true
		d.net.Start()
	}
	d.net.Deliver() // stragglers due exactly at the slot boundary

	obs := d.observeTruth(t)
	d.net.Inject(SpectrumObs{
		header: header{from: -1, to: d.coord.ID()},
		Slot:   t,
		Widths: obs.Widths,
	})
	for i := range d.nodes {
		d.net.Inject(LocalObs{
			header:    header{from: -1, to: NodeID(i)},
			Slot:      t,
			RenewWh:   obs.RenewWh[i],
			Connected: obs.Connected[i],
		})
	}

	d.net.Advance() // decide round: fresh gossip lands
	d.net.Inject(phaseMark{header: header{from: -1, to: d.coord.ID()}, Slot: t, Phase: phaseDecide})

	d.net.Advance() // execute round: commands land
	for i := range d.nodes {
		d.net.Inject(phaseMark{header: header{from: -1, to: NodeID(i)}, Slot: t, Phase: phaseExecute})
	}

	d.net.Advance() // settle round: transfers and straggling commands land
	for i := range d.nodes {
		d.net.Inject(phaseMark{header: header{from: -1, to: NodeID(i)}, Slot: t, Phase: phaseSettle})
	}

	if err := d.net.Err(); err != nil {
		return nil, err
	}
	if err := d.coord.Err(); err != nil {
		return nil, err
	}
	for _, nm := range d.nodes {
		if nm != nil && nm.Err() != nil {
			return nil, nm.Err()
		}
	}
	res := d.coord.lastRes
	if res == nil {
		return nil, fmt.Errorf("machine: slot %d produced no decision", t)
	}
	d.coord.lastRes = nil

	st := SlotNetStats{Slot: t, Ideal: d.ideal, StaleViews: d.coord.staleSlot}
	nc := d.net.Stats()
	st.Sent, st.Dropped, st.Delayed, st.Duped, st.DataMsgs =
		nc.Sent, nc.Dropped, nc.Delayed, nc.Duped, nc.DataMsgs
	for _, nm := range d.nodes {
		if nm == nil {
			continue
		}
		st.Late += nm.lateSlot
		st.MissedCmds += nm.missedSlot
		st.NodeClamps += nm.clampsSlot
	}
	d.fold(st)
	if d.hook != nil {
		d.hook(st)
	}
	d.slot++
	return res, nil
}

// fold accumulates a slot's stats into the run report.
func (d *Deployment) fold(st SlotNetStats) {
	d.report.MsgsSent += st.Sent
	d.report.MsgsDropped += st.Dropped
	d.report.MsgsDelayed += st.Delayed
	d.report.MsgsDuped += st.Duped
	d.report.DataMsgs += st.DataMsgs
	d.report.MsgsLate += st.Late
	d.report.MissedCmds += st.MissedCmds
	d.report.StaleViews += st.StaleViews
	if st.StaleViews > 0 {
		d.report.StaleSlots++
	}
	d.report.NodeClamps += st.NodeClamps
}

// Report returns the run's aggregated network report, with the ground
// truth collected directly from the node machines.
func (d *Deployment) Report() *NetReport {
	r := d.report
	for _, nm := range d.nodes {
		if nm == nil {
			continue
		}
		r.TrueDeliveredPkts += nm.cumDelivered
		r.TrueDeficitWh += nm.cumDeficitWh
	}
	return &r
}

// observeTruth draws the slot's physical observation exactly as the
// monolith would — same environment, same "slots" stream, same injected
// observation faults and repair — so the distributed run's ground truth
// coincides with the monolith's inputs.
func (d *Deployment) observeTruth(t int) core.Observation {
	obs := d.env.Observe(t, d.truthSrc, d.cfg.Net)
	core.PrepareObservation(d.cfg.Faults, t, &obs)
	return obs
}
