// Package faultinject provides deterministic, seeded fault injection for
// the drift-plus-penalty control loop. An Injector decides, per named site
// and slot, whether a fault fires; the controller (internal/core) turns a
// firing into the corresponding failure — a solver error on an S1–S4 site,
// a NaN/Inf perturbation of the slot's observation on an input site, or a
// consumed slot deadline on the latency site — and then exercises exactly
// the same graceful-degradation path a real failure would take
// (docs/ROBUSTNESS.md).
//
// Determinism is the point: every firing decision is a pure function of
// (injector seed, site, slot), drawn from its own rng.Split sub-stream, so
// a fuzz or soak run reproduces bit-identically from its scenario seed and
// injection never perturbs the random draws of the simulated processes.
package faultinject

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/rng"
)

// Site names one injection point in the control loop.
type Site string

// Injection sites. The S1–S4 sites fail the corresponding subproblem
// solve before it runs (wrapped in the stage's typed sentinel by the
// controller); the observation sites corrupt one entry of the slot's
// revealed random state; Latency consumes the slot's wall-clock budget.
const (
	// S1Infeasible fails the S1 link-scheduling solve as infeasible.
	S1Infeasible Site = "s1_infeasible"
	// S1IterLimit fails the S1 solve at its iteration budget.
	S1IterLimit Site = "s1_iterlimit"
	// S2Fail fails the S2 resource-allocation decision.
	S2Fail Site = "s2_fail"
	// S3Fail fails the S3 routing decision.
	S3Fail Site = "s3_fail"
	// S4Infeasible fails the S4 energy-management solve as infeasible.
	S4Infeasible Site = "s4_infeasible"
	// S4IterLimit fails the S4 solve at its iteration budget.
	S4IterLimit Site = "s4_iterlimit"
	// ObsRenewableNaN sets one node's renewable output R_i(t) to NaN.
	ObsRenewableNaN Site = "obs_renewable_nan"
	// ObsWidthInf sets one band width W_m(t) to +Inf.
	ObsWidthInf Site = "obs_width_inf"
	// Latency simulates a per-slot latency spike: when the slot has a
	// wall-clock budget (core.SolveBudget.SlotDeadline), the spike consumes
	// it and every stage falls back to its safe action. The spike is
	// virtual — nothing sleeps — so soaks stay fast and bit-identical.
	Latency Site = "latency"
	// NetDrop is a slot-wide control-plane outage of the distributed
	// runner's simulated network (internal/machine): every control
	// message sent during a firing slot is dropped. The monolithic
	// controller never consults the network sites.
	NetDrop Site = "net_drop"
	// NetDelay delays every control message of a firing slot by
	// 1+Index(NetDelay, slot, maxDelay) extra ticks — enough to make
	// gossip miss its decide round, so the slot decides stale.
	NetDelay Site = "net_delay"
	// NetDup delivers a duplicate of every control message of a firing
	// slot. The protocol's stamp-based merges are idempotent, so NetDup
	// must never degrade a slot — a property the soak asserts.
	NetDup Site = "net_dup"
)

// Sites returns every injection site in a fixed order.
func Sites() []Site {
	return []Site{
		S1Infeasible, S1IterLimit, S2Fail, S3Fail,
		S4Infeasible, S4IterLimit, ObsRenewableNaN, ObsWidthInf, Latency,
		NetDrop, NetDelay, NetDup,
	}
}

// ErrInjected marks an injected fault; the controller's degradation
// classifier treats it like a solver-outcome failure. errors.Is
// distinguishes injected faults from organic ones in tests and logs.
var ErrInjected = errors.New("faultinject: injected fault")

// Config sets the per-site firing probabilities. The zero value injects
// nothing.
type Config struct {
	// Probability maps each site to its per-slot firing probability in
	// [0, 1]; absent sites never fire.
	Probability map[Site]float64
}

// Uniform returns a Config firing every site with probability p.
func Uniform(p float64) Config {
	m := make(map[Site]float64, len(Sites()))
	for _, s := range Sites() {
		m[s] = p
	}
	return Config{Probability: m}
}

// Enabled reports whether any site has a positive probability.
func (c Config) Enabled() bool {
	for _, p := range c.Probability {
		if p > 0 {
			return true
		}
	}
	return false
}

// Validate rejects probabilities outside [0, 1] or non-finite.
func (c Config) Validate() error {
	for s, p := range c.Probability {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("faultinject: site %s probability %v outside [0,1]", s, p)
		}
	}
	return nil
}

// Injector makes the per-(site, slot) firing decisions. A nil *Injector
// is valid and never fires, so callers need no guard. Decisions are pure
// functions of the construction seed: each draws from its own sub-stream
// split as "<site>#<slot>", so firing at one site never shifts another
// site's pattern and call order is irrelevant.
type Injector struct {
	root  *rng.Source
	probs map[Site]float64
}

// New builds an injector drawing its decisions from src (typically
// rng.New(seed).Split("faults") so the pattern is pinned by the scenario
// seed). A config with no positive probabilities yields a non-nil injector
// that never fires.
func New(src *rng.Source, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	probs := make(map[Site]float64, len(cfg.Probability))
	for s, p := range cfg.Probability {
		probs[s] = p
	}
	return &Injector{root: src, probs: probs}, nil
}

// Fires reports whether the site's fault fires at the given slot.
func (in *Injector) Fires(site Site, slot int) bool {
	if in == nil {
		return false
	}
	p := in.probs[site]
	if p <= 0 {
		return false
	}
	return in.root.Split(fmt.Sprintf("%s#%d", site, slot)).Bernoulli(p)
}

// Active reports whether the site has a positive firing probability —
// static reachability, not a firing decision. The distributed runner
// uses it to decide whether a run can ever leave the ideal-network
// fidelity path.
func (in *Injector) Active(site Site) bool {
	return in != nil && in.probs[site] > 0
}

// Index picks a deterministic target index in [0, n) for a firing at the
// site and slot — which node's renewable reading or which band width to
// corrupt. It returns 0 for n <= 1.
func (in *Injector) Index(site Site, slot, n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	return in.root.Split(fmt.Sprintf("%s@%d", site, slot)).Intn(n)
}

// Error returns the fault error for a firing, wrapping ErrInjected.
func (in *Injector) Error(site Site, slot int) error {
	return fmt.Errorf("%w: site %s slot %d", ErrInjected, site, slot)
}
