package faultinject

import (
	"errors"
	"testing"

	"greencell/internal/rng"
)

func mustNew(t *testing.T, seed int64, cfg Config) *Injector {
	t.Helper()
	in, err := New(rng.New(seed).Split("faults"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, s := range Sites() {
		if in.Fires(s, 0) {
			t.Fatalf("nil injector fired at %s", s)
		}
	}
	if in.Index(S1Infeasible, 0, 10) != 0 {
		t.Error("nil injector Index != 0")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	never := mustNew(t, 1, Config{})
	always := mustNew(t, 1, Uniform(1))
	for slot := 0; slot < 50; slot++ {
		for _, s := range Sites() {
			if never.Fires(s, slot) {
				t.Fatalf("p=0 fired at %s slot %d", s, slot)
			}
			if !always.Fires(s, slot) {
				t.Fatalf("p=1 did not fire at %s slot %d", s, slot)
			}
		}
	}
}

// TestDeterminism: the firing pattern is a pure function of (seed, site,
// slot), independent of query order and of what other sites fired.
func TestDeterminism(t *testing.T) {
	a := mustNew(t, 7, Uniform(0.3))
	b := mustNew(t, 7, Uniform(0.3))
	// Query b in reverse order: patterns must still match exactly.
	type key struct {
		site Site
		slot int
	}
	got := map[key]bool{}
	for slot := 99; slot >= 0; slot-- {
		for i := len(Sites()) - 1; i >= 0; i-- {
			s := Sites()[i]
			got[key{s, slot}] = b.Fires(s, slot)
		}
	}
	fired := 0
	for slot := 0; slot < 100; slot++ {
		for _, s := range Sites() {
			want := a.Fires(s, slot)
			if got[key{s, slot}] != want {
				t.Fatalf("order-dependent firing at %s slot %d", s, slot)
			}
			if want {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Error("p=0.3 over 900 decisions never fired (suspicious)")
	}
	// A different seed must give a different pattern somewhere.
	c := mustNew(t, 8, Uniform(0.3))
	same := true
	for slot := 0; slot < 100 && same; slot++ {
		for _, s := range Sites() {
			if c.Fires(s, slot) != got[key{s, slot}] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical firing patterns")
	}
}

func TestIndexInRange(t *testing.T) {
	in := mustNew(t, 3, Uniform(1))
	for slot := 0; slot < 200; slot++ {
		if i := in.Index(ObsRenewableNaN, slot, 7); i < 0 || i >= 7 {
			t.Fatalf("index %d out of [0,7)", i)
		}
	}
	if in.Index(ObsWidthInf, 0, 1) != 0 || in.Index(ObsWidthInf, 0, 0) != 0 {
		t.Error("degenerate n must index 0")
	}
}

func TestErrorWrapsSentinel(t *testing.T) {
	in := mustNew(t, 1, Uniform(1))
	if err := in.Error(S4Infeasible, 12); !errors.Is(err, ErrInjected) {
		t.Errorf("error %v does not wrap ErrInjected", err)
	}
}

func TestValidate(t *testing.T) {
	bad := Config{Probability: map[Site]float64{S1Infeasible: 1.5}}
	if _, err := New(rng.New(1), bad); err == nil {
		t.Error("probability 1.5 accepted")
	}
	if Uniform(0).Enabled() {
		t.Error("Uniform(0) reports enabled")
	}
	if !Uniform(0.1).Enabled() {
		t.Error("Uniform(0.1) reports disabled")
	}
}
