package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body. Blocks hold the
// statements (and the deciding expressions of branches) in execution order;
// edges follow every construct the language has: if/else, for (all three
// clauses), range, switch/type-switch with fallthrough, select with and
// without default, goto, labeled break/continue, explicit panic/os.Exit
// terminators, and return. Defer statements stay in the block where they
// execute (registration site); analyzers that care about function exit —
// locksafe's deferred-unlock discharge — interpret them there.
//
// Two conventions keep blocks free of duplicated syntax:
//
//   - a RangeStmt node inside a block stands for the loop HEADER only (the
//     ranged expression and the key/value binding); its body statements live
//     in successor blocks;
//   - an IfStmt/SwitchStmt contributes only its Cond/Tag expression, a
//     TypeSwitchStmt its Assign statement, and a SelectStmt node stands for
//     the blocking choice point; each clause body is its own block chain.
type CFG struct {
	// Blocks in creation order; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is where execution starts; Exit is the single synthetic block
	// every return, panic and fall-off-the-end edge reaches. Exit holds no
	// nodes.
	Entry, Exit *Block
	// Comm marks the nodes that are select communication statements: their
	// channel operation is decided (and possibly blocks) at the SelectStmt
	// choice point, not at the statement itself.
	Comm map[ast.Node]bool
}

// Block is a straight-line run of nodes with explicit successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live reports reachability from Entry; statements parked in a dead
	// block are unreachable code (after return/goto/panic, or following an
	// infinite loop).
	Live bool
}

// BuildCFG constructs the CFG of one function body. It never returns nil:
// an empty body yields Entry wired straight to Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{Comm: make(map[ast.Node]bool)}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.labels = make(map[string]*Block)
	if body != nil {
		b.stmts(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	b.markLive()
	return b.cfg
}

// cfgBuilder carries the in-progress graph.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block receiving statements; nil after a terminator, in
	// which case the next statement opens a fresh (dead) block so
	// unreachable code is preserved for analysis.
	cur *Block
	// targets is the stack of enclosing breakable/continuable constructs.
	targets []branchTarget
	// labels maps label names to their blocks (created on demand, so
	// forward gotos resolve).
	labels map[string]*Block
	// pendingLabel names the label attached to the next loop/switch/select
	// statement, so labeled break/continue find their construct.
	pendingLabel string
	// fallTarget is the next case body during switch construction.
	fallTarget *Block
}

// branchTarget is one enclosing construct break/continue can address.
type branchTarget struct {
	label string
	brk   *Block // break destination (never nil)
	cont  *Block // continue destination; nil for switch/select
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// use returns the current block, opening a dead one after a terminator so
// unreachable statements still get parked somewhere.
func (b *cfgBuilder) use() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(st.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		blk := b.use()
		blk.Nodes = append(blk.Nodes, st)
		b.edge(blk, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.IfStmt:
		b.ifStmt(st)

	case *ast.ForStmt:
		b.forStmt(st)

	case *ast.RangeStmt:
		b.rangeStmt(st)

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.use()
		if st.Tag != nil {
			head.Nodes = append(head.Nodes, st.Tag)
		}
		b.switchBody(head, st.Body)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.use()
		head.Nodes = append(head.Nodes, st.Assign)
		b.switchBody(head, st.Body)

	case *ast.SelectStmt:
		b.selectStmt(st)

	default:
		// Plain statements: assignments, declarations, expression
		// statements, defer, go, send, incdec, empty.
		blk := b.use()
		blk.Nodes = append(blk.Nodes, s)
		if terminates(s) {
			b.edge(blk, b.cfg.Exit)
			b.cur = nil
		}
	}
}

// branch wires break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	blk := b.use()
	blk.Nodes = append(blk.Nodes, st)
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.edge(blk, t.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont == nil {
				continue // switch/select: continue passes through
			}
			if label == "" || t.label == label {
				b.edge(blk, t.cont)
				break
			}
		}
	case token.GOTO:
		if label != "" {
			b.edge(blk, b.labelBlock(label))
		}
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.edge(blk, b.fallTarget)
		}
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	b.pendingLabel = ""
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.use()
	head.Nodes = append(head.Nodes, st.Cond)
	join := b.newBlock()

	then := b.newBlock()
	b.edge(head, then)
	b.cur = then
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}

	if st.Else != nil {
		els := b.newBlock()
		b.edge(head, els)
		b.cur = els
		b.stmt(st.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	} else {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.newBlock()
	b.edge(b.use(), head)
	if st.Cond != nil {
		head.Nodes = append(head.Nodes, st.Cond)
	}
	join := b.newBlock()
	post := head
	if st.Post != nil {
		post = b.newBlock()
	}
	body := b.newBlock()
	b.edge(head, body)
	if st.Cond != nil {
		b.edge(head, join)
	}

	b.targets = append(b.targets, branchTarget{label: label, brk: join, cont: post})
	b.cur = body
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	b.targets = b.targets[:len(b.targets)-1]

	if st.Post != nil {
		b.cur = post
		b.stmt(st.Post)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
	}
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock()
	b.edge(b.use(), head)
	// The RangeStmt node in the head block stands for the header only (the
	// ranged expression and key/value binding).
	head.Nodes = append(head.Nodes, st)
	join := b.newBlock()
	b.edge(head, join)
	body := b.newBlock()
	b.edge(head, body)

	b.targets = append(b.targets, branchTarget{label: label, brk: join, cont: head})
	b.cur = body
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

// switchBody builds the clause blocks of a switch/type-switch whose
// deciding block is head.
func (b *cfgBuilder) switchBody(head *Block, body *ast.BlockStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	join := b.newBlock()
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	starts := make([]*Block, len(clauses))
	for i := range clauses {
		starts[i] = b.newBlock()
		b.edge(head, starts[i])
	}
	hasDefault := false
	b.targets = append(b.targets, branchTarget{label: label, brk: join})
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		if i+1 < len(starts) {
			b.fallTarget = starts[i+1]
		} else {
			b.fallTarget = nil
		}
		b.cur = starts[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.fallTarget = nil
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.use()
	// The SelectStmt node marks the blocking choice point; whether it can
	// block is decided by the presence of a default clause.
	head.Nodes = append(head.Nodes, st)
	join := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: join})
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
			b.cfg.Comm[cc.Comm] = true
		}
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

// labelBlock returns (creating on demand) the block a label names.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// terminates reports whether a plain statement never falls through: an
// explicit panic, os.Exit, runtime.Goexit, or log.Fatal* call. The check is
// purely syntactic (by name), which is what a CFG without type information
// can promise; analyzers with types can refine it.
func terminates(s ast.Stmt) bool {
	var call *ast.CallExpr
	switch st := s.(type) {
	case *ast.ExprStmt:
		c, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		call = c
	default:
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		base, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case base.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case base.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case base.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// markLive flags every block reachable from Entry.
func (b *cfgBuilder) markLive() {
	var dfs func(*Block)
	dfs = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			dfs(s)
		}
	}
	dfs(b.cfg.Entry)
}

// funcBodies visits every function of the package that has a body: each
// FuncDecl and each FuncLit (nested literals included), so flow analyses
// treat a closure as its own function. name is the declared name, with
// "<func literal>" for literals.
func funcBodies(pkg *Package, visit func(name string, node ast.Node, body *ast.BlockStmt)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Name.Name, fn, fn.Body)
				}
			case *ast.FuncLit:
				visit("<func literal>", fn, fn.Body)
			}
			return true
		})
	}
}
