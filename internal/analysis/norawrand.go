package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NoRawRand enforces the determinism discipline: every stochastic draw must
// flow through internal/rng so that equal seeds reproduce byte-identical
// runs (the metrics determinism regression test depends on it). It reports:
//
//   - any import of math/rand or math/rand/v2 outside internal/rng itself
//     (an ad-hoc generator forks the random stream and breaks common random
//     numbers across scenarios);
//   - any rng.New seed derived from time.Now (a wall-clock seed makes runs
//     unreproducible — thread a scenario seed instead).
type NoRawRand struct{}

// Name implements Analyzer.
func (NoRawRand) Name() string { return "norawrand" }

// Doc implements Analyzer.
func (NoRawRand) Doc() string {
	return "math/rand imports or time.Now-derived seeds outside internal/rng"
}

// Check implements Analyzer.
func (n NoRawRand) Check(pkg *Package) []Finding {
	var out []Finding
	exempt := strings.HasSuffix(strings.TrimSuffix(pkg.PkgPath, " [test]"), "internal/rng")
	for _, file := range pkg.Files {
		if !exempt {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					out = append(out, Finding{
						Analyzer: n.Name(),
						Pos:      pkg.Fset.Position(imp.Pos()),
						Message:  "import of " + path + " outside internal/rng; draw from an rng.Source instead",
					})
				}
			}
		}
	}
	inspect(pkg, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(pkg, call.Fun, "internal/rng", "New") {
			return true
		}
		for _, arg := range call.Args {
			if tn := findTimeNow(pkg, arg); tn != nil {
				out = append(out, Finding{
					Analyzer: n.Name(),
					Pos:      pkg.Fset.Position(tn.Pos()),
					Message:  "rng.New seeded from time.Now; wall-clock seeds break reproducibility",
				})
			}
		}
		return true
	})
	return out
}

// findTimeNow returns the first time.Now call inside expr, if any.
func findTimeNow(pkg *Package, expr ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(expr, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok && isStdFunc(pkg, call.Fun, "time", "Now") {
			found = call
			return false
		}
		return true
	})
	return found
}

// isPkgFunc reports whether fun resolves to the named function of a package
// whose import path ends in pathSuffix (a module-internal package).
func isPkgFunc(pkg *Package, fun ast.Expr, pathSuffix, name string) bool {
	obj := calleeObject(pkg, fun)
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pathSuffix)
}

// isStdFunc reports whether fun resolves to the named function of the
// standard-library package with exactly the given import path.
func isStdFunc(pkg *Package, fun ast.Expr, path, name string) bool {
	obj := calleeObject(pkg, fun)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// calleeObject resolves a call's function expression to its object.
func calleeObject(pkg *Package, fun ast.Expr) types.Object {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[f.Sel]
	}
	return nil
}
