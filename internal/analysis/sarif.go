package analysis

import "path/filepath"

// SARIF 2.1.0 output (the OASIS static-analysis interchange format), built
// on encoding/json alone: the subset of the schema that code-review UIs
// consume — one run, the driver's rule table, and one result per finding
// with a physical location. Paths are emitted with forward slashes and
// SRCROOT as the uriBaseId, so a log produced from a module-relative run
// resolves against any checkout.

// SARIFLog is the top-level sarifLog object.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one analysis run: the tool and its results.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool wraps the driver description.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver describes greencell-lint and its rule table.
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer: id and short description.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFMessage is a text carrier.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

// SARIFLocation wraps the physical location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation is artifact + region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation names the file, relative to SRCROOT.
type SARIFArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

// SARIFRegion is the 1-based start position.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifDocsURI points reviewers at the rule documentation.
const sarifDocsURI = "https://github.com/greencell/greencell/blob/main/docs/ANALYSIS.md"

// SARIFReport renders findings as a one-run SARIF 2.1.0 log. The rule table
// lists exactly the analyzers that ran (so a clean run still documents what
// was checked), in suite order; every finding is a "warning"-level result —
// the exit status, not the level, is the gate.
func SARIFReport(findings []Finding, analyzers []Analyzer) SARIFLog {
	rules := make([]SARIFRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules = append(rules, SARIFRule{ID: a.Name(), ShortDescription: SARIFMessage{Text: a.Doc()}})
		index[a.Name()] = i
	}
	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Analyzer]
		if !ok {
			// A finding from an analyzer outside the table (merged logs):
			// append its rule on demand.
			idx = len(rules)
			index[f.Analyzer] = idx
			rules = append(rules, SARIFRule{ID: f.Analyzer, ShortDescription: SARIFMessage{Text: f.Analyzer}})
		}
		results = append(results, SARIFResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{
						URI:       filepath.ToSlash(f.File),
						URIBaseID: "SRCROOT",
					},
					Region: SARIFRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return SARIFLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "greencell-lint", InformationURI: sarifDocsURI, Rules: rules}},
			Results: results,
		}},
	}
}
