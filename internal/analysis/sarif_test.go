package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSARIFFormatPinned pins the emitted SARIF 2.1.0 byte format: external
// consumers (code-review upload endpoints) parse this, so field names,
// ordering, and the schema header may only change deliberately.
func TestSARIFFormatPinned(t *testing.T) {
	findings := []Finding{
		{
			Analyzer: "resleak",
			File:     "internal/cluster/cache.go",
			Line:     42,
			Col:      7,
			Message:  "os.File acquired here is leaked",
		},
		{
			Analyzer: "errcmp",
			File:     "cmd/greencelld/main.go",
			Line:     9,
			Col:      3,
			Message:  "sentinel compared with ==",
		},
	}
	analyzers := []Analyzer{ResLeak{}, ErrCmp{}}
	got, err := json.MarshalIndent(SARIFReport(findings, analyzers), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(`
{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "greencell-lint",
          "informationUri": "https://github.com/greencell/greencell/blob/main/docs/ANALYSIS.md",
          "rules": [
            {
              "id": "resleak",
              "shortDescription": {
                "text": "` + ResLeak{}.Doc() + `"
              }
            },
            {
              "id": "errcmp",
              "shortDescription": {
                "text": "` + ErrCmp{}.Doc() + `"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "resleak",
          "ruleIndex": 0,
          "level": "warning",
          "message": {
            "text": "os.File acquired here is leaked"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "internal/cluster/cache.go",
                  "uriBaseId": "SRCROOT"
                },
                "region": {
                  "startLine": 42,
                  "startColumn": 7
                }
              }
            }
          ]
        },
        {
          "ruleId": "errcmp",
          "ruleIndex": 1,
          "level": "warning",
          "message": {
            "text": "sentinel compared with =="
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "cmd/greencelld/main.go",
                  "uriBaseId": "SRCROOT"
                },
                "region": {
                  "startLine": 9,
                  "startColumn": 3
                }
              }
            }
          ]
        }
      ]
    }
  ]
}`)
	if string(got) != want {
		t.Errorf("SARIF format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSARIFEmptyRun: a clean run still carries the full rule table and an
// empty (not null) results array.
func TestSARIFEmptyRun(t *testing.T) {
	log := SARIFReport(nil, All())
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Errorf("rule table should list the whole suite: got %d, want %d",
			len(run.Tool.Driver.Rules), len(All()))
	}
	b, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"results":null`) {
		t.Error("results must marshal as [] on a clean run, not null")
	}
}

// TestSARIFForeignRule: merged logs may carry findings from analyzers
// outside the run's table; the rule is appended on demand.
func TestSARIFForeignRule(t *testing.T) {
	log := SARIFReport([]Finding{{Analyzer: "other", File: "a.go", Line: 1, Col: 1, Message: "m"}},
		[]Analyzer{ResLeak{}})
	run := log.Runs[0]
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("want the foreign rule appended, got %d rules", len(run.Tool.Driver.Rules))
	}
	if run.Results[0].RuleIndex != 1 {
		t.Errorf("foreign finding should point at the appended rule, got index %d", run.Results[0].RuleIndex)
	}
}
