package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("greencell/internal/lp"); external test
	// packages get a " [test]" suffix.
	PkgPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed sources that were analyzed (including _test.go
	// files when the loader includes them).
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of one module using only the
// standard library: module-internal imports resolve to the module's own
// directories, everything else to GOROOT source via go/importer.
type Loader struct {
	// IncludeTests adds _test.go files (both in-package and external test
	// packages) to the analyzed set.
	IncludeTests bool
	// Parallel is the number of packages Load type-checks concurrently.
	// Zero or one loads serially. Load first resolves every import
	// dependency serially (the expensive transitive closure is shared
	// work), then fans the per-directory checks out over this many
	// goroutines; token.FileSet is synchronized, and the import caches
	// below are guarded by mu.
	Parallel int

	fset       *token.FileSet
	moduleRoot string
	modulePath string

	// mu guards cache, loading, concurrent, and std (the go/importer
	// source importer keeps an unsynchronized internal cache).
	mu   sync.Mutex
	cond *sync.Cond
	std  types.Importer
	// cache holds import-variants (no test files), keyed by import path.
	cache map[string]*types.Package
	// loading marks imports being type-checked right now. In serial loads
	// re-entering a loading path is an import cycle; in the concurrent
	// phase it means another goroutine got there first, and we wait on
	// cond instead.
	loading map[string]bool
	// concurrent is true while Load's parallel fan-out is running.
	concurrent bool
}

// NewLoader builds a loader for the module containing dir (dir or any
// parent must hold a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// modulePath reads the "module" directive of a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// ModuleRoot returns the module's root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// Load type-checks every package under each pattern. A pattern is a
// directory path, optionally ending in "/..." for a recursive walk.
// Directories named testdata (and hidden directories) are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.moduleRoot
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if gofiles, err := goFilesIn(path, false); err == nil && len(gofiles) > 0 {
				add(path)
			} else if err != nil {
				return err
			} else if l.IncludeTests {
				if tests, err := goFilesIn(path, true); err == nil && len(tests) > 0 {
					add(path)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	if l.Parallel <= 1 || len(dirs) <= 1 {
		var pkgs []*Package
		for _, dir := range dirs {
			got, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, got...)
		}
		return pkgs, nil
	}
	return l.loadParallel(dirs)
}

// loadParallel warms the shared import caches serially, then type-checks
// the target directories concurrently (the internal/sim/replicate.go
// fan-out shape: loop state passed as arguments, each goroutine owning its
// own result slot).
func (l *Loader) loadParallel(dirs []string) ([]*Package, error) {
	if err := l.warmImports(dirs); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.concurrent = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.concurrent = false
		l.mu.Unlock()
	}()

	results := make([][]*Package, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, l.Parallel)
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = l.LoadDir(dir)
		}(i, dir)
	}
	wg.Wait()

	var pkgs []*Package
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pkgs = append(pkgs, results[i]...)
	}
	return pkgs, nil
}

// warmImports resolves, serially, every import named by the Go files of
// dirs (tests included when IncludeTests is set). Afterwards the parallel
// phase's Import calls are cache hits, so goroutines almost never contend
// on the import caches.
func (l *Loader) warmImports(dirs []string) error {
	paths := make(map[string]bool)
	warmFset := token.NewFileSet() // throwaway: imports-only parses
	for _, dir := range dirs {
		names, err := goFilesIn(dir, false)
		if err != nil {
			return err
		}
		if l.IncludeTests {
			tests, err := goFilesIn(dir, true)
			if err != nil {
				return err
			}
			names = append(names, tests...)
		}
		for _, name := range names {
			f, err := parser.ParseFile(warmFset, name, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				paths[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	imp := (*loaderImporter)(l)
	for _, p := range sorted {
		if _, err := imp.Import(p); err != nil {
			return fmt.Errorf("analysis: resolving import %q: %w", p, err)
		}
	}
	return nil
}

// LoadDir type-checks the package in one directory. With IncludeTests it
// returns up to two packages: the package with its in-package test files,
// and any external _test package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgPath := l.pathForDir(abs)

	prim, err := goFilesIn(abs, false)
	if err != nil {
		return nil, err
	}
	var tests []string
	if l.IncludeTests {
		if tests, err = goFilesIn(abs, true); err != nil {
			return nil, err
		}
	}
	if len(prim)+len(tests) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	files, err := l.parse(prim)
	if err != nil {
		return nil, err
	}
	testFiles, err := l.parse(tests)
	if err != nil {
		return nil, err
	}
	var primName string
	if len(files) > 0 {
		primName = files[0].Name.Name
	} else {
		primName = strings.TrimSuffix(testFiles[0].Name.Name, "_test")
	}
	var inPkg, external []*ast.File
	for _, f := range testFiles {
		if f.Name.Name == primName {
			inPkg = append(inPkg, f)
		} else {
			external = append(external, f)
		}
	}

	var out []*Package
	if len(files)+len(inPkg) > 0 {
		pkg, err := l.check(pkgPath, abs, append(append([]*ast.File{}, files...), inPkg...))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(external) > 0 {
		pkg, err := l.check(pkgPath+" [test]", abs, external)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check runs go/types over one file set.
func (l *Loader) check(pkgPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// importModule type-checks a module-internal package (without test files)
// for use as an import dependency. The cache/loading handshake must not
// hold mu across the recursive type-check: Check re-enters Import for the
// package's own dependencies on the same goroutine.
func (l *Loader) importModule(path string) (*types.Package, error) {
	l.mu.Lock()
	for {
		if pkg, ok := l.cache[path]; ok {
			l.mu.Unlock()
			return pkg, nil
		}
		if !l.loading[path] {
			break
		}
		if !l.concurrent {
			// Serial loads are single-goroutine: re-entering a path still
			// being checked can only mean an import cycle.
			l.mu.Unlock()
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		l.cond.Wait() // another goroutine is checking it; reuse its result
	}
	l.loading[path] = true
	l.mu.Unlock()

	pkg, err := l.checkImport(path)

	l.mu.Lock()
	delete(l.loading, path)
	if err == nil {
		l.cache[path] = pkg
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return pkg, err
}

// checkImport parses and type-checks one module-internal import.
func (l *Loader) checkImport(path string) (*types.Package, error) {
	dir := l.moduleRoot
	if path != l.modulePath {
		dir = filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
	}
	names, err := goFilesIn(dir, false)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files for import %q in %s", path, dir)
	}
	files, err := l.parse(names)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking import %s: %w", path, err)
	}
	return pkg, nil
}

// parse parses source files into the loader's FileSet.
func (l *Loader) parse(names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// pathForDir maps a module directory to its import path. Directories
// outside the module (fixtures under testdata are still inside it) fall
// back to a synthetic path derived from the directory name.
func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "external/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// goFilesIn lists a directory's .go files: test files when tests is true,
// non-test files otherwise.
func goFilesIn(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") != tests {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts Loader to types.Importer: module-internal paths
// are loaded from the module tree, everything else from GOROOT source.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		return l.importModule(path)
	}
	// The source importer memoizes internally without locking; serialize
	// access. After warmImports this is a cheap cache hit.
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.std.Import(path)
}
