package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantMarkers scans the fixture sources of dir for "// want <analyzer>"
// comments and returns the expected findings as "file:line" keys (base
// filename, so the result is independent of where the repo is checked out).
func wantMarkers(t *testing.T, dir, analyzer string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	marker := "// want " + analyzer
	var want []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if strings.HasSuffix(strings.TrimRight(line, " \t"), marker) {
				want = append(want, fmt.Sprintf("%s:%d", e.Name(), i+1))
			}
		}
	}
	sort.Strings(want)
	return want
}

// findingKeys reduces findings to sorted "file:line" keys.
func findingKeys(findings []Finding) []string {
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line))
	}
	sort.Strings(got)
	return got
}

// TestAnalyzersOnFixtures runs each analyzer over its known-bad fixture
// package under testdata/src and demands the findings match the "// want"
// markers exactly — same files, same lines, nothing extra.
func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, a := range All() {
		t.Run(a.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name())
			pkgs, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			got := findingKeys(Run(pkgs, []Analyzer{a}))
			want := wantMarkers(t, dir, a.Name())
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", dir)
			}
			if !slicesEqual(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestFixturesAreIsolated makes sure each fixture only trips its own
// analyzer: running the full suite over a fixture package must not add
// findings beyond that package's own markers.
func TestFixturesAreIsolated(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, a := range All() {
		dir := filepath.Join("testdata", "src", a.Name())
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		for _, f := range Run(pkgs, All()) {
			if f.Analyzer != a.Name() {
				t.Errorf("fixture %s trips foreign analyzer: %s", dir, f)
			}
		}
	}
}

// TestRepoIsFindingFree loads the whole module, tests included, and runs
// the full suite: the codebase itself must stay clean so `make lint` keeps
// meaning something.
func TestRepoIsFindingFree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load(filepath.Join(loader.ModuleRoot(), "..."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("repo finding: %s", f)
	}
}

// TestParseAllow pins the suppression comment grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//lint:allow nofloateq -- tie-break needs exactness", []string{"nofloateq"}, true},
		{"//lint:allow norawrand,droppederr -- both", []string{"norawrand", "droppederr"}, true},
		{"//lint:allow nofloateq", []string{"nofloateq"}, true},
		{"//lint:allow", nil, false},
		{"// lint:allow nofloateq", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.text)
		if ok != c.ok || !slicesEqual(got, c.want) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, got, ok, c.want, c.ok)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
