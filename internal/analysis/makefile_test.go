package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMakefileAnalyzersInSync pins the Makefile's ANALYZERS list to
// analysis.All(): `make lint` must run exactly the suite, in the suite's
// order, or a new analyzer silently never gates CI.
func TestMakefileAnalyzersInSync(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(loader.ModuleRoot(), "Makefile"))
	if err != nil {
		t.Fatalf("read Makefile: %v", err)
	}
	var listed string
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.SplitN(line, "=", 2)
		if len(fields) == 2 && strings.TrimSpace(fields[0]) == "ANALYZERS" {
			listed = strings.TrimSpace(fields[1])
			break
		}
	}
	if listed == "" {
		t.Fatal("Makefile has no ANALYZERS = ... line")
	}
	var names []string
	for _, a := range All() {
		names = append(names, a.Name())
	}
	want := strings.Join(names, ",")
	if listed != want {
		t.Errorf("Makefile ANALYZERS out of sync with analysis.All()\n got: %s\nwant: %s", listed, want)
	}
}
