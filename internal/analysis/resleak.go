package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ResLeak is the CFG-path resource discipline checker: a handle acquired on
// a path — an *os.File, an *http.Response (its Body), a *time.Ticker/Timer,
// or an in-package type with a Close/Stop method (journal and cache handles)
// — must reach a release on EVERY path out of the function that uses it.
// The analysis runs BACKWARD over the CFG: the fact at a program point
// describes the paths ahead, so the verdict for an acquire site is simply
// the fact flowing into it.
//
// An obligation is discharged by:
//
//   - a release: v.Close() / v.Stop() (also resp.Body.Close() — releasing
//     through a field discharges the root handle), directly or deferred
//     (a "defer v.Close()" or a release inside a deferred closure);
//   - an ownership transfer: returning the handle (or a composite holding
//     it), storing it into a field/index/package variable or a composite
//     literal, sending it on a channel, aliasing it to another name (the
//     alias carries the obligation), or capturing it in a function literal
//     or goroutine (the closure owns it now);
//   - an interprocedural release or transfer: passing the handle to an
//     in-package function whose summary (computed bottom-up through
//     Summaries) says it releases or takes ownership of that parameter.
//     In-package functions that RETURN fresh handles — directly or wrapped
//     in a struct — propagate the obligation to their callers the same way.
//
// The analysis is a may-analysis gated on use: a path that exits without a
// release is a leak only if the handle was USED on it first. That is what
// keeps the idiomatic error guard clean — after "f, err := os.Open(p);
// if err != nil { return err }" the error path abandons f unused, and the
// acquire is judged by the success paths only. The dual limitation: a
// handle that is acquired and never used anywhere is not reported.
//
// Paths that die — panic, os.Exit, log.Fatal, runtime.Goexit — are exempt:
// explicit closes cannot run there, defers are the tool. Test files and
// foreign analyzer fixtures are skipped.
type ResLeak struct{}

// Name implements Analyzer.
func (ResLeak) Name() string { return "resleak" }

// Doc implements Analyzer.
func (ResLeak) Doc() string {
	return "resource handles used on a path that can exit without Close/Stop or an ownership transfer"
}

// resState is the backward may-state of one tracked handle at a program
// point, describing the paths AHEAD of it. A missing map entry is the
// default at every function exit: some release-free path ahead reaches an
// exit, but the handle is never used on it (the "acquire failed" shape).
type resState uint8

const (
	// resSafe: every path ahead releases the handle or transfers its
	// ownership before exiting.
	resSafe resState = iota
	// resLeak: some path ahead uses the handle and then exits without a
	// release or transfer — the definitive leak.
	resLeak
)

// resFact maps tracked objects to their state; nil is Bottom.
type resFact map[types.Object]resState

func (f resFact) clone() resFact {
	out := make(resFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// resGet reads interprocedural summaries; it abstracts over the fixpoint
// accessor inside Summaries and the finished map outside it.
type resGet func(*types.Func) any

// resParamEffect records what a function does with one parameter.
type resParamEffect struct {
	releases  bool // the parameter reaches a Close/Stop in the callee
	transfers bool // the callee takes ownership (stores/returns/sends it)
}

// resSummary is one function's interprocedural acquire/release/transfer
// behavior.
type resSummary struct {
	recv   resParamEffect
	params []resParamEffect
	// fresh names, per result index, the resource kind the caller becomes
	// responsible for ("" = not a resource).
	fresh []string
}

func resSummaryEqual(a, b any) bool {
	sa, sb := a.(resSummary), b.(resSummary)
	if sa.recv != sb.recv || len(sa.params) != len(sb.params) || len(sa.fresh) != len(sb.fresh) {
		return false
	}
	for i := range sa.params {
		if sa.params[i] != sb.params[i] {
			return false
		}
	}
	for i := range sa.fresh {
		if sa.fresh[i] != sb.fresh[i] {
			return false
		}
	}
	return true
}

// Check implements Analyzer.
func (r ResLeak) Check(pkg *Package) []Finding {
	if foreignFixture(pkg.PkgPath, "testdata/src/resleak") {
		return nil
	}
	sums := resSummaries(pkg)
	get := func(f *types.Func) any { return sums[f] }
	var out []Finding
	funcBodies(pkg, func(name string, node ast.Node, body *ast.BlockStmt) {
		if isTestFile(pkg, node) {
			return
		}
		out = append(out, r.checkFunc(pkg, body, get)...)
	})
	SortFindings(out)
	return out
}

// checkFunc solves the backward leak dataflow over one function and reports
// at the acquire sites whose below-fact says "used then leaked ahead".
func (r ResLeak) checkFunc(pkg *Package, body *ast.BlockStmt, get resGet) []Finding {
	cfg := BuildCFG(body)
	flow := Flow{
		Bottom: func() Fact { return nil },
		Join: func(a, b Fact) Fact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			return joinRes(a.(resFact), b.(resFact))
		},
		Equal: func(a, b Fact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if a == nil {
				return true
			}
			fa, fb := a.(resFact), b.(resFact)
			if len(fa) != len(fb) {
				return false
			}
			for k, v := range fa {
				if bv, ok := fb[k]; !ok || bv != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, out Fact) Fact {
			if out == nil {
				return nil
			}
			cur := out.(resFact).clone()
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				cur = applyResNode(pkg, cur, b.Nodes[i], get, nil)
				if cur == nil {
					return nil
				}
			}
			return cur
		},
	}
	exitFacts := BackwardDataflow(cfg, resFact{}, flow)

	var out []Finding
	seen := make(map[string]bool)
	report := func(pos token.Pos, kind string) {
		p := pkg.Fset.Position(pos)
		key := kind + "@" + p.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Finding{
			Analyzer: r.Name(),
			Pos:      p,
			Message: kind + " acquired here is used and then leaked on some path to a function exit; " +
				"release it on every path (defer the Close/Stop) or transfer ownership",
		})
	}
	for _, b := range cfg.Blocks {
		fact := exitFacts[b]
		if fact == nil {
			continue
		}
		cur := fact.(resFact).clone()
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			cur = applyResNode(pkg, cur, b.Nodes[i], get, report)
			if cur == nil {
				break
			}
		}
	}
	SortFindings(out)
	return out
}

// joinRes is the path union. Per key: a leak on either side survives; safe
// survives only when BOTH sides are safe; safe joined with the default
// (release-free but unused ahead) drops back to the default.
func joinRes(a, b resFact) resFact {
	out := make(resFact)
	for k, v := range a {
		if v == resLeak {
			out[k] = resLeak
		} else if bv, ok := b[k]; ok && bv == resSafe {
			out[k] = resSafe
		}
	}
	for k, v := range b {
		if v == resLeak {
			out[k] = resLeak
		}
	}
	return out
}

// applyResNode pushes the fact backward through one node, mutating and
// returning it (nil = the path dies here and contributes nothing upstream).
// When report is set, acquire bindings whose below-state is resLeak are
// flagged.
func applyResNode(pkg *Package, fact resFact, node ast.Node, get resGet, report func(token.Pos, string)) resFact {
	if st, ok := node.(ast.Stmt); ok && terminates(st) {
		// panic / os.Exit / log.Fatal / runtime.Goexit: the path dies, the
		// obligation with it. Join treats nil as identity, so this path
		// contributes nothing to the fact upstream.
		return nil
	}

	scan := node             // subtree scanned for uses/releases/transfers
	exclude := identSet(nil) // binding-target idents: killed, not used
	var transferred []types.Object

	switch n := node.(type) {
	case *ast.SelectStmt:
		// Choice point only; the comm statements live in the clause blocks.
		return fact
	case *ast.DeferStmt:
		for _, obj := range deferResReleases(pkg, n, get) {
			fact[obj] = resSafe
		}
		return fact
	case *ast.GoStmt:
		// The goroutine takes ownership of every handle it mentions.
		for _, obj := range trackedIdentUses(pkg, n) {
			fact[obj] = resSafe
		}
		return fact
	case *ast.RangeStmt:
		// Header only (BuildCFG convention): the ranged expression is the
		// use; the key/value idents are bindings.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				killBinding(pkg, fact, id, exclude)
			}
		}
		scan = ast.Node(n.X)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			transferred = append(transferred, transferRoots(pkg, res)...)
		}
	case *ast.AssignStmt:
		transferred = applyResBinding(pkg, fact, n.Lhs, n.Rhs, get, report, exclude)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, id := range vs.Names {
					lhs[i] = id
				}
				transferred = append(transferred, applyResBinding(pkg, fact, lhs, vs.Values, get, report, exclude)...)
			}
		}
	}

	uses, released := scanResNode(pkg, scan, exclude, get, &transferred)
	for _, obj := range uses {
		if _, ok := fact[obj]; !ok {
			fact[obj] = resLeak
		}
	}
	for _, obj := range released {
		fact[obj] = resSafe
	}
	for _, obj := range transferred {
		fact[obj] = resSafe
	}
	return fact
}

// identSet tracks binding idents excluded from the use scan.
func identSet(ids []*ast.Ident) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

// killBinding removes a bound object from the fact: above the binding the
// entry describes a dead value.
func killBinding(pkg *Package, fact resFact, id *ast.Ident, exclude map[*ast.Ident]bool) {
	exclude[id] = true
	if obj := identObj(pkg, id); obj != nil {
		delete(fact, obj)
	}
}

// applyResBinding handles one assignment/declaration: report acquires whose
// handle leaks ahead, kill the bound names, and surface RHS roots whose
// obligation moves into the binding (aliases and container stores). Returns
// the transferred roots.
func applyResBinding(pkg *Package, fact resFact, lhs, rhs []ast.Expr, get resGet, report func(token.Pos, string), exclude map[*ast.Ident]bool) []types.Object {
	if report != nil && len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			for i, kind := range acquireResults(pkg, call, get) {
				if i >= len(lhs) {
					continue
				}
				id, ok := ast.Unparen(lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := identObj(pkg, id); obj != nil && fact[obj] == resLeak {
					report(call.Pos(), kind)
				}
			}
		}
	}
	var transferred []types.Object
	for _, r := range rhs {
		// The obligation follows the value into its new home: an alias, a
		// field, an index, a package variable, a composite.
		transferred = append(transferred, transferRoots(pkg, r)...)
	}
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			killBinding(pkg, fact, id, exclude)
		}
	}
	return transferred
}

// scanResNode collects the tracked-handle uses and releases of one node,
// appending closure captures and composite stores to transferred. Function
// literal interiors count as captures, not uses.
func scanResNode(pkg *Package, node ast.Node, exclude map[*ast.Ident]bool, get resGet, transferred *[]types.Object) (uses, released []types.Object) {
	if node == nil {
		return nil, nil
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			*transferred = append(*transferred, trackedIdentUses(pkg, x.Body)...)
			return false
		case *ast.CompositeLit:
			*transferred = append(*transferred, trackedIdentUses(pkg, x)...)
		case *ast.SendStmt:
			*transferred = append(*transferred, transferRoots(pkg, x.Value)...)
		case *ast.CallExpr:
			released = append(released, resReleaseTargets(pkg, x, get)...)
		case *ast.Ident:
			if exclude[x] {
				return true
			}
			if obj := pkg.Info.Uses[x]; obj != nil && trackableObj(pkg, obj) {
				uses = append(uses, obj)
			}
		}
		return true
	})
	return uses, released
}

// trackedIdentUses lists every tracked-handle object mentioned under node.
func trackedIdentUses(pkg *Package, node ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && trackableObj(pkg, obj) {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// transferRoots lists the tracked objects whose ownership an expression
// hands off when the expression's value escapes the frame: the handle
// itself, the handle behind &/selector/index chains, or the handles inside
// a composite literal. Call results transfer nothing — their arguments are
// uses.
func transferRoots(pkg *Package, e ast.Expr) []types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil && trackableObj(pkg, obj) {
			return []types.Object{obj}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return transferRoots(pkg, x.X)
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		if obj := baseIdentObj(pkg, e); obj != nil && trackableObj(pkg, obj) {
			return []types.Object{obj}
		}
	case *ast.CompositeLit:
		return trackedIdentUses(pkg, x)
	}
	return nil
}

// resReleaseTargets lists the handles one call discharges: the base of a
// .Close()/.Stop() method receiver, and arguments (or the receiver) of
// in-package callees whose summary releases or takes ownership of them.
func resReleaseTargets(pkg *Package, call *ast.CallExpr, get resGet) []types.Object {
	var out []types.Object
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if isSel && (sel.Sel.Name == "Close" || sel.Sel.Name == "Stop") {
		if _, isMethod := pkg.Info.Selections[sel]; isMethod {
			if obj := baseIdentObj(pkg, sel.X); obj != nil {
				out = append(out, obj)
			}
		}
	}
	callee := CalleeFunc(pkg, call)
	if callee == nil || callee.Pkg() != pkg.Types {
		return out
	}
	s, ok := get(callee).(resSummary)
	if !ok {
		return out
	}
	if isSel && (s.recv.releases || s.recv.transfers) {
		if obj := baseIdentObj(pkg, sel.X); obj != nil {
			out = append(out, obj)
		}
	}
	for i, arg := range call.Args {
		if i < len(s.params) && (s.params[i].releases || s.params[i].transfers) {
			if obj := baseIdentObj(pkg, arg); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// deferResReleases lists the handles a defer discharges: a direct deferred
// release call, or releases inside a deferred closure.
func deferResReleases(pkg *Package, d *ast.DeferStmt, get resGet) []types.Object {
	out := resReleaseTargets(pkg, d.Call, get)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				out = append(out, resReleaseTargets(pkg, call, get)...)
			}
			return true
		})
	}
	return out
}

// acquireResults maps result indices of a call to the resource kind they
// carry: the std acquire functions plus in-package functions whose summary
// returns fresh handles.
func acquireResults(pkg *Package, call *ast.CallExpr, get resGet) map[int]string {
	obj := calleeObject(pkg, call.Fun)
	fn, _ := obj.(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "os":
		switch fn.Name() {
		case "Open", "Create", "OpenFile", "CreateTemp":
			return map[int]string{0: "os.File"}
		}
	case "time":
		switch fn.Name() {
		case "NewTicker":
			return map[int]string{0: "time.Ticker"}
		case "NewTimer":
			return map[int]string{0: "time.Timer"}
		}
	case "net/http":
		// Get/Post/Head/PostForm/Do — anything whose first result is an
		// *http.Response whose Body the caller must close.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
			if kind, ok := trackableType(pkg, sig.Results().At(0).Type()); ok && kind == "http.Response" {
				return map[int]string{0: kind}
			}
		}
	}
	if fn.Pkg() == pkg.Types {
		if s, ok := get(fn).(resSummary); ok {
			out := make(map[int]string)
			for i, kind := range s.fresh {
				if kind != "" {
					out[i] = kind
				}
			}
			if len(out) > 0 {
				return out
			}
		}
	}
	return nil
}

// resSummaries computes the package's acquire/release/transfer summaries
// bottom-up over the call graph.
func resSummaries(pkg *Package) map[*types.Func]any {
	return Summaries(pkg, func(fn FuncInfo, get func(*types.Func) any) any {
		return computeResSummary(pkg, fn, get)
	}, resSummaryEqual)
}

func computeResSummary(pkg *Package, fn FuncInfo, get resGet) resSummary {
	sig := fn.Obj.Type().(*types.Signature)
	s := resSummary{
		params: make([]resParamEffect, sig.Params().Len()),
		fresh:  make([]string, sig.Results().Len()),
	}
	paramIndex := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		paramIndex[sig.Params().At(i)] = i
	}
	var recvObj types.Object
	if sig.Recv() != nil {
		recvObj = sig.Recv()
	}
	mark := func(obj types.Object, set func(*resParamEffect)) {
		if obj == nil {
			return
		}
		if obj == recvObj {
			set(&s.recv)
			return
		}
		if i, ok := paramIndex[obj]; ok {
			set(&s.params[i])
		}
	}
	release := func(e *resParamEffect) { e.releases = true }
	transfer := func(e *resParamEffect) { e.transfers = true }

	// Locally acquired handles, for the freshness of returns. Purely
	// syntactic; the in-package freshness reads callee summaries, so the
	// Summaries fixpoint propagates wrapper chains.
	acquired := make(map[types.Object]string)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, kind := range acquireResults(pkg, call, get) {
			if i >= len(as.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := identObj(pkg, id); obj != nil {
					acquired[obj] = kind
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Releases count inside function literals too: deferred
			// closures are the idiomatic close-with-error-check shape.
			for _, obj := range resReleaseTargets(pkg, x, get) {
				mark(obj, release)
			}
		case *ast.CompositeLit:
			for _, obj := range trackedIdentUses(pkg, x) {
				mark(obj, transfer)
			}
		case *ast.SendStmt:
			for _, obj := range transferRoots(pkg, x.Value) {
				mark(obj, transfer)
			}
		case *ast.GoStmt:
			for _, obj := range trackedIdentUses(pkg, x) {
				mark(obj, transfer)
			}
		case *ast.AssignStmt:
			for i := range x.Lhs {
				if _, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
					continue // aliasing inside the callee stays local
				}
				// A store through a field/index/package variable moves
				// ownership out of the frame.
				for _, r := range x.Rhs {
					for _, obj := range transferRoots(pkg, r) {
						mark(obj, transfer)
					}
				}
				break
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				for _, obj := range transferRoots(pkg, res) {
					mark(obj, transfer)
				}
			}
			nres := len(s.fresh)
			if len(x.Results) == 1 && nres >= 1 {
				if call, ok := ast.Unparen(x.Results[0]).(*ast.CallExpr); ok {
					for i, kind := range acquireResults(pkg, call, get) {
						if i < nres {
							s.fresh[i] = kind
						}
					}
				}
			}
			if len(x.Results) == nres {
				for i, res := range x.Results {
					if kind := freshKind(pkg, res, acquired); kind != "" {
						s.fresh[i] = kind
					}
				}
			}
		}
		return true
	})
	return s
}

// freshKind reports the resource kind a return expression hands the caller:
// a locally acquired handle, or a trackable composite wrapping one.
func freshKind(pkg *Package, e ast.Expr, acquired map[types.Object]string) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return acquired[obj]
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return freshKind(pkg, x.X, acquired)
		}
	case *ast.CompositeLit:
		holds := false
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && acquired[obj] != "" {
					holds = true
				}
			}
			return !holds
		})
		if holds {
			if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
				if kind, ok := trackableType(pkg, tv.Type); ok {
					return kind
				}
			}
		}
	}
	return ""
}

// trackableObj reports whether obj is a variable holding a tracked handle.
func trackableObj(pkg *Package, obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	_, ok := trackableType(pkg, obj.Type())
	return ok
}

// trackableType names the resource kind of a type (behind pointers): the
// std handle types plus in-package types with a Close/Stop method.
func trackableType(pkg *Package, t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	o := named.Obj()
	if o.Pkg() == nil {
		return "", false
	}
	switch {
	case o.Pkg().Path() == "os" && o.Name() == "File":
		return "os.File", true
	case o.Pkg().Path() == "time" && (o.Name() == "Ticker" || o.Name() == "Timer"):
		return "time." + o.Name(), true
	case o.Pkg().Path() == "net/http" && o.Name() == "Response":
		return "http.Response", true
	case o.Pkg() == pkg.Types && hasReleaseMethod(named):
		return o.Name(), true
	}
	return "", false
}

// hasReleaseMethod reports a Close or Stop in the pointer method set.
func hasReleaseMethod(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if name := ms.At(i).Obj().Name(); name == "Close" || name == "Stop" {
			return true
		}
	}
	return false
}

// baseIdentObj peels selector/index/star/paren chains down to the base
// identifier's object: the handle a "resp.Body.Close()" discharges is resp.
func baseIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pkg.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier in either definition or use position.
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// foreignFixture reports whether pkgPath is an analyzer fixture other than
// own: fixtures intentionally violate each other's rules.
func foreignFixture(pkgPath, own string) bool {
	return strings.Contains(pkgPath, "testdata/src/") && !inScope(pkgPath, []string{own})
}

// isTestFile reports whether a node's file is a _test.go file.
func isTestFile(pkg *Package, node ast.Node) bool {
	return strings.HasSuffix(pkg.Fset.Position(node.Pos()).Filename, "_test.go")
}
