package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// WallClock reports time.Now calls outside the declared instrumentation
// allowlist. The simulation is a deterministic function of (scenario,
// seed); the only legitimate wall-clock reads are the stage timers whose
// values the metrics pipeline already canonicalizes away
// (metrics.CanonicalizeJSONL zeroes every *_ns field). A time.Now anywhere
// else tends to leak nondeterminism into artifacts — report timestamps,
// wall-clock seeds, time-dependent branching — so every new site must
// either live in an allowlisted instrumentation file or carry an explicit
// //lint:allow wallclock justification saying why the value never reaches
// a reproducible artifact. Test files are skipped: the testing package
// owns timing there.
type WallClock struct{}

// WallClockAllowedFiles lists the module-relative files allowed to read
// the wall clock, and why. Keep this list short and the reasons true.
var WallClockAllowedFiles = []string{
	// Slot stage timers; their _ns outputs are canonicalized away.
	"internal/core/controller.go",
	// Scheduler solve timers behind the instrumentation seam.
	"internal/sched/instrument.go",
	// Per-analyzer timing in the lint driver; never reaches artifacts.
	"cmd/greencell-lint/main.go",
	// greencelld job lifecycle timestamps (created/started/finished); they
	// surface only in API status responses, never in the metrics stream.
	"internal/server/job.go",
	// Cluster coordinator wall time: lease deadlines, breaker cooldowns,
	// and status timestamps; never enters the merged metrics stream, the
	// journal, or the cache key.
	"internal/cluster/clock.go",
}

// Name implements Analyzer.
func (WallClock) Name() string { return "wallclock" }

// Doc implements Analyzer.
func (WallClock) Doc() string {
	return "time.Now outside the instrumentation allowlist (WallClockAllowedFiles)"
}

// Check implements Analyzer.
func (w WallClock) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		fname := filepath.ToSlash(pkg.Fset.Position(file.Pos()).Filename)
		if strings.HasSuffix(fname, "_test.go") || allowedWallClockFile(fname) {
			continue
		}
		ast.Inspect(file, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || obj.Name() != "Now" {
				return true
			}
			out = append(out, Finding{
				Analyzer: w.Name(),
				Pos:      pkg.Fset.Position(sel.Pos()),
				Message:  "time.Now outside the instrumentation allowlist; thread a timer in or annotate why it never reaches an artifact",
			})
			return true
		})
	}
	return out
}

// allowedWallClockFile reports whether fname (slash-separated) ends with
// one of the allowlisted module-relative paths.
func allowedWallClockFile(fname string) bool {
	for _, allowed := range WallClockAllowedFiles {
		if fname == allowed || strings.HasSuffix(fname, "/"+allowed) {
			return true
		}
	}
	return false
}
