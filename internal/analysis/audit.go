package analysis

import (
	"fmt"
	"go/token"
)

// Suppression is one //lint:allow comment found in the source.
type Suppression struct {
	// Pos locates the comment.
	Pos token.Position `json:"-"`
	// File and Line serialize Pos.
	File string `json:"file"`
	Line int    `json:"line"`
	// Analyzer is one name the comment suppresses (a comment naming several
	// analyzers yields one Suppression per name).
	Analyzer string `json:"analyzer"`
	// Stale reports why the suppression should be removed: the named
	// analyzer no longer fires on the covered lines, or the name matches no
	// analyzer at all.
	Reason string `json:"reason"`
}

// String formats the stale suppression the way findings print.
func (s Suppression) String() string {
	return fmt.Sprintf("%s:%d: stale //lint:allow %s: %s", s.File, s.Line, s.Analyzer, s.Reason)
}

// AuditSuppressions re-runs every analyzer with suppression disabled and
// reports //lint:allow comments that no longer earn their keep: the named
// analyzer produces no finding on the comment's own line or the line below
// it, or the name matches no analyzer in the suite. Keeping the annotation
// around after the code it excused is gone silently re-opens the hole the
// analyzer was guarding.
func AuditSuppressions(pkgs []*Package, analyzers []Analyzer) []Suppression {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	var out []Suppression
	for _, pkg := range pkgs {
		// Raw findings, keyed the way allowedLines keys suppressions.
		fired := make(map[allowKey]bool)
		for _, a := range analyzers {
			for _, f := range a.Check(pkg) {
				fired[allowKey{f.Pos.Filename, f.Pos.Line, a.Name()}] = true
			}
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					names, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, n := range names {
						switch {
						case !known[n]:
							out = append(out, Suppression{
								Pos: pos, File: pos.Filename, Line: pos.Line,
								Analyzer: n,
								Reason:   "no analyzer has this name",
							})
						case !fired[allowKey{pos.Filename, pos.Line, n}] &&
							!fired[allowKey{pos.Filename, pos.Line + 1, n}]:
							out = append(out, Suppression{
								Pos: pos, File: pos.Filename, Line: pos.Line,
								Analyzer: n,
								Reason:   "the analyzer no longer fires here; remove the annotation",
							})
						}
					}
				}
			}
		}
	}
	sortSuppressions(out)
	return out
}

// sortSuppressions orders stale suppressions by file, line, then analyzer.
func sortSuppressions(ss []Suppression) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && suppressionLess(ss[j], ss[j-1]); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func suppressionLess(a, b Suppression) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Analyzer < b.Analyzer
}
