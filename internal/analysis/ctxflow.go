package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlowPackages scopes ctxflow to the long-running serving layer, where a
// dropped context turns cancellation into a wedge: the daemon and the
// cluster coordinator plumbing, and the distributed controller. The
// fixture package keeps the analyzer honest under test.
var CtxFlowPackages = []string{
	"internal/server",
	"internal/cluster",
	"internal/machine",
	"testdata/src/ctxflow",
}

// CtxFlow checks that functions RECEIVING a context.Context actually thread
// it into the blocking work they do. Two findings:
//
//   - a context.Background()/context.TODO() rebase with blocking work ahead
//     on some path (RPCs, channel operations, blocking selects, calls into
//     in-package functions that block — the same blocking vocabulary as
//     locksafe). The "ahead" is a backward dataflow over the CFG: a rebase
//     with nothing blocking downstream (building a value for a struct, a
//     post-cancel cleanup context at the very end of a path) is exempt;
//   - a loop that dispatches blocking work but never consults the context —
//     no ctx.Done()/ctx.Err() check and no ctx passed into any call in the
//     body — so a cancelled context would not stop it. Ranging over a
//     channel is exempt: close-to-terminate is that loop's contract.
//
// Functions without a ctx parameter are out of scope — constructors and
// Close methods legitimately root new contexts. Function literals are
// analyzed when they declare their own ctx parameter (RetryPolicy.Do ops);
// a literal merely capturing an outer ctx is the enclosing function's
// business. Test files are skipped.
type CtxFlow struct{}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "ctx-receiving functions that rebase to Background/TODO before blocking work or loop over blocking dispatch without a ctx check"
}

// Check implements Analyzer.
func (c CtxFlow) Check(pkg *Package) []Finding {
	if !inScope(pkg.PkgPath, CtxFlowPackages) {
		return nil
	}
	blocks := blockingSummaries(pkg)
	var out []Finding
	funcBodies(pkg, func(name string, node ast.Node, body *ast.BlockStmt) {
		if isTestFile(pkg, node) || !receivesCtx(pkg, node) {
			return
		}
		out = append(out, c.checkRebases(pkg, body, blocks)...)
		out = append(out, c.checkLoops(pkg, body, blocks)...)
	})
	SortFindings(out)
	return out
}

// checkRebases solves the backward "blocking work ahead" fact and flags
// Background/TODO calls where it holds.
func (c CtxFlow) checkRebases(pkg *Package, body *ast.BlockStmt, blocks map[*types.Func]any) []Finding {
	cfg := BuildCFG(body)
	step := func(cur bool, n ast.Node) bool {
		if st, ok := n.(ast.Stmt); ok && terminates(st) {
			return false // nothing runs after a terminator
		}
		return cur || nodeBlocks(pkg, n, blocks, cfg.Comm)
	}
	flow := Flow{
		Bottom: func() Fact { return nil },
		Join: func(a, b Fact) Fact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			return a.(bool) || b.(bool)
		},
		Equal: func(a, b Fact) bool { return a == b },
		Transfer: func(b *Block, out Fact) Fact {
			if out == nil {
				return nil
			}
			cur := out.(bool)
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				cur = step(cur, b.Nodes[i])
			}
			return cur
		},
	}
	exitFacts := BackwardDataflow(cfg, false, flow)

	var out []Finding
	for _, b := range cfg.Blocks {
		fact := exitFacts[b]
		if fact == nil {
			continue
		}
		cur := fact.(bool)
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			// A rebase feeding a blocking op in this same statement counts
			// as "ahead" too.
			if cur || nodeBlocks(pkg, n, blocks, cfg.Comm) {
				for _, call := range rebaseCalls(pkg, n) {
					out = append(out, Finding{
						Analyzer: c.Name(),
						Pos:      pkg.Fset.Position(call.Pos()),
						Message: "context." + calleeObject(pkg, call.Fun).Name() +
							"() discards the caller's ctx but blocking work lies ahead; derive from ctx so cancellation propagates",
					})
				}
			}
			cur = step(cur, n)
		}
	}
	return out
}

// checkLoops flags loops that dispatch blocking work without ever
// consulting a context.
func (c CtxFlow) checkLoops(pkg *Package, body *ast.BlockStmt, blocks map[*types.Func]any) []Finding {
	var out []Finding
	report := func(pos token.Pos) {
		out = append(out, Finding{
			Analyzer: c.Name(),
			Pos:      pkg.Fset.Position(pos),
			Message: "loop dispatches blocking work without consulting ctx; " +
				"check ctx.Done()/ctx.Err() or pass ctx into the blocking call so cancellation stops it",
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // its own function; analyzed separately
		case *ast.ForStmt:
			if loopBlocksWithoutCtx(pkg, x.Body, blocks) {
				report(x.For)
			}
		case *ast.RangeStmt:
			// Ranging a channel blocks by design; the producer closing the
			// channel is that loop's cancellation signal.
			if !isChanType(pkg, x.X) && loopBlocksWithoutCtx(pkg, x.Body, blocks) {
				report(x.For)
			}
		}
		return true
	})
	return out
}

// loopBlocksWithoutCtx reports whether a loop body (function literals
// excluded) contains a blocking operation but no mention of any
// context-typed value.
func loopBlocksWithoutCtx(pkg *Package, body *ast.BlockStmt, blocks map[*types.Func]any) bool {
	blocking, consulted := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		if consulted {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blocking = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				blocking = true
			}
		case *ast.RangeStmt:
			if isChanType(pkg, x.X) {
				blocking = true
			}
		case *ast.CallExpr:
			if directBlockingCall(pkg, x) {
				blocking = true
			} else if callee := CalleeFunc(pkg, x); callee != nil && callee.Pkg() == pkg.Types {
				if b, ok := blocks[callee].(bool); ok && b {
					blocking = true
				}
			}
		case ast.Expr:
			if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil && isContextType(tv.Type) {
				consulted = true
			}
		}
		return true
	})
	return blocking && !consulted
}

// nodeBlocks reports whether one CFG node performs a blocking operation,
// mirroring the locksafe vocabulary: channel sends/receives (unless they
// are select comm statements, charged to the choice point), blocking
// selects, channel ranges, direct blocking calls, and in-package callees
// that block. Defer and go bodies run elsewhere.
func nodeBlocks(pkg *Package, node ast.Node, blocks map[*types.Func]any, comm map[ast.Node]bool) bool {
	switch x := node.(type) {
	case *ast.SendStmt:
		return !comm[node]
	case *ast.SelectStmt:
		return !selectHasDefault(x)
	case *ast.RangeStmt:
		return isChanType(pkg, x.X)
	case *ast.DeferStmt, *ast.GoStmt:
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !comm[node] {
				found = true
			}
		case *ast.CallExpr:
			if directBlockingCall(pkg, x) {
				found = true
			} else if callee := CalleeFunc(pkg, x); callee != nil && callee.Pkg() == pkg.Types {
				if b, ok := blocks[callee].(bool); ok && b {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rebaseCalls lists the context.Background/context.TODO calls in a CFG
// node, function literals excluded. A RangeStmt block node stands for its
// header only and a SelectStmt for the choice point — their bodies live in
// successor blocks and are scanned there.
func rebaseCalls(pkg *Package, node ast.Node) []*ast.CallExpr {
	switch x := node.(type) {
	case *ast.RangeStmt:
		node = x.X
	case *ast.SelectStmt:
		return nil
	}
	var out []*ast.CallExpr
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			obj := calleeObject(pkg, x.Fun)
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" &&
				(obj.Name() == "Background" || obj.Name() == "TODO") {
				out = append(out, x)
			}
		}
		return true
	})
	return out
}

// receivesCtx reports whether a FuncDecl/FuncLit declares a context.Context
// parameter.
func receivesCtx(pkg *Package, node ast.Node) bool {
	var ft *ast.FuncType
	switch fn := node.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if tv, ok := pkg.Info.Types[f.Type]; ok && tv.Type != nil && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context"
}
