package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedErr reports silently discarded errors, the failure mode that let a
// full disk truncate metrics output with exit code 0:
//
//   - assignments that discard an error-typed result with every
//     left-hand side blank ("_ = f()", "_, _ = f()"); a partial discard
//     like "v, _ := f()" keeps the value on record and is left to review;
//   - expression statements calling a function that returns an error
//     (fmt's Print/Printf/Println to stdout are exempt: their errors are
//     conventionally unactionable);
//   - "defer f.Close()" where f came from os.Create or os.OpenFile in the
//     same function: close errors on writable files carry the final flush
//     and must be checked.
//
// Calls on strings.Builder and bytes.Buffer (and fmt.Fprint* into them)
// are exempt everywhere: their Write methods are documented to never
// return a non-nil error.
type DroppedErr struct{}

// Name implements Analyzer.
func (DroppedErr) Name() string { return "droppederr" }

// Doc implements Analyzer.
func (DroppedErr) Doc() string {
	return "discarded error results (_ =, bare calls, deferred Close of writable files)"
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// Check implements Analyzer.
func (d DroppedErr) Check(pkg *Package) []Finding {
	var out []Finding
	report := func(pos ast.Node, msg string) {
		out = append(out, Finding{
			Analyzer: d.Name(),
			Pos:      pkg.Fset.Position(pos.Pos()),
			Message:  msg,
		})
	}
	inspect(pkg, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			d.checkAssign(pkg, st, report)
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && returnsError(pkg, call) && !exemptBareCall(pkg, call) {
				report(st, "call result includes an error that is discarded")
			}
		case *ast.FuncDecl:
			if st.Body != nil {
				d.checkDeferredCloses(pkg, st.Body, report)
			}
		case *ast.FuncLit:
			d.checkDeferredCloses(pkg, st.Body, report)
		}
		return true
	})
	return out
}

// checkAssign flags error-typed results assigned to the blank identifier
// when the whole statement discards everything it received.
func (DroppedErr) checkAssign(pkg *Package, st *ast.AssignStmt, report func(ast.Node, string)) {
	for _, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return // some result is kept; a partial discard is reviewable
		}
	}
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && exemptBareCall(pkg, call) {
			return
		}
	}
	// Positional result types: for "a, b = f()" use f's tuple; for
	// "a, b = x, y" each RHS maps to its LHS.
	typeAt := func(i int) types.Type {
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			tv, ok := pkg.Info.Types[st.Rhs[0]]
			if !ok {
				return nil
			}
			tuple, ok := tv.Type.(*types.Tuple)
			if !ok || i >= tuple.Len() {
				return nil
			}
			return tuple.At(i).Type()
		}
		if i < len(st.Rhs) {
			if tv, ok := pkg.Info.Types[st.Rhs[i]]; ok {
				return tv.Type
			}
		}
		return nil
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if t := typeAt(i); t != nil && types.Identical(t, errorType) {
			report(id, "error result assigned to _; handle or annotate it")
		}
	}
}

// checkDeferredCloses flags "defer v.Close()" when v was opened writable
// (os.Create / os.OpenFile) in the same function body.
func (d DroppedErr) checkDeferredCloses(pkg *Package, body *ast.BlockStmt, report func(ast.Node, string)) {
	writable := make(map[types.Object]bool)
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			continue
		}
		if !isStdFunc(pkg, call.Fun, "os", "Create") && !isStdFunc(pkg, call.Fun, "os", "OpenFile") {
			continue
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				writable[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				writable[obj] = true
			}
		}
	}
	if len(writable) == 0 {
		return
	}
	for _, stmt := range body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		sel, ok := def.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			continue
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !writable[pkg.Info.Uses[id]] {
			continue
		}
		report(def, "deferred Close on a writable file discards the flush error; check it")
	}
}

// returnsError reports whether a call yields an error in any result
// position.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
	default:
		return types.Identical(t, errorType)
	}
	return false
}

// exemptBareCall allowlists bare calls whose error is conventionally
// ignored: fmt.Print/Printf/Println (stdout) and fmt.Fprint* to
// os.Stdout/os.Stderr.
func exemptBareCall(pkg *Package, call *ast.CallExpr) bool {
	if infallibleWriter(pkg, call) {
		return true
	}
	for _, name := range []string{"Print", "Printf", "Println"} {
		if isStdFunc(pkg, call.Fun, "fmt", name) {
			return true
		}
	}
	for _, name := range []string{"Fprint", "Fprintf", "Fprintln"} {
		if isStdFunc(pkg, call.Fun, "fmt", name) && len(call.Args) > 0 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				obj := pkg.Info.Uses[sel.Sel]
				if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
					(obj.Name() == "Stdout" || obj.Name() == "Stderr") {
					return true
				}
			}
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok && isBuilderOrBuffer(tv.Type) {
				return true
			}
		}
	}
	return false
}

// infallibleWriter reports whether call is a method call on strings.Builder
// or bytes.Buffer, whose Write-family methods are documented never to
// return a non-nil error.
func infallibleWriter(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	return isBuilderOrBuffer(s.Recv())
}

// isBuilderOrBuffer reports whether t is strings.Builder or bytes.Buffer,
// possibly behind pointers.
func isBuilderOrBuffer(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}
