package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitMix enforces the typed physical quantities of internal/units
// (docs/ANALYSIS.md): a value typed Energy, Power, Bandwidth, Rate, Cost or
// Price must not silently re-enter the untyped float64 world or jump to a
// different quantity. Three operations defeat the types and are reported
// everywhere outside internal/units itself (the one package allowed to
// define conversions):
//
//   - a raw float64(x) conversion where x carries a unit type: it erases
//     the quantity with no record of which unit the caller assumed. Use the
//     accessor (Wh(), Watts(), Hz(), Value(), ...) that names the unit;
//   - a direct cross-unit conversion like Power(e) of an Energy e: the two
//     quantities differ by a physical dimension (here, time), so the
//     conversion must go through a helper of internal/units that makes the
//     factor explicit (OverHours, PerHours, ForEnergy, ...);
//   - a product of two non-constant values of the same unit type, for
//     example energy * energy: the result is dimensionally Wh² but stays
//     typed Energy. (Cross-unit arithmetic such as Energy + Power needs no
//     rule — Go rejects binary operations between distinct defined types,
//     and the conversion that would make it compile trips the rule above.
//     Constant scaling like e * 2 keeps the dimension and is exempt; so is
//     division, whose ratio results are conventional.)
//
// Conversions from untyped constants (units.Energy(0)) and through type
// parameters constrained to ~float64 are not conversions between unit
// types and are exempt. Intentional violations carry //lint:allow unitmix.
type UnitMix struct{}

// Name implements Analyzer.
func (UnitMix) Name() string { return "unitmix" }

// Doc implements Analyzer.
func (UnitMix) Doc() string {
	return "raw float64 casts of unit-typed values, cross-unit casts, unit-squaring products"
}

// Check implements Analyzer.
func (u UnitMix) Check(pkg *Package) []Finding {
	if strings.HasSuffix(strings.TrimSuffix(pkg.PkgPath, " [test]"), "internal/units") {
		return nil // the units package itself defines the conversions
	}
	var out []Finding
	inspect(pkg, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			out = append(out, u.checkConversion(pkg, n)...)
		case *ast.BinaryExpr:
			out = append(out, u.checkArithmetic(pkg, n)...)
		}
		return true
	})
	return out
}

// checkConversion flags T(x) conversions that erase or switch a unit type.
func (u UnitMix) checkConversion(pkg *Package, call *ast.CallExpr) []Finding {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil
	}
	argTV, ok := pkg.Info.Types[call.Args[0]]
	if !ok {
		return nil
	}
	src := unitTypeOf(argTV.Type)
	if src == nil {
		return nil
	}
	dst := unitTypeOf(tv.Type)
	switch {
	case dst == nil && isFloat(tv.Type):
		return []Finding{{
			Analyzer: u.Name(),
			Pos:      pkg.Fset.Position(call.Pos()),
			Message: "raw " + types.TypeString(tv.Type, nil) + "(...) conversion erases unit " +
				src.Obj().Name() + "; use its accessor method instead",
		}}
	case dst != nil && dst.Obj() != src.Obj():
		return []Finding{{
			Analyzer: u.Name(),
			Pos:      pkg.Fset.Position(call.Pos()),
			Message: "cross-unit conversion " + src.Obj().Name() + " -> " + dst.Obj().Name() +
				"; convert through an internal/units helper that names the factor",
		}}
	}
	return nil
}

// checkArithmetic flags products of two non-constant unit-typed values:
// the result has the unit squared but keeps the unit's type. (Distinct
// unit types cannot meet in a binary operation at all — the type checker
// rejects that before we run.)
func (u UnitMix) checkArithmetic(pkg *Package, be *ast.BinaryExpr) []Finding {
	if be.Op != token.MUL {
		return nil
	}
	xtv, ytv := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
	if xtv.Value != nil || ytv.Value != nil {
		return nil // constant scaling (e * 2) keeps the dimension
	}
	x, y := unitTypeOf(xtv.Type), unitTypeOf(ytv.Type)
	if x == nil || y == nil {
		return nil
	}
	return []Finding{{
		Analyzer: u.Name(),
		Pos:      pkg.Fset.Position(be.OpPos),
		Message: "product of two " + x.Obj().Name() + " values is dimensionally not " +
			x.Obj().Name() + "; go through the float64 accessors",
	}}
}

// unitTypeOf returns the named unit type behind t (a float64-underlying
// defined type declared in internal/units), or nil. Type parameters and
// every type from any other package are not unit types.
func unitTypeOf(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/units") {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return nil
	}
	return named
}
