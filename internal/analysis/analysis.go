// Package analysis implements the project's custom static analyzers: the
// discipline rules this codebase depends on but the compiler cannot see.
// All randomness must flow through internal/rng (same-seed runs are
// byte-identical, docs/METRICS.md), floating-point comparisons in the
// LP/simplex layers must go through explicit tolerances, dropped errors on
// output writers silently truncate results, and goroutine fan-outs must
// follow the internal/sim/replicate.go pattern (loop state passed as
// arguments, results written to distinct indices).
//
// The suite is built only on the standard library (go/ast, go/parser,
// go/types): Load type-checks every package of the module with a
// module-aware importer, each Analyzer walks the typed syntax, and
// findings carry file:line:col positions. cmd/greencell-lint is the
// driver; docs/ANALYSIS.md documents each rule and the inline
// "//lint:allow <analyzer>" suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Pos locates the violation.
	Pos token.Position `json:"-"`
	// File, Line, Col serialize Pos for the machine-readable output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message explains the violation.
	Message string `json:"message"`
}

// String formats the finding the way compilers do: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer checks one rule over a type-checked package.
type Analyzer interface {
	// Name is the identifier used in reports and //lint:allow comments.
	Name() string
	// Doc is a one-line description of the rule.
	Doc() string
	// Check reports the rule's violations in pkg.
	Check(pkg *Package) []Finding
}

// All returns the full analyzer suite in reporting order.
func All() []Analyzer {
	return []Analyzer{
		NoRawRand{}, NoFloatEq{}, DroppedErr{}, UnguardedGo{},
		UnitMix{}, MapIter{}, WallClock{},
		DetFlow{}, LockSafe{}, HotAlloc{},
		ResLeak{}, CtxFlow{}, ErrCmp{},
	}
}

// Run applies every analyzer to every package, drops findings suppressed by
// //lint:allow comments, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		allow := allowedLines(pkg)
		for _, a := range analyzers {
			for _, f := range a.Check(pkg) {
				f.File = f.Pos.Filename
				f.Line = f.Pos.Line
				f.Col = f.Pos.Column
				if allow[allowKey{f.File, f.Line, a.Name()}] {
					continue
				}
				out = append(out, f)
			}
		}
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, then analyzer name —
// the order Run reports in. Exported for drivers that run analyzers one at
// a time (for per-analyzer timing) and merge the results.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowedLines collects the //lint:allow suppressions of a package. A
// comment "//lint:allow name1,name2 -- reason" suppresses findings from the
// named analyzers on its own line and, when it stands alone on a line, on
// the line below it.
func allowedLines(pkg *Package) map[allowKey]bool {
	allow := make(map[allowKey]bool)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, n := range names {
					allow[allowKey{pos.Filename, pos.Line, n}] = true
					allow[allowKey{pos.Filename, pos.Line + 1, n}] = true
				}
			}
		}
	}
	return allow
}

// parseAllow extracts the analyzer names of a //lint:allow comment.
func parseAllow(text string) ([]string, bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	// Everything after " -- " (or the first space-separated field) is an
	// optional free-form justification.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	} else if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return nil, false
	}
	names := strings.Split(rest, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names, true
}

// inspect walks every file of the package.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, fn)
	}
}
