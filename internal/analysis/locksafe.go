package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafePackages scopes locksafe to the packages where a stuck or leaked
// mutex takes the serving layer down: the daemon, the replication
// machinery, and the distributed controller. The fixture package keeps
// the analyzer honest under test.
var LockSafePackages = []string{
	"internal/server",
	"internal/sim",
	"internal/cluster",
	"internal/machine",
	"testdata/src/locksafe",
}

// LockSafe is the CFG-path mutex discipline checker for LockSafePackages:
//
//   - every sync.Mutex/RWMutex Lock (and RLock) must reach its Unlock
//     (RUnlock) on EVERY path out of the function — early returns, panic
//     exits, and error branches included. A "defer mu.Unlock()" (directly
//     or inside a deferred closure) discharges the obligation for all
//     later paths;
//   - no mutex may be held across an operation that can block indefinitely:
//     channel sends/receives, select without default, ranging a channel,
//     time.Sleep, sync.WaitGroup.Wait, net/http calls, LP solves
//     (internal/lp), and calls to in-package functions that themselves do
//     any of those (computed bottom-up over the package call graph).
//     sync.Cond.Wait is exempt — holding the lock is its contract.
//
// A deferred unlock does NOT exempt blocking: the lock is genuinely held
// until the function returns. Intentional holds (a send whose capacity was
// checked under the same lock, say) carry //lint:allow locksafe with the
// invariant that makes them safe. Test files are skipped.
type LockSafe struct{}

// Name implements Analyzer.
func (LockSafe) Name() string { return "locksafe" }

// Doc implements Analyzer.
func (LockSafe) Doc() string {
	return "mutexes not released on every path, or held across blocking operations"
}

// lockEntry is one held lock: where it was taken and whether a deferred
// unlock already guarantees release at exit.
type lockEntry struct {
	pos      token.Pos
	deferred bool
}

// lockFact maps a lock's canonical name ("s.mu", "l.mu/r" for read locks)
// to its state. nil is Bottom.
type lockFact map[string]lockEntry

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Check implements Analyzer.
func (l LockSafe) Check(pkg *Package) []Finding {
	if !inScope(pkg.PkgPath, LockSafePackages) {
		return nil
	}
	blocks := blockingSummaries(pkg)
	var out []Finding
	funcBodies(pkg, func(name string, node ast.Node, body *ast.BlockStmt) {
		if strings.HasSuffix(pkg.Fset.Position(node.Pos()).Filename, "_test.go") {
			return
		}
		out = append(out, l.checkFunc(pkg, body, blocks)...)
	})
	SortFindings(out)
	return out
}

// inScope reports whether a package path (modulo " [test]") ends with one
// of the scoped suffixes.
func inScope(pkgPath string, scopes []string) bool {
	p := strings.TrimSuffix(pkgPath, " [test]")
	for _, s := range scopes {
		if strings.HasSuffix(p, s) {
			return true
		}
	}
	return false
}

// blockingSummaries computes, bottom-up over the package call graph, which
// declared functions can block (directly or through an in-package callee).
func blockingSummaries(pkg *Package) map[*types.Func]any {
	return Summaries(pkg, func(fn FuncInfo, get func(*types.Func) any) any {
		found := false
		var walk func(n ast.Node)
		walk = func(root ast.Node) {
			ast.Inspect(root, func(n ast.Node) bool {
				if found {
					return false
				}
				switch x := n.(type) {
				case *ast.FuncLit:
					return false // its own function; a call to it is dynamic
				case *ast.SendStmt:
					found = true
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						found = true
					}
				case *ast.SelectStmt:
					if !selectHasDefault(x) {
						found = true
						return false
					}
					// Non-blocking select: its comm ops cannot block, but
					// the clause bodies still can.
					for _, c := range x.Body.List {
						if cc, ok := c.(*ast.CommClause); ok {
							for _, s := range cc.Body {
								walk(s)
							}
						}
					}
					return false
				case *ast.RangeStmt:
					if isChanType(pkg, x.X) {
						found = true
					}
				case *ast.CallExpr:
					if directBlockingCall(pkg, x) {
						found = true
					} else if callee := CalleeFunc(pkg, x); callee != nil && callee.Pkg() == pkg.Types {
						if b, ok := get(callee).(bool); ok && b {
							found = true
						}
					}
				}
				return !found
			})
		}
		walk(fn.Decl.Body)
		return found
	}, func(a, b any) bool { return a == b })
}

// checkFunc runs the lock dataflow over one function.
func (l LockSafe) checkFunc(pkg *Package, body *ast.BlockStmt, blocks map[*types.Func]any) []Finding {
	cfg := BuildCFG(body)
	flow := Flow{
		Bottom: func() Fact { return nil },
		Join: func(x, y Fact) Fact {
			if x == nil {
				return y
			}
			if y == nil {
				return x
			}
			fx, fy := x.(lockFact), y.(lockFact)
			out := fx.clone()
			for k, v := range fy {
				if prev, ok := out[k]; ok {
					// Discharged only if deferred on every incoming path.
					v.deferred = v.deferred && prev.deferred
					if prev.pos < v.pos {
						v.pos = prev.pos
					}
				}
				out[k] = v
			}
			return out
		},
		Equal: func(x, y Fact) bool {
			if (x == nil) != (y == nil) {
				return false
			}
			if x == nil {
				return true
			}
			fx, fy := x.(lockFact), y.(lockFact)
			if len(fx) != len(fy) {
				return false
			}
			for k, v := range fx {
				if fy[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in Fact) Fact {
			if in == nil {
				return nil
			}
			cur := in.(lockFact).clone()
			for _, n := range b.Nodes {
				applyLockNode(pkg, cur, n, nil, blocks, cfg.Comm)
			}
			return cur
		},
	}
	in := ForwardDataflow(cfg, lockFact{}, flow)

	var out []Finding
	report := func(pos token.Pos, msg string) {
		out = append(out, Finding{Analyzer: l.Name(), Pos: pkg.Fset.Position(pos), Message: msg})
	}
	seen := make(map[string]bool)
	reportOnce := func(pos token.Pos, msg string) {
		key := msg + "@" + pkg.Fset.Position(pos).String()
		if !seen[key] {
			seen[key] = true
			report(pos, msg)
		}
	}
	for _, b := range cfg.Blocks {
		fact := in[b]
		if fact == nil {
			continue
		}
		cur := fact.(lockFact).clone()
		for _, n := range b.Nodes {
			applyLockNode(pkg, cur, n, reportOnce, blocks, cfg.Comm)
		}
		// Paths into Exit with a lock still held and no deferred unlock
		// leak the mutex.
		for _, s := range b.Succs {
			if s != cfg.Exit {
				continue
			}
			names := make([]string, 0, len(cur))
			for name := range cur {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				e := cur[name]
				if !e.deferred {
					reportOnce(e.pos, "mutex "+displayLock(name)+" locked here is not released on every path; unlock before returning or defer the unlock")
				}
			}
		}
	}
	SortFindings(out)
	return out
}

// applyLockNode mutates the lock state with one node's effect and, when
// report is non-nil, flags blocking operations under a held lock. comm
// marks select communication statements, whose channel ops are charged to
// the SelectStmt choice point instead.
func applyLockNode(pkg *Package, fact lockFact, node ast.Node, report func(token.Pos, string), blocks map[*types.Func]any, comm map[ast.Node]bool) {
	blocking := func(pos token.Pos, what string) {
		if report == nil || len(fact) == 0 {
			return
		}
		names := make([]string, 0, len(fact))
		for name := range fact {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			report(pos, "mutex "+displayLock(name)+" (locked at "+pkg.Fset.Position(fact[name].pos).String()+") is held across "+what+"; shrink the critical section")
		}
	}

	isComm := comm[node]
	switch n := node.(type) {
	case *ast.SendStmt:
		if !isComm {
			blocking(n.Pos(), "a channel send")
		}
		return
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			blocking(n.Pos(), "a blocking select")
		}
		return
	case *ast.RangeStmt:
		if isChanType(pkg, n.X) {
			blocking(n.Pos(), "a channel range")
		}
		return
	case *ast.DeferStmt:
		for _, name := range deferredUnlocks(pkg, n) {
			if e, ok := fact[name]; ok {
				e.deferred = true
				fact[name] = e
			}
		}
		return
	case *ast.GoStmt:
		return // the goroutine body runs elsewhere
	}

	// Everything else: scan for channel receives, lock/unlock calls, and
	// blocking calls, skipping nested function literals.
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !isComm {
				blocking(x.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			if name, mode, ok := lockCall(pkg, x); ok {
				switch mode {
				case "Lock", "RLock":
					key := name
					if mode == "RLock" {
						key += "/r"
					}
					fact[key] = lockEntry{pos: x.Pos()}
				case "Unlock", "RUnlock":
					key := name
					if mode == "RUnlock" {
						key += "/r"
					}
					delete(fact, key)
				}
				return true
			}
			if directBlockingCall(pkg, x) {
				blocking(x.Pos(), "a blocking call ("+callName(x)+")")
			} else if callee := CalleeFunc(pkg, x); callee != nil && callee.Pkg() == pkg.Types {
				if b, ok := blocks[callee].(bool); ok && b {
					blocking(x.Pos(), "a call to "+callee.Name()+", which blocks")
				}
			}
		}
		return true
	})
}

// lockCall recognizes x.Lock/Unlock/RLock/RUnlock/TryLock on a sync mutex
// and returns the canonical receiver name and the method.
func lockCall(pkg *Package, call *ast.CallExpr) (name, mode string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	s, isMethod := pkg.Info.Selections[sel]
	if !isMethod || !isMutexType(s.Recv()) {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// isMutexType reports sync.Mutex / sync.RWMutex (possibly behind pointers).
func isMutexType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// deferredUnlocks lists the locks a defer statement releases: a direct
// "defer mu.Unlock()" or unlock calls inside a deferred closure.
func deferredUnlocks(pkg *Package, d *ast.DeferStmt) []string {
	var names []string
	add := func(call *ast.CallExpr) {
		if name, mode, ok := lockCall(pkg, call); ok {
			switch mode {
			case "Unlock":
				names = append(names, name)
			case "RUnlock":
				names = append(names, name+"/r")
			}
		}
	}
	add(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				add(call)
			}
			return true
		})
	}
	return names
}

// httpRoundTrips are the net/http calls that wait on the network (or on
// connection drain); accessors like Request.PathValue are instant and must
// not count.
var httpRoundTrips = map[string]bool{
	"Get": true, "Post": true, "Head": true, "PostForm": true, "Do": true,
	"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true,
	"ServeTLS": true, "Shutdown": true, "RoundTrip": true,
}

// directBlockingCall recognizes calls that can block indefinitely:
// time.Sleep, WaitGroup.Wait, net/http round-trips, and LP solves.
// sync.Cond.Wait is exempt (it requires the lock by contract).
func directBlockingCall(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
		return true
	case obj.Pkg().Path() == "net/http" && httpRoundTrips[obj.Name()]:
		return true
	case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
		// WaitGroup.Wait blocks on outstanding work; Cond.Wait is the
		// sanctioned hold-the-lock wait.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok {
				return !isCondType(s.Recv())
			}
		}
		return true
	case strings.HasSuffix(obj.Pkg().Path(), "internal/lp") && strings.Contains(obj.Name(), "Solve"):
		return true
	}
	return false
}

// selectHasDefault reports whether a select has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isCondType reports sync.Cond.
func isCondType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond"
}

// isChanType reports whether an expression has channel type.
func isChanType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// callName renders a short name for a blocked-on call.
func callName(call *ast.CallExpr) string {
	return exprString(call.Fun)
}

// displayLock strips the read-mode suffix for messages.
func displayLock(name string) string {
	return strings.TrimSuffix(name, "/r")
}
