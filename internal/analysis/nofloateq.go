package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoFloatEq reports == and != between floating-point operands. Exact float
// equality is almost always a bug in this codebase: the LP pivot logic
// (internal/lp/revised.go, tableau.go) is tolerance-based throughout, and a
// raw comparison silently turns a numerical question into a bit-pattern
// question. Two comparisons are exempt:
//
//   - comparisons where either operand is a compile-time constant (for
//     example "eff == 0" or "activity != 1"): these test sentinel or
//     structurally-exact values that were assigned, not computed;
//   - comparisons inside the tolerance helpers listed in
//     FloatEqAllowedFuncs, which exist to encapsulate exact tests.
//
// Test files (_test.go) are skipped entirely: the determinism regression
// tests assert byte-identical metrics across equal seeds, and exact float
// comparison is precisely the point there.
//
// Everything else should compare through an explicit tolerance
// (math.Abs(a-b) <= tol) or carry a //lint:allow nofloateq justification.
type NoFloatEq struct{}

// FloatEqAllowedFuncs names functions whose bodies may compare floats
// exactly (the project's blessed tolerance/exactness helpers), as
// "pkgPathSuffix.FuncName".
var FloatEqAllowedFuncs = map[string]bool{}

// Name implements Analyzer.
func (NoFloatEq) Name() string { return "nofloateq" }

// Doc implements Analyzer.
func (NoFloatEq) Doc() string {
	return "== / != between non-constant floating-point operands"
}

// Check implements Analyzer.
func (n NoFloatEq) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && n.allowedFunc(pkg, fd) {
				continue
			}
			ast.Inspect(decl, func(node ast.Node) bool {
				be, ok := node.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				x, y := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
				if !isFloat(x.Type) || !isFloat(y.Type) {
					return true
				}
				if x.Value != nil || y.Value != nil {
					return true // constant operand: sentinel/exact test
				}
				out = append(out, Finding{
					Analyzer: n.Name(),
					Pos:      pkg.Fset.Position(be.OpPos),
					Message:  "floating-point " + be.Op.String() + " between computed values; compare through a tolerance",
				})
				return true
			})
		}
	}
	return out
}

// allowedFunc reports whether a function declaration is a blessed
// tolerance helper.
func (NoFloatEq) allowedFunc(pkg *Package, fd *ast.FuncDecl) bool {
	if len(FloatEqAllowedFuncs) == 0 {
		return false
	}
	obj := pkg.Info.Defs[fd.Name]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return FloatEqAllowedFuncs[obj.Pkg().Path()+"."+obj.Name()]
}

// isFloat reports whether t's underlying type is a floating-point basic.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
