package analysis

// Fact is one dataflow fact: the abstract state at a block boundary.
// Implementations are treated as immutable — Transfer and Join return fresh
// values instead of mutating their inputs, so facts can be shared between
// blocks safely.
type Fact any

// Flow configures a forward dataflow problem over a CFG: a join-semilattice
// of facts plus a per-block transfer function.
type Flow struct {
	// Bottom returns the "unreached" fact, the identity of Join. Every
	// block except Entry starts here.
	Bottom func() Fact
	// Join combines the facts of two incoming edges.
	Join func(a, b Fact) Fact
	// Equal decides convergence.
	Equal func(a, b Fact) bool
	// Transfer pushes a fact through one block's nodes.
	Transfer func(b *Block, in Fact) Fact
}

// ForwardDataflow solves the problem to a fixpoint and returns the fact at
// the ENTRY of every block (Transfer of a block's own nodes not yet
// applied; apply it again for exit facts). The worklist runs in reverse
// postorder, so loop-free code converges in one pass and loops in as many
// passes as their nesting needs. Dead blocks keep Bottom.
func ForwardDataflow(c *CFG, entry Fact, f Flow) map[*Block]Fact {
	in := make(map[*Block]Fact, len(c.Blocks))
	for _, b := range c.Blocks {
		in[b] = f.Bottom()
	}
	in[c.Entry] = entry

	order := reversePostorder(c)

	// Deterministic worklist: a boolean per block plus repeated RPO sweeps.
	// Analyses here are tiny (one function), so simplicity beats a priority
	// queue; the sweep count is bounded by the lattice height.
	dirty := make(map[*Block]bool, len(order))
	for _, b := range order {
		dirty[b] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if !dirty[b] {
				continue
			}
			dirty[b] = false
			out := f.Transfer(b, in[b])
			for _, s := range b.Succs {
				joined := f.Join(in[s], out)
				if !f.Equal(in[s], joined) {
					in[s] = joined
					dirty[s] = true
					changed = true
				}
			}
		}
	}
	return in
}

// BackwardDataflow solves the problem to a fixpoint against the edge
// direction and returns the fact at the EXIT of every block (Transfer of a
// block's own nodes not yet applied; Transfer receives the exit fact and
// pushes it against execution order, so implementations iterate b.Nodes back
// to front). The worklist runs in reverse postorder of the reversed graph,
// rooted at Exit, so loop-free code converges in one pass.
//
// The solve works on the reverse-reachability view: every way out of a
// function — returns, fall-off-the-end, and panic/os.Exit/log.Fatal
// terminators — edges into the synthetic Exit block, so all of those paths
// carry facts (an analyzer that wants to exempt process-death paths detects
// the terminator node in its Transfer). Blocks from which Exit is not
// reachable at all — the body of a `for {}` with no break, statements parked
// after a terminator — keep Bottom, exactly as dead blocks do forward.
func BackwardDataflow(c *CFG, exit Fact, f Flow) map[*Block]Fact {
	out := make(map[*Block]Fact, len(c.Blocks))
	for _, b := range c.Blocks {
		out[b] = f.Bottom()
	}
	out[c.Exit] = exit

	order := reversePostorderToExit(c)

	// Deterministic worklist, mirroring ForwardDataflow: a boolean per block
	// plus repeated sweeps in an order that visits a block after its
	// successors on acyclic paths.
	dirty := make(map[*Block]bool, len(order))
	for _, b := range order {
		dirty[b] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if !dirty[b] {
				continue
			}
			dirty[b] = false
			in := f.Transfer(b, out[b])
			for _, p := range b.Preds {
				joined := f.Join(out[p], in)
				if !f.Equal(out[p], joined) {
					out[p] = joined
					dirty[p] = true
					changed = true
				}
			}
		}
	}
	return out
}

// reversePostorderToExit lists the blocks that reach Exit in reverse
// postorder of the predecessor graph rooted at Exit: each block comes after
// its original-graph successors except across loop back edges.
func reversePostorderToExit(c *CFG) []*Block {
	seen := make(map[*Block]bool, len(c.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			dfs(p)
		}
		post = append(post, b)
	}
	dfs(c.Exit)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// reversePostorder lists the live blocks in reverse postorder from Entry.
func reversePostorder(c *CFG) []*Block {
	seen := make(map[*Block]bool, len(c.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(c.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
