package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// DetFlow is the flow-sensitive generalization of the syntactic determinism
// rules (norawrand, mapiter, wallclock): it tracks VALUES derived from
// nondeterminism sources through assignments, arithmetic, conversions,
// collections, and intra-package calls (bottom-up return summaries), and
// reports when such a value reaches a reproducible artifact — a stream,
// file, journal or metrics write. The three taint sources:
//
//   - unseeded randomness: any call into math/rand, math/rand/v2, or
//     crypto/rand (internal/rng itself is exempt — wrapping those packages
//     behind seeded sources is its whole purpose);
//   - wall clock: time.Now / time.Since outside the instrumentation
//     allowlist (WallClockAllowedFiles — those timers' outputs are
//     canonicalized away, docs/METRICS.md);
//   - map iteration order: the key/value variables of a range over a map.
//     A write INSIDE such a loop body is mapiter's jurisdiction and not
//     re-reported; detflow owns the flows mapiter cannot see — order-
//     dependent values that escape the loop and reach a write later.
//
// Sorting launders map-order taint: passing a collection through
// sort.*/slices.Sort* clears it (collect-sort-consume is the blessed
// idiom). Writes to os.Stdout/os.Stderr (fmt.Print* and Fprint* aimed at
// them) are presentation, not artifacts, and are exempt. Test files are
// skipped. Intentional flows carry //lint:allow detflow.
type DetFlow struct{}

// Name implements Analyzer.
func (DetFlow) Name() string { return "detflow" }

// Doc implements Analyzer.
func (DetFlow) Doc() string {
	return "taint flow from randomness, wall clock, or map order into stream/journal/metrics writes"
}

// Taint is a bitmask of nondeterminism sources a value derives from.
type Taint uint8

const (
	taintRand Taint = 1 << iota
	taintClock
	taintMapOrder
)

// String names the taint kinds for findings.
func (t Taint) String() string {
	var parts []string
	if t&taintRand != 0 {
		parts = append(parts, "unseeded randomness")
	}
	if t&taintClock != 0 {
		parts = append(parts, "the wall clock")
	}
	if t&taintMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	if len(parts) == 0 {
		return "nothing"
	}
	return strings.Join(parts, " and ")
}

// taintFact is the dataflow fact: taint per local variable object. nil is
// Bottom ("unreached").
type taintFact map[types.Object]Taint

func (f taintFact) clone() taintFact {
	out := make(taintFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Check implements Analyzer.
func (d DetFlow) Check(pkg *Package) []Finding {
	if strings.HasSuffix(strings.TrimSuffix(pkg.PkgPath, " [test]"), "internal/rng") {
		return nil
	}
	a := &detAnalysis{pkg: pkg}
	a.summaries = Summaries(pkg, a.returnTaint, func(x, y any) bool {
		tx, _ := x.(Taint)
		ty, _ := y.(Taint)
		return tx == ty
	})
	var out []Finding
	funcBodies(pkg, func(name string, node ast.Node, body *ast.BlockStmt) {
		fname := pkg.Fset.Position(node.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			return
		}
		out = append(out, a.checkFunc(node, body)...)
	})
	return out
}

// detAnalysis carries the per-package state.
type detAnalysis struct {
	pkg       *Package
	summaries map[*types.Func]any
}

// returnTaint is the bottom-up summary: the union taint of everything the
// function can return (its parameters assumed clean).
func (a *detAnalysis) returnTaint(fn FuncInfo, get func(*types.Func) any) any {
	st := a.solve(fn.Decl, fn.Decl.Body, get)
	var total Taint
	for _, b := range st.cfg.Blocks {
		fact := st.in[b]
		if fact == nil {
			continue
		}
		cur := taintFact(fact.(taintFact)).clone()
		for _, node := range b.Nodes {
			ret, ok := node.(*ast.ReturnStmt)
			if ok {
				if len(ret.Results) == 0 {
					// Bare return: named results carry the value out.
					for obj, t := range cur {
						if v, okv := obj.(*types.Var); okv && isNamedResult(fn.Decl, v) {
							total |= t
						}
					}
				}
				for _, r := range ret.Results {
					total |= st.exprTaint(cur, r)
				}
			}
			st.applyNode(cur, node, nil)
		}
	}
	return total
}

// isNamedResult reports whether v is a named result variable of fn.
func isNamedResult(fn *ast.FuncDecl, v *types.Var) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, f := range fn.Type.Results.List {
		for _, n := range f.Names {
			if n.Pos() == v.Pos() {
				return true
			}
		}
	}
	return false
}

// funcState is one function's solved taint problem.
type funcState struct {
	a          *detAnalysis
	cfg        *CFG
	in         map[*Block]Fact
	clockFree  bool // file is on the wall-clock allowlist: timers sanctioned
	mapBodies  []posSpan
	getSummary func(*types.Func) any
}

type posSpan struct{ lo, hi token.Pos }

// solve builds the CFG and runs the taint dataflow for one function.
func (a *detAnalysis) solve(node ast.Node, body *ast.BlockStmt, get func(*types.Func) any) *funcState {
	if get == nil {
		get = func(f *types.Func) any { return a.summaries[f] }
	}
	st := &funcState{a: a, getSummary: get}
	fname := filepath.ToSlash(a.pkg.Fset.Position(node.Pos()).Filename)
	st.clockFree = allowedWallClockFile(fname)
	// Record map-range body spans: maporder sinks inside them belong to
	// mapiter, not detflow.
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && st.isMapRange(rs) {
			st.mapBodies = append(st.mapBodies, posSpan{rs.Body.Pos(), rs.Body.End()})
		}
		return true
	})
	st.cfg = BuildCFG(body)
	st.in = ForwardDataflow(st.cfg, taintFact{}, Flow{
		Bottom: func() Fact { return nil },
		Join: func(x, y Fact) Fact {
			if x == nil {
				return y
			}
			if y == nil {
				return x
			}
			fx, fy := x.(taintFact), y.(taintFact)
			out := fx.clone()
			for k, v := range fy {
				out[k] |= v
			}
			return out
		},
		Equal: func(x, y Fact) bool {
			if (x == nil) != (y == nil) {
				return false
			}
			if x == nil {
				return true
			}
			fx, fy := x.(taintFact), y.(taintFact)
			if len(fx) != len(fy) {
				return false
			}
			for k, v := range fx {
				if fy[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in Fact) Fact {
			if in == nil {
				return nil
			}
			cur := in.(taintFact).clone()
			for _, n := range b.Nodes {
				st.applyNode(cur, n, nil)
			}
			return cur
		},
	})
	return st
}

// checkFunc solves one function and replays the blocks with sink reporting
// enabled.
func (a *detAnalysis) checkFunc(node ast.Node, body *ast.BlockStmt) []Finding {
	st := a.solve(node, body, nil)
	var out []Finding
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, t Taint, sink string) {
		if t == 0 || seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{
			Analyzer: DetFlow{}.Name(),
			Pos:      a.pkg.Fset.Position(pos),
			Message: "value derived from " + t.String() + " flows into " + sink +
				"; reproducible artifacts must be functions of (scenario, seed)",
		})
	}
	for _, b := range st.cfg.Blocks {
		fact := st.in[b]
		if fact == nil {
			continue
		}
		cur := fact.(taintFact).clone()
		for _, n := range b.Nodes {
			st.applyNode(cur, n, report)
		}
	}
	SortFindings(out)
	return out
}

// applyNode mutates fact with one block node's effect; when report is
// non-nil it also checks every call in the node against the sink list.
func (st *funcState) applyNode(fact taintFact, node ast.Node, report func(token.Pos, Taint, string)) {
	// Calls first: sinks see the state before the node's own assignment.
	// A RangeStmt block node stands for its header only and a SelectStmt
	// for the choice point, so only those parts are scanned — their bodies
	// live in successor blocks and are visited there.
	var scan []ast.Node
	switch n := node.(type) {
	case *ast.RangeStmt:
		scan = []ast.Node{n.X}
	case *ast.SelectStmt:
		scan = nil
	default:
		scan = []ast.Node{node}
	}
	for _, part := range scan {
		st.eachCall(part, func(call *ast.CallExpr) {
			st.sanitize(fact, call)
			if report != nil {
				st.checkSink(fact, call, report)
			}
		})
	}
	switch n := node.(type) {
	case *ast.AssignStmt:
		st.applyAssign(fact, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := st.a.pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					var t Taint
					if len(vs.Values) == 1 && len(vs.Names) > 1 {
						t = st.exprTaint(fact, vs.Values[0])
					} else if i < len(vs.Values) {
						t = st.exprTaint(fact, vs.Values[i])
					}
					setTaint(fact, obj, t)
				}
			}
		}
	case *ast.RangeStmt:
		// Header only: bind key/value with the collection's taint, plus
		// map-order taint when ranging a map.
		t := st.exprTaint(fact, n.X)
		if st.isMapRange(n) {
			t |= taintMapOrder
		}
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := st.lhsObject(id); obj != nil {
					setTaint(fact, obj, t)
				}
			}
		}
	}
}

// applyAssign transfers one assignment.
func (st *funcState) applyAssign(fact taintFact, n *ast.AssignStmt) {
	// Right-hand taints, positionally.
	taintAt := func(i int) Taint {
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			return st.exprTaint(fact, n.Rhs[0])
		}
		if i < len(n.Rhs) {
			return st.exprTaint(fact, n.Rhs[i])
		}
		return 0
	}
	for i, lhs := range n.Lhs {
		t := taintAt(i)
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				continue
			}
			obj := st.lhsObject(x)
			if obj == nil {
				continue
			}
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				setTaint(fact, obj, t)
			} else {
				// Compound (+=, …): old value contributes.
				setTaint(fact, obj, fact[obj]|t)
			}
		default:
			// Index/selector/deref target: weak update on the root object —
			// writing a tainted element taints the container.
			if t != 0 {
				if obj := rootObject(st.a.pkg, rootExpr(lhs)); obj != nil {
					fact[obj] |= t
				}
			}
		}
	}
}

// setTaint stores a strong update, dropping clean entries to keep facts
// small.
func setTaint(fact taintFact, obj types.Object, t Taint) {
	if t == 0 {
		delete(fact, obj)
	} else {
		fact[obj] = t
	}
}

// lhsObject resolves an assigned identifier whether it defines or uses.
func (st *funcState) lhsObject(id *ast.Ident) types.Object {
	if obj := st.a.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return st.a.pkg.Info.Uses[id]
}

// rootExpr peels index/star/selector layers down to the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return e
		}
	}
}

// exprTaint computes the taint of an expression under fact.
func (st *funcState) exprTaint(fact taintFact, e ast.Expr) Taint {
	switch x := ast.Unparen(e).(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := st.a.pkg.Info.Uses[x]; obj != nil {
			return fact[obj]
		}
		return 0
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.BinaryExpr:
		return st.exprTaint(fact, x.X) | st.exprTaint(fact, x.Y)
	case *ast.UnaryExpr:
		return st.exprTaint(fact, x.X)
	case *ast.StarExpr:
		return st.exprTaint(fact, x.X)
	case *ast.IndexExpr:
		return st.exprTaint(fact, x.X) | st.exprTaint(fact, x.Index)
	case *ast.SliceExpr:
		return st.exprTaint(fact, x.X)
	case *ast.SelectorExpr:
		// Field read: the container's taint. Package-qualified names have
		// no local root and stay clean.
		if obj := rootObject(st.a.pkg, x); obj != nil {
			if t, ok := fact[obj]; ok {
				return t
			}
		}
		return st.exprTaint(fact, x.X)
	case *ast.CompositeLit:
		var t Taint
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= st.exprTaint(fact, kv.Value)
			} else {
				t |= st.exprTaint(fact, el)
			}
		}
		return t
	case *ast.TypeAssertExpr:
		return st.exprTaint(fact, x.X)
	case *ast.CallExpr:
		return st.callTaint(fact, x)
	}
	return 0
}

// callTaint computes the taint a call's results carry: source taint for
// nondeterminism producers, the callee's return summary for in-package
// functions, and arguments' taint propagated through everything else
// (formatting, conversion, math).
func (st *funcState) callTaint(fact taintFact, call *ast.CallExpr) Taint {
	var t Taint
	// Type conversions carry their operand.
	if tv, ok := st.a.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			t |= st.exprTaint(fact, a)
		}
		return t
	}
	if src := st.sourceTaint(call); src != 0 {
		return src
	}
	// Sorting launders order taint; the sanitize pass clears the argument
	// object, and the (void) call itself yields nothing.
	if isSortCall(st.a.pkg, call) {
		return 0
	}
	for _, a := range call.Args {
		t |= st.exprTaint(fact, a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := st.a.pkg.Info.Selections[sel]; isMethod {
			t |= st.exprTaint(fact, sel.X)
		}
	}
	if fn := CalleeFunc(st.a.pkg, call); fn != nil && fn.Pkg() == st.a.pkg.Types {
		if s, ok := st.getSummary(fn).(Taint); ok {
			t |= s
		}
	}
	return t
}

// sourceTaint recognizes the three nondeterminism sources.
func (st *funcState) sourceTaint(call *ast.CallExpr) Taint {
	obj := calleeObject(st.a.pkg, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2", "crypto/rand":
		return taintRand
	case "time":
		if !st.clockFree && (obj.Name() == "Now" || obj.Name() == "Since") {
			return taintClock
		}
	}
	return 0
}

// sanitize clears map-order (and any other) taint from collections passed
// through a sort.
func (st *funcState) sanitize(fact taintFact, call *ast.CallExpr) {
	if !isSortCall(st.a.pkg, call) {
		return
	}
	for _, a := range call.Args {
		if obj := rootObject(st.a.pkg, rootExpr(a)); obj != nil {
			delete(fact, obj)
		}
	}
}

// isSortCall reports calls into package sort or slices.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sort" || p == "slices"
}

// sinkWriters are the method names that append bytes/records to an ordered
// artifact. fmt.Print* to stdout/stderr is presentation and handled apart.
var sinkWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRecord": true, "WriteAll": true, "Encode": true,
	"WriteHeader": true, "WriteSlot": true, "WriteSummary": true,
}

// metricsMutators are the internal/metrics value setters.
var metricsMutators = map[string]bool{
	"Add": true, "Inc": true, "Set": true, "Observe": true,
}

// checkSink reports tainted arguments reaching a write.
func (st *funcState) checkSink(fact taintFact, call *ast.CallExpr, report func(token.Pos, Taint, string)) {
	pkg := st.a.pkg
	argTaint := func(args []ast.Expr) Taint {
		var t Taint
		for _, a := range args {
			t |= st.exprTaint(fact, a)
		}
		return t
	}
	var t Taint
	var sink string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		obj := pkg.Info.Uses[fun.Sel]
		switch {
		case sinkWriters[name]:
			if _, isMethod := pkg.Info.Selections[fun]; !isMethod {
				return
			}
			if isStdStream(pkg, fun.X) {
				return
			}
			t, sink = argTaint(call.Args), name
		case metricsMutators[name]:
			s, ok := pkg.Info.Selections[fun]
			if !ok || !isMetricsType(s.Recv()) {
				return
			}
			t, sink = argTaint(call.Args), "metrics "+name
		case obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" && name == "WriteFile":
			if len(call.Args) >= 2 {
				t, sink = argTaint(call.Args[1:2]), "os.WriteFile"
			}
		case obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && strings.HasPrefix(name, "Fprint"):
			if len(call.Args) == 0 || isStdStream(pkg, call.Args[0]) {
				return
			}
			t, sink = argTaint(call.Args[1:]), "fmt."+name
		default:
			return
		}
	default:
		return
	}
	if t == 0 {
		return
	}
	// Map-order effects inside the map loop body are mapiter's rule.
	for _, span := range st.mapBodies {
		if call.Pos() >= span.lo && call.Pos() < span.hi {
			t &^= taintMapOrder
			break
		}
	}
	if t != 0 {
		report(call.Pos(), t, sink)
	}
}

// isStdStream reports os.Stdout / os.Stderr.
func isStdStream(pkg *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// isMetricsType reports whether t is declared in internal/metrics.
func isMetricsType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/metrics")
}

// isMapRange reports whether rs ranges over a map.
func (st *funcState) isMapRange(rs *ast.RangeStmt) bool {
	tv, ok := st.a.pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// eachCall visits the calls of one block node, skipping nested function
// literals (they are analyzed as their own functions).
func (st *funcState) eachCall(node ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}
