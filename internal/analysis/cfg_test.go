package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildBody parses a function body (statements only) and builds its CFG.
func buildBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// blockCalling finds the block containing a call to the named function.
func blockCalling(t *testing.T, c *CFG, name string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// blockWith finds the block containing a node matching pred.
func blockWith(t *testing.T, c *CFG, what string, pred func(ast.Node) bool) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if x != nil && pred(x) {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block holds %s", what)
	return nil
}

// reaches reports whether to is reachable from from along CFG edges.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// hasSucc reports a direct edge from b to a block satisfying pred.
func hasSucc(b *Block, pred func(*Block) bool) bool {
	for _, s := range b.Succs {
		if pred(s) {
			return true
		}
	}
	return false
}

func TestCFGEdgeSymmetry(t *testing.T) {
	c := buildBody(t, `
	a()
	for b() {
		if c() {
			continue
		}
		d()
	}
	e()`)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			ok := false
			for _, p := range s.Preds {
				if p == b {
					ok = true
				}
			}
			if !ok {
				t.Errorf("edge %d->%d missing from Preds", b.Index, s.Index)
			}
		}
	}
	if len(c.Exit.Nodes) != 0 {
		t.Errorf("Exit holds %d nodes; want none", len(c.Exit.Nodes))
	}
	if !reaches(c.Entry, c.Exit) {
		t.Error("Exit unreachable from Entry")
	}
}

func TestCFGGotoForward(t *testing.T) {
	c := buildBody(t, `
	a()
	goto done
	b()
done:
	c()`)
	if blk := blockCalling(t, c, "b"); blk.Live {
		t.Error("statement after goto should be dead")
	}
	target := blockCalling(t, c, "c")
	if !target.Live {
		t.Error("goto target should be live")
	}
	if !reaches(blockCalling(t, c, "a"), target) {
		t.Error("goto edge missing: a's block should reach the label")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	c := buildBody(t, `
	i := 0
loop:
	i++
	if cond() {
		goto loop
	}
	done()`)
	gotoBlk := blockWith(t, c, "goto", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.GOTO
	})
	label := blockWith(t, c, "i++", func(n ast.Node) bool {
		_, ok := n.(*ast.IncDecStmt)
		return ok
	})
	if !hasSucc(gotoBlk, func(b *Block) bool { return b == label }) {
		t.Error("backward goto should edge straight to its label block")
	}
	if !reaches(c.Entry, c.Exit) {
		t.Error("exit unreachable")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	c := buildBody(t, `
outer:
	for a() {
		for b() {
			if c() {
				continue outer
			}
			if d() {
				break outer
			}
			e()
		}
	}
	f()`)
	contBlk := blockWith(t, c, "continue outer", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.CONTINUE && br.Label != nil
	})
	brkBlk := blockWith(t, c, "break outer", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.BREAK && br.Label != nil
	})
	outerHead := blockCalling(t, c, "a")
	after := blockCalling(t, c, "f")
	if !hasSucc(contBlk, func(b *Block) bool { return b == outerHead }) {
		t.Error("continue outer should edge to the outer loop head, not the inner one")
	}
	if !hasSucc(brkBlk, func(b *Block) bool { return b == after }) {
		t.Error("break outer should edge past both loops")
	}
	// An unlabeled continue would have hit the inner head instead.
	innerHead := blockCalling(t, c, "b")
	if hasSucc(contBlk, func(b *Block) bool { return b == innerHead }) {
		t.Error("continue outer must not target the inner loop head")
	}
}

func TestCFGSelect(t *testing.T) {
	c := buildBody(t, `
	select {
	case v := <-ch:
		use(v)
	case ch2 <- 1:
		send()
	}
	after()`)
	if len(c.Comm) != 2 {
		t.Errorf("Comm marks %d statements; want 2", len(c.Comm))
	}
	head := blockWith(t, c, "select", func(n ast.Node) bool {
		_, ok := n.(*ast.SelectStmt)
		return ok
	})
	if len(head.Succs) != 2 {
		t.Errorf("select head has %d successors; want 2 clause blocks", len(head.Succs))
	}
	if !reaches(head, blockCalling(t, c, "after")) {
		t.Error("select join should reach the following statement")
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	c := buildBody(t, `
	select {
	case v := <-ch:
		use(v)
	default:
		idle()
	}
	after()`)
	head := blockWith(t, c, "select", func(n ast.Node) bool {
		_, ok := n.(*ast.SelectStmt)
		return ok
	})
	if len(head.Succs) != 2 {
		t.Errorf("select head has %d successors; want comm clause + default", len(head.Succs))
	}
	if len(c.Comm) != 1 {
		t.Errorf("Comm marks %d statements; want 1 (default has no comm op)", len(c.Comm))
	}
	if !blockCalling(t, c, "idle").Live {
		t.Error("default clause should be live")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildBody(t, `
	switch tag() {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		d()
	}
	after()`)
	head := blockCalling(t, c, "tag")
	if len(head.Succs) != 3 {
		t.Errorf("switch head has %d successors; want 3 (no head->join edge with a default present)", len(head.Succs))
	}
	fall := blockWith(t, c, "fallthrough", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.FALLTHROUGH
	})
	next := blockCalling(t, c, "b")
	if !hasSucc(fall, func(b *Block) bool { return b == next }) {
		t.Error("fallthrough should edge into the next case body")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	c := buildBody(t, `
	a()
	return
	b()`)
	if blockCalling(t, c, "b").Live {
		t.Error("code after return should be dead")
	}
	if !blockCalling(t, c, "a").Live {
		t.Error("code before return should be live")
	}
}

func TestCFGInfiniteLoop(t *testing.T) {
	c := buildBody(t, `
	for {
		a()
	}
	b()`)
	if blockCalling(t, c, "b").Live {
		t.Error("code after an infinite loop should be dead")
	}
	body := blockCalling(t, c, "a")
	if !body.Live {
		t.Error("infinite loop body should be live")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	c := buildBody(t, `
	a()
	panic("boom")
	b()`)
	if blockCalling(t, c, "b").Live {
		t.Error("code after panic should be dead")
	}
	panicBlk := blockCalling(t, c, "panic")
	if !hasSucc(panicBlk, func(b *Block) bool { return b == c.Exit }) {
		t.Error("panic should edge to Exit")
	}
}

func TestCFGDeferStaysInBlock(t *testing.T) {
	c := buildBody(t, `
	lock()
	defer unlock()
	work()
	return`)
	deferBlk := blockWith(t, c, "defer", func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	if deferBlk != blockCalling(t, c, "lock") {
		t.Error("defer should stay in the straight-line block where it registers")
	}
	if !hasSucc(deferBlk, func(b *Block) bool { return b == c.Exit }) {
		t.Error("the returning block should edge to Exit")
	}
}

// callSetFlow is a tiny dataflow problem for testing the solver: the fact is
// the set of function names called on every path into a block.
func callSetFlow() Flow {
	return Flow{
		Bottom: func() Fact { return nil },
		Join: func(a, b Fact) Fact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := make(map[string]bool)
			for k := range a.(map[string]bool) {
				out[k] = true
			}
			for k := range b.(map[string]bool) {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if a == nil {
				return true
			}
			ma, mb := a.(map[string]bool), b.(map[string]bool)
			if len(ma) != len(mb) {
				return false
			}
			for k := range ma {
				if !mb[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in Fact) Fact {
			if in == nil {
				return nil
			}
			out := make(map[string]bool)
			for k := range in.(map[string]bool) {
				out[k] = true
			}
			for _, n := range b.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
					return true
				})
			}
			return out
		},
	}
}

func TestForwardDataflowBranchJoin(t *testing.T) {
	c := buildBody(t, `
	a()
	if cond() {
		b()
	}
	d()`)
	in := ForwardDataflow(c, map[string]bool{}, callSetFlow())
	at := in[blockCalling(t, c, "d")]
	if at == nil {
		t.Fatal("join block unreached")
	}
	got := at.(map[string]bool)
	for _, name := range []string{"a", "cond"} {
		if !got[name] {
			t.Errorf("join entry fact missing %q (both paths call it)", name)
		}
	}
	if !got["b"] {
		t.Error("join is a union: the then-branch call should survive the join")
	}
}

func TestForwardDataflowLoopFixpoint(t *testing.T) {
	c := buildBody(t, `
	for x() {
		y()
	}
	z()`)
	in := ForwardDataflow(c, map[string]bool{}, callSetFlow())
	at := in[blockCalling(t, c, "z")]
	if at == nil {
		t.Fatal("after-loop block unreached")
	}
	got := at.(map[string]bool)
	if !got["x"] || !got["y"] {
		t.Errorf("loop fixpoint lost facts: got %v, want x and y via the back edge", got)
	}
	// Dead blocks stay Bottom.
	c2 := buildBody(t, `
	return
	dead()`)
	in2 := ForwardDataflow(c2, map[string]bool{}, callSetFlow())
	if in2[blockCalling(t, c2, "dead")] != nil {
		t.Error("dead block should keep the Bottom fact")
	}
}

func TestBackwardDataflowBranchJoin(t *testing.T) {
	c := buildBody(t, `
	a()
	if cond() {
		b()
	}
	d()`)
	out := BackwardDataflow(c, map[string]bool{}, callSetFlow())
	at := out[blockCalling(t, c, "a")]
	if at == nil {
		t.Fatal("entry block cannot reach Exit?")
	}
	got := at.(map[string]bool)
	if !got["d"] {
		t.Error("exit fact at the entry block missing d (it lies ahead on every path)")
	}
	if !got["b"] {
		t.Error("join is a union: the then-branch call lies ahead on one path and should survive")
	}
	// a() and the if condition live in the entry block itself (the if
	// contributes its Cond to the current block): own nodes are the
	// transfer's business, not the block's exit fact.
	if got["a"] || got["cond"] {
		t.Errorf("a block's own nodes leaked into its exit fact: %v", got)
	}
}

func TestBackwardDataflowLoopFixpoint(t *testing.T) {
	c := buildBody(t, `
	for x() {
		y()
	}
	z()`)
	out := BackwardDataflow(c, map[string]bool{}, callSetFlow())
	at := out[blockCalling(t, c, "y")]
	if at == nil {
		t.Fatal("loop body cannot reach Exit?")
	}
	got := at.(map[string]bool)
	if !got["x"] || !got["z"] {
		t.Errorf("loop body's exit fact lost the path out: got %v, want x and z", got)
	}
	if !got["y"] {
		t.Errorf("loop fixpoint lost the back edge: got %v, want y (another pass lies ahead)", got)
	}
}

func TestBackwardDataflowUnreachableExit(t *testing.T) {
	// A block that cannot reach Exit (an infinite loop's body) keeps the
	// Bottom fact: no path ahead means no obligations ahead.
	c := buildBody(t, `
	a()
	for {
		y()
	}`)
	out := BackwardDataflow(c, map[string]bool{}, callSetFlow())
	if out[blockCalling(t, c, "y")] != nil {
		t.Error("infinite-loop body should keep the Bottom fact (it never reaches Exit)")
	}
	if out[blockCalling(t, c, "a")] != nil {
		t.Error("the prologue only flows into the infinite loop; it should stay Bottom too")
	}
}

func TestBackwardDataflowPanicReachesExit(t *testing.T) {
	// Terminators (panic, os.Exit) edge to Exit, so a panicking branch is
	// reverse-reachable and carries facts; analyzers that exempt dying
	// paths do so in their Transfer, not via missing edges.
	c := buildBody(t, `
	a()
	if cond() {
		panic(x())
	}
	d()`)
	out := BackwardDataflow(c, map[string]bool{}, callSetFlow())
	if out[blockCalling(t, c, "x")] == nil {
		t.Fatal("the panic block edges to Exit and must carry a fact")
	}
	at := out[blockCalling(t, c, "a")]
	if at == nil {
		t.Fatal("entry block cannot reach Exit?")
	}
	if got := at.(map[string]bool); !got["d"] {
		t.Errorf("fallthrough path lost: got %v, want d ahead of the entry block", got)
	}
}

func TestCFGDeferInLoopStaysInBody(t *testing.T) {
	// Defer registration is a plain node of the block it appears in — the
	// loop body — not hoisted to the function's exit; resleak relies on
	// this when it discharges obligations at the DeferStmt.
	c := buildBody(t, `
	for i := 0; i < n; i++ {
		f := open(i)
		defer release(f)
		use(f)
	}
	done()`)
	acquire := blockCalling(t, c, "open")
	deferBlk := blockWith(t, c, "defer", func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	if acquire != deferBlk {
		t.Error("the deferred release should sit in the same body block as the acquire")
	}
	if !reaches(deferBlk, acquire) {
		t.Error("loop body should reach itself via the back edge")
	}
	if !reaches(deferBlk, c.Exit) {
		t.Error("loop body should reach Exit through the loop condition")
	}
}

func TestCFGRecoverBlock(t *testing.T) {
	// A deferred recover closure is one opaque node: its body is not
	// spliced into the enclosing CFG, and the panic after it still
	// terminates its block straight to Exit.
	c := buildBody(t, `
	defer func() {
		if recover() != nil {
			cleanup()
		}
	}()
	work()
	panic(boom())`)
	if blk := blockCalling(t, c, "cleanup"); !hasSucc(blk, func(b *Block) bool { return b == c.Exit }) {
		// cleanup lives inside the DeferStmt's FuncLit, so the "block
		// calling cleanup" is the registration block itself.
		deferBlk := blockWith(t, c, "defer", func(n ast.Node) bool {
			_, ok := n.(*ast.DeferStmt)
			return ok
		})
		if blk != deferBlk {
			t.Error("recover closure should stay inside the DeferStmt node")
		}
	}
	panicBlk := blockCalling(t, c, "boom")
	if !hasSucc(panicBlk, func(b *Block) bool { return b == c.Exit }) {
		t.Error("panic should edge its block straight to Exit")
	}
}

func TestCFGGotoBackwardIntoReleasedRegion(t *testing.T) {
	// A backward goto re-enters a region whose handle was already
	// released on the fall-through path: the CFG must carry the back
	// edge so backward flow sees another use() pass ahead of release().
	c := buildBody(t, `
	f := open()
L:
	use(f)
	if cond() {
		goto L
	}
	release(f)`)
	useBlk := blockCalling(t, c, "use")
	gotoBlk := blockWith(t, c, "goto", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.GOTO
	})
	if !hasSucc(gotoBlk, func(b *Block) bool { return b == useBlk }) {
		t.Error("goto L should edge back to the labeled block")
	}
	out := BackwardDataflow(c, map[string]bool{}, callSetFlow())
	at := out[useBlk]
	if at == nil {
		t.Fatal("labeled block cannot reach Exit?")
	}
	got := at.(map[string]bool)
	if !got["release"] {
		t.Errorf("fall-through path lost: got %v, want release ahead", got)
	}
	if !got["use"] {
		t.Errorf("goto back edge lost: got %v, want use ahead (another pass)", got)
	}
}
