package analysis

import (
	"go/ast"
	"go/types"
)

// FuncInfo couples a declared function with its type object. Analyzers use
// it to key interprocedural summaries.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// PackageFuncs returns the package's declared functions (with bodies) in
// source order.
func PackageFuncs(pkg *Package) []FuncInfo {
	var out []FuncInfo
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, FuncInfo{Decl: fd, Obj: obj})
		}
	}
	return out
}

// CalleeFunc resolves a call expression to the *types.Func it statically
// invokes — a named function or a method called through a selector. Calls
// through function values, interfaces without a static method object, and
// builtins yield nil.
func CalleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	obj := calleeObject(pkg, call.Fun)
	fn, _ := obj.(*types.Func)
	return fn
}

// Summaries computes a bottom-up summary for every declared function of the
// package. compute builds one function's summary, reading its callees'
// summaries through get (nil until computed — the zero summary). Recursion
// and mutual recursion are handled by iterating to a fixpoint: summaries
// must therefore be monotone in their callees, and equal must report value
// equality. The iteration cap (len(funcs)+2 rounds) bounds pathological
// non-monotone compute functions instead of hanging.
func Summaries(pkg *Package, compute func(fn FuncInfo, get func(*types.Func) any) any, equal func(a, b any) bool) map[*types.Func]any {
	funcs := PackageFuncs(pkg)
	sums := make(map[*types.Func]any, len(funcs))
	get := func(f *types.Func) any { return sums[f] }
	for round := 0; round < len(funcs)+2; round++ {
		changed := false
		for _, fn := range funcs {
			next := compute(fn, get)
			if prev, ok := sums[fn.Obj]; !ok || !equal(prev, next) {
				sums[fn.Obj] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}
