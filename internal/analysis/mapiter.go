package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter reports ranges over maps whose bodies have order-sensitive
// effects. Go randomizes map iteration order on purpose, so any such loop
// is a determinism bug: the same scenario and seed can emit different
// bytes (docs/METRICS.md promises byte-identical streams). Four body
// effects count as order-sensitive:
//
//   - append to a slice declared outside the loop: the element order
//     changes run to run;
//   - compound floating-point accumulation (+=, -=, *=, /=) into a
//     variable declared outside the loop: float addition is not
//     associative, so even a "sum" picks up order-dependent rounding;
//   - stream writes (Write, WriteString, Encode, Fprintf, ...): JSONL/CSV
//     rows come out in a different order each run;
//   - writes into the very map being ranged: updating existing keys is
//     defined but fragile (inserting is not), and the recursion/update mix
//     reads as order-dependent.
//
// The blessed fix is to collect the keys (or rows), sort them, and only
// then consume the order. A loop whose appends feed a slice that a later
// statement of the same block sorts (sort.* or slices.*) is recognized as
// that idiom's first half and exempt. Writes keyed into a different map
// are order-insensitive and exempt. Test files are skipped (t.Errorf order
// does not reach any artifact); anything else intentional carries
// //lint:allow mapiter.
type MapIter struct{}

// Name implements Analyzer.
func (MapIter) Name() string { return "mapiter" }

// Doc implements Analyzer.
func (MapIter) Doc() string {
	return "map iteration with order-sensitive effects (append, float accumulation, stream writes)"
}

// orderedWriters are method/function names whose calls emit bytes in call
// order.
var orderedWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRecord": true, "WriteAll": true, "Encode": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// Check implements Analyzer.
func (m MapIter) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(node ast.Node) bool {
			var list []ast.Stmt
			switch n := node.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if ls, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = ls.Stmt
				}
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				out = append(out, m.checkRange(pkg, rs, list[i+1:])...)
			}
			return true
		})
	}
	return out
}

// checkRange inspects one range statement; rest holds the statements that
// follow it in the same block (for the sort-after exemption).
func (m MapIter) checkRange(pkg *Package, rs *ast.RangeStmt, rest []ast.Stmt) []Finding {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}

	mapObj := rootObject(pkg, rs.X)
	outside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}

	// Immediate effects end the scan with a finding; appends only collect —
	// they are fine exactly when a later statement sorts the slice.
	var effect string
	var effectPos token.Pos
	collected := make(map[types.Object]bool)
	record := func(msg string, pos token.Pos) {
		if effect == "" {
			effect, effectPos = msg, pos
		}
	}
	ast.Inspect(rs.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if target := rootObject(pkg, n.Args[0]); outside(target) {
						collected[target] = true
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && orderedWriters[sel.Sel.Name] {
				record("makes a stream write ("+sel.Sel.Name+") in map order", n.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if base := rootObject(pkg, ix.X); base != nil && base == mapObj {
						record("writes into the map being ranged over", lhs.Pos())
					}
					continue
				}
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Uses[id]
					if outside(obj) && isFloat(obj.Type()) {
						record("accumulates float "+id.Name+" in map order", lhs.Pos())
					}
				}
			}
		}
		return true
	})

	if effect != "" {
		return []Finding{{
			Analyzer: m.Name(),
			Pos:      pkg.Fset.Position(effectPos),
			Message:  "range over map " + exprString(rs.X) + " " + effect + "; iterate over sorted keys",
		}}
	}
	if len(collected) > 0 && !sortedAfter(pkg, rest, collected) {
		for obj := range collected {
			return []Finding{{
				Analyzer: m.Name(),
				Pos:      pkg.Fset.Position(rs.For),
				Message: "range over map " + exprString(rs.X) + " appends to " + obj.Name() +
					" which is never sorted afterwards; sort it before use",
			}}
		}
	}
	return nil
}

// sortedAfter reports whether any later statement sorts one of the
// collected slices via package sort or slices.
func sortedAfter(pkg *Package, rest []ast.Stmt, collected map[types.Object]bool) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, a := range call.Args {
				if collected[rootObject(pkg, a)] {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// rootObject resolves an expression to the object it reads: the identifier
// itself, or the selected field/method object of a selector chain.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel]
	}
	return nil
}

// exprString renders a short source form of simple expressions for
// messages.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "expression"
}
