package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp reports sentinel errors compared with == / != or matched in a
// switch: the serving layer annotates errors on every boundary (fmt.Errorf
// %w in the retry helper, journal recovery, RPC plumbing), so an identity
// comparison against a sentinel silently stops matching the moment anyone
// wraps. errors.Is is required.
//
// A sentinel is a package-level error variable — ours (sched.ErrInfeasible)
// or the standard library's (http.ErrServerClosed, flag.ErrHelp). Exempt:
// nil checks (the normal idiom), comparisons where neither side is a
// sentinel (err == tc.wantErr table lookups stay reviewable), and the
// other analyzers' fixtures.
type ErrCmp struct{}

// Name implements Analyzer.
func (ErrCmp) Name() string { return "errcmp" }

// Doc implements Analyzer.
func (ErrCmp) Doc() string {
	return "sentinel errors compared with == / != / switch; use errors.Is so wrapped errors still match"
}

// Check implements Analyzer.
func (e ErrCmp) Check(pkg *Package) []Finding {
	if foreignFixture(pkg.PkgPath, "testdata/src/errcmp") {
		return nil
	}
	var out []Finding
	report := func(pos token.Pos, msg string) {
		out = append(out, Finding{Analyzer: e.Name(), Pos: pkg.Fset.Position(pos), Message: msg})
	}
	inspect(pkg, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			if isNilExpr(pkg, x.X) || isNilExpr(pkg, x.Y) {
				return true
			}
			name := sentinelErr(pkg, x.X)
			if name == "" {
				name = sentinelErr(pkg, x.Y)
			}
			if name == "" || !isErrorExpr(pkg, x.X) || !isErrorExpr(pkg, x.Y) {
				return true
			}
			report(x.OpPos, "sentinel "+name+" compared with "+x.Op.String()+
				"; wrapped errors never match — use errors.Is(err, "+name+")")
		case *ast.SwitchStmt:
			if x.Tag == nil || !isErrorExpr(pkg, x.Tag) {
				return true
			}
			for _, clause := range x.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, ce := range cc.List {
					if name := sentinelErr(pkg, ce); name != "" {
						report(ce.Pos(), "switch case matches sentinel "+name+
							" by identity; wrapped errors never match — use an if/else chain with errors.Is")
					}
				}
			}
		}
		return true
	})
	SortFindings(out)
	return out
}

// sentinelErr reports the source form of an expression that names a
// package-level error variable, "" otherwise.
func sentinelErr(pkg *Package, e ast.Expr) string {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !implementsError(v.Type()) {
		return ""
	}
	return exprString(e)
}

// isErrorExpr reports whether an expression's type satisfies error.
func isErrorExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return implementsError(tv.Type)
}

// isNilExpr reports the predeclared nil.
func isNilExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	iface, ok := errorType.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
