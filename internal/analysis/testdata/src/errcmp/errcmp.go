// Package errcmp is an analyzer fixture: every line marked
// "// want errcmp" must be reported, and no other line may be.
package errcmp

import (
	"errors"
	"os"
)

// ErrBoom is a package-level sentinel: identity comparisons against it
// break as soon as a caller wraps it with fmt.Errorf("...: %w", err).
var ErrBoom = errors.New("boom")

// ErrQuiet is a second sentinel for the switch cases.
var ErrQuiet = errors.New("quiet")

// IdentityEq compares with ==: flagged.
func IdentityEq(err error) bool {
	return err == ErrBoom // want errcmp
}

// IdentityNeq compares with !=: flagged.
func IdentityNeq(err error) bool {
	return err != ErrBoom // want errcmp
}

// StdlibSentinel: standard-library sentinels are sentinels too.
func StdlibSentinel(err error) bool {
	return err == os.ErrNotExist // want errcmp
}

// SwitchSentinels matches sentinels by identity in a switch: each case
// expression is flagged.
func SwitchSentinels(err error) int {
	switch err {
	case ErrBoom: // want errcmp
		return 1
	case ErrQuiet: // want errcmp
		return 2
	case nil:
		return 0
	}
	return 3
}

// NilChecks are the normal control-flow idiom: exempt.
func NilChecks(err error) bool {
	if err == nil {
		return true
	}
	return err != nil && false
}

// UsesIs is the required form: exempt.
func UsesIs(err error) bool {
	return errors.Is(err, ErrBoom)
}

// LocalComparison: neither side is package-level, so table-driven
// err == tc.wantErr checks stay reviewable.
func LocalComparison(err error) bool {
	wantErr := errors.New("local")
	return err == wantErr
}

// NotAnError: package-level non-error variables are untouched.
var Mode = "fast"

// ModeIsFast compares plain values: exempt.
func ModeIsFast(m string) bool {
	return m == Mode
}
