// Package unitmix is an analyzer fixture: every line marked
// "// want unitmix" must be reported, and no other line may be.
package unitmix

import "greencell/internal/units"

// EraseUnit casts a typed energy back to a bare float64.
func EraseUnit(e units.Energy) float64 {
	return float64(e) // want unitmix
}

// CrossCast jumps quantities without a conversion helper.
func CrossCast(e units.Energy) units.Power {
	return units.Power(e) // want unitmix
}

// SquaredUnit multiplies two energies; the product is Wh², not Wh.
func SquaredUnit(a, b units.Energy) units.Energy {
	return a * b // want unitmix
}

// Sanctioned forms: accessors, constructors, constant scaling, same-unit
// sums, and conversion methods.
func Sanctioned(e units.Energy, p units.Power) float64 {
	doubled := e.Scale(2)
	tripled := e * 3
	total := doubled + tripled + units.Wh(1)
	return total.Wh() + p.OverHours(0.5).Wh()
}

// clamp converts through a ~float64 type parameter: exempt.
func clamp[T ~float64](v T) T {
	if float64(v) < 0 {
		return 0
	}
	return v
}

// Clamped keeps the generic instantiation live.
func Clamped(e units.Energy) units.Energy { return clamp(e) }

// Suppressed carries a justification: exempt.
func Suppressed(e units.Energy) float64 {
	//lint:allow unitmix -- fixture: the inline suppression must silence this
	return float64(e)
}
