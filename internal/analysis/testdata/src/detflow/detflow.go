// Package detflow is an analyzer fixture: every line marked
// "// want detflow" must be reported, and no other line may be.
package detflow

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"math/big"
	"sort"
	"time"
)

// jitter draws unseeded randomness; callers inherit the taint through the
// bottom-up return summary.
func jitter() int64 {
	v, err := rand.Int(rand.Reader, big.NewInt(1<<16))
	if err != nil {
		return 0
	}
	return v.Int64()
}

// Direct flows: a random draw and a wall-clock read reach buffer writes.
func Direct(buf *bytes.Buffer) {
	j := jitter()
	fmt.Fprintf(buf, "jitter=%d\n", j) // want detflow

	start := time.Now()             //lint:allow wallclock -- fixture: detflow owns the flow, not the read
	buf.WriteString(start.String()) // want detflow
}

// Branchy taints only one path; the join keeps the taint alive.
func Branchy(buf *bytes.Buffer, fast bool) {
	label := "fixed"
	if fast {
		label = fmt.Sprintf("j%d", jitter())
	}
	buf.WriteString(label) // want detflow
}

// Escaped is the flow mapiter cannot see: the order-dependent value leaves
// the loop and reaches a write later.
func Escaped(m map[string]int, buf *bytes.Buffer) {
	last := ""
	for k := range m {
		last = k // plain assignment: no in-loop effect for mapiter
	}
	buf.WriteString(last) // want detflow
}

// Laundered is the blessed collect-sort-consume idiom: the sort clears the
// map-order taint, so the writes are clean.
func Laundered(m map[string]int, buf *bytes.Buffer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteString(k)
	}
}

// Present prints to stdout: presentation, not a reproducible artifact.
func Present() {
	fmt.Printf("jitter=%d\n", jitter())
}
