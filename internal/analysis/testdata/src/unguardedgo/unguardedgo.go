// Package unguardedgo is an analyzer fixture: every line marked
// "// want unguardedgo" must be reported, and no other line may be.
package unguardedgo

import "sync"

// LoopCapture closes over the loop variables instead of receiving them as
// arguments.
func LoopCapture(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i // want unguardedgo
			_ = v // want unguardedgo
		}()
	}
	wg.Wait()
}

// SharedCounter mutates a captured variable without synchronization. The
// loop variable itself is passed as an argument, so only the write trips.
func SharedCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			total += j // want unguardedgo
		}(j)
	}
	wg.Wait()
	return total
}

// Blessed is the fan-out idiom of internal/sim/replicate.go: loop state
// passed as arguments, each goroutine writing its own slice index.
func Blessed(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func(idx, val int) {
			defer wg.Done()
			out[idx] = val * 2
		}(i, v)
	}
	wg.Wait()
	return out
}
