// Package norawrand is an analyzer fixture: every line marked
// "// want norawrand" must be reported, and no other line may be.
package norawrand

import (
	"math/rand" // want norawrand
	"time"

	"greencell/internal/rng"
)

// Draw keeps the raw import live.
func Draw() int { return rand.Int() }

// WallClockSeed derives a seed from the wall clock.
func WallClockSeed() *rng.Source {
	//lint:allow wallclock -- fixture: this line exists to trip norawrand only
	return rng.New(time.Now().UnixNano()) // want norawrand
}

// GoodSeed threads an explicit seed: not reported.
func GoodSeed(seed int64) *rng.Source { return rng.New(seed) }
