// Package hotalloc is an analyzer fixture: every line marked
// "// want hotalloc" must be reported, and no other line may be.
package hotalloc

import "fmt"

// Slot is one scheduling slot's scratch state.
type Slot struct {
	ID   int
	Load float64
}

// GrowUnbounded appends into a slice declared without capacity: the backing
// array reallocates log-many times across the loop.
func GrowUnbounded(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want hotalloc
	}
	return out
}

// GrowPrealloc reserves capacity up front: append never reallocates.
func GrowPrealloc(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}

// FreshBuffer allocates a scratch buffer every iteration.
func FreshBuffer(slots []Slot) float64 {
	total := 0.0
	for range slots {
		buf := make([]float64, 16) // want hotalloc
		total += buf[0]
	}
	return total
}

// ScratchMap allocates a map per iteration.
func ScratchMap(slots []Slot) int {
	total := 0
	for _, s := range slots {
		seen := map[int]bool{s.ID: true} // want hotalloc
		if seen[s.ID] {
			total++
		}
	}
	return total
}

// Capturing allocates a closure per iteration to carry loop state.
func Capturing(slots []Slot) []func() int {
	fns := make([]func() int, 0, len(slots))
	for i := range slots {
		s := &slots[i]
		fns = append(fns, func() int { return s.ID }) // want hotalloc
	}
	return fns
}

// Boxing converts a concrete float64 into an interface argument every
// iteration.
func Boxing(slots []Slot, emit func(...any)) {
	for _, s := range slots {
		emit(s.Load) // want hotalloc
	}
}

// ErrPath shows the exemption: allocations on the error exit happen at most
// once per loop, not per iteration.
func ErrPath(slots []Slot, check func(Slot) error) error {
	for _, s := range slots {
		if err := check(s); err != nil {
			return fmt.Errorf("slot %d: %w", s.ID, err)
		}
	}
	return nil
}

// Hoisted reuses one buffer across iterations: clean.
func Hoisted(slots []Slot) float64 {
	buf := make([]float64, 0, len(slots))
	total := 0.0
	for _, s := range slots {
		buf = append(buf, s.Load)
		total += s.Load
	}
	return total + float64(len(buf))
}
