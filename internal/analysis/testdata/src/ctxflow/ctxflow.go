// Package ctxflow is an analyzer fixture: every line marked
// "// want ctxflow" must be reported, and no other line may be.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// rpc stands in for a blocking round-trip that accepts a context.
func rpc(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// RebaseBeforeRPC discards the caller's ctx and then blocks: cancellation
// can no longer reach the round-trip.
func RebaseBeforeRPC(ctx context.Context, addr string) error {
	dctx, cancel := context.WithTimeout(context.Background(), timeout()) // want ctxflow
	defer cancel()
	return rpc(dctx, addr)
}

// DerivedIsFine threads the caller's ctx through the derived timeout.
func DerivedIsFine(ctx context.Context, addr string) error {
	dctx, cancel := context.WithTimeout(ctx, timeout())
	defer cancel()
	return rpc(dctx, addr)
}

// RebaseAfterBlocking roots a fresh context with nothing blocking ahead —
// stashing a detached context for later bookkeeping is exempt.
func RebaseAfterBlocking(ctx context.Context, addr string, sink *context.Context) error {
	err := rpc(ctx, addr)
	*sink = context.Background()
	return err
}

// TODOFeedsBlockingSameStatement: the rebase feeds the blocking call in the
// same statement.
func TODOFeedsBlockingSameStatement(ctx context.Context, addr string) error {
	return rpc(context.TODO(), addr) // want ctxflow
}

// LoopWithoutDone dispatches blocking sends forever without consulting ctx:
// a cancelled context never stops it.
func LoopWithoutDone(ctx context.Context, ch chan int) {
	for i := 0; ; i++ { // want ctxflow
		ch <- i
	}
}

// LoopWithDone selects on ctx.Done alongside the dispatch: clean.
func LoopWithDone(ctx context.Context, ch chan int) {
	for i := 0; ; i++ {
		select {
		case ch <- i:
		case <-ctx.Done():
			return
		}
	}
}

// LoopThreadsCtx passes ctx into the blocking call each pass: the callee
// observes cancellation, so the loop terminates with it.
func LoopThreadsCtx(ctx context.Context, addrs []string) error {
	for _, addr := range addrs {
		if err := rpc(ctx, addr); err != nil {
			return err
		}
	}
	return nil
}

// RangeOverChannel is the worker-loop contract: the producer closing the
// channel is the cancellation signal, so no ctx check is required.
func RangeOverChannel(ctx context.Context, jobs chan string) {
	for range jobs {
		work()
	}
}

// NoCtxParam roots its own context legitimately: constructors and Close
// methods are out of scope.
func NoCtxParam(ch chan struct{}) context.Context {
	ctx := context.Background()
	<-ch
	return ctx
}

// OpLiteral: a function literal declaring its own ctx parameter is its own
// function — the rebase inside it is flagged against the literal.
func OpLiteral(ctx context.Context, addr string) func() error {
	return func() error {
		op := func(ctx context.Context) error {
			return rpc(context.Background(), addr) // want ctxflow
		}
		return op(ctx)
	}
}

func timeout() time.Duration { return time.Millisecond }

func work() {}
