// Package locksafe is an analyzer fixture: every line marked
// "// want locksafe" must be reported, and no other line may be.
package locksafe

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Bad leaks the lock on the early-return path.
func (c *counter) Bad(stop bool) int {
	c.mu.Lock() // want locksafe
	if stop {
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Send holds the lock across a channel send; the deferred unlock does not
// help — the lock is held until the send completes.
func (c *counter) Send(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want locksafe
}

// wait blocks on a channel receive; callers holding a lock inherit that.
func wait(ch chan struct{}) {
	<-ch
}

// Indirect blocks through an in-package callee while holding the lock.
func (c *counter) Indirect(ch chan struct{}) {
	c.mu.Lock()
	wait(ch) // want locksafe
	c.mu.Unlock()
}

// Good releases through defer on every path.
func (c *counter) Good(stop bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stop {
		return -1
	}
	return c.n
}

// Branches unlocks explicitly on each path.
func (c *counter) Branches(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Loopy exercises loop joins: the lock state is identical around the back
// edge, so nothing is reported.
func (c *counter) Loopy(items []int) {
	c.mu.Lock()
	for _, it := range items {
		if it < 0 {
			continue
		}
		c.n += it
	}
	c.mu.Unlock()
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int
}

// Get pairs RLock with a deferred RUnlock: clean.
func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// Poll runs a non-blocking select under the read lock: a select with a
// default clause cannot stall, so holding the lock is fine.
func (t *table) Poll(ch chan int) {
	t.mu.RLock()
	select {
	case v := <-ch:
		t.rows["latest"] = v
	default:
	}
	t.mu.RUnlock()
}
