// Package droppederr is an analyzer fixture: every line marked
// "// want droppederr" must be reported, and no other line may be.
package droppederr

import (
	"fmt"
	"os"
	"strings"
)

// WriteLog drops errors three distinct ways.
func WriteLog(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()                // want droppederr
	_ = f.Sync()                   // want droppederr
	fmt.Errorf("silent: %s", path) // want droppederr
}

// PartialDiscard keeps the value on record: left to review, not reported.
func PartialDiscard(path string) *os.File {
	f, _ := os.Create(path)
	return f
}

// Infallible writers and stdout prints are exempt.
func Infallible() string {
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintf(&b, " %d", 1)
	fmt.Println("done")
	return b.String()
}
