// Package nofloateq is an analyzer fixture: every line marked
// "// want nofloateq" must be reported, and no other line may be.
package nofloateq

// Equal compares computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want nofloateq
}

// NotEqual compares computed floats exactly.
func NotEqual(a, b float64) bool {
	return a != b // want nofloateq
}

// Sentinel compares against a constant: exempt.
func Sentinel(a float64) bool { return a == 0 }

// Suppressed carries a justification: exempt.
func Suppressed(a, b float64) bool {
	//lint:allow nofloateq -- fixture: the inline suppression must silence this
	return a == b
}

// Ints are not floats: exempt.
func Ints(a, b int) bool { return a == b }
