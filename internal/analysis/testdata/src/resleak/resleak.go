// Package resleak is an analyzer fixture: every line marked
// "// want resleak" must be reported, and no other line may be.
package resleak

import (
	"errors"
	"os"
	"time"
)

// Leak reads the file and returns without ever closing it.
func Leak(path string) (int, error) {
	f, err := os.Open(path) // want resleak
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// EarlyReturn closes on the happy path but leaks on the read-error branch:
// the handle was used there, so that path must release it too.
func EarlyReturn(path string) error {
	f, err := os.Open(path) // want resleak
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return err
	}
	return f.Close()
}

// Deferred discharges the obligation for every later path, including the
// read-error return.
func Deferred(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	return f.Read(buf)
}

// ErrGuard is the idiomatic acquire shape: the error path abandons the
// handle unused (it is not a real handle there), and stays clean.
func ErrGuard(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// Transferred hands the handle itself to the caller: the caller owns the
// close.
func Transferred(path string) (*os.File, error) {
	return os.Open(path)
}

// holder wraps a handle; Close makes it a tracked in-package resource.
type holder struct{ f *os.File }

// Close releases the held handle.
func (h *holder) Close() error { return h.f.Close() }

// Stored parks the handle in a struct the caller receives: ownership
// transfers into the composite.
func Stored(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// HelperLeak acquires through the in-package wrapper Transferred — the
// freshness summary propagates the obligation — and leaks it on the
// stat-error path.
func HelperLeak(path string) error {
	f, err := Transferred(path) // want resleak
	if err != nil {
		return err
	}
	if _, err := f.Stat(); err != nil {
		return err
	}
	return f.Close()
}

// closeQuiet is an in-package releaser: passing a handle to it discharges
// the obligation.
func closeQuiet(f *os.File) error { return f.Close() }

// ReleasedViaHelper releases on both paths through the in-package helper.
func ReleasedViaHelper(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if _, err := f.Stat(); err != nil {
		return errors.Join(err, closeQuiet(f))
	}
	return closeQuiet(f)
}

// TickerLoop rebinds the ticker every iteration: each pass abandons the
// previous, still-running ticker.
func TickerLoop(ch chan struct{}, n int) {
	for i := 0; i < n; i++ {
		t := time.NewTicker(time.Millisecond) // want resleak
		select {
		case <-t.C:
		case <-ch:
		}
	}
}

// StoppedLoop stops the ticker before rebinding: clean.
func StoppedLoop(ch chan struct{}, n int) {
	for i := 0; i < n; i++ {
		t := time.NewTicker(time.Millisecond)
		select {
		case <-t.C:
		case <-ch:
		}
		t.Stop()
	}
}

// DeferredTimer is the sleepCtx shape: a deferred Stop discharges the
// timer on every path out.
func DeferredTimer(done chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// consume closes what it is given; the goroutine owns the handle.
func consume(f *os.File) {
	if err := f.Close(); err != nil {
		panic(err)
	}
}

// HandedToGoroutine transfers ownership into the spawned goroutine.
func HandedToGoroutine(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	go consume(f)
	return nil
}

// PanicPath: paths that die (panic, os.Exit, log.Fatal) are exempt — an
// explicit close cannot run there; defers are the tool for panic safety.
func PanicPath(path string) []byte {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	return buf
}

// Aliased moves the obligation to the alias, which is closed: clean.
func Aliased(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	g := f
	return g.Close()
}
