// Package mapiter is an analyzer fixture: every line marked
// "// want mapiter" must be reported, and no other line may be.
package mapiter

import (
	"bytes"
	"fmt"
	"sort"
)

// CollectUnsorted appends map keys but never sorts them.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want mapiter
		keys = append(keys, k)
	}
	return keys
}

// Accumulate sums floats in map order: non-associative rounding.
func Accumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want mapiter
	}
	return total
}

// Emit writes rows in map order.
func Emit(m map[string]float64) string {
	var buf bytes.Buffer
	for k, v := range m {
		fmt.Fprintf(&buf, "%s=%g\n", k, v) // want mapiter
	}
	return buf.String()
}

// ZeroInPlace mutates the map while ranging over it.
func ZeroInPlace(m map[string]float64) {
	for k := range m {
		m[k] = 0 // want mapiter
	}
}

// Blessed is the sanctioned shape: collect, sort, then consume the order.
func Blessed(m map[string]float64, buf *bytes.Buffer) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
		fmt.Fprintf(buf, "%s\n", k)
	}
	return total
}

// Rescale writes keyed into a different map: order-insensitive, exempt.
func Rescale(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Suppressed carries a justification: exempt.
func Suppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:allow mapiter -- fixture: the inline suppression must silence this
		total += v
	}
	return total
}
