// Package wallclock is an analyzer fixture: every line marked
// "// want wallclock" must be reported, and no other line may be.
package wallclock

import "time"

// Stamp reads the wall clock outside any allowlisted file.
func Stamp() string {
	return time.Now().Format(time.RFC3339) // want wallclock
}

// Elapsed times a callback with a raw clock read.
func Elapsed(f func()) time.Duration {
	start := time.Now() // want wallclock
	f()
	return time.Since(start)
}

// Suppressed carries a justification: exempt.
func Suppressed() int64 {
	//lint:allow wallclock -- fixture: the inline suppression must silence this
	return time.Now().UnixNano()
}

// Pure time arithmetic without a clock read: exempt.
func Pure(t0 time.Time, d time.Duration) time.Time { return t0.Add(d) }
