package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathPackages are the per-slot hot path: every slot of every replication
// runs through lp/sched/energymgmt/core, so a per-iteration allocation here
// is multiplied by slots × seeds × sweep cells (ROADMAP item 1's arena-style
// slice-reuse goal). The fixture package keeps the analyzer honest.
var HotPathPackages = []string{
	"internal/lp",
	"internal/sched",
	"internal/energymgmt",
	"internal/core",
	"testdata/src/hotalloc",
}

// HotAlloc flags per-iteration allocation sites inside loops of the declared
// hot-path packages:
//
//   - append into a slice declared in the same function without
//     preallocated capacity (make with a capacity, or a non-empty literal):
//     growth reallocates and copies log-many times per loop;
//   - make / new / slice-or-map composite literals inside a loop body: a
//     fresh allocation every iteration where a hoisted, reused buffer
//     would do;
//   - closures (func literals) capturing local state inside a loop: the
//     capture escapes and allocates per iteration — hoist the closure or
//     pass state as arguments;
//   - implicit interface boxing of a concrete value at a call argument
//     (e.g. a float64 into fmt.Sprintf's ...any): the box is a heap
//     allocation per call.
//
// Error paths are exempt — allocation inside an "if err != nil" branch, a
// return statement, or a panic argument happens at most once per loop exit,
// not per iteration. An allocation stored straight into an element or field
// of an enclosing structure ("c.q[s] = make(...)") is construction of a
// long-lived object, not churn, and is exempt. Boxing at fmt/log/errors
// calls is exempt: those calls allocate intrinsically, so the box is not
// the story. Constant arguments never box observably and are exempt. Test
// files are skipped; a site that is deliberate (a per-row result matrix,
// say) carries //lint:allow hotalloc with the reason.
type HotAlloc struct{}

// Name implements Analyzer.
func (HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (HotAlloc) Doc() string {
	return "per-iteration allocations in hot-path loops (append growth, make, closures, boxing)"
}

// Check implements Analyzer.
func (h HotAlloc) Check(pkg *Package) []Finding {
	if !inScope(pkg.PkgPath, HotPathPackages) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &allocWalker{
				pkg:    pkg,
				decls:  sliceDecls(pkg, fd.Body),
				stored: storedAllocs(fd.Body),
			}
			w.walk(fd.Body, 0, 0)
			out = append(out, w.out...)
		}
	}
	SortFindings(out)
	return out
}

// sliceDecls maps every slice variable declared in the body to whether its
// backing array was preallocated with capacity. A later re-make with
// capacity upgrades the entry.
func sliceDecls(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	decls := make(map[types.Object]bool)
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		prealloc, declared := preallocates(pkg, rhs)
		if !declared {
			return
		}
		if prev, ok := decls[obj]; ok {
			decls[obj] = prev || prealloc
		} else {
			decls[obj] = prealloc
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					record(name, rhs)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || i >= len(st.Rhs) && len(st.Rhs) != 1 {
					continue
				}
				var rhs ast.Expr
				if i < len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				record(id, rhs)
			}
		}
		return true
	})
	return decls
}

// preallocates classifies a slice variable's defining expression: declared
// reports whether this expression is a declaration-like form we track at
// all, prealloc whether it reserves capacity.
func preallocates(pkg *Package, rhs ast.Expr) (prealloc, declared bool) {
	if rhs == nil {
		return false, true // var s []T
	}
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false, false
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return false, false
		}
		// make([]T, n) reserves cap n; make([]T, 0) reserves nothing;
		// make([]T, n, c) reserves c.
		if len(x.Args) >= 3 {
			return !isZeroLit(x.Args[2]), true
		}
		if len(x.Args) == 2 {
			return !isZeroLit(x.Args[1]), true
		}
		return false, true
	case *ast.CompositeLit:
		return len(x.Elts) > 0, true
	}
	return false, false
}

// isZeroLit reports a literal 0.
func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// storedAllocs marks allocation expressions whose result is stored straight
// into an element or field of an enclosing structure ("c.q[s] = make(...)"):
// that is construction of a long-lived object, not per-iteration churn, and
// the make/literal rules leave it alone.
func storedAllocs(body *ast.BlockStmt) map[ast.Expr]bool {
	stored := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
				stored[ast.Unparen(as.Rhs[i])] = true
			}
		}
		return true
	})
	return stored
}

// allocWalker walks one function body tracking loop and error-path depth.
type allocWalker struct {
	pkg    *Package
	decls  map[types.Object]bool
	stored map[ast.Expr]bool
	out    []Finding
}

func (w *allocWalker) report(pos ast.Node, msg string) {
	w.out = append(w.out, Finding{
		Analyzer: HotAlloc{}.Name(),
		Pos:      w.pkg.Fset.Position(pos.Pos()),
		Message:  msg,
	})
}

// walk visits a node at the given loop nesting and error-path depth.
func (w *allocWalker) walk(node ast.Node, loops, errPath int) {
	switch n := node.(type) {
	case nil:
		return
	case *ast.ForStmt:
		w.walk(n.Init, loops, errPath)
		w.walk(n.Cond, loops, errPath)
		w.walk(n.Post, loops+1, errPath)
		w.walkList(n.Body.List, loops+1, errPath)
		return
	case *ast.RangeStmt:
		w.walk(n.X, loops, errPath)
		w.walkList(n.Body.List, loops+1, errPath)
		return
	case *ast.IfStmt:
		w.walk(n.Init, loops, errPath)
		w.walk(n.Cond, loops, errPath)
		bump := 0
		if w.mentionsError(n.Cond) {
			bump = 1
		}
		w.walkList(n.Body.List, loops, errPath+bump)
		w.walk(n.Else, loops, errPath+bump)
		return
	case *ast.ReturnStmt:
		// Leaving the function: at most once per loop, not per iteration.
		for _, r := range n.Results {
			w.walk(r, loops, errPath+1)
		}
		return
	case *ast.FuncLit:
		if loops > 0 && errPath == 0 && w.captures(n) {
			w.report(n, "closure captures local state inside a loop, allocating per iteration; hoist it or pass the state as arguments")
		}
		// The body runs when called, not per iteration of these loops.
		w.walkList(n.Body.List, 0, 0)
		return
	case *ast.CallExpr:
		w.call(n, loops, errPath)
		// Arguments and Fun are visited by call itself.
		return
	case *ast.CompositeLit:
		if loops > 0 && errPath == 0 && !w.stored[n] {
			if tv, ok := w.pkg.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					w.report(n, "slice literal allocates per loop iteration; hoist the buffer out of the loop and reuse it")
				case *types.Map:
					w.report(n, "map literal allocates per loop iteration; hoist it out of the loop and reuse it")
				}
			}
		}
		for _, el := range n.Elts {
			w.walk(el, loops, errPath)
		}
		return
	}
	// Generic descent for everything else.
	walkChildren(node, func(c ast.Node) { w.walk(c, loops, errPath) })
}

func (w *allocWalker) walkList(list []ast.Stmt, loops, errPath int) {
	for _, s := range list {
		w.walk(s, loops, errPath)
	}
}

// call handles the three call-shaped rules: append growth, make/new per
// iteration, and interface boxing of arguments.
func (w *allocWalker) call(call *ast.CallExpr, loops, errPath int) {
	pkg := w.pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if loops > 0 && len(call.Args) > 0 {
					if obj := rootObject(pkg, rootExpr(call.Args[0])); obj != nil {
						if prealloc, tracked := w.decls[obj]; tracked && !prealloc {
							w.report(call, "append to "+obj.Name()+" inside a loop without preallocated capacity; make("+
								"len 0, cap n) before the loop so growth never reallocates")
						}
					}
				}
			case "make":
				if loops > 0 && errPath == 0 && !w.stored[call] {
					w.report(call, "make inside a loop allocates per iteration; hoist the buffer out of the loop and reuse it")
				}
			case "new":
				if loops > 0 && errPath == 0 && !w.stored[call] {
					w.report(call, "new inside a loop allocates per iteration; hoist the value out of the loop and reuse it")
				}
			case "panic":
				errPath++ // a panicking iteration is the last one
			}
			for _, a := range call.Args {
				w.walk(a, loops, errPath)
			}
			return
		}
	}
	// Type conversions are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.walk(a, loops, errPath)
		}
		return
	}
	if loops > 0 && errPath == 0 {
		w.checkBoxing(call)
	}
	w.walk(call.Fun, loops, errPath)
	for _, a := range call.Args {
		w.walk(a, loops, errPath)
	}
}

// checkBoxing flags concrete values implicitly converted to interface
// parameters: each such argument is a heap allocation per call.
func (w *allocWalker) checkBoxing(call *ast.CallExpr) {
	pkg := w.pkg
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	// Formatting and error construction allocate intrinsically; flagging each
	// boxed argument would triple-report one conceptual issue. The actionable
	// advice there is "move the formatting off the hot path", which the write
	// analyzers (mapiter, detflow) and profiles cover.
	if obj := calleeObject(pkg, call.Fun); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt", "log", "errors":
			return
		}
	}
	if call.Ellipsis.IsValid() {
		return // f(xs...) passes the slice; nothing boxes here
	}
	nParams := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= nParams-1:
			pt = sig.Params().At(nParams - 1).Type().(*types.Slice).Elem()
		case i < nParams:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := pkg.Info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil {
			continue // constants fold; only runtime values box
		}
		if !boxes(atv.Type) {
			continue
		}
		w.report(arg, "interface boxing of "+types.TypeString(atv.Type, types.RelativeTo(pkg.Types))+
			" allocates per loop iteration; keep the hot path monomorphic or move the call off it")
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: word-sized reference types (pointers, maps, chans, funcs,
// unsafe pointers) fit the data word directly, everything concrete does
// not.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

// captures reports whether a func literal references a variable declared
// outside itself (a closure that must heap-allocate its environment).
func (w *allocWalker) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pkg.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Declared before the literal but inside some function: a local of
		// an enclosing scope. Package-level vars live in static memory.
		if v.Parent() != nil && v.Parent() != w.pkg.Types.Scope() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsError reports whether a condition reads an error-typed value —
// the "if err != nil" family.
func (w *allocWalker) mentionsError(cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := w.pkg.Info.Types[e]; ok && tv.Type != nil && types.Identical(tv.Type, errorType) {
			found = true
		}
		return !found
	})
	return found
}
