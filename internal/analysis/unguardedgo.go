package analysis

import (
	"go/ast"
	"go/types"
)

// UnguardedGo reports goroutine launches that do not follow the project's
// blessed fan-out pattern (internal/sim/replicate.go: loop state passed as
// arguments, each goroutine writing its own slice index):
//
//   - a "go func(){...}()" inside a loop whose body captures the loop
//     variables instead of receiving them as arguments. Go 1.22 made the
//     capture race-free, but the explicit-argument form keeps the data flow
//     reviewable and survives refactors that hoist the closure;
//   - a goroutine body that assigns directly to a variable captured from
//     the enclosing function without a synchronization primitive in the
//     body (mutex, channel operation, sync/atomic, or WaitGroup other than
//     Done). Writes through an index expression are allowed — that is the
//     distinct-slot pattern — as are deferred wg.Done calls.
type UnguardedGo struct{}

// Name implements Analyzer.
func (UnguardedGo) Name() string { return "unguardedgo" }

// Doc implements Analyzer.
func (UnguardedGo) Doc() string {
	return "goroutines capturing loop variables or mutating shared state unsynchronized"
}

// Check implements Analyzer.
func (u UnguardedGo) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		// loopVars maps each active loop's variable objects while walking.
		var walk func(node ast.Node, loopVars map[types.Object]bool)
		walk = func(node ast.Node, loopVars map[types.Object]bool) {
			switch n := node.(type) {
			case nil:
				return
			case *ast.RangeStmt:
				inner := extend(loopVars, pkg, n.Key, n.Value)
				walkChildren(n.Body, func(c ast.Node) { walk(c, inner) })
				return
			case *ast.ForStmt:
				inner := loopVars
				if init, ok := n.Init.(*ast.AssignStmt); ok {
					exprs := make([]ast.Expr, len(init.Lhs))
					copy(exprs, init.Lhs)
					inner = extend(loopVars, pkg, exprs...)
				}
				if n.Body != nil {
					walkChildren(n.Body, func(c ast.Node) { walk(c, inner) })
				}
				return
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, u.checkGoroutine(pkg, n, lit, loopVars)...)
				}
			case *ast.FuncLit:
				// A nested non-go closure resets nothing; keep walking with
				// the same loop variables (it may itself contain loops).
			}
			walkChildren(node, func(c ast.Node) { walk(c, loopVars) })
		}
		walk(file, nil)
	}
	return out
}

// checkGoroutine inspects one "go func(){...}(...)" launch.
func (u UnguardedGo) checkGoroutine(pkg *Package, g *ast.GoStmt, lit *ast.FuncLit, loopVars map[types.Object]bool) []Finding {
	var out []Finding

	// Rule 1: loop-variable capture. Any use inside the literal of an
	// object that is a loop variable of an enclosing loop is a capture —
	// arguments passed at the call site are evaluated outside the literal,
	// so they do not trip this.
	if len(loopVars) > 0 {
		reported := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !loopVars[obj] || reported[obj] {
				return true
			}
			reported[obj] = true
			out = append(out, Finding{
				Analyzer: u.Name(),
				Pos:      pkg.Fset.Position(id.Pos()),
				Message:  "goroutine captures loop variable " + obj.Name() + "; pass it as an argument (see internal/sim/replicate.go)",
			})
			return true
		})
	}

	// Rule 2: unsynchronized writes to captured variables.
	if usesSyncPrimitive(pkg, lit.Body) {
		return out
	}
	params := make(map[types.Object]bool)
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	local := func(obj types.Object) bool {
		return obj == nil || params[obj] ||
			(lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End())
	}
	checkTarget := func(expr ast.Expr) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return // index/selector/deref targets are the blessed patterns
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || local(obj) {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		out = append(out, Finding{
			Analyzer: u.Name(),
			Pos:      pkg.Fset.Position(id.Pos()),
			Message:  "goroutine writes captured variable " + obj.Name() + " without synchronization",
		})
	}
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(st.X)
		case *ast.FuncLit:
			return false // nested goroutine bodies are visited separately
		}
		return true
	})
	return out
}

// usesSyncPrimitive reports whether a goroutine body contains a recognized
// synchronization: sync.Mutex/RWMutex Lock, channel send/receive/select,
// or a sync/atomic call.
func usesSyncPrimitive(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch n := node.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			// Channel receive used as an expression.
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if s, ok := pkg.Info.Selections[sel]; ok && isSyncType(s.Recv()) {
						found = true
					}
				}
				if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isSyncType reports whether t belongs to package sync (Mutex, RWMutex, …).
func isSyncType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// extend copies a loop-variable set and adds the objects defined by exprs.
func extend(base map[types.Object]bool, pkg *Package, exprs ...ast.Expr) map[types.Object]bool {
	inner := make(map[types.Object]bool, len(base)+2)
	for k, v := range base {
		inner[k] = v
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
	}
	return inner
}

// walkChildren visits a node's immediate children.
func walkChildren(node ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(node, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
