package bip

import (
	"math"
	"testing"

	"greencell/internal/lp"
	"greencell/internal/rng"
)

func TestKnapsack(t *testing.T) {
	// max 60a + 100b + 120c s.t. 10a + 20b + 30c <= 50, binary.
	// Optimum: b + c = 220.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddVar("a", 0, 1, 60)
	b := p.AddVar("b", 0, 1, 100)
	c := p.AddVar("c", 0, 1, 120)
	p.AddConstraint("w", lp.LE, 50, lp.Term{Var: a, Coef: 10}, lp.Term{Var: b, Coef: 20}, lp.Term{Var: c, Coef: 30})
	sol, err := Solve(p, []lp.VarID{a, b, c}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-220) > 1e-6 {
		t.Errorf("objective = %v, want 220", sol.Objective)
	}
	if sol.Value(a) != 0 || sol.Value(b) != 1 || sol.Value(c) != 1 {
		t.Errorf("solution = (%v,%v,%v), want (0,1,1)", sol.Value(a), sol.Value(b), sol.Value(c))
	}
}

func TestInfeasibleBinary(t *testing.T) {
	// a + b = 1.5 has no binary solution but a fractional one, so the root
	// LP is feasible and both branches die.
	p := lp.NewProblem(lp.Minimize)
	a := p.AddVar("a", 0, 1, 1)
	b := p.AddVar("b", 0, 1, 1)
	p.AddConstraint("odd", lp.EQ, 1.5,
		lp.Term{Var: a, Coef: 1}, lp.Term{Var: b, Coef: 0.25})
	sol, err := Solve(p, []lp.VarID{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// One binary gate y, one continuous x <= 5y: max x - 3y.
	// y=1 gives 5-3=2; y=0 gives 0. Optimum 2.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0, math.Inf(1), 1)
	y := p.AddVar("y", 0, 1, -3)
	p.AddConstraint("gate", lp.LE, 0, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: -5})
	sol, err := Solve(p, []lp.VarID{y}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestRejectsNonBinaryBounds(t *testing.T) {
	p := lp.NewProblem(lp.Minimize)
	x := p.AddVar("x", 0, 3, 1)
	if _, err := Solve(p, []lp.VarID{x}, Options{}); err == nil {
		t.Fatal("expected ErrNotBinary")
	}
}

func TestNodeLimit(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	var ids []lp.VarID
	terms := make([]lp.Term, 0, 12)
	src := rng.New(5)
	for i := 0; i < 12; i++ {
		id := p.AddVar("x", 0, 1, src.Uniform(1, 2))
		ids = append(ids, id)
		terms = append(terms, lp.Term{Var: id, Coef: src.Uniform(1, 2)})
	}
	p.AddConstraint("w", lp.LE, 6.5, terms...)
	sol, err := Solve(p, ids, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
}

// TestAgainstExhaustive compares branch and bound with full enumeration of
// all binary assignments on random problems.
func TestAgainstExhaustive(t *testing.T) {
	src := rng.New(314)
	for trial := 0; trial < 80; trial++ {
		n := 2 + src.Intn(5) // up to 6 binaries
		m := 1 + src.Intn(3)
		maximize := src.Bernoulli(0.5)
		sense := lp.Minimize
		if maximize {
			sense = lp.Maximize
		}
		p := lp.NewProblem(sense)
		ids := make([]lp.VarID, n)
		cost := make([]float64, n)
		for j := 0; j < n; j++ {
			cost[j] = src.Uniform(-3, 3)
			ids[j] = p.AddVar("x", 0, 1, cost[j])
		}
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			terms := make([]lp.Term, n)
			for j := 0; j < n; j++ {
				rows[i][j] = src.Uniform(-2, 2)
				terms[j] = lp.Term{Var: ids[j], Coef: rows[i][j]}
			}
			rhs[i] = src.Uniform(0, 3) // all-zeros always feasible
			p.AddConstraint("row", lp.LE, rhs[i], terms...)
		}

		sol, err := Solve(p, ids, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (all-zeros is feasible)", trial, sol.Status)
		}

		best := math.Inf(1)
		if maximize {
			best = math.Inf(-1)
		}
		for mask := 0; mask < 1<<n; mask++ {
			feasible := true
			for i := 0; i < m && feasible; i++ {
				lhs := 0.0
				for j := 0; j < n; j++ {
					if mask&(1<<j) != 0 {
						lhs += rows[i][j]
					}
				}
				if lhs > rhs[i]+1e-9 {
					feasible = false
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += cost[j]
				}
			}
			if maximize {
				best = math.Max(best, obj)
			} else {
				best = math.Min(best, obj)
			}
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: bnb %v, exhaustive %v", trial, sol.Objective, best)
		}
	}
}

func TestUnboundedRelaxationIsError(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	y := p.AddVar("y", 0, 1, 1)
	p.AddVar("x", 0, math.Inf(1), 1) // continuous, unbounded upward
	if _, err := Solve(p, []lp.VarID{y}, Options{}); err == nil {
		t.Fatal("unbounded relaxation should surface as an error")
	}
}

func TestSolveErrorPropagation(t *testing.T) {
	p := lp.NewProblem(lp.Minimize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddConstraint("bad", lp.LE, 1, lp.Term{Var: lp.VarID(9), Coef: 1})
	if _, err := Solve(p, []lp.VarID{x}, Options{}); err == nil {
		t.Fatal("structural LP error should propagate")
	}
}

func TestValueOutOfRange(t *testing.T) {
	s := &Solution{}
	if s.Value(lp.VarID(3)) != 0 {
		t.Error("missing incumbent should read 0")
	}
}
