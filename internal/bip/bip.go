// Package bip solves small binary integer programs exactly by LP-based
// branch and bound.
//
// The paper's link-scheduling subproblem S1 is a Binary Integer Program that
// the proposed system solves with the sequential-fix heuristic; this package
// provides the exact reference solver used in tests and ablation benchmarks
// to measure the heuristic's optimality gap.
package bip

import (
	"errors"
	"fmt"
	"math"

	"greencell/internal/lp"
)

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the returned incumbent is proven optimal.
	Optimal Status = iota + 1
	// Infeasible means no assignment of the binaries satisfies the LP.
	Infeasible
	// NodeLimit means the search hit Options.MaxNodes; the returned
	// incumbent (if any) is feasible but not proven optimal.
	NodeLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options configures the search.
type Options struct {
	// MaxNodes caps the number of LP relaxations solved. Zero means the
	// default of 100000.
	MaxNodes int
	// IntTol is the tolerance for treating an LP value as integral.
	// Zero means the default of 1e-6.
	IntTol float64
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored (each node
	// solves one LP relaxation).
	Nodes int
	// LPIterations is the total simplex iterations across all relaxation
	// solves — the work measure surfaced by the metrics layer.
	LPIterations int

	values []float64
}

// Value returns the optimal value of v, or 0 if no incumbent was found.
func (s *Solution) Value(v lp.VarID) float64 {
	if s.values == nil || int(v) >= len(s.values) {
		return 0
	}
	return s.values[v]
}

// ErrNotBinary reports that a declared binary variable does not have bounds
// within [0,1].
var ErrNotBinary = errors.New("bip: binary variable bounds must lie within [0,1]")

// Solve minimizes (or maximizes, per the problem's sense) p subject to the
// additional requirement that every variable in binaries takes value 0 or 1.
// p is not modified.
func Solve(p *lp.Problem, binaries []lp.VarID, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	for _, v := range binaries {
		lo, hi := p.VarBounds(v)
		if lo < -1e-9 || hi > 1+1e-9 {
			return nil, fmt.Errorf("%w: var %d has bounds [%v,%v]", ErrNotBinary, v, lo, hi)
		}
	}

	// Work on fixed bounds via cloned problems on a DFS stack.
	type node struct {
		prob *lp.Problem
	}
	root := node{prob: p.Clone()}
	stack := []node{root}

	maximize := isMaximize(p)
	better := func(a, b float64) bool { // is a strictly better than b
		if maximize {
			return a > b+1e-12
		}
		return a < b-1e-12
	}

	sol := &Solution{Status: Infeasible}
	haveIncumbent := false
	incumbentObj := math.Inf(1)
	if maximize {
		incumbentObj = math.Inf(-1)
	}

	for len(stack) > 0 {
		if sol.Nodes >= opts.MaxNodes {
			if haveIncumbent {
				sol.Status = NodeLimit
				sol.Objective = incumbentObj
			} else {
				sol.Status = NodeLimit
			}
			return sol, nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		rel, err := nd.prob.Solve()
		if err != nil {
			return nil, err
		}
		sol.LPIterations += rel.Iterations
		switch rel.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// With all binaries boxed this can only come from continuous
			// variables; surface it as an error because the caller's model
			// is broken.
			return nil, errors.New("bip: LP relaxation unbounded")
		case lp.IterationLimit:
			return nil, errors.New("bip: LP relaxation hit iteration limit")
		}

		// Bound: prune if the relaxation cannot beat the incumbent.
		if haveIncumbent && !better(rel.Objective, incumbentObj) {
			continue
		}

		// Find the most fractional binary.
		branch := lp.VarID(-1)
		worst := opts.IntTol
		for _, v := range binaries {
			val := rel.Value(v)
			frac := math.Abs(val - math.Round(val))
			if frac > worst {
				worst = frac
				branch = v
			}
		}
		if branch < 0 {
			// Integral: candidate incumbent.
			if !haveIncumbent || better(rel.Objective, incumbentObj) {
				haveIncumbent = true
				incumbentObj = rel.Objective
				sol.values = rel.Values()
				// Snap binaries exactly.
				for _, v := range binaries {
					sol.values[v] = math.Round(sol.values[v])
				}
			}
			continue
		}

		// Branch: explore the rounded-nearest side last so DFS pops it first.
		up := nd.prob.Clone()
		up.SetVarBounds(branch, 1, 1)
		down := nd.prob.Clone()
		down.SetVarBounds(branch, 0, 0)
		if rel.Value(branch) >= 0.5 {
			stack = append(stack, node{down}, node{up})
		} else {
			stack = append(stack, node{up}, node{down})
		}
	}

	if haveIncumbent {
		sol.Status = Optimal
		sol.Objective = incumbentObj
	}
	return sol, nil
}

func isMaximize(p *lp.Problem) bool {
	return p.Sense() == lp.Maximize
}
