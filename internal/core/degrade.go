// Graceful per-slot degradation: the safe actions each stage falls back to
// when its solve fails (organically or by injection) or exceeds the slot's
// solve budget, plus the observation repair that precedes them. Safe
// actions are feasible by construction — they satisfy the per-slot
// constraints of eqs. (9)–(14) and (22) unconditionally — so the invariant
// checker (internal/invariant) passes on degraded slots. Queues keep
// evolving under a safe action: admission and transmission stop for the
// slot, but arrivals already queued stay queued and batteries follow the
// greedy energy split. See docs/ROBUSTNESS.md.

package core

import (
	"errors"
	"math"

	"greencell/internal/alloc"
	"greencell/internal/energymgmt"
	"greencell/internal/faultinject"
	"greencell/internal/routing"
	"greencell/internal/sched"
	"greencell/internal/topology"
	"greencell/internal/units"
)

// Degradation cause labels, as surfaced in SlotResult.DegradedCauses and
// the degraded_cause_* metrics (docs/METRICS.md).
const (
	CauseObs          = "obs"
	CauseLatency      = "latency"
	CauseDeadline     = "deadline"
	CauseS1Infeasible = "s1_infeasible"
	CauseS1IterLimit  = "s1_iterlimit"
	CauseS2Fault      = "s2_fault"
	CauseS3Fault      = "s3_fault"
	CauseS4Infeasible = "s4_infeasible"
	CauseS4IterLimit  = "s4_iterlimit"
)

// idleAssignment is S1's safe action: the all-idle schedule α = 0 — no
// link gets a band, power, or rate. The zero schedule satisfies the radio
// constraint (22) and the SINR rows (24) trivially, and under it the
// virtual queues H simply absorb this slot's routed load (eq. (30)).
func idleAssignment(net *topology.Network) *sched.Assignment {
	n := len(net.Links)
	asg := &sched.Assignment{
		LinkBand: make([]int, n),
		PowerW:   make([]float64, n),
		RateBits: make([]float64, n),
		Activity: make([]float64, n),
	}
	for l := range asg.LinkBand {
		asg.LinkBand[l] = -1
	}
	return asg
}

// safeAllocation is S2's safe action: admit nothing. Zero admission
// satisfies the admission bound k_s ≤ K_s^max trivially and only defers
// traffic (DroppedPkts accounts for it). Sources still need valid values —
// downlink sessions point at the first base station, uplink at their fixed
// user — because the queue update and delay FIFOs index by source even
// when the admitted amount is zero.
func (c *Controller) safeAllocation() *alloc.Decision {
	sessions := c.cfg.Traffic.Sessions
	dec := &alloc.Decision{
		Source: make([]int, len(sessions)),
		Admit:  make([]float64, len(sessions)),
	}
	bs := c.cfg.Net.BaseStations()
	for s, sess := range sessions {
		if sess.Uplink {
			dec.Source[s] = sess.Source
		} else {
			dec.Source[s] = bs[0]
		}
	}
	return dec
}

// safeRouting is S3's safe action: route nothing. Zero flows satisfy the
// per-link capacity and non-negativity constraints trivially; backlogs
// stay where they are for one slot.
func (c *Controller) safeRouting() *routing.Decision {
	flow := make([][]float64, len(c.cfg.Net.Links))
	for l := range flow {
		flow[l] = make([]float64, c.cfg.Traffic.NumSessions())
	}
	return &routing.Decision{Flow: flow}
}

// injectObs corrupts the observation at any firing input-fault site,
// cloning the affected slice first: environments like FixedEnvironment
// hand out shared backing arrays that must never be mutated.
func (c *Controller) injectObs(obs *Observation) {
	injectObsFaults(c.cfg.Faults, c.slot, obs)
}

// injectObsFaults is injectObs decoupled from the controller, shared
// with PrepareObservation.
func injectObsFaults(inj *faultinject.Injector, slot int, obs *Observation) {
	if inj == nil {
		return
	}
	if len(obs.RenewWh) > 0 && inj.Fires(faultinject.ObsRenewableNaN, slot) {
		obs.RenewWh = append([]units.Energy(nil), obs.RenewWh...)
		obs.RenewWh[inj.Index(faultinject.ObsRenewableNaN, slot, len(obs.RenewWh))] = units.Wh(math.NaN())
	}
	if len(obs.Widths) > 0 && inj.Fires(faultinject.ObsWidthInf, slot) {
		obs.Widths = append([]units.Bandwidth(nil), obs.Widths...)
		obs.Widths[inj.Index(faultinject.ObsWidthInf, slot, len(obs.Widths))] = units.Hz(math.Inf(1))
	}
}

// PrepareObservation applies the injector's observation faults and the
// standard repair to obs, exactly as Controller.Step does before
// solving. The distributed runner (internal/machine) uses it so the
// physical ground truth it distributes to nodes degrades the same way
// the monolith's inputs do; the corruption is idempotent — re-applying
// it to already-repaired values re-zeroes the same indices — so the
// coordinator's embedded Step may apply it again without divergence. It
// reports whether anything was repaired (the CauseObs condition).
func PrepareObservation(inj *faultinject.Injector, slot int, obs *Observation) bool {
	injectObsFaults(inj, slot, obs)
	return sanitizeObs(obs)
}

// sanitizeObs repairs non-finite or negative band widths and renewable
// readings by zeroing them — the conservative reading: a dead band, no
// harvest — so corrupted inputs can never poison the solves or the queue
// arithmetic. Slices are cloned before the first repair (shared backing
// arrays again). It reports whether anything was repaired.
func sanitizeObs(obs *Observation) bool {
	var wDirty, rDirty bool
	obs.Widths, wDirty = cleanSlice(obs.Widths)
	obs.RenewWh, rDirty = cleanSlice(obs.RenewWh)
	return wDirty || rDirty
}

// cleanSlice zeroes non-finite or negative entries of a unit-typed slice,
// cloning it before the first repair, and reports whether it repaired
// anything.
func cleanSlice[T ~float64](xs []T) ([]T, bool) {
	cloned := false
	dirty := false
	for i, v := range xs {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v < 0 {
			if !cloned {
				xs = append([]T(nil), xs...)
				cloned = true
			}
			xs[i] = 0
			dirty = true
		}
	}
	return xs, dirty
}

// solveCause classifies a stage error into its degradation cause label, or
// "" when the error is not a recognized solver outcome — config and
// programming errors still abort the run. infeasible/iterlimit name the
// stage's sentinel pair; fault is the catch-all label for an injected
// failure of a stage without sentinels (S2/S3).
func solveCause(err error, infeasible, iterlimit, fault string) string {
	switch {
	case errors.Is(err, sched.ErrIterationLimit), errors.Is(err, energymgmt.ErrIterationLimit):
		return iterlimit
	case errors.Is(err, sched.ErrInfeasible), errors.Is(err, energymgmt.ErrInfeasible):
		return infeasible
	case errors.Is(err, faultinject.ErrInjected):
		return fault
	default:
		return ""
	}
}
