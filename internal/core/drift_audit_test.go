package core

import (
	"testing"

	"greencell/internal/energy"
	"greencell/internal/rng"
	"greencell/internal/topology"
	"greencell/internal/traffic"
)

// TestDriftAuditLemma1 numerically verifies Lemma 1 on live trajectories:
// every slot's realized Lyapunov drift must respect
// ΔL ≤ SquareTerms + CrossTerms, and the realized SquareTerms must stay
// below the a-priori constant B of eq. (34).
func TestDriftAuditLemma1(t *testing.T) {
	cfg, _ := smallConfig(t, 11)
	cfg.AuditDrift = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	maxSquare := 0.0
	for slot := 0; slot < 60; slot++ {
		res, err := c.Step(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Audit == nil {
			t.Fatal("AuditDrift set but no audit recorded")
		}
		a := res.Audit
		if a.Drift > a.SquareTerms+a.CrossTerms+1e-6*(1+a.LBefore+a.LAfter) {
			t.Fatalf("slot %d: drift %v exceeds realized bound %v",
				slot, a.Drift, a.SquareTerms+a.CrossTerms)
		}
		if a.SquareTerms > maxSquare {
			maxSquare = a.SquareTerms
		}
		if !a.Holds() {
			t.Fatalf("slot %d: audit does not hold: %+v", slot, a)
		}
	}
	t.Logf("max realized SquareTerms = %.4g vs B = %.4g (ratio %.3g)",
		maxSquare, c.B(), maxSquare/c.B())
}

func TestAuditDisabledByDefault(t *testing.T) {
	cfg, _ := smallConfig(t, 12)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit != nil {
		t.Error("audit recorded without AuditDrift")
	}
}

// TestDelayTrackingConsistent verifies the FIFO shadow stays in lockstep
// with the queue backlogs and produces sane delay statistics.
func TestDelayTrackingConsistent(t *testing.T) {
	cfg, net := smallConfig(t, 13)
	cfg.TrackDelay = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	delivered := 0.0
	for slot := 0; slot < 40; slot++ {
		res, err := c.Step(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.DeliveredPkts {
			delivered += d
		}
		// FIFO totals must equal the queue backlogs exactly.
		for s := 0; s < cfg.Traffic.NumSessions(); s++ {
			for i := range net.Nodes {
				q := c.q[s][i].Backlog()
				f := c.fifos[s][i].Total()
				if diff := q - f; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("slot %d: FIFO total %v != backlog %v at (s=%d,i=%d)",
						slot, f, q, s, i)
				}
			}
		}
	}
	totalCounted := 0.0
	for s := 0; s < cfg.Traffic.NumSessions(); s++ {
		mean, max, count := c.SessionDelay(s)
		totalCounted += count
		if mean < 0 || max < mean {
			t.Errorf("session %d: delay stats mean=%v max=%v", s, mean, max)
		}
	}
	if diff := totalCounted - delivered; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("delay-tracked deliveries %v != delivered packets %v", totalCounted, delivered)
	}
}

func TestSessionDelayWithoutTracking(t *testing.T) {
	cfg, _ := smallConfig(t, 14)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if mean, max, count := c.SessionDelay(0); mean != 0 || max != 0 || count != 0 {
		t.Error("delay stats should be zero without TrackDelay")
	}
}

// BenchmarkStep measures one controller slot at paper scale with the
// sequential-fix scheduler — the per-slot cost a deployment would pay.
func BenchmarkStep(b *testing.B) {
	src := rng.New(1)
	net, err := topology.Build(topology.Paper(), src.Split("topology"))
	if err != nil {
		b.Fatal(err)
	}
	tm := traffic.PaperSessions(4, net.Users(), 60, src.Split("traffic"))
	c, err := New(Config{
		Net:         net,
		Traffic:     tm,
		V:           1e5,
		Lambda:      0.0006,
		SlotSeconds: 60,
		Cost:        energy.PaperCost(),
		EnergyGate:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	stepSrc := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(stepSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUplinkSessions verifies the anycast uplink extension: packets
// originate at a fixed user, are delivered on reaching any base station,
// and no base station accumulates a queue for the session.
func TestUplinkSessions(t *testing.T) {
	cfg, net := smallConfig(t, 15)
	up := traffic.UplinkSessions(2, net.Users(), 60, len(cfg.Traffic.Sessions), rng.New(15))
	cfg.Traffic.Sessions = append(cfg.Traffic.Sessions, up...)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(16)
	admitted, delivered := 0.0, 0.0
	for slot := 0; slot < 40; slot++ {
		res, err := c.Step(src)
		if err != nil {
			t.Fatal(err)
		}
		admitted += res.AdmittedPkts
		for s := len(cfg.Traffic.Sessions) - 2; s < len(cfg.Traffic.Sessions); s++ {
			delivered += res.DeliveredPkts[s]
			for _, b := range net.BaseStations() {
				if q := c.QueueBacklog(s, b); q != 0 {
					t.Fatalf("uplink session %d holds %v packets at BS %d", s, q, b)
				}
			}
		}
	}
	if delivered <= 0 {
		t.Error("uplink sessions delivered nothing to the base stations")
	}
	if admitted <= 0 {
		t.Error("nothing admitted")
	}
}

// TestUplinkValidation rejects base-station uplink sources.
func TestUplinkValidation(t *testing.T) {
	cfg, net := smallConfig(t, 17)
	cfg.Traffic.Sessions = append(cfg.Traffic.Sessions, traffic.Session{
		ID: 9, Uplink: true, Source: net.BaseStations()[0], DemandPkts: 1, MaxAdmission: 1,
	})
	if _, err := New(cfg); err == nil {
		t.Error("uplink session sourced at a base station accepted")
	}
}
