package core

import (
	"greencell/internal/energymgmt"
	"greencell/internal/sched"
	"greencell/internal/topology"
	"greencell/internal/units"
)

// SlotCheck carries one slot's raw decisions and state transitions for
// external validation through Config.Check. It exposes what SlotResult's
// aggregates hide: the per-link schedule and flows, the per-node energy
// decision, and the queue/battery state on both sides of the update — the
// quantities the paper's per-slot constraints (9)–(14), (16)–(19), (22)
// and (25) are written against. It is built only when the hook is set, so
// ordinary runs pay nothing for it.
//
// Slices are the controller's working storage, valid only for the duration
// of the callback; a hook that retains them must copy.
type SlotCheck struct {
	// Slot is the 0-based slot index.
	Slot int
	// Net is the physical network (node specs, links, radio counts).
	Net *topology.Network
	// Obs is the slot's revealed random state: band widths, renewable
	// outputs R_i(t), and grid connectivity ω_i(t).
	Obs Observation

	// QBefore[s][i] is Q_i^s(t) before this slot's transfers and
	// admissions.
	QBefore [][]float64

	// Assignment is the S1 schedule (activities α, powers, rates).
	Assignment *sched.Assignment
	// RouteCapPkts[l] is the capacity cap handed to S3 for link l, in
	// packets (the best-available-band potential capacity; see the
	// controller's routeCap discussion).
	RouteCapPkts []float64

	// Admit[s] is the S2 admission k_s(t); Source[s] is the chosen source
	// node s_s(t); DemandPkts[s] is the destination demand v_s(t).
	Admit      []float64
	Source     []int
	DemandPkts []float64
	// IsSink reports whether a node is a delivery point of session s (the
	// fixed destination for downlink, any base station for uplink).
	IsSink func(s, node int) bool

	// Flow[l][s] is the S3 routing decision l_ij^s; Actual[l][s] is the
	// executed transfer after the ship-only-what-exists rule (invariant I2
	// of DESIGN.md), so Actual ≤ Flow elementwise.
	Flow, Actual [][]float64

	// DemandWh[i] is the node energy demand E_i(t) of eq. (2) handed to S4.
	DemandWh []units.Energy
	// Energy is the S4 decision (per-node r, c^r, g, c^g, d, u).
	Energy *energymgmt.Decision
	// BatteryBeforeWh and BatteryAfterWh bracket the battery update:
	// x_i(t) when S4 decided, and x_i(t+1) after the step.
	BatteryBeforeWh, BatteryAfterWh []units.Energy
	// ChargeHeadroomWh and DischargeHeadroomWh are the pre-step
	// right-hand sides of eqs. (11) and (12) that the S4 decision had to
	// respect.
	ChargeHeadroomWh, DischargeHeadroomWh []units.Energy
}
